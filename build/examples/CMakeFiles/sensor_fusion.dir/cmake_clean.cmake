file(REMOVE_RECURSE
  "CMakeFiles/sensor_fusion.dir/sensor_fusion.cpp.o"
  "CMakeFiles/sensor_fusion.dir/sensor_fusion.cpp.o.d"
  "sensor_fusion"
  "sensor_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
