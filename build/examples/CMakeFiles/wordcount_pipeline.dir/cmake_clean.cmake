file(REMOVE_RECURSE
  "CMakeFiles/wordcount_pipeline.dir/wordcount_pipeline.cpp.o"
  "CMakeFiles/wordcount_pipeline.dir/wordcount_pipeline.cpp.o.d"
  "wordcount_pipeline"
  "wordcount_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
