# Empty dependencies file for tart.
# This may be replaced when dependencies are built.
