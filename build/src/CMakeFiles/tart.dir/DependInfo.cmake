
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/streamops.cc" "src/CMakeFiles/tart.dir/apps/streamops.cc.o" "gcc" "src/CMakeFiles/tart.dir/apps/streamops.cc.o.d"
  "/root/repo/src/apps/wordcount.cc" "src/CMakeFiles/tart.dir/apps/wordcount.cc.o" "gcc" "src/CMakeFiles/tart.dir/apps/wordcount.cc.o.d"
  "/root/repo/src/checkpoint/replica.cc" "src/CMakeFiles/tart.dir/checkpoint/replica.cc.o" "gcc" "src/CMakeFiles/tart.dir/checkpoint/replica.cc.o.d"
  "/root/repo/src/checkpoint/snapshot.cc" "src/CMakeFiles/tart.dir/checkpoint/snapshot.cc.o" "gcc" "src/CMakeFiles/tart.dir/checkpoint/snapshot.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/tart.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/tart.dir/common/logging.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/tart.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/tart.dir/core/engine.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/tart.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/tart.dir/core/runner.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/CMakeFiles/tart.dir/core/runtime.cc.o" "gcc" "src/CMakeFiles/tart.dir/core/runtime.cc.o.d"
  "/root/repo/src/core/topology.cc" "src/CMakeFiles/tart.dir/core/topology.cc.o" "gcc" "src/CMakeFiles/tart.dir/core/topology.cc.o.d"
  "/root/repo/src/estimator/calibrator.cc" "src/CMakeFiles/tart.dir/estimator/calibrator.cc.o" "gcc" "src/CMakeFiles/tart.dir/estimator/calibrator.cc.o.d"
  "/root/repo/src/estimator/estimator_manager.cc" "src/CMakeFiles/tart.dir/estimator/estimator_manager.cc.o" "gcc" "src/CMakeFiles/tart.dir/estimator/estimator_manager.cc.o.d"
  "/root/repo/src/log/fault_log.cc" "src/CMakeFiles/tart.dir/log/fault_log.cc.o" "gcc" "src/CMakeFiles/tart.dir/log/fault_log.cc.o.d"
  "/root/repo/src/log/message_log.cc" "src/CMakeFiles/tart.dir/log/message_log.cc.o" "gcc" "src/CMakeFiles/tart.dir/log/message_log.cc.o.d"
  "/root/repo/src/log/stable_store.cc" "src/CMakeFiles/tart.dir/log/stable_store.cc.o" "gcc" "src/CMakeFiles/tart.dir/log/stable_store.cc.o.d"
  "/root/repo/src/serde/archive.cc" "src/CMakeFiles/tart.dir/serde/archive.cc.o" "gcc" "src/CMakeFiles/tart.dir/serde/archive.cc.o.d"
  "/root/repo/src/sim/jitter.cc" "src/CMakeFiles/tart.dir/sim/jitter.cc.o" "gcc" "src/CMakeFiles/tart.dir/sim/jitter.cc.o.d"
  "/root/repo/src/sim/tart_sim.cc" "src/CMakeFiles/tart.dir/sim/tart_sim.cc.o" "gcc" "src/CMakeFiles/tart.dir/sim/tart_sim.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/tart.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/tart.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/regression.cc" "src/CMakeFiles/tart.dir/stats/regression.cc.o" "gcc" "src/CMakeFiles/tart.dir/stats/regression.cc.o.d"
  "/root/repo/src/transport/frame.cc" "src/CMakeFiles/tart.dir/transport/frame.cc.o" "gcc" "src/CMakeFiles/tart.dir/transport/frame.cc.o.d"
  "/root/repo/src/transport/network_link.cc" "src/CMakeFiles/tart.dir/transport/network_link.cc.o" "gcc" "src/CMakeFiles/tart.dir/transport/network_link.cc.o.d"
  "/root/repo/src/transport/reliable_link.cc" "src/CMakeFiles/tart.dir/transport/reliable_link.cc.o" "gcc" "src/CMakeFiles/tart.dir/transport/reliable_link.cc.o.d"
  "/root/repo/src/wire/inbox.cc" "src/CMakeFiles/tart.dir/wire/inbox.cc.o" "gcc" "src/CMakeFiles/tart.dir/wire/inbox.cc.o.d"
  "/root/repo/src/wire/payload.cc" "src/CMakeFiles/tart.dir/wire/payload.cc.o" "gcc" "src/CMakeFiles/tart.dir/wire/payload.cc.o.d"
  "/root/repo/src/wire/retention_buffer.cc" "src/CMakeFiles/tart.dir/wire/retention_buffer.cc.o" "gcc" "src/CMakeFiles/tart.dir/wire/retention_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
