file(REMOVE_RECURSE
  "libtart.a"
)
