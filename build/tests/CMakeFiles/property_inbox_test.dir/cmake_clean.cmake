file(REMOVE_RECURSE
  "CMakeFiles/property_inbox_test.dir/property_inbox_test.cc.o"
  "CMakeFiles/property_inbox_test.dir/property_inbox_test.cc.o.d"
  "property_inbox_test"
  "property_inbox_test.pdb"
  "property_inbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_inbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
