# Empty dependencies file for property_inbox_test.
# This may be replaced when dependencies are built.
