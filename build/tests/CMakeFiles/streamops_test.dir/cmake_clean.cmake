file(REMOVE_RECURSE
  "CMakeFiles/streamops_test.dir/streamops_test.cc.o"
  "CMakeFiles/streamops_test.dir/streamops_test.cc.o.d"
  "streamops_test"
  "streamops_test.pdb"
  "streamops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
