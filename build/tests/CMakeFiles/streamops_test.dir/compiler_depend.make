# Empty compiler generated dependencies file for streamops_test.
# This may be replaced when dependencies are built.
