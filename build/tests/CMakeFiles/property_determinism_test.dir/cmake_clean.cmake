file(REMOVE_RECURSE
  "CMakeFiles/property_determinism_test.dir/property_determinism_test.cc.o"
  "CMakeFiles/property_determinism_test.dir/property_determinism_test.cc.o.d"
  "property_determinism_test"
  "property_determinism_test.pdb"
  "property_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
