file(REMOVE_RECURSE
  "CMakeFiles/runner_behavior_test.dir/runner_behavior_test.cc.o"
  "CMakeFiles/runner_behavior_test.dir/runner_behavior_test.cc.o.d"
  "runner_behavior_test"
  "runner_behavior_test.pdb"
  "runner_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
