# Empty dependencies file for runner_behavior_test.
# This may be replaced when dependencies are built.
