file(REMOVE_RECURSE
  "CMakeFiles/property_recovery_test.dir/property_recovery_test.cc.o"
  "CMakeFiles/property_recovery_test.dir/property_recovery_test.cc.o.d"
  "property_recovery_test"
  "property_recovery_test.pdb"
  "property_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
