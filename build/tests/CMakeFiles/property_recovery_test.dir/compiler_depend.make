# Empty compiler generated dependencies file for property_recovery_test.
# This may be replaced when dependencies are built.
