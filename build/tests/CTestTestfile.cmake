# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/core_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/streamops_test[1]_include.cmake")
include("/root/repo/build/tests/stable_store_test[1]_include.cmake")
include("/root/repo/build/tests/property_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/property_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/property_inbox_test[1]_include.cmake")
include("/root/repo/build/tests/runner_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/timer_test[1]_include.cmake")
