# Empty dependencies file for bench_fig3_variability.
# This may be replaced when dependencies are built.
