# Empty dependencies file for bench_ablation_optimistic.
# This may be replaced when dependencies are built.
