file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optimistic.dir/bench_ablation_optimistic.cc.o"
  "CMakeFiles/bench_ablation_optimistic.dir/bench_ablation_optimistic.cc.o.d"
  "bench_ablation_optimistic"
  "bench_ablation_optimistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
