file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fanin.dir/bench_ablation_fanin.cc.o"
  "CMakeFiles/bench_ablation_fanin.dir/bench_ablation_fanin.cc.o.d"
  "bench_ablation_fanin"
  "bench_ablation_fanin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fanin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
