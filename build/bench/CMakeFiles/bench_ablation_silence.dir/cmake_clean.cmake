file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_silence.dir/bench_ablation_silence.cc.o"
  "CMakeFiles/bench_ablation_silence.dir/bench_ablation_silence.cc.o.d"
  "bench_ablation_silence"
  "bench_ablation_silence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_silence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
