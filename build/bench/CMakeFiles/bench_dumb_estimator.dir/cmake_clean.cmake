file(REMOVE_RECURSE
  "CMakeFiles/bench_dumb_estimator.dir/bench_dumb_estimator.cc.o"
  "CMakeFiles/bench_dumb_estimator.dir/bench_dumb_estimator.cc.o.d"
  "bench_dumb_estimator"
  "bench_dumb_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dumb_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
