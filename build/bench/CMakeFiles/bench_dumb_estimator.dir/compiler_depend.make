# Empty compiler generated dependencies file for bench_dumb_estimator.
# This may be replaced when dependencies are built.
