file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_calibration.dir/bench_fig2_calibration.cc.o"
  "CMakeFiles/bench_fig2_calibration.dir/bench_fig2_calibration.cc.o.d"
  "bench_fig2_calibration"
  "bench_fig2_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
