file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_saturation.dir/bench_throughput_saturation.cc.o"
  "CMakeFiles/bench_throughput_saturation.dir/bench_throughput_saturation.cc.o.d"
  "bench_throughput_saturation"
  "bench_throughput_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
