// Failover walkthrough: what an external consumer observes across an
// engine crash.
//
// The correctness criterion (§II.A): despite fail-stop failures, observed
// behaviour equals some failure-free execution "except for possible output
// stutter" — the system may roll back and re-deliver already-delivered
// external messages, carrying duplicate timestamps that the consumer can
// discard. This demo runs the Figure-1 pipeline, kills the merger's
// engine mid-stream, fails over to the passive replica, and prints the
// consumer's view: the stutter records are exactly the re-deliveries, and
// the deduplicated stream equals a never-failed run.
#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

using namespace tart;
using namespace std::chrono_literals;

namespace {

struct Pipeline {
  core::Topology topo;
  ComponentId sender1, sender2, merger;
  WireId in1, in2, out;

  Pipeline() {
    sender1 = topo.add("sender1", [] {
      return std::make_unique<apps::WordCountSender>();
    });
    sender2 = topo.add("sender2", [] {
      return std::make_unique<apps::WordCountSender>();
    });
    merger = topo.add("merger", [] {
      return std::make_unique<apps::TotalingMerger>();
    });
    for (const auto c : {sender1, sender2}) {
      topo.set_estimator(
          c, [] { return estimator::per_iteration_estimator(61000.0); });
    }
    topo.set_estimator(merger, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(400));
    });
    in1 = topo.external_input(sender1, PortId(0));
    in2 = topo.external_input(sender2, PortId(0));
    topo.connect(sender1, PortId(0), merger, PortId(0));
    topo.connect(sender2, PortId(0), merger, PortId(0));
    out = topo.external_output(merger, PortId(0));
  }

  void inject(core::Runtime& rt, int from, int count) const {
    for (int i = from; i < from + count; ++i) {
      rt.inject_at(in1, VirtualTime(1000 + i * 1'000'000),
                   apps::sentence({"alpha", "beta", "gamma"}));
      rt.inject_at(in2, VirtualTime(500 + i * 900'000),
                   apps::sentence({"delta", "epsilon"}));
    }
  }
};

}  // namespace

int main() {
  // Reference: the same workload with no failure.
  std::int64_t reference_total = 0;
  std::size_t reference_count = 0;
  {
    Pipeline ref;
    core::RuntimeConfig config;
    config.checkpoint.every_n_messages = 3;
    core::Runtime rt(ref.topo, {{ref.sender1, EngineId(0)},
                                {ref.sender2, EngineId(0)},
                                {ref.merger, EngineId(1)}},
                     config);
    rt.start();
    ref.inject(rt, 0, 12);
    rt.drain();
    const auto records = rt.output_records(ref.out);
    reference_count = records.size();
    reference_total = records.back().payload.as_int();
    rt.stop();
  }
  std::printf("reference run (no failure): %zu outputs, final total %lld\n\n",
              reference_count, static_cast<long long>(reference_total));

  Pipeline p;
  core::RuntimeConfig config;
  config.checkpoint.every_n_messages = 3;  // soft checkpoint cadence
  core::Runtime rt(p.topo, {{p.sender1, EngineId(0)},
                            {p.sender2, EngineId(0)},
                            {p.merger, EngineId(1)}},
                   config);
  rt.start();

  std::printf("phase 1: streaming 6 sentences per sender...\n");
  p.inject(rt, 0, 6);
  std::this_thread::sleep_for(30ms);  // let processing + checkpoints land

  std::printf(
      "phase 2: FAIL-STOP of the merger's engine (state, queues and\n"
      "         retention lost); passive replica holds %llu checkpoints\n",
      static_cast<unsigned long long>(rt.replica().snapshots_received()));
  rt.crash_engine(EngineId(1));

  std::printf(
      "phase 3: failover — restore from replica, reconnect, replay\n");
  rt.recover_engine(EngineId(1));

  std::printf("phase 4: streaming continues as if nothing happened...\n");
  p.inject(rt, 6, 6);
  rt.drain();

  const auto records = rt.output_records(p.out);
  std::size_t stutter = 0;
  std::size_t clean = 0;
  for (const auto& r : records) (r.stutter ? stutter : clean)++;
  std::printf(
      "\nconsumer view: %zu records delivered, of which %zu are output\n"
      "stutter (re-deliveries with duplicate timestamps, trivially\n"
      "discarded by the consumer).\n",
      records.size(), stutter);
  std::printf("deduplicated stream: %zu outputs, final total %lld\n", clean,
              static_cast<long long>(records.back().payload.as_int()));
  std::printf("matches the never-failed run: %s\n",
              (clean == reference_count &&
               records.back().payload.as_int() == reference_total)
                  ? "YES"
                  : "NO (bug!)");
  std::printf(
      "duplicates discarded inside the fabric (replayed inter-component\n"
      "messages with known timestamps): %llu\n",
      static_cast<unsigned long long>(
          rt.total_metrics().duplicates_discarded));
  rt.stop();
  return 0;
}
