// Quickstart: the paper's Figure-1 application in ~60 lines.
//
// Two word-count senders (Code Body 1) fan into a totaling merger. The
// TART runtime augments every message with a virtual time computed by the
// senders' estimators and schedules the merger pessimistically in
// virtual-time order — so the run is deterministic: re-run it and you get
// byte-identical output, which is what makes checkpoint-replay recovery
// possible.
#include <cstdio>

#include "apps/wordcount.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

using namespace tart;

int main() {
  // 1. Describe the application graph (components + wires).
  core::Topology topo;
  const auto sender1 = topo.add("sender1", [] {
    return std::make_unique<apps::WordCountSender>();
  });
  const auto sender2 = topo.add("sender2", [] {
    return std::make_unique<apps::WordCountSender>();
  });
  const auto merger = topo.add("merger", [] {
    return std::make_unique<apps::TotalingMerger>();
  });

  // 2. Attach estimators: senders take ~61 us per word (Equation 2-style),
  //    the merger a constant 400 us per event.
  for (const auto c : {sender1, sender2}) {
    topo.set_estimator(
        c, [] { return estimator::per_iteration_estimator(61000.0); });
  }
  topo.set_estimator(merger, [] {
    return std::make_unique<estimator::ConstantEstimator>(
        TickDuration::micros(400));
  });

  // 3. Wire it up: external inputs feed the senders; both senders feed the
  //    merger; the merger feeds an external consumer.
  const auto in1 = topo.external_input(sender1, PortId(0));
  const auto in2 = topo.external_input(sender2, PortId(0));
  topo.connect(sender1, PortId(0), merger, PortId(0));
  topo.connect(sender2, PortId(0), merger, PortId(0));
  const auto out = topo.external_output(merger, PortId(0));

  // 4. Deploy everything onto one engine and subscribe to the output.
  core::Runtime rt(topo,
                   {{sender1, EngineId(0)},
                    {sender2, EngineId(0)},
                    {merger, EngineId(0)}},
                   core::RuntimeConfig{});
  rt.subscribe(out, [](VirtualTime vt, const Payload& p, bool stutter) {
    std::printf("  output @ vt %lld : running total %lld%s\n",
                static_cast<long long>(vt.ticks()),
                static_cast<long long>(p.as_int()),
                stutter ? "  (stutter)" : "");
  });
  rt.start();

  // 5. Feed the paper's worked example: messages at virtual times 50000
  //    and 80000 with sentence lengths 3 and 2. Even though sender1's
  //    message is injected first, the merger deterministically processes
  //    sender2's first (earlier virtual time: 80000 + 2*61000 < 50000 +
  //    3*61000).
  std::printf("injecting the paper's S II.E example...\n");
  rt.inject_at(in1, VirtualTime(50000),
               apps::sentence({"the", "cat", "sat"}));
  rt.inject_at(in2, VirtualTime(80000), apps::sentence({"dog", "ran"}));

  rt.drain();
  rt.stop();
  std::printf("deterministic run complete; re-run me: identical output.\n");
  return 0;
}
