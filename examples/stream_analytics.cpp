// Stream analytics: a payments-monitoring pipeline built entirely from the
// operator library — the class of stateful event-processing application the
// paper's middleware targets (§I.A).
//
//   transactions ──> normalize ──> filter ──> window-sum ──┐
//                                                          ├──> join ──> dedup ──> out
//   account limits ────────────────────────────────────────┘
//
// Per-account spending is summed over tumbling *virtual-time* windows,
// joined against a reference stream of account limits, deduplicated, and
// delivered to an external consumer. The whole pipeline is deterministic
// and transparently recoverable: this demo crashes the stateful engine in
// the middle of the stream and shows the consumer's deduplicated output
// and the operators' state are unaffected.
#include <cstdio>
#include <chrono>
#include <thread>

#include "apps/streamops.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

using namespace tart;
using namespace std::chrono_literals;

int main() {
  core::Topology topo;
  const auto normalize = topo.add("normalize", [] {
    // Cents -> whole currency units.
    return std::make_unique<apps::MapOperator>(1, 0);
  });
  const auto filter = topo.add("filter", [] {
    // Ignore micro-transactions below 10 units.
    return std::make_unique<apps::FilterOperator>(10, 1'000'000);
  });
  const auto windows = topo.add("window_sum", [] {
    // Per-account spend per 5 ms of virtual time.
    return std::make_unique<apps::TumblingWindowSum>(TickDuration::millis(5));
  });
  const auto join = topo.add("limit_join", [] {
    return std::make_unique<apps::KeyedJoin>();
  });
  const auto dedup = topo.add("dedup", [] {
    return std::make_unique<apps::DeduplicateOperator>();
  });
  for (const auto& spec : topo.components()) {
    topo.set_estimator(spec.id, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(15));
    });
  }

  const auto in_txn = topo.external_input(normalize, PortId(0));
  const auto in_limits = topo.external_input(join, PortId(1));
  topo.connect(normalize, PortId(0), filter, PortId(0));
  topo.connect(filter, PortId(0), windows, PortId(0));
  topo.connect(windows, PortId(0), join, PortId(0));
  topo.connect(join, PortId(0), dedup, PortId(0));
  const auto out = topo.external_output(dedup, PortId(0));

  // Stateless front on engine 0; the stateful tail on engine 1 with
  // frequent soft checkpoints.
  std::map<ComponentId, EngineId> placement{{normalize, EngineId(0)},
                                            {filter, EngineId(0)},
                                            {windows, EngineId(1)},
                                            {join, EngineId(1)},
                                            {dedup, EngineId(1)}};
  core::RuntimeConfig config;
  config.checkpoint.every_n_messages = 8;
  core::Runtime rt(topo, placement, config);
  rt.subscribe(out, [](VirtualTime vt, const Payload& p, bool stutter) {
    if (stutter) return;  // consumer compensates for output stutter
    std::printf("  alert @ vt %-10lld account %lld: window spend + limit = %lld\n",
                static_cast<long long>(vt.ticks()),
                static_cast<long long>(apps::event_key(p)),
                static_cast<long long>(apps::event_value(p)));
  });
  rt.start();

  // Account limits (reference stream).
  for (int account = 0; account < 3; ++account)
    rt.inject_at(in_limits, VirtualTime(100 + account),
                 apps::event(account, 10'000 * (account + 1)));

  // Transactions, phase 1.
  Rng rng(7);
  auto inject_txns = [&](int from, int count) {
    for (int i = from; i < from + count; ++i) {
      rt.inject_at(in_txn, VirtualTime(50'000 + i * 150'000),
                   apps::event(i % 3, rng.uniform_int(5, 500)));
    }
  };
  inject_txns(0, 120);
  std::this_thread::sleep_for(20ms);

  std::printf("--- engine 1 (window/join/dedup state) FAILS and recovers ---\n");
  rt.crash_engine(EngineId(1));
  rt.recover_engine(EngineId(1));

  inject_txns(120, 120);
  rt.drain();

  std::size_t alerts = 0, stutter = 0;
  for (const auto& r : rt.output_records(out)) (r.stutter ? stutter : alerts)++;
  std::printf(
      "\n%zu alerts delivered (%zu stutter re-deliveries discarded by the\n"
      "consumer); duplicates absorbed inside the fabric: %llu\n",
      alerts, stutter,
      static_cast<unsigned long long>(
          rt.total_metrics().duplicates_discarded));
  rt.stop();
  return 0;
}
