// Sensor fusion: a stateful event-correlation pipeline with two-way calls.
//
// Four sensor front-ends normalize raw readings by *calling* a shared
// calibration service (two-way messages: the caller blocks until the reply
// arrives and resumes at the reply's virtual time), then feed a fusion
// component that keeps a per-sensor last-reading table and emits a fused
// average whenever any sensor updates. The deterministic merge guarantees
// every run fuses readings in the identical order — the property that lets
// a failed fusion node recover by replay with no coordination.
#include <cstdio>

#include "checkpoint/checkpointed_map.h"
#include "checkpoint/checkpointed_value.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

using namespace tart;

namespace {

/// Calibration service: per-sensor offset table, consulted via calls.
class CalibrationService : public core::Component {
 public:
  void on_message(core::Context&, PortId, const Payload&) override {
    throw std::logic_error("calibration is call-only");
  }

  Payload on_call(core::Context& ctx, PortId /*port*/,
                  const Payload& request) override {
    ctx.count_block(0);
    const auto& req = request.as_ints();  // [sensor_id, raw_reading]
    const std::int64_t sensor = req[0];
    // Drift model: every consultation nudges the stored offset — state
    // that must survive failover for replies to replay identically.
    offsets_.update(sensor, [](std::int64_t& o) { o += 1; });
    return Payload(req[1] + *offsets_.find(sensor));
  }

  void capture_full(serde::Writer& w) const override {
    offsets_.capture_full(w);
  }
  void capture_delta(serde::Writer& w) override {
    offsets_.capture_delta(w);
  }
  [[nodiscard]] bool supports_delta() const override { return true; }
  void restore_full(serde::Reader& r) override { offsets_.restore_full(r); }
  void apply_delta(serde::Reader& r) override { offsets_.apply_delta(r); }

 private:
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> offsets_;
};

/// Sensor front-end: calls the calibration service, forwards the
/// normalized reading tagged with its sensor id.
class SensorFrontEnd : public core::Component {
 public:
  explicit SensorFrontEnd(std::int64_t sensor_id) : sensor_id_(sensor_id) {}

  void on_message(core::Context& ctx, PortId /*port*/,
                  const Payload& payload) override {
    ctx.count_block(0);
    const Payload calibrated = ctx.call(
        PortId(1),
        Payload(std::vector<std::int64_t>{sensor_id_, payload.as_int()}));
    ctx.send(PortId(0), Payload(std::vector<std::int64_t>{
                            sensor_id_, calibrated.as_int()}));
  }

  void capture_full(serde::Writer& w) const override {
    w.write_svarint(sensor_id_);
  }
  void restore_full(serde::Reader& r) override {
    sensor_id_ = r.read_svarint();
  }

 private:
  std::int64_t sensor_id_;
};

/// Fusion: last-reading table + running fused average.
class FusionComponent : public core::Component {
 public:
  void on_message(core::Context& ctx, PortId /*port*/,
                  const Payload& payload) override {
    const auto& reading = payload.as_ints();  // [sensor_id, value]
    ctx.count_block(0);
    last_.put(reading[0], reading[1]);
    std::int64_t sum = 0;
    for (const auto& [id, v] : last_.entries()) {
      ctx.count_block(1);
      sum += v;
    }
    fused_.set(sum / static_cast<std::int64_t>(last_.size()));
    ctx.send(PortId(0), Payload(fused_.get()));
  }

  void capture_full(serde::Writer& w) const override {
    last_.capture_full(w);
    fused_.capture_full(w);
  }
  void restore_full(serde::Reader& r) override {
    last_.restore_full(r);
    fused_.restore_full(r);
  }

 private:
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> last_;
  checkpoint::CheckpointedValue<std::int64_t> fused_{0};
};

}  // namespace

int main() {
  constexpr int kSensors = 4;
  core::Topology topo;

  const auto calibration = topo.add("calibration", [] {
    return std::make_unique<CalibrationService>();
  });
  topo.set_estimator(calibration, [] {
    return std::make_unique<estimator::ConstantEstimator>(
        TickDuration::micros(20));
  });
  const auto fusion =
      topo.add("fusion", [] { return std::make_unique<FusionComponent>(); });
  // Fusion cost: beta0 + beta2 * table-scan length (Equation 1 with two
  // blocks: block 0 fires once, block 1 per table entry).
  topo.set_estimator(fusion, [] {
    return std::make_unique<estimator::LinearEstimator>(
        std::vector<double>{5000.0, 10000.0, 2000.0});
  });

  std::vector<WireId> inputs;
  for (int s = 0; s < kSensors; ++s) {
    const auto frontend = topo.add(
        "sensor" + std::to_string(s),
        [s] { return std::make_unique<SensorFrontEnd>(s); });
    topo.set_estimator(frontend, [] {
      return std::make_unique<estimator::ConstantEstimator>(
          TickDuration::micros(15));
    });
    inputs.push_back(topo.external_input(frontend, PortId(0)));
    topo.connect_call(frontend, PortId(1), calibration, PortId(0));
    topo.connect(frontend, PortId(0), fusion, PortId(0));
  }
  const auto out = topo.external_output(fusion, PortId(0));

  // Sensors + calibration on engine 0; fusion on engine 1 with a
  // checkpointed passive replica.
  std::map<ComponentId, EngineId> placement;
  for (const auto& spec : topo.components())
    placement[spec.id] = spec.name == "fusion" ? EngineId(1) : EngineId(0);

  core::RuntimeConfig config;
  config.checkpoint.every_n_messages = 10;
  core::Runtime rt(topo, placement, config);
  rt.start();

  // A deterministic interleaved reading schedule.
  for (int round = 0; round < 25; ++round) {
    for (int s = 0; s < kSensors; ++s) {
      rt.inject_at(inputs[static_cast<std::size_t>(s)],
                   VirtualTime(round * 1'000'000 + s * 137'000),
                   Payload(std::int64_t{100 * (s + 1) + round}));
    }
  }
  rt.drain();

  const auto records = rt.output_records(out);
  std::printf("fused %zu readings from %d sensors\n", records.size(),
              kSensors);
  std::printf("last five fused values:");
  for (std::size_t i = records.size() >= 5 ? records.size() - 5 : 0;
       i < records.size(); ++i)
    std::printf(" %lld", static_cast<long long>(records[i].payload.as_int()));
  std::printf("\n");

  // Failover drill: the fusion engine dies and recovers mid-stream — state
  // (last-reading table, fused average, calibration positions) is restored
  // from the replica and replay re-derives the rest.
  const auto fingerprint_before = rt.state_fingerprint(fusion);
  rt.crash_engine(EngineId(1));
  rt.recover_engine(EngineId(1));
  rt.drain();
  std::printf("failover drill: fusion state %s after crash+recover\n",
              rt.state_fingerprint(fusion) == fingerprint_before
                  ? "bit-identical"
                  : "DIVERGED (bug!)");
  std::printf("calibration served %llu calls\n",
              static_cast<unsigned long long>(
                  rt.metrics(calibration).calls_served));
  rt.stop();
  return 0;
}
