// Word-count pipeline across two engines with online estimator
// calibration.
//
// Demonstrates the full deployment story of §II.C on a larger stream:
//   - placement: senders on engine 0, merger on engine 1, joined by a
//     simulated physical link (delay + loss, masked by the reliable
//     transport);
//   - estimators: senders start from a deliberately rough prior
//     (50 us/word); with calibration enabled, the runtime measures actual
//     handler times, refits the coefficient by regression, and installs
//     the update through a *determinism fault* — synchronously logged with
//     its effective virtual time so replay stays exact (§II.G.4);
//   - soft checkpoints ship to the passive replica as the stream flows.
#include <chrono>
#include <cstdio>
#include <vector>

#include "apps/wordcount.h"
#include "common/rng.h"
#include "core/runtime.h"
#include "estimator/estimator.h"

using namespace tart;
using namespace std::chrono_literals;

int main() {
  core::Topology topo;
  const auto sender1 = topo.add("sender1", [] {
    return std::make_unique<apps::WordCountSender>();
  });
  const auto sender2 = topo.add("sender2", [] {
    return std::make_unique<apps::WordCountSender>();
  });
  const auto merger = topo.add("merger", [] {
    return std::make_unique<apps::TotalingMerger>();
  });
  // Rough prior: 50 us/word (static analysis would give something like
  // this; calibration refines it from live measurements).
  for (const auto c : {sender1, sender2}) {
    topo.set_estimator(
        c, [] { return estimator::per_iteration_estimator(50000.0); });
  }
  topo.set_estimator(merger, [] {
    return std::make_unique<estimator::ConstantEstimator>(
        TickDuration::micros(50));
  });

  const auto in1 = topo.external_input(sender1, PortId(0));
  const auto in2 = topo.external_input(sender2, PortId(0));
  topo.connect(sender1, PortId(0), merger, PortId(0));
  topo.connect(sender2, PortId(0), merger, PortId(0));
  const auto out = topo.external_output(merger, PortId(0));

  core::RuntimeConfig config;
  config.checkpoint.every_n_messages = 50;
  config.calibration = true;
  config.calibrator.min_samples = 300;
  config.calibrator.drift_threshold = 0.10;
  transport::LinkConfig link;
  link.base_delay = 100us;
  link.loss_probability = 0.05;  // masked by the reliability layer
  config.links[{EngineId(0), EngineId(1)}] = link;

  core::Runtime rt(topo,
                   {{sender1, EngineId(0)},
                    {sender2, EngineId(0)},
                    {merger, EngineId(1)}},
                   config);
  rt.start();

  // A stream of random sentences over a small vocabulary.
  Rng rng(42);
  const std::vector<std::string> vocab = {
      "stream", "event",  "process", "merge",  "virtual", "time",
      "replay", "silent", "probe",   "engine", "state",   "wire"};
  const int kMessages = 600;
  for (int i = 0; i < kMessages; ++i) {
    std::vector<std::string> words;
    const auto len = rng.uniform_int(1, 8);
    for (int w = 0; w < len; ++w)
      words.push_back(vocab[rng.bounded(vocab.size())]);
    rt.inject((i % 2 == 0) ? in1 : in2, apps::sentence(words));
  }
  rt.drain();

  const auto records = rt.output_records(out);
  std::printf("processed %zu sentences; final running total: %lld\n",
              records.size(),
              records.empty()
                  ? 0LL
                  : static_cast<long long>(records.back().payload.as_int()));

  // What the recovery machinery accumulated along the way:
  std::printf("replica: %llu soft checkpoints (%.1f KB shipped)\n",
              static_cast<unsigned long long>(
                  rt.replica().snapshots_received()),
              static_cast<double>(rt.replica().bytes_received()) / 1024.0);
  std::printf("determinism faults logged (estimator recalibrations): %llu\n",
              static_cast<unsigned long long>(
                  rt.fault_log().total_records()));
  for (const auto c : {sender1, sender2}) {
    for (const auto& rec : rt.fault_log().records_after(c, 0)) {
      std::printf(
          "  %s: version %llu effective at vt %lld, coefficient -> %.0f "
          "ns/word\n",
          topo.component(c).name.c_str(),
          static_cast<unsigned long long>(rec.version),
          static_cast<long long>(rec.effective_vt.ticks()),
          rec.coefficients.size() > 1 ? rec.coefficients[1] : 0.0);
    }
  }
  const auto m = rt.metrics(merger);
  std::printf(
      "merger: %llu messages in virtual-time order, %llu curiosity probes, "
      "%.2f ms total pessimism delay\n",
      static_cast<unsigned long long>(m.messages_processed),
      static_cast<unsigned long long>(m.probes_sent),
      static_cast<double>(m.pessimism_wait_ns) / 1e6);
  rt.stop();
  return 0;
}
