// Streaming summary statistics (Welford). Used for latency accounting in
// the benchmark harnesses and for estimator residual tracking.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace tart::stats {

class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const OnlineStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = count_ + other.count_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) /
                           static_cast<double>(n);
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) /
            static_cast<double>(n);
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return count_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return count_ ? max_ : 0.0;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace tart::stats
