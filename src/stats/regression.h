// Least-squares linear regression used to calibrate estimator coefficients.
//
// The paper (§II.H) models computation time as a linear function of
// basic-block execution counts, τ = β0 + β1ξ1 + ... + βkξk, makes a rough
// a-priori estimate, and then "after some execution samples are taken ... a
// linear regression is taken to fit the coefficients." For Code Body 1 the
// fit is through the origin on a single predictor (Equation 2:
// τ = 61827 ξ1, R² = 0.9154).
//
// We provide both the simple univariate fits (with and without intercept)
// and a small multivariate normal-equations solver for multi-block models.
#pragma once

#include <cstddef>
#include <vector>

namespace tart::stats {

/// Result of a univariate fit y = a + b x (or y = b x when through_origin).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;

  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
};

/// Ordinary least squares, y = a + b x.
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Regression through the origin, y = b x (the paper's Equation 2 form).
/// R² is computed against the through-origin model (1 - SSE/Σy²), matching
/// what spreadsheet tools report for a forced-zero-intercept trendline.
[[nodiscard]] LinearFit fit_through_origin(const std::vector<double>& x,
                                           const std::vector<double>& y);

/// Pearson correlation coefficient. Used in the Fig-2 reproduction to verify
/// the paper's "close to zero correlation between the number of iterations
/// and the residuals".
[[nodiscard]] double pearson(const std::vector<double>& x,
                             const std::vector<double>& y);

/// Sample skewness (g1). The paper notes the residual distribution is
/// "highly right-skewed"; we assert positive skew in tests/benches.
[[nodiscard]] double skewness(const std::vector<double>& xs);

/// Multivariate OLS via normal equations with Gaussian elimination:
/// y = β·x, x including a leading 1 column if an intercept is desired.
/// Returns empty vector if the system is singular.
[[nodiscard]] std::vector<double> fit_multivariate(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& y);

/// Incremental accumulator for univariate through-origin regression, so an
/// online calibrator can refine a coefficient as samples arrive without
/// storing them (paper: "after several hundreds of messages have been
/// processed, the coefficient can be refined based upon empirical
/// measurement").
class OnlineOriginFit {
 public:
  void add(double x, double y) {
    sxx_ += x * x;
    sxy_ += x * y;
    syy_ += y * y;
    ++n_;
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] bool has_fit() const { return sxx_ > 0.0; }
  [[nodiscard]] double slope() const { return sxx_ > 0.0 ? sxy_ / sxx_ : 0.0; }
  [[nodiscard]] double r_squared() const {
    if (syy_ <= 0.0 || sxx_ <= 0.0) return 0.0;
    const double b = slope();
    const double sse = syy_ - 2 * b * sxy_ + b * b * sxx_;
    return 1.0 - sse / syy_;
  }

 private:
  double sxx_ = 0.0;
  double sxy_ = 0.0;
  double syy_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace tart::stats
