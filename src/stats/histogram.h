// Fixed-bucket histogram plus percentile extraction; used by benches to
// report latency distributions (the paper's figures report averages, we add
// percentiles for the ablation studies) and by the telemetry registry
// (src/obs) as the plain-value snapshot type that travels over the control
// plane and merges across nodes in tart-obs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tart::serde {
class Writer;
class Reader;
}  // namespace tart::serde

namespace tart::stats {

class Histogram {
 public:
  /// Buckets of `width` covering [0, width*num_buckets); one overflow bucket.
  Histogram(double width, std::size_t num_buckets);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double max_seen() const { return max_seen_; }
  /// Linear-interpolated percentile in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double bucket_width() const { return width_; }
  /// All buckets including the trailing overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

  /// Adds another histogram's observations into this one. Only histograms
  /// with identical bucket bounds (same width, same bucket count) can be
  /// merged; a mismatch returns false and leaves this histogram untouched —
  /// aggregators (tart-obs) must not silently blend incompatible scales.
  [[nodiscard]] bool merge(const Histogram& other);

  /// Deterministic serde round-trip, for the control-plane obs dump.
  void encode(serde::Writer& w) const;
  [[nodiscard]] static Histogram decode(serde::Reader& r);

  /// Rebuilds a histogram from raw parts (the telemetry registry snapshots
  /// its atomic cells through this). `buckets` must include the overflow
  /// bucket; `count` must equal the bucket total.
  [[nodiscard]] static Histogram from_parts(double width,
                                            std::vector<std::uint64_t> buckets,
                                            std::uint64_t count, double sum,
                                            double max_seen);

  /// Compact ASCII rendering for bench output.
  [[nodiscard]] std::string render(std::size_t max_rows = 16) const;

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace tart::stats
