// Fixed-bucket histogram plus percentile extraction; used by benches to
// report latency distributions (the paper's figures report averages, we add
// percentiles for the ablation studies).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tart::stats {

class Histogram {
 public:
  /// Buckets of `width` covering [0, width*num_buckets); one overflow bucket.
  Histogram(double width, std::size_t num_buckets);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Linear-interpolated percentile in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double bucket_width() const { return width_; }

  /// Compact ASCII rendering for bench output.
  [[nodiscard]] std::string render(std::size_t max_rows = 16) const;

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double max_seen_ = 0.0;
};

}  // namespace tart::stats
