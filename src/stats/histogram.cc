#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tart::stats {

Histogram::Histogram(double width, std::size_t num_buckets)
    : width_(width), buckets_(num_buckets + 1, 0) {}

void Histogram::add(double x) {
  if (x < 0) x = 0;
  auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= buckets_.size() - 1) idx = buckets_.size() - 1;
  ++buckets_[idx];
  ++count_;
  max_seen_ = std::max(max_seen_, x);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t next = cum + buckets_[i];
    if (static_cast<double>(next) >= target) {
      const double inside =
          buckets_[i] == 0
              ? 0.0
              : (target - static_cast<double>(cum)) /
                    static_cast<double>(buckets_[i]);
      if (i == buckets_.size() - 1) return max_seen_;
      return (static_cast<double>(i) + inside) * width_;
    }
    cum = next;
  }
  return max_seen_;
}

std::string Histogram::render(std::size_t max_rows) const {
  std::ostringstream os;
  // Find the densest region to display.
  std::size_t last_nonzero = 0;
  std::uint64_t peak = 1;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > 0) last_nonzero = i;
    peak = std::max(peak, buckets_[i]);
  }
  const std::size_t rows = std::min(max_rows, last_nonzero + 1);
  const std::size_t group = (last_nonzero + rows) / std::max<std::size_t>(rows, 1);
  for (std::size_t r = 0; r * group <= last_nonzero; ++r) {
    std::uint64_t sum = 0;
    for (std::size_t i = r * group;
         i < std::min((r + 1) * group, buckets_.size()); ++i)
      sum += buckets_[i];
    const auto bar_len = static_cast<std::size_t>(
        40.0 * static_cast<double>(sum) /
        static_cast<double>(peak * std::max<std::size_t>(group, 1)));
    os << "  [" << static_cast<double>(r * group) * width_ << ", "
       << static_cast<double>((r + 1) * group) * width_ << ") "
       << std::string(bar_len, '#') << ' ' << sum << '\n';
  }
  return os.str();
}

}  // namespace tart::stats
