#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "serde/archive.h"

namespace tart::stats {

Histogram::Histogram(double width, std::size_t num_buckets)
    : width_(width), buckets_(num_buckets + 1, 0) {}

void Histogram::add(double x) {
  if (x < 0) x = 0;
  auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= buckets_.size() - 1) idx = buckets_.size() - 1;
  ++buckets_[idx];
  ++count_;
  sum_ += x;
  max_seen_ = std::max(max_seen_, x);
}

bool Histogram::merge(const Histogram& other) {
  if (other.width_ != width_ || other.buckets_.size() != buckets_.size())
    return false;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
  return true;
}

void Histogram::encode(serde::Writer& w) const {
  w.write_double(width_);
  w.write_varint(buckets_.size());
  for (const std::uint64_t b : buckets_) w.write_varint(b);
  w.write_varint(count_);
  w.write_double(sum_);
  w.write_double(max_seen_);
}

Histogram Histogram::decode(serde::Reader& r) {
  const double width = r.read_double();
  const std::uint64_t n = r.read_varint();
  if (n == 0 || n > (1u << 24))
    throw serde::DecodeError("histogram: bad bucket count");
  std::vector<std::uint64_t> buckets;
  buckets.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) buckets.push_back(r.read_varint());
  const std::uint64_t count = r.read_varint();
  const double sum = r.read_double();
  const double max_seen = r.read_double();
  return from_parts(width, std::move(buckets), count, sum, max_seen);
}

Histogram Histogram::from_parts(double width,
                                std::vector<std::uint64_t> buckets,
                                std::uint64_t count, double sum,
                                double max_seen) {
  Histogram h(width, buckets.empty() ? 1 : buckets.size() - 1);
  h.buckets_ = std::move(buckets);
  if (h.buckets_.empty()) h.buckets_.assign(2, 0);
  h.count_ = count;
  h.sum_ = sum;
  h.max_seen_ = max_seen;
  return h;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t next = cum + buckets_[i];
    if (static_cast<double>(next) >= target) {
      const double inside =
          buckets_[i] == 0
              ? 0.0
              : (target - static_cast<double>(cum)) /
                    static_cast<double>(buckets_[i]);
      if (i == buckets_.size() - 1) return max_seen_;
      return (static_cast<double>(i) + inside) * width_;
    }
    cum = next;
  }
  return max_seen_;
}

std::string Histogram::render(std::size_t max_rows) const {
  std::ostringstream os;
  // Find the densest region to display.
  std::size_t last_nonzero = 0;
  std::uint64_t peak = 1;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > 0) last_nonzero = i;
    peak = std::max(peak, buckets_[i]);
  }
  const std::size_t rows = std::min(max_rows, last_nonzero + 1);
  const std::size_t group = (last_nonzero + rows) / std::max<std::size_t>(rows, 1);
  for (std::size_t r = 0; r * group <= last_nonzero; ++r) {
    std::uint64_t sum = 0;
    for (std::size_t i = r * group;
         i < std::min((r + 1) * group, buckets_.size()); ++i)
      sum += buckets_[i];
    const auto bar_len = static_cast<std::size_t>(
        40.0 * static_cast<double>(sum) /
        static_cast<double>(peak * std::max<std::size_t>(group, 1)));
    os << "  [" << static_cast<double>(r * group) * width_ << ", "
       << static_cast<double>((r + 1) * group) * width_ << ") "
       << std::string(bar_len, '#') << ' ' << sum << '\n';
  }
  return os.str();
}

}  // namespace tart::stats
