#include "stats/regression.h"

#include <cmath>

namespace tart::stats {

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  fit.n = n;
  if (n < 2) return fit;

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double sse = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = y[i] - fit.predict(x[i]);
      sse += r * r;
    }
    fit.r_squared = 1.0 - sse / syy;
  }
  return fit;
}

LinearFit fit_through_origin(const std::vector<double>& x,
                             const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  fit.n = n;
  if (n == 0) return fit;

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  if (sxx <= 0.0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = 0.0;
  if (syy > 0.0) {
    const double sse = syy - 2 * fit.slope * sxy + fit.slope * fit.slope * sxx;
    fit.r_squared = 1.0 - sse / syy;
  }
  return fit;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double skewness(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  if (n < 3) return 0.0;
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double m2 = 0, m3 = 0;
  for (const double x : xs) {
    const double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

std::vector<double> fit_multivariate(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& y) {
  if (rows.empty() || rows.size() != y.size()) return {};
  const std::size_t k = rows.front().size();
  if (k == 0) return {};

  // Normal equations: (XᵀX) β = Xᵀy.
  std::vector<std::vector<double>> a(k, std::vector<double>(k + 1, 0.0));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != k) return {};
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) a[i][j] += row[i] * row[j];
      a[i][k] += row[i] * y[r];
    }
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12) return {};
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= k; ++c) a[r][c] -= f * a[col][c];
    }
  }

  std::vector<double> beta(k);
  for (std::size_t i = 0; i < k; ++i) beta[i] = a[i][k] / a[i][i];
  return beta;
}

}  // namespace tart::stats
