// Online estimator calibration.
//
// "Before execution, a rough estimate of the beta_i's is made based upon
// known costs per instruction. Later, after some execution samples are
// taken, measuring xi_1, xi_2, and t, a linear regression is taken to fit
// the coefficients" (§II.H). The calibrator accumulates (block counters,
// measured nanoseconds) samples during live execution and, once enough
// samples have arrived and the fitted coefficients drift beyond a
// threshold from the active ones, proposes a recalibration.
//
// Applying a proposal is a *determinism fault* (§II.G.4): the decision
// depends on measured (non-deterministic) times, so the switch must be
// synchronously logged with its effective virtual time before any output
// depends on it — see EstimatorManager.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "estimator/counters.h"
#include "stats/regression.h"

namespace tart::estimator {

struct CalibratorConfig {
  /// Samples required before the first proposal (paper: "after several
  /// hundreds of messages").
  std::size_t min_samples = 200;
  /// Relative drift of any coefficient needed to propose a recalibration.
  double drift_threshold = 0.05;
  /// Refit cadence: consider a proposal every this many samples after the
  /// minimum is reached.
  std::size_t refit_interval = 100;
  /// Include an intercept term beta0 in the fit.
  bool fit_intercept = false;
};

class Calibrator {
 public:
  explicit Calibrator(CalibratorConfig config) : config_(config) {}

  /// Records one completed handler invocation: its block counters and the
  /// measured wall-clock duration in ticks (nanoseconds).
  void add_sample(const BlockCounters& counters, double measured_ticks);

  /// If the data now supports coefficients meaningfully different from
  /// `active`, returns the proposed replacement [beta0, beta1, ...].
  [[nodiscard]] std::optional<std::vector<double>> propose(
      const std::vector<double>& active);

  [[nodiscard]] std::size_t sample_count() const { return xs_.size(); }

  void reset();

 private:
  CalibratorConfig config_;
  std::vector<std::vector<double>> xs_;  // counter rows
  std::vector<double> ys_;               // measured ticks
  std::size_t last_fit_size_ = 0;
  std::size_t num_blocks_ = 0;
};

}  // namespace tart::estimator
