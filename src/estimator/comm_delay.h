// Communication-delay estimators.
//
// "Estimators are also required for communication delay between components
// in remote machines. ... a crude estimate can be just a constant based
// upon expected communication delay. Alternatively, it can be a function
// based upon expected queuing delay. To be deterministic, it cannot depend
// upon non-deterministic state such as the current queue size. It must
// instead use deterministic factors that correlate with queue size, such as
// the number of messages sent within a recent number of virtual ticks of
// time" (§II.G.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>

#include "common/virtual_time.h"
#include "serde/archive.h"

namespace tart::estimator {

class CommDelayEstimator {
 public:
  virtual ~CommDelayEstimator() = default;

  /// Estimated transmission delay for a message leaving the sender at
  /// virtual time `send_vt`. Deterministic in (send_vt, prior sends).
  [[nodiscard]] virtual TickDuration delay(VirtualTime send_vt) = 0;

  /// Lower bound on any future delay (for silence horizons).
  [[nodiscard]] virtual TickDuration min_delay() const = 0;

  /// Serializes internal history (checkpoint support). Stateless estimators
  /// write nothing. Deterministic resumption after failover requires the
  /// restored estimator to see exactly the history the checkpoint saw.
  virtual void capture(serde::Writer& w) const { (void)w; }
  virtual void restore(serde::Reader& r) { (void)r; }
};

/// Same-JVM / same-engine wires: negligible (but nonzero: a message must
/// arrive strictly after it is sent).
class LocalDelayEstimator final : public CommDelayEstimator {
 public:
  [[nodiscard]] TickDuration delay(VirtualTime) override {
    return TickDuration(1);
  }
  [[nodiscard]] TickDuration min_delay() const override {
    return TickDuration(1);
  }
};

/// Crude remote estimate: a constant expected delay.
class ConstantDelayEstimator final : public CommDelayEstimator {
 public:
  explicit ConstantDelayEstimator(TickDuration delay)
      : delay_(std::max(delay, TickDuration(1))) {}

  [[nodiscard]] TickDuration delay(VirtualTime) override { return delay_; }
  [[nodiscard]] TickDuration min_delay() const override { return delay_; }

 private:
  TickDuration delay_;
};

/// Queue-aware remote estimate using only deterministic history: delay =
/// base + per_message * (number of messages this sender put on the wire in
/// the last `window` virtual ticks). The recent-send count is a
/// deterministic correlate of queue depth.
class RateBasedDelayEstimator final : public CommDelayEstimator {
 public:
  RateBasedDelayEstimator(TickDuration base, TickDuration per_message,
                          TickDuration window)
      : base_(std::max(base, TickDuration(1))),
        per_message_(per_message),
        window_(window) {}

  [[nodiscard]] TickDuration delay(VirtualTime send_vt) override {
    // Evict sends older than the window.
    while (!recent_.empty() && recent_.front() + window_ < send_vt)
      recent_.pop_front();
    const auto backlog = static_cast<std::int64_t>(recent_.size());
    recent_.push_back(send_vt);
    return base_ + per_message_ * backlog;
  }

  [[nodiscard]] TickDuration min_delay() const override { return base_; }

  void capture(serde::Writer& w) const override {
    w.write_varint(recent_.size());
    for (const VirtualTime t : recent_) w.write_vt(t);
  }
  void restore(serde::Reader& r) override {
    recent_.clear();
    const auto n = r.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) recent_.push_back(r.read_vt());
  }

 private:
  TickDuration base_;
  TickDuration per_message_;
  TickDuration window_;
  std::deque<VirtualTime> recent_;  // send vts within the window
};

}  // namespace tart::estimator
