#include "estimator/calibrator.h"

#include <cmath>

namespace tart::estimator {

void Calibrator::add_sample(const BlockCounters& counters,
                            double measured_ticks) {
  num_blocks_ = std::max(num_blocks_, counters.num_blocks());
  std::vector<double> row;
  row.reserve(counters.num_blocks());
  for (const auto c : counters.values())
    row.push_back(static_cast<double>(c));
  xs_.push_back(std::move(row));
  ys_.push_back(measured_ticks);
}

std::optional<std::vector<double>> Calibrator::propose(
    const std::vector<double>& active) {
  if (xs_.size() < config_.min_samples) return std::nullopt;
  if (xs_.size() < last_fit_size_ + config_.refit_interval &&
      last_fit_size_ != 0)
    return std::nullopt;
  last_fit_size_ = xs_.size();

  // Build design matrix rows [1?, xi_1, ..., xi_k], padding short rows.
  std::vector<std::vector<double>> rows;
  rows.reserve(xs_.size());
  for (const auto& x : xs_) {
    std::vector<double> row;
    row.reserve(num_blocks_ + (config_.fit_intercept ? 1 : 0));
    if (config_.fit_intercept) row.push_back(1.0);
    for (std::size_t i = 0; i < num_blocks_; ++i)
      row.push_back(i < x.size() ? x[i] : 0.0);
    rows.push_back(std::move(row));
  }

  const std::vector<double> beta = stats::fit_multivariate(rows, ys_);
  if (beta.empty()) return std::nullopt;

  // Normalize to [beta0, beta1, ...] layout.
  std::vector<double> proposed;
  proposed.reserve(num_blocks_ + 1);
  if (config_.fit_intercept) {
    proposed = beta;
  } else {
    proposed.push_back(0.0);
    proposed.insert(proposed.end(), beta.begin(), beta.end());
  }

  // Drift check against the active coefficients.
  bool drifted = proposed.size() != active.size();
  if (!drifted) {
    for (std::size_t i = 0; i < proposed.size(); ++i) {
      const double denom = std::max(std::abs(active[i]), 1.0);
      if (std::abs(proposed[i] - active[i]) / denom >
          config_.drift_threshold) {
        drifted = true;
        break;
      }
    }
  }
  if (!drifted) return std::nullopt;
  return proposed;
}

void Calibrator::reset() {
  xs_.clear();
  ys_.clear();
  last_fit_size_ = 0;
}

}  // namespace tart::estimator
