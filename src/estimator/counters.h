// Basic-block execution counters.
//
// The paper's estimators assume "computation time is a linear function of
// how many times each basic block executes" (§II.H). In Java the counters
// were injected by bytecode transformation; here the component handler
// increments them explicitly through its Context (manual augmentation).
// Counters are part of the deterministic computation: they depend only on
// the input message and component state.
#pragma once

#include <cstdint>
#include <vector>

namespace tart::estimator {

class BlockCounters {
 public:
  BlockCounters() = default;
  explicit BlockCounters(std::size_t num_blocks) : counts_(num_blocks, 0) {}

  /// Records `n` executions of basic block `block`. Grows on demand so a
  /// handler can use sparse block ids.
  void count(std::size_t block, std::uint64_t n = 1) {
    if (block >= counts_.size()) counts_.resize(block + 1, 0);
    counts_[block] += n;
  }

  [[nodiscard]] std::uint64_t get(std::size_t block) const {
    return block < counts_.size() ? counts_[block] : 0;
  }

  [[nodiscard]] std::size_t num_blocks() const { return counts_.size(); }
  [[nodiscard]] const std::vector<std::uint64_t>& values() const {
    return counts_;
  }

  void reset() { counts_.assign(counts_.size(), 0); }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace tart::estimator
