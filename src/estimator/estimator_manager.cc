#include "estimator/estimator_manager.h"

#include <cassert>

namespace tart::estimator {

EstimatorManager::EstimatorManager(ComponentId component,
                                   std::unique_ptr<ComputeEstimator> initial,
                                   log::DeterminismFaultLog* fault_log,
                                   CalibratorConfig calibrator_config)
    : component_(component),
      fault_log_(fault_log),
      calibrator_(calibrator_config) {
  assert(initial != nullptr);
  versions_.push_back(Version{0, VirtualTime::zero(), std::move(initial)});
  // If the fault log already has records for this component (we are a
  // recovering replica), re-apply them so virtual-time computation matches
  // the original run exactly.
  if (fault_log_ != nullptr) {
    for (const auto& rec : fault_log_->records_after(component_, 0)) {
      versions_.push_back(Version{rec.version, rec.effective_vt,
                                  std::make_unique<LinearEstimator>(
                                      rec.coefficients)});
    }
  }
}

const EstimatorManager::Version& EstimatorManager::active_at(
    VirtualTime vt) const {
  const Version* active = &versions_.front();
  for (const auto& v : versions_) {
    if (v.effective_vt <= vt) active = &v;
  }
  return *active;
}

TickDuration EstimatorManager::estimate(const BlockCounters& counters,
                                        VirtualTime vt) const {
  return active_at(vt).estimator->estimate(counters);
}

TickDuration EstimatorManager::min_estimate(VirtualTime vt) const {
  return active_at(vt).estimator->min_estimate();
}

TickDuration EstimatorManager::future_min_estimate(VirtualTime vt) const {
  TickDuration lo = active_at(vt).estimator->min_estimate();
  for (const auto& v : versions_) {
    if (v.effective_vt > vt)
      lo = std::min(lo, v.estimator->min_estimate());
  }
  return lo;
}

std::optional<log::FaultRecord> EstimatorManager::add_sample(
    const BlockCounters& counters, double measured_ticks,
    VirtualTime current_vt) {
  if (fault_log_ == nullptr) return std::nullopt;

  calibrator_.add_sample(counters, measured_ticks);

  // Never recalibrate while a logged fault is still pending (its
  // effective_vt lies ahead); replay determinism requires the log to be the
  // single authority on switch points.
  if (versions_.back().effective_vt > current_vt) return std::nullopt;

  auto proposal = calibrator_.propose(
      active_at(current_vt).estimator->coefficients());
  if (!proposal) return std::nullopt;

  log::FaultRecord rec;
  rec.component = component_;
  rec.version = versions_.back().version + 1;
  rec.effective_vt = current_vt + kEffectiveGuard;
  rec.coefficients = *proposal;
  // Synchronous log append *before* installing — the switch must be
  // durable before any virtual time can be computed under it.
  fault_log_->append(rec);
  versions_.push_back(Version{rec.version, rec.effective_vt,
                              std::make_unique<LinearEstimator>(*proposal)});
  return rec;
}

void EstimatorManager::restore_to_version(std::uint64_t version) {
  // Drop everything after `version`, then re-apply from the log (the log
  // may contain faults the checkpoint predates).
  while (versions_.size() > 1 && versions_.back().version > version)
    versions_.pop_back();
  assert(versions_.back().version == version);
  if (fault_log_ != nullptr) {
    for (const auto& rec : fault_log_->records_after(component_, version)) {
      versions_.push_back(Version{rec.version, rec.effective_vt,
                                  std::make_unique<LinearEstimator>(
                                      rec.coefficients)});
    }
  }
  calibrator_.reset();
}

std::uint64_t EstimatorManager::version_at(VirtualTime vt) const {
  return active_at(vt).version;
}

std::uint64_t EstimatorManager::latest_version() const {
  return versions_.back().version;
}

}  // namespace tart::estimator
