// Versioned estimator with replay-safe recalibration.
//
// Coordinates three concerns per component handler:
//   1. Evaluation: estimate the virtual compute duration for an invocation
//      under the estimator version in effect at the invocation's virtual
//      time (replay reaching an effective_vt switches versions exactly
//      there, §II.G.4).
//   2. Calibration: feed measured durations to the Calibrator; when it
//      proposes new coefficients, raise a determinism fault — log the
//      switch synchronously, then schedule it at a future effective virtual
//      time (strictly after every virtual time already computed, so no
//      already-produced output could have depended on it).
//   3. Recovery: after a checkpoint restore, re-install the version active
//      at the checkpoint and re-apply logged faults past it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "estimator/calibrator.h"
#include "estimator/estimator.h"
#include "log/fault_log.h"

namespace tart::estimator {

class EstimatorManager {
 public:
  /// `fault_log` may be null, in which case recalibration is disabled (the
  /// initial estimator stays active forever).
  EstimatorManager(ComponentId component,
                   std::unique_ptr<ComputeEstimator> initial,
                   log::DeterminismFaultLog* fault_log,
                   CalibratorConfig calibrator_config = {});

  /// Estimated compute duration for an invocation dequeued at `vt`, under
  /// the version active at `vt`.
  [[nodiscard]] TickDuration estimate(const BlockCounters& counters,
                                      VirtualTime vt) const;

  /// Shortest-possible-processing bound under the version active at `vt`.
  [[nodiscard]] TickDuration min_estimate(VirtualTime vt) const;

  /// Lower bound over *every* version that could be active at any time
  /// >= `vt` (the active one and all pending installs). Silence horizons
  /// must use this — a pending recalibration could shrink charges, and a
  /// horizon promised under the old, larger minimum would be unsound.
  [[nodiscard]] TickDuration future_min_estimate(VirtualTime vt) const;

  /// Feeds a measured sample (invocation at `vt`, measured wall duration in
  /// ticks). May raise a determinism fault: the new coefficients are logged
  /// with effective_vt strictly greater than `current_vt` and installed as
  /// a pending version. Returns the logged record if a fault was raised.
  std::optional<log::FaultRecord> add_sample(const BlockCounters& counters,
                                             double measured_ticks,
                                             VirtualTime current_vt);

  /// Re-installs checkpointed version `version` and re-applies every logged
  /// fault past it (replay path). All live-sampled state is discarded.
  void restore_to_version(std::uint64_t version);

  /// Version in effect at `vt` (what checkpoints record).
  [[nodiscard]] std::uint64_t version_at(VirtualTime vt) const;

  [[nodiscard]] std::uint64_t latest_version() const;

  /// Guard distance between "now" and a new version's effective_vt. Public
  /// so tests can reason about the exact switch point.
  static constexpr TickDuration kEffectiveGuard = TickDuration(1);

 private:
  struct Version {
    std::uint64_t version;
    VirtualTime effective_vt;  ///< active for vt >= effective_vt
    std::unique_ptr<ComputeEstimator> estimator;
  };

  [[nodiscard]] const Version& active_at(VirtualTime vt) const;

  ComponentId component_;
  log::DeterminismFaultLog* fault_log_;
  Calibrator calibrator_;
  std::vector<Version> versions_;  // ascending effective_vt
};

}  // namespace tart::estimator
