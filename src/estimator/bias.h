// Hyper-aggressive silence ("bias algorithm").
//
// "It is actually better for the virtual time estimates not to exactly
// match real-time, but rather for the process that is slower on the average
// to eagerly promise more silence ticks and delay the next data tick to be
// after that range of silence ticks" (§II.G.1, after Aguilera & Strom's
// deterministic merge). The slow sender rounds its output virtual times up
// to the end of eagerly-promised silence windows of width `bias`, letting
// the fast sender's messages through without pessimism delay.
//
// Unlike lazy/curiosity/aggressive propagation — which only change how
// silence is *communicated* — the bias changes which ticks may carry data,
// i.e. it is part of the estimator; enabling or re-tuning it on a live
// component is a determinism fault (§II.G.4).
#pragma once

#include <algorithm>

#include "common/virtual_time.h"

namespace tart::estimator {

class BiasPolicy {
 public:
  /// `bias` == 0 disables the policy (identity on virtual times).
  explicit BiasPolicy(TickDuration bias = TickDuration(0)) : bias_(bias) {}

  [[nodiscard]] bool enabled() const { return bias_ > TickDuration(0); }
  [[nodiscard]] TickDuration bias() const { return bias_; }

  /// Rounds a proposed output virtual time up to the next boundary of the
  /// eagerly-promised silence grid: data may only occupy ticks that are
  /// multiples of (bias+1) boundaries beyond the promise. Deterministic.
  [[nodiscard]] VirtualTime adjust(VirtualTime proposed) const {
    if (!enabled()) return proposed;
    const std::int64_t window = bias_.ticks() + 1;
    const std::int64_t t = proposed.ticks();
    const std::int64_t rounded = ((t + window - 1) / window) * window;
    return VirtualTime(rounded);
  }

  /// Silence the sender may promise once it has advanced to `current`: the
  /// whole window up to the next data-eligible boundary minus one.
  [[nodiscard]] VirtualTime eager_promise(VirtualTime current) const {
    if (!enabled()) return current;
    return adjust(current.next()).prev();
  }

 private:
  TickDuration bias_;
};

}  // namespace tart::estimator
