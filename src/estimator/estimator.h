// Compute-time estimators.
//
// An estimator is a *deterministic* function from the handler's basic-block
// counters to an estimated computation duration in virtual ticks. Any
// estimate is correct (virtual times only need to be causally monotone);
// accuracy matters purely for performance — the closer estimated virtual
// arrival times track real arrival times, the less pessimism delay
// receivers suffer (§II.E, §II.G.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/virtual_time.h"
#include "estimator/counters.h"
#include "serde/archive.h"

namespace tart::estimator {

class ComputeEstimator {
 public:
  virtual ~ComputeEstimator() = default;

  /// Estimated computation duration for a handler invocation with the given
  /// block counts. Must be >= 1 tick (causally later events need later
  /// virtual times).
  [[nodiscard]] virtual TickDuration estimate(
      const BlockCounters& counters) const = 0;

  /// The smallest duration any invocation could take — the "computation
  /// time of the shortest possible processing" used when computing idle
  /// silence horizons for curiosity replies (§II.H).
  [[nodiscard]] virtual TickDuration min_estimate() const = 0;

  /// Coefficient vector for logging/serialization: [beta0, beta1, ...].
  [[nodiscard]] virtual std::vector<double> coefficients() const = 0;

  [[nodiscard]] virtual std::unique_ptr<ComputeEstimator> clone() const = 0;
};

/// The "dumb" estimator: a fixed average computation time per message,
/// ignoring the input entirely (§II.G.1, and the §III.A experiment where a
/// constant 600 us estimate drives overhead to ~13% under high variability).
class ConstantEstimator final : public ComputeEstimator {
 public:
  explicit ConstantEstimator(TickDuration duration) : duration_(duration) {}

  [[nodiscard]] TickDuration estimate(const BlockCounters&) const override {
    return std::max(duration_, TickDuration(1));
  }
  [[nodiscard]] TickDuration min_estimate() const override {
    return std::max(duration_, TickDuration(1));
  }
  [[nodiscard]] std::vector<double> coefficients() const override {
    return {static_cast<double>(duration_.ticks())};
  }
  [[nodiscard]] std::unique_ptr<ComputeEstimator> clone() const override {
    return std::make_unique<ConstantEstimator>(duration_);
  }

 private:
  TickDuration duration_;
};

/// Linear block-count model: tau = beta0 + sum_i beta_i * xi_i (Equation 1).
/// For Code Body 1 the calibrated instance is tau = 61827 * xi_1
/// (Equation 2).
class LinearEstimator final : public ComputeEstimator {
 public:
  /// `betas[0]` is the intercept beta0 (ticks); `betas[i]` the per-execution
  /// cost of block i-1.
  explicit LinearEstimator(std::vector<double> betas)
      : betas_(std::move(betas)) {
    if (betas_.empty()) betas_.push_back(0.0);
  }

  [[nodiscard]] TickDuration estimate(
      const BlockCounters& counters) const override {
    double ticks = betas_[0];
    for (std::size_t i = 1; i < betas_.size(); ++i)
      ticks += betas_[i] * static_cast<double>(counters.get(i - 1));
    return TickDuration(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(ticks)));
  }

  /// Minimum: intercept plus one execution of each positively-weighted
  /// block is NOT guaranteed — the shortest run may skip blocks entirely.
  /// We use intercept + the smallest single-block cost as a conservative
  /// lower bound, floored at 1 tick.
  [[nodiscard]] TickDuration min_estimate() const override {
    double ticks = betas_[0];
    if (betas_.size() > 1) {
      double smallest = betas_[1];
      for (std::size_t i = 2; i < betas_.size(); ++i)
        smallest = std::min(smallest, betas_[i]);
      ticks += std::max(0.0, smallest);
    }
    return TickDuration(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(ticks)));
  }

  [[nodiscard]] std::vector<double> coefficients() const override {
    return betas_;
  }
  [[nodiscard]] std::unique_ptr<ComputeEstimator> clone() const override {
    return std::make_unique<LinearEstimator>(betas_);
  }

 private:
  std::vector<double> betas_;
};

/// Builds the estimator form used throughout the paper's examples: no
/// intercept, a single per-iteration coefficient on block 0.
[[nodiscard]] inline std::unique_ptr<LinearEstimator> per_iteration_estimator(
    double ticks_per_iteration) {
  return std::make_unique<LinearEstimator>(
      std::vector<double>{0.0, ticks_per_iteration});
}

}  // namespace tart::estimator
