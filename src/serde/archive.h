// Byte-stream serialization used for checkpoints and cross-engine framing.
//
// Checkpoint state captured from components (per paper §II.F.2: "a method is
// provided to gather all full checkpoint state and all incremental changes
// and to return them to the scheduler, which then serializes them and sends
// them to the partner") is encoded with these archives. The format is a
// simple deterministic little-endian / varint encoding: determinism of the
// byte stream lets tests compare checkpoints for bit-identity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/virtual_time.h"
#include "obs/prof.h"

namespace tart::serde {

/// Thrown when a reader runs past the end of its buffer or sees a malformed
/// encoding — indicates a corrupted or truncated checkpoint.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only encoder.
class Writer {
 public:
  Writer() = default;
  Writer(Writer&& other) noexcept
      : buf_(std::move(other.buf_)), accounted_(other.accounted_) {
    other.accounted_ = true;
  }
  Writer& operator=(Writer&& other) noexcept {
    buf_ = std::move(other.buf_);
    accounted_ = other.accounted_;
    other.accounted_ = true;
    return *this;
  }
  // Each finished archive is one wire-path allocation event; counted once
  // per buffer (at take() or destruction, not per write call) so the
  // encoders themselves stay branch-free.
  ~Writer() { account(); }

  void write_u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }

  void write_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) write_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void write_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) write_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// LEB128-style varint; compact for the small counts that dominate
  /// checkpoint payloads.
  void write_varint(std::uint64_t v) {
    while (v >= 0x80) {
      write_u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    write_u8(static_cast<std::uint8_t>(v));
  }

  /// Zig-zag signed varint.
  void write_svarint(std::int64_t v) {
    write_varint((static_cast<std::uint64_t>(v) << 1) ^
                 static_cast<std::uint64_t>(v >> 63));
  }

  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  void write_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    write_u64(bits);
  }

  void write_string(std::string_view s) {
    write_varint(s.size());
    const auto* data = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), data, data + s.size());
  }

  void write_bytes(const std::vector<std::byte>& bytes) {
    write_varint(bytes.size());
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Appends raw bytes with no length prefix (caller-framed data).
  void write_raw(const std::byte* data, std::size_t size) {
    buf_.insert(buf_.end(), data, data + size);
  }

  void write_vt(VirtualTime t) { write_svarint(t.ticks()); }

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() {
    account();
    accounted_ = false;  // a reused writer accounts its next buffer too
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void account() {
    if (accounted_ || buf_.empty()) return;
    accounted_ = true;
    TART_PROF_BYTES("serde.archive", buf_.size());
  }

  std::vector<std::byte> buf_;
  bool accounted_ = false;
};

/// Sequential decoder over a borrowed buffer.
class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  Reader(const std::byte* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t read_u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint32_t read_u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{read_u8()} << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t read_u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{read_u8()} << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t read_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw DecodeError("varint too long");
      const std::uint8_t b = read_u8();
      v |= std::uint64_t{static_cast<std::uint8_t>(b & 0x7F)} << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }

  [[nodiscard]] std::int64_t read_svarint() {
    const std::uint64_t z = read_varint();
    return static_cast<std::int64_t>(z >> 1) ^ -static_cast<std::int64_t>(z & 1);
  }

  [[nodiscard]] bool read_bool() { return read_u8() != 0; }

  [[nodiscard]] double read_double() {
    const std::uint64_t bits = read_u64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string read_string() {
    const auto n = read_varint();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::vector<std::byte> read_bytes() {
    const auto n = read_varint();
    require(n);
    std::vector<std::byte> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] VirtualTime read_vt() { return VirtualTime(read_svarint()); }

  [[nodiscard]] bool at_end() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  void require(std::uint64_t n) const {
    if (pos_ + n > size_) throw DecodeError("buffer underrun");
  }
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Generic encode/decode for common value types, used by checkpointed
// containers. Extend by overloading encode_value/decode_value.

inline void encode_value(Writer& w, std::int32_t v) { w.write_svarint(v); }
inline void encode_value(Writer& w, std::int64_t v) { w.write_svarint(v); }
inline void encode_value(Writer& w, std::uint32_t v) { w.write_varint(v); }
inline void encode_value(Writer& w, std::uint64_t v) { w.write_varint(v); }
inline void encode_value(Writer& w, bool v) { w.write_bool(v); }
inline void encode_value(Writer& w, double v) { w.write_double(v); }
inline void encode_value(Writer& w, const std::string& v) { w.write_string(v); }
inline void encode_value(Writer& w, VirtualTime v) { w.write_vt(v); }

template <typename T>
void decode_value(Reader& r, T& out);

inline void decode_value(Reader& r, std::int32_t& v) {
  v = static_cast<std::int32_t>(r.read_svarint());
}
inline void decode_value(Reader& r, std::int64_t& v) { v = r.read_svarint(); }
inline void decode_value(Reader& r, std::uint32_t& v) {
  v = static_cast<std::uint32_t>(r.read_varint());
}
inline void decode_value(Reader& r, std::uint64_t& v) { v = r.read_varint(); }
inline void decode_value(Reader& r, bool& v) { v = r.read_bool(); }
inline void decode_value(Reader& r, double& v) { v = r.read_double(); }
inline void decode_value(Reader& r, std::string& v) { v = r.read_string(); }
inline void decode_value(Reader& r, VirtualTime& v) { v = r.read_vt(); }

template <typename T>
void encode_value(Writer& w, const std::vector<T>& v) {
  w.write_varint(v.size());
  for (const auto& e : v) encode_value(w, e);
}

template <typename T>
void decode_value(Reader& r, std::vector<T>& v) {
  const auto n = r.read_varint();
  v.clear();
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    T e{};
    decode_value(r, e);
    v.push_back(std::move(e));
  }
}

template <typename K, typename V>
void encode_value(Writer& w, const std::map<K, V>& m) {
  w.write_varint(m.size());
  for (const auto& [k, v] : m) {
    encode_value(w, k);
    encode_value(w, v);
  }
}

template <typename K, typename V>
void decode_value(Reader& r, std::map<K, V>& m) {
  const auto n = r.read_varint();
  m.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    K k{};
    V v{};
    decode_value(r, k);
    decode_value(r, v);
    m.emplace(std::move(k), std::move(v));
  }
}

/// FNV-1a content hash, for cheap bit-identity assertions on checkpoints.
[[nodiscard]] std::uint64_t fingerprint(const std::vector<std::byte>& bytes);

}  // namespace tart::serde
