#include "serde/archive.h"

namespace tart::serde {

std::uint64_t fingerprint(const std::vector<std::byte>& bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace tart::serde
