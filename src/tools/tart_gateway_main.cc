// tart-gateway: single-process HTTP ingress node.
//
//   tart-gateway <topology> [param=value ...] [--http=ADDR|PORT]
//                [--log-dir=DIR] [--trace=FILE] [--no-group-commit]
//                [--verbose]
//
// Hosts a catalog topology (net/topologies.h: wordcount, chain, ...)
// entirely in this process and exposes it ONLY through the HTTP gateway
// (docs/GATEWAY.md): POST /inject/<input> to feed it, GET
// /outputs/<output> to drain it, POST /shutdown to stop. With --log-dir,
// every acked injection is durable before the 200 leaves the socket, and
// restarting over the same directory replays the run (log-before-ack).
//
// The multi-partition variant of the same gateway is `tart-node --http`;
// this binary is the zero-config way to put an HTTP face on a topology.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "common/logging.h"
#include "core/runtime.h"
#include "gateway/gateway.h"
#include "net/topologies.h"

namespace {

tart::gateway::Gateway* g_gateway = nullptr;
std::atomic<bool> g_shutdown{false};

void on_signal(int) { g_shutdown.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: tart-gateway <topology> [param=value ...] "
               "[--http=ADDR|PORT] [--log-dir=DIR] [--trace=FILE] "
               "[--no-group-commit] [--verbose]\n");
  return 2;
}

std::string http_addr_of(const std::string& arg) {
  return arg.find(':') == std::string::npos ? "127.0.0.1:" + arg : arg;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string topology_name = argv[1];
  std::map<std::string, std::string> params;
  tart::gateway::Gateway::Options gw_options;
  tart::core::RuntimeConfig config;
  std::string trace_path;
  bool verbose = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--http=", 0) == 0) {
      gw_options.listen = http_addr_of(arg.substr(std::strlen("--http=")));
    } else if (arg.rfind("--log-dir=", 0) == 0) {
      config.log_dir = arg.substr(std::strlen("--log-dir="));
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--no-group-commit") {
      gw_options.group_commit = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tart-gateway: unknown argument '%s'\n",
                   arg.c_str());
      return usage();
    } else if (const auto eq = arg.find('='); eq != std::string::npos) {
      params[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      std::fprintf(stderr, "tart-gateway: bad param '%s' (want key=value)\n",
                   arg.c_str());
      return usage();
    }
  }
  tart::set_log_level(verbose ? tart::LogLevel::kInfo
                              : tart::LogLevel::kError);

  try {
    const tart::net::BuiltTopology built =
        tart::net::build_topology(topology_name, params);
    // Single-process: every component on one engine, everything local.
    std::map<tart::ComponentId, tart::EngineId> placement;
    for (const auto& [name, id] : built.components)
      placement[id] = tart::EngineId(0);
    if (!trace_path.empty()) {
      config.trace.enabled = true;
      config.trace.path = trace_path;
    }
    tart::core::Runtime runtime(built.topology, placement, config);
    runtime.start();

    tart::gateway::Gateway gateway(
        &runtime, gw_options, built.inputs, built.outputs, nullptr,
        [] { g_shutdown.store(true); });
    g_gateway = &gateway;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::fprintf(stderr, "tart-gateway: '%s' up (http :%u)\n",
                 topology_name.c_str(), gateway.port());

    while (!g_shutdown.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    g_gateway = nullptr;
    gateway.shutdown();
    runtime.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tart-gateway: %s\n", e.what());
    return 1;
  }
}
