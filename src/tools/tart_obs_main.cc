// tart-obs: cluster-wide observability console.
//
//   tart-obs [--once] [--interval-ms=N] [--series=FILE] [--strict]
//            [--listen=ADDR|PORT] [<control-addr>...]
//   tart-obs top [--once] [--interval-ms=N] <control-addr>...
//   tart-obs --scrape <http-addr>...
//
// `top` mode is the hot-path profiler's live view (src/obs/prof.h): one
// line per node with event-loop busy %, loop-lag p99, and profiled thread
// count, then the top spans by self-time aggregated across the fleet —
// where wall-clock time actually goes, refreshed in place. The data rides
// the same kGetObs sample shipment as the main console (the registry sweep
// harvests tart_prof_* cells), so no extra wire protocol is involved.
//
// Control mode (default) polls every node's control port for its merged
// MetricsSnapshot, its telemetry registry samples (labelled counters and
// histograms), and its silence wavefront, then prints one aggregated
// per-component table: messages processed, pessimism events, stall
// percentiles (all input wires of the component merged), curiosity probes,
// and the estimator-error median. Components currently *held* by the
// pessimistic merge are listed below the table with the wires blocking
// them — the operator's answer to "why is nothing happening?". A
// `placement:` section follows when the nodes run a placement plane:
// component -> owning node, the placement epoch, and any live migration
// in flight (docs/PLACEMENT.md).
//
// Counters SUM across nodes, gauges take the max (high-water semantics),
// and histograms merge bucketwise (obs::merge_samples), so the table reads
// the same whether the deployment is one process or ten.
//
// An unreachable node is a per-round `down` row, not a fatal error: a
// console must keep rendering the nodes that ARE up while one restarts.
// Exit status reflects down nodes only under --strict (for scripts).
//
// --listen=ADDR accepts push-based remote writes (tart-node --push): nodes
// that cannot be dialed ship kObsPush envelopes instead, and their samples
// enter the very same SUM/MAX/bucketwise merge as polled nodes. Polling
// and pushing can be mixed freely; a node heard from both ways would be
// double-counted, so point --push at nodes the console does not poll.
//
// --series=FILE appends one JSONL line per poll round (same shape as the
// node-side --sample file) for offline plotting.
//
// --scrape mode drives the HTTP gateway instead: GET /metrics must lint
// clean against the Prometheus conventions (obs::lint_exposition) and
// contain the per-wire stall-attribution family; GET /status must parse.
// scripts/net_soak.sh runs this against live nodes mid-soak. Exit is
// nonzero on any failure, so it doubles as a health gate.
#include <poll.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gateway/http_client.h"
#include "net/control.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "obs/sampler.h"

namespace {

using tart::core::ComponentStatus;
using tart::core::MetricsSnapshot;
using tart::core::StatusReport;
using tart::core::WireStatus;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: tart-obs [--once] [--interval-ms=N] [--series=FILE] "
               "[--strict] [--listen=ADDR|PORT] [<control-addr>...]\n"
               "       tart-obs top [--once] [--interval-ms=N] "
               "<control-addr>...\n"
               "       tart-obs --scrape <http-addr>...\n");
  return 2;
}

/// Collector side of push-based remote write: accepts kObsPush envelopes
/// from `tart-node --push` and keeps the latest shipment per node. Threads
/// are detached and the server is leaked — it lives exactly as long as the
/// process, like the signal handlers.
class PushServer {
 public:
  struct Shipment {
    std::chrono::steady_clock::time_point received;
    MetricsSnapshot metrics;
    std::vector<tart::obs::Sample> samples;
  };

  bool start(const std::string& spec) {
    const std::string full =
        spec.find(':') == std::string::npos ? "0.0.0.0:" + spec : spec;
    const auto addr = tart::net::SockAddr::parse(full);
    if (!addr) {
      std::fprintf(stderr, "tart-obs: bad --listen address '%s'\n",
                   spec.c_str());
      return false;
    }
    std::string err;
    listener_ = tart::net::listen_tcp(*addr, &err);
    if (!listener_.valid()) {
      std::fprintf(stderr, "tart-obs: listen on %s failed: %s\n",
                   full.c_str(), err.c_str());
      return false;
    }
    port_ = tart::net::local_port(listener_.get());
    std::thread([this] { accept_loop(); }).detach();
    return true;
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Latest shipment per node, dropping nodes silent longer than max_age.
  [[nodiscard]] std::map<std::string, Shipment> fresh(
      std::chrono::milliseconds max_age) const {
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lk(mu_);
    std::map<std::string, Shipment> out;
    for (const auto& [node, shipment] : by_node_)
      if (now - shipment.received <= max_age) out.emplace(node, shipment);
    return out;
  }

 private:
  void accept_loop() {
    while (!g_stop.load()) {
      pollfd p{listener_.get(), POLLIN, 0};
      if (::poll(&p, 1, 200) <= 0) continue;
      tart::net::Fd fd = tart::net::accept_tcp(listener_.get());
      if (!fd.valid()) continue;
      std::thread([this, shared = std::make_shared<tart::net::Fd>(
                             std::move(fd))]() mutable {
        serve(std::move(*shared));
      }).detach();
    }
  }

  static void write_all(int fd, const std::vector<std::byte>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd p{fd, POLLOUT, 0};
        (void)::poll(&p, 1, 1000);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      throw tart::net::NetError("push: write failed");
    }
  }

  void serve(tart::net::Fd fd) {
    tart::net::StreamDecoder decoder;
    try {
      while (!g_stop.load()) {
        while (auto msg = decoder.next()) {
          if (msg->type != tart::net::NetMsgType::kObsPush) {
            write_all(fd.get(),
                      tart::net::encode_message(
                          tart::net::NetMsgType::kError,
                          tart::net::encode_string_body(
                              "expected obs-push")));
            continue;
          }
          auto body = tart::net::ObsPushBody::decode(msg->payload);
          {
            const std::lock_guard<std::mutex> lk(mu_);
            Shipment& s = by_node_[body.node];
            s.received = std::chrono::steady_clock::now();
            s.metrics = body.metrics;
            s.samples = std::move(body.samples);
          }
          write_all(fd.get(), tart::net::encode_message(
                                  tart::net::NetMsgType::kAck, {}));
        }
        pollfd p{fd.get(), POLLIN, 0};
        if (::poll(&p, 1, 200) <= 0) continue;
        std::byte buf[16384];
        const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
        if (n == 0) return;
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            continue;
          return;
        }
        decoder.feed(buf, static_cast<std::size_t>(n));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tart-obs: push connection dropped: %s\n",
                   e.what());
    }
  }

  tart::net::Fd listener_;
  std::uint16_t port_ = 0;
  mutable std::mutex mu_;
  std::map<std::string, Shipment> by_node_;
};

const std::string* label_of(const tart::obs::Sample& s, const char* key) {
  for (const auto& l : s.labels)
    if (l.key == key) return &l.value;
  return nullptr;
}

/// Everything tart-obs shows about one component, pulled out of the merged
/// sample set.
struct ComponentRow {
  std::uint64_t messages = 0;
  std::uint64_t pessimism_events = 0;
  std::uint64_t probes = 0;
  std::optional<tart::stats::Histogram> stall;    // all wires merged
  std::optional<tart::stats::Histogram> est_err;  // estimator |error|
};

std::map<std::string, ComponentRow> build_rows(
    const std::vector<tart::obs::Sample>& samples) {
  std::map<std::string, ComponentRow> rows;
  for (const auto& s : samples) {
    const std::string* component = label_of(s, "component");
    if (component == nullptr) continue;
    ComponentRow& row = rows[*component];
    if (s.name == "tart_messages_processed_total") {
      row.messages += s.counter_value;
    } else if (s.name == "tart_pessimism_events_total") {
      row.pessimism_events += s.counter_value;
    } else if (s.name == "tart_probes_sent_total") {
      row.probes += s.counter_value;
    } else if (s.name == "tart_pessimism_stall_seconds" && s.hist) {
      if (!row.stall) {
        row.stall = *s.hist;
      } else if (!row.stall->merge(*s.hist)) {
        std::fprintf(stderr, "tart-obs: stall bucket-shape mismatch for %s\n",
                     component->c_str());
      }
    } else if (s.name == "tart_estimator_error_seconds" && s.hist) {
      if (!row.est_err) {
        row.est_err = *s.hist;
      } else if (!row.est_err->merge(*s.hist)) {
        std::fprintf(stderr, "tart-obs: est-err bucket-shape mismatch\n");
      }
    }
  }
  return rows;
}

void print_rows(const std::map<std::string, ComponentRow>& rows) {
  std::printf("%-16s %10s %8s %8s | %9s %9s %9s | %9s\n", "component", "msgs",
              "pessim", "probes", "stall p50", "stall p99", "stall max",
              "esterr p50");
  std::printf("%-16s %10s %8s %8s | %9s %9s %9s | %9s\n", "", "", "", "",
              "(ms)", "(ms)", "(ms)", "(us)");
  for (const auto& [name, row] : rows) {
    double p50 = 0, p99 = 0, mx = 0, err50 = 0;
    if (row.stall && row.stall->count() > 0) {
      p50 = row.stall->percentile(50) * 1e3;
      p99 = row.stall->percentile(99) * 1e3;
      mx = row.stall->max_seen() * 1e3;
    }
    if (row.est_err && row.est_err->count() > 0)
      err50 = row.est_err->percentile(50) * 1e6;
    std::printf("%-16s %10llu %8llu %8llu | %9.3f %9.3f %9.3f | %9.2f\n",
                name.c_str(),
                static_cast<unsigned long long>(row.messages),
                static_cast<unsigned long long>(row.pessimism_events),
                static_cast<unsigned long long>(row.probes), p50, p99, mx,
                err50);
  }
}

std::string horizon_str(std::int64_t ticks) {
  if (ticks == std::numeric_limits<std::int64_t>::max()) return "inf";
  return std::to_string(ticks);
}

void print_wavefront(
    const std::vector<std::pair<std::string, StatusReport>>& reports) {
  bool any = false;
  for (const auto& [addr, report] : reports) {
    (void)addr;
    for (const ComponentStatus& c : report.components) {
      if (c.crashed) {
        std::printf("  %-16s CRASHED\n", c.name.c_str());
        any = true;
        continue;
      }
      if (!c.held) continue;
      any = true;
      std::printf("  %-16s vt=%lld holding message @vt=%lld on w%u; waiting:",
                  c.name.c_str(), static_cast<long long>(c.vt_ticks),
                  static_cast<long long>(c.held_vt), c.held_wire.value());
      for (const WireStatus& ws : c.inputs) {
        if (!ws.blocking) continue;
        std::printf(" %s(w%u horizon=%s pending=%llu)", ws.sender.c_str(),
                    ws.wire.value(), horizon_str(ws.horizon_ticks).c_str(),
                    static_cast<unsigned long long>(ws.pending));
      }
      std::printf("\n");
    }
  }
  if (!any) std::printf("  (no component is held; no node crashed)\n");
}

/// Live placement: where every component runs right now and any migration
/// in flight. The table comes from the freshest node view (highest
/// placement epoch — per-component epochs are synchronized, so any
/// up-to-date node can speak for the deployment); the serving node of a
/// component is inferred from which report lists it as local. Prints
/// nothing for single-process runs where no placement plane exists.
void print_placement(
    const std::vector<std::pair<std::string, StatusReport>>& reports) {
  const StatusReport* best = nullptr;
  const std::string* best_addr = nullptr;
  for (const auto& [addr, r] : reports) {
    if (r.placement.empty() && r.migrations.empty()) continue;
    if (best == nullptr || r.placement_epoch > best->placement_epoch) {
      best = &r;
      best_addr = &addr;
    }
  }
  if (best == nullptr) return;

  std::map<std::uint32_t, std::string> names;    // component id -> name
  std::map<std::uint32_t, std::string> node_of;  // component id -> addr
  for (const auto& [addr, r] : reports)
    for (const ComponentStatus& c : r.components) {
      names.emplace(c.id.value(), c.name);
      node_of.emplace(c.id.value(), addr);
    }

  std::printf("placement: epoch=%llu (view of %s)\n",
              static_cast<unsigned long long>(best->placement_epoch),
              best_addr->c_str());
  for (const auto& e : best->placement) {
    const auto name_it = names.find(e.component);
    const std::string name = name_it != names.end()
                                 ? name_it->second
                                 : "c" + std::to_string(e.component);
    const auto node_it = node_of.find(e.component);
    const std::string node =
        node_it != node_of.end() ? node_it->second : "(not polled)";
    std::string suffix;
    if (e.epoch != 0)
      suffix = "  moved @epoch " + std::to_string(e.epoch);
    std::printf("  %-16s engine=%u  node=%s%s\n", name.c_str(), e.engine,
                node.c_str(), suffix.c_str());
  }
  for (const auto& [addr, r] : reports)
    for (const auto& m : r.migrations) {
      const auto name_it = names.find(m.component);
      const std::string name = name_it != names.end()
                                   ? name_it->second
                                   : "c" + std::to_string(m.component);
      std::printf(
          "  migrating %-16s engine %u -> %u  @epoch %llu  stage=%s "
          "(seen by %s)\n",
          name.c_str(), m.from_engine, m.to_engine,
          static_cast<unsigned long long>(m.epoch), m.stage.c_str(),
          addr.c_str());
    }
}

/// One fleet-wide durability line: checkpoints taken, checkpoint-gated
/// compaction progress, and what the last restarts skipped vs replayed.
/// Prints nothing while every counter is zero (durability off everywhere).
void print_durability(const MetricsSnapshot& m) {
  if (m.ckpt_written + m.ckpt_failed + m.ckpt_skipped_invalid +
          m.log_segments + m.restart_covered_records +
          m.restart_suffix_records ==
      0)
    return;
  std::printf(
      "durability: ckpts=%llu (failed=%llu skipped=%llu, %.1f KB) "
      "log=%llu segs/%.1f KB reclaimed=%llu | restart covered=%llu "
      "suffix=%llu\n",
      static_cast<unsigned long long>(m.ckpt_written),
      static_cast<unsigned long long>(m.ckpt_failed),
      static_cast<unsigned long long>(m.ckpt_skipped_invalid),
      static_cast<double>(m.ckpt_bytes) / 1024.0,
      static_cast<unsigned long long>(m.log_segments),
      static_cast<double>(m.log_bytes_on_disk) / 1024.0,
      static_cast<unsigned long long>(m.log_records_reclaimed),
      static_cast<unsigned long long>(m.restart_covered_records),
      static_cast<unsigned long long>(m.restart_suffix_records));
}

/// Ingest-to-output latency rollup (docs/TRACING.md "Request lineage"):
/// the edge-measured e2e histogram, the gateway's durability-ack latency,
/// and per-component ingress queueing, all merged across nodes. Exemplars
/// on the e2e family carry the originating (wire, seq) — the id to feed
/// `tart-trace lineage --input` for the full causal breakdown. Prints
/// nothing when no lineage-instrumented traffic has flowed.
void print_latency(const std::vector<tart::obs::Sample>& samples) {
  const tart::obs::Sample* e2e = nullptr;
  const tart::obs::Sample* ack = nullptr;
  std::map<std::string, const tart::obs::Sample*> ingress;
  for (const auto& s : samples) {
    if (!s.hist || s.hist->count() == 0) continue;
    if (s.name == "tart_lineage_e2e_seconds") {
      e2e = &s;
    } else if (s.name == "tart_gw_ack_latency_seconds") {
      ack = &s;
    } else if (s.name == "tart_lineage_ingress_queue_seconds") {
      if (const std::string* c = label_of(s, "component")) ingress[*c] = &s;
    }
  }
  if (e2e == nullptr && ack == nullptr && ingress.empty()) return;

  std::printf("latency:\n");
  const auto line = [](const char* what, const tart::stats::Histogram& h) {
    std::printf("  %-22s p50=%8.3f p99=%8.3f max=%8.3f ms  n=%llu\n", what,
                h.percentile(50) * 1e3, h.percentile(99) * 1e3,
                h.max_seen() * 1e3,
                static_cast<unsigned long long>(h.count()));
  };
  if (ack != nullptr) line("ingest->ack", *ack->hist);
  if (e2e != nullptr) line("ingest->output (e2e)", *e2e->hist);
  for (const auto& [name, s] : ingress)
    line(("ingress queue " + name).c_str(), *s->hist);
  if (e2e != nullptr && !e2e->exemplars.empty()) {
    // Newest exemplars last; show the slowest few so a fat tail bucket
    // points at concrete request ids.
    std::vector<tart::obs::BucketExemplar> exs = e2e->exemplars;
    std::sort(exs.begin(), exs.end(),
              [](const tart::obs::BucketExemplar& a,
                 const tart::obs::BucketExemplar& b) {
                return a.ex.value > b.ex.value;
              });
    if (exs.size() > 4) exs.resize(4);
    std::printf("  slow exemplars:");
    for (const auto& bex : exs)
      std::printf("  %.3fms input=%u:%llu", bex.ex.value * 1e3, bex.ex.wire,
                  static_cast<unsigned long long>(bex.ex.episode));
    std::printf("   (tart-trace lineage --input WIRE:SEQ)\n");
  }
}

// --- `top` mode: hot-path profiler live view --------------------------------

/// The tart_prof_* slice of one node's sample shipment, decoded into the
/// three numbers the per-node header shows.
struct NodeProfile {
  std::int64_t busy_percent = -1;  // -1: gauge not present (no sweep yet)
  std::int64_t threads = 0;
  double lag_p99_ms = 0;
  std::uint64_t lag_count = 0;
};

NodeProfile node_profile(const std::vector<tart::obs::Sample>& samples) {
  NodeProfile np;
  for (const auto& s : samples) {
    if (s.name == "tart_prof_loop_busy_percent") {
      np.busy_percent = s.gauge_value;
    } else if (s.name == "tart_prof_threads") {
      np.threads = s.gauge_value;
    } else if (s.name == "tart_prof_span_seconds" && s.hist &&
               s.hist->count() > 0) {
      if (const std::string* span = label_of(s, "span");
          span != nullptr && *span == "loop.lag") {
        np.lag_p99_ms = s.hist->percentile(99) * 1e3;
        np.lag_count = s.hist->count();
      }
    }
  }
  return np;
}

/// One row of the fleet-wide span table, summed across nodes.
struct SpanRow {
  std::uint64_t calls = 0;
  double self_seconds = 0;
  double p99_ms = 0;
};

void print_top(const std::vector<std::pair<std::string, NodeProfile>>& nodes,
               const std::vector<tart::obs::Sample>& merged) {
  for (const auto& [addr, np] : nodes) {
    if (np.busy_percent >= 0)
      std::printf("%-24s busy=%3lld%%  loop-lag p99=%8.3f ms (n=%llu)  "
                  "threads=%lld\n",
                  addr.c_str(), static_cast<long long>(np.busy_percent),
                  np.lag_p99_ms,
                  static_cast<unsigned long long>(np.lag_count),
                  static_cast<long long>(np.threads));
    else
      std::printf("%-24s (no profiler samples yet)\n", addr.c_str());
  }

  std::map<std::string, SpanRow> rows;
  for (const auto& s : merged) {
    const std::string* span = label_of(s, "span");
    if (span == nullptr) continue;
    SpanRow& row = rows[*span];
    if (s.name == "tart_prof_span_calls_total") {
      row.calls = s.counter_value;
    } else if (s.name == "tart_prof_span_seconds_total") {
      // Raw value is integral ns; scale carries the ns->s conversion.
      row.self_seconds = static_cast<double>(s.counter_value) * s.scale;
    } else if (s.name == "tart_prof_span_seconds" && s.hist &&
               s.hist->count() > 0) {
      row.p99_ms = s.hist->percentile(99) * 1e3;
    }
  }
  if (rows.empty()) {
    std::printf("  (no spans recorded; is the build TART_PROF=OFF?)\n");
    return;
  }

  std::vector<std::pair<std::string, SpanRow>> sorted(rows.begin(),
                                                      rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.self_seconds > b.second.self_seconds;
  });
  std::printf("%-20s %12s %12s %10s\n", "span", "self-time(s)", "calls",
              "p99(ms)");
  std::size_t shown = 0;
  for (const auto& [name, row] : sorted) {
    if (++shown > 16) break;
    std::printf("%-20s %12.3f %12llu %10.3f\n", name.c_str(),
                row.self_seconds,
                static_cast<unsigned long long>(row.calls), row.p99_ms);
  }
}

int run_top_mode(const std::vector<std::string>& addrs, bool once,
                 int interval_ms, bool strict) {
  const bool tty = ::isatty(1) != 0;
  bool any_down = false;
  while (!g_stop.load()) {
    std::vector<std::vector<tart::obs::Sample>> per_node;
    std::vector<std::pair<std::string, NodeProfile>> nodes;
    std::vector<std::string> down;
    for (const std::string& addr : addrs) {
      auto client =
          tart::net::ControlClient::connect(addr, std::chrono::seconds(2));
      if (!client) {
        down.push_back(addr);
        continue;
      }
      try {
        auto samples = client->obs_samples();
        nodes.emplace_back(addr, node_profile(samples));
        per_node.push_back(std::move(samples));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tart-obs: %s: %s\n", addr.c_str(), e.what());
        down.push_back(addr);
      }
    }
    if (!down.empty()) any_down = true;

    if (tty && !once) std::printf("\033[H\033[2J");
    std::printf("== tart-obs top: %zu/%zu node%s ==\n", nodes.size(),
                addrs.size(), addrs.size() == 1 ? "" : "s");
    for (const std::string& addr : down)
      std::printf("%-24s down\n", addr.c_str());
    print_top(nodes, tart::obs::merge_samples(std::move(per_node)));
    std::fflush(stdout);

    if (once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return strict && any_down ? 1 : 0;
}

int run_control_mode(const std::vector<std::string>& addrs, bool once,
                     int interval_ms, const std::string& series_path,
                     bool strict, PushServer* push) {
  std::FILE* series = nullptr;
  if (!series_path.empty()) {
    series = std::fopen(series_path.c_str(), "ae");
    if (series == nullptr) {
      std::fprintf(stderr, "tart-obs: cannot open %s\n", series_path.c_str());
      return 1;
    }
  }

  bool any_down = false;
  bool first = true;
  while (!g_stop.load()) {
    if (!first) std::printf("\n");
    first = false;

    MetricsSnapshot total;
    std::vector<std::vector<tart::obs::Sample>> per_node;
    std::vector<std::pair<std::string, StatusReport>> reports;
    std::vector<std::string> down;
    std::size_t reachable = 0;
    for (const std::string& addr : addrs) {
      auto client =
          tart::net::ControlClient::connect(addr, std::chrono::seconds(2));
      if (!client) {
        down.push_back(addr);
        continue;
      }
      try {
        total += client->metrics();
        per_node.push_back(client->obs_samples());
        reports.emplace_back(addr, client->status());
        ++reachable;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tart-obs: %s: %s\n", addr.c_str(), e.what());
        down.push_back(addr);
      }
    }
    if (!down.empty()) any_down = true;

    // Pushed nodes join the round exactly like polled ones (fresh within
    // 3 display intervals, floor 5 s, so one missed push is not a flap).
    std::size_t pushed = 0;
    if (push != nullptr) {
      const auto max_age = std::chrono::milliseconds(
          std::max(3 * interval_ms, 5000));
      for (auto& [node, shipment] : push->fresh(max_age)) {
        total += shipment.metrics;
        per_node.push_back(std::move(shipment.samples));
        ++pushed;
      }
    }

    if (reachable + pushed == 0) {
      std::printf("== 0/%zu nodes ==\n", addrs.size());
      for (const std::string& addr : down)
        std::printf("  %-24s down\n", addr.c_str());
      if (once) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }

    const auto merged = tart::obs::merge_samples(std::move(per_node));
    if (pushed > 0)
      std::printf("== %zu/%zu node%s polled, %zu pushed ==\n", reachable,
                  addrs.size(), addrs.size() == 1 ? "" : "s", pushed);
    else
      std::printf("== %zu/%zu node%s ==\n", reachable, addrs.size(),
                  addrs.size() == 1 ? "" : "s");
    for (const std::string& addr : down)
      std::printf("  %-24s down\n", addr.c_str());
    print_rows(build_rows(merged));
    print_durability(total);
    print_latency(merged);
    std::printf("wavefront:\n");
    print_wavefront(reports);
    print_placement(reports);

    if (series != nullptr) {
      const auto ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::system_clock::now().time_since_epoch())
                             .count();
      const std::string line =
          tart::obs::Sampler::render_line(ts_ms, total, merged);
      std::fwrite(line.data(), 1, line.size(), series);
      std::fflush(series);
    }

    if (once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  if (series != nullptr) std::fclose(series);
  return strict && any_down ? 1 : 0;
}

/// Scrape gate for scripts: both endpoints must answer, /metrics must lint
/// clean and carry the stall-attribution family, /status must look like
/// the wavefront document.
int run_scrape_mode(const std::vector<std::string>& addrs) {
  int rc = 0;
  for (const std::string& addr : addrs) {
    auto client = tart::gateway::BlockingHttpClient::connect(
        addr, std::chrono::seconds(5));
    if (!client) {
      std::fprintf(stderr, "tart-obs: scrape %s: connect failed\n",
                   addr.c_str());
      rc = 1;
      continue;
    }
    try {
      const auto metrics = client->get("/metrics");
      if (metrics.status != 200) {
        std::fprintf(stderr, "tart-obs: scrape %s: /metrics -> %d\n",
                     addr.c_str(), metrics.status);
        rc = 1;
      } else {
        const std::string* ct = metrics.header("Content-Type");
        if (ct == nullptr || *ct != tart::obs::kPrometheusContentType) {
          std::fprintf(stderr,
                       "tart-obs: scrape %s: /metrics Content-Type '%s'\n",
                       addr.c_str(), ct ? ct->c_str() : "(none)");
          rc = 1;
        }
        if (const auto lint = tart::obs::lint_exposition(metrics.body)) {
          std::fprintf(stderr, "tart-obs: scrape %s: lint: %s\n", addr.c_str(),
                       lint->c_str());
          rc = 1;
        }
        if (metrics.body.find("tart_pessimism_stall_seconds") ==
            std::string::npos) {
          std::fprintf(stderr,
                       "tart-obs: scrape %s: no stall-attribution series\n",
                       addr.c_str());
          rc = 1;
        }
      }
      const auto status = client->get("/status");
      if (status.status != 200 ||
          status.body.find("\"components\"") == std::string::npos) {
        std::fprintf(stderr, "tart-obs: scrape %s: /status -> %d\n",
                     addr.c_str(), status.status);
        rc = 1;
      }
      if (rc == 0)
        std::printf("tart-obs: scrape %s ok (%zu bytes of metrics)\n",
                    addr.c_str(), metrics.body.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tart-obs: scrape %s: %s\n", addr.c_str(),
                   e.what());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool scrape = false;
  bool strict = false;
  bool top = false;
  int interval_ms = 2000;
  std::string series_path;
  std::string listen_spec;
  std::vector<std::string> addrs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i == 1 && (arg == "top" || arg == "--top")) {
      top = true;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--scrape") {
      scrape = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg.rfind("--interval-ms=", 0) == 0) {
      interval_ms = std::atoi(arg.c_str() + std::strlen("--interval-ms="));
      if (interval_ms <= 0) return usage();
    } else if (arg.rfind("--series=", 0) == 0) {
      series_path = arg.substr(std::strlen("--series="));
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen_spec = arg.substr(std::strlen("--listen="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tart-obs: unknown argument '%s'\n", arg.c_str());
      return usage();
    } else {
      addrs.push_back(arg);
    }
  }
  if (scrape && (addrs.empty() || !listen_spec.empty() || top))
    return usage();
  if (top && (addrs.empty() || !listen_spec.empty())) return usage();
  if (addrs.empty() && listen_spec.empty()) return usage();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  if (scrape) return run_scrape_mode(addrs);
  if (top) return run_top_mode(addrs, once, interval_ms, strict);

  PushServer* push = nullptr;
  if (!listen_spec.empty()) {
    push = new PushServer();  // leaked deliberately: detached accept thread
    if (!push->start(listen_spec)) return 1;
    std::printf("tart-obs: accepting pushes on :%u\n", push->port());
  }
  return run_control_mode(addrs, once, interval_ms, series_path, strict,
                          push);
}
