// tart-node: hosts one partition of a deployment in this OS process.
//
//   tart-node <deployment.conf> <partition> [--log-dir=DIR] [--trace=FILE]
//             [--http=ADDR|PORT] [--no-group-commit] [--exemplars]
//             [--sample=FILE] [--sample-interval-ms=N]
//             [--gauge-interval-ms=N] [--push=ADDR[,INTERVALMS]]
//             [--durable] [--checkpoint-interval-ms=N] [--checkpoint-bytes=N]
//             [--checkpoint-keep=K] [--segment-bytes=N]
//             [--migrate-crash-at=STAGE] [--verbose]
//
// Every node of a deployment runs this binary with the SAME config file and
// its own partition name. The node builds the global topology, constructs
// only its partition's engine, bridges cross-partition wires over TCP
// (reconnecting forever), and serves the control protocol on the
// partition's control address. It runs until a control kShutdown request
// or SIGINT/SIGTERM.
//
// With --log-dir, external inputs are write-through persisted; restarting
// the node over the same directory cold-restarts it from stable storage:
// logged inputs replay, downstream peers discard the duplicates by
// timestamp, and the stream continues — the paper's transparent-recovery
// story (§II.F) demonstrated across real processes (see
// scripts/net_soak.sh, which SIGKILLs a node mid-run).
//
// With --http, the node additionally serves the HTTP ingress gateway
// (docs/GATEWAY.md) for this partition's external inputs/outputs: POSTed
// injections are acked only once durable in the log (log-before-ack).
// --exemplars adds OpenMetrics exemplars to GET /metrics histograms,
// linking fat stall buckets to `tart-trace explain --episode` ids.
//
// With --push=ADDR, the node remote-writes its telemetry (metrics +
// registry samples) to a collector — `tart-obs --listen` — every interval,
// for deployments where the collector cannot dial the nodes.
//
// With --durable (requires --log-dir), the node writes durable checkpoints
// (docs/RECOVERY.md), compacts its external log below the newest durable
// checkpoint, and restarts fast: checkpoint restore + suffix-only replay
// with outputs suppressed instead of a full cold replay. Checkpoints fire
// on demand (control kCheckpoint / gateway POST /checkpoint) and, with
// --checkpoint-interval-ms / --checkpoint-bytes, automatically.
//
// Live migration (docs/PLACEMENT.md): `tart-ctl migrate` / POST /migrate
// moves a component to another node with the staged VT-barrier protocol.
// --migrate-crash-at=STAGE is test-only fault injection: the process
// _exit(137)s at that stage boundary (prepare|transfer|delta|
// cutover-commit on the source, staged|adopt on the target) so the
// SIGKILL matrix in tests/migration_process_test can prove the journal
// leaves exactly one owner after restart.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "net/host.h"

namespace {

tart::net::NetHost* g_host = nullptr;

void on_signal(int) {
  if (g_host != nullptr) g_host->request_shutdown();
}

int usage() {
  std::fprintf(stderr,
               "usage: tart-node <deployment.conf> <partition> "
               "[--log-dir=DIR] [--trace=FILE] [--http=ADDR|PORT] "
               "[--no-group-commit] [--exemplars] [--sample=FILE] "
               "[--sample-interval-ms=N] [--gauge-interval-ms=N] "
               "[--push=ADDR[,INTERVALMS]] [--durable] "
               "[--checkpoint-interval-ms=N] [--checkpoint-bytes=N] "
               "[--checkpoint-keep=K] [--segment-bytes=N] "
               "[--migrate-crash-at=STAGE] [--verbose]\n");
  return 2;
}

/// "8080" -> "127.0.0.1:8080"; "0.0.0.0:80" passes through.
std::string http_addr_of(const std::string& arg) {
  return arg.find(':') == std::string::npos ? "127.0.0.1:" + arg : arg;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string config_path = argv[1];
  const std::string partition = argv[2];
  tart::net::HostOptions options;
  bool verbose = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--log-dir=", 0) == 0) {
      options.log_dir = arg.substr(std::strlen("--log-dir="));
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg.rfind("--http=", 0) == 0) {
      options.http_addr = http_addr_of(arg.substr(std::strlen("--http=")));
    } else if (arg == "--no-group-commit") {
      options.http_group_commit = false;
    } else if (arg.rfind("--sample=", 0) == 0) {
      options.sample_path = arg.substr(std::strlen("--sample="));
    } else if (arg.rfind("--sample-interval-ms=", 0) == 0) {
      options.sample_interval_ms =
          std::atoi(arg.c_str() + std::strlen("--sample-interval-ms="));
      if (options.sample_interval_ms <= 0) {
        std::fprintf(stderr, "tart-node: bad --sample-interval-ms\n");
        return usage();
      }
    } else if (arg == "--exemplars") {
      options.http_exemplars = true;
    } else if (arg.rfind("--gauge-interval-ms=", 0) == 0) {
      // 0 disables the sweep (negative rejected to keep flags unambiguous).
      options.gauge_interval_ms =
          std::atoi(arg.c_str() + std::strlen("--gauge-interval-ms="));
      if (options.gauge_interval_ms < 0) {
        std::fprintf(stderr, "tart-node: bad --gauge-interval-ms\n");
        return usage();
      }
    } else if (arg.rfind("--push=", 0) == 0) {
      std::string spec = arg.substr(std::strlen("--push="));
      if (const auto comma = spec.rfind(','); comma != std::string::npos) {
        options.push_interval_ms = std::atoi(spec.c_str() + comma + 1);
        spec.resize(comma);
        if (options.push_interval_ms <= 0) {
          std::fprintf(stderr, "tart-node: bad --push interval\n");
          return usage();
        }
      }
      options.push_addr = spec;
      if (options.push_addr.find(':') == std::string::npos) {
        std::fprintf(stderr, "tart-node: --push needs HOST:PORT\n");
        return usage();
      }
    } else if (arg == "--durable") {
      options.durability.enabled = true;
    } else if (arg.rfind("--checkpoint-interval-ms=", 0) == 0) {
      options.durability.enabled = true;
      options.durability.interval_ms =
          std::atoi(arg.c_str() + std::strlen("--checkpoint-interval-ms="));
      if (options.durability.interval_ms <= 0) {
        std::fprintf(stderr, "tart-node: bad --checkpoint-interval-ms\n");
        return usage();
      }
    } else if (arg.rfind("--checkpoint-bytes=", 0) == 0) {
      options.durability.enabled = true;
      options.durability.bytes_trigger = static_cast<std::uint64_t>(
          std::atoll(arg.c_str() + std::strlen("--checkpoint-bytes=")));
      if (options.durability.bytes_trigger == 0) {
        std::fprintf(stderr, "tart-node: bad --checkpoint-bytes\n");
        return usage();
      }
    } else if (arg.rfind("--checkpoint-keep=", 0) == 0) {
      options.durability.keep_last = static_cast<std::uint64_t>(
          std::atoll(arg.c_str() + std::strlen("--checkpoint-keep=")));
      if (options.durability.keep_last == 0) {
        std::fprintf(stderr, "tart-node: bad --checkpoint-keep\n");
        return usage();
      }
    } else if (arg.rfind("--segment-bytes=", 0) == 0) {
      options.durability.segment_bytes = static_cast<std::uint64_t>(
          std::atoll(arg.c_str() + std::strlen("--segment-bytes=")));
      if (options.durability.segment_bytes == 0) {
        std::fprintf(stderr, "tart-node: bad --segment-bytes\n");
        return usage();
      }
    } else if (arg.rfind("--migrate-crash-at=", 0) == 0) {
      options.migrate_crash_at =
          arg.substr(std::strlen("--migrate-crash-at="));
      if (options.migrate_crash_at.empty()) {
        std::fprintf(stderr, "tart-node: bad --migrate-crash-at\n");
        return usage();
      }
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "tart-node: unknown argument '%s'\n", arg.c_str());
      return usage();
    }
  }
  tart::set_log_level(verbose ? tart::LogLevel::kInfo
                              : tart::LogLevel::kError);

  try {
    tart::net::DeploymentConfig deploy =
        tart::net::DeploymentConfig::parse_file(config_path);
    tart::net::NetHost host(std::move(deploy), partition, options);
    g_host = &host;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    host.start();
    std::fprintf(stderr,
                 "tart-node: partition '%s' up (data :%u, control :%u, "
                 "http :%u)\n",
                 partition.c_str(), host.data_port(), host.control_port(),
                 host.http_port());
    const int rc = host.run_until_shutdown();
    g_host = nullptr;
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tart-node: %s\n", e.what());
    return 1;
  }
}
