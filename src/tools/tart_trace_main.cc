// tart-trace: inspect and compare flight-recorder trace files.
//
//   tart-trace dump <file> [--merged] [--category=sched|diag|lineage|all]
//   tart-trace diff <a> <b> [--recovery]
//   tart-trace stats <file>
//   tart-trace explain <trace...> [--episode N | --top K | --json]
//   tart-trace lineage <trace...> [--input WIRE:SEQ] [--top K] [--json]
//
// `explain` loads one or more traces (one per node of a deployment) and
// reconstructs every pessimism-stall episode's causal chain — held message
// -> blocking wire -> upstream sender -> the promise that released it —
// with the estimator-error / propagation-lag split (see
// src/trace/forensics.h).
//
// `lineage` reconstructs, for every input acked at the edge (or one named
// by --input), its causal descendant DAG across components/nodes and the
// exclusive-exhaustive wall-latency decomposition (see src/trace/lineage.h).
//
// Exit codes: 0 success (diff: traces match), 1 diff found a divergence,
// 2 usage or I/O error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "trace/diff.h"
#include "trace/forensics.h"
#include "trace/lineage.h"
#include "trace/trace_event.h"
#include "trace/trace_file.h"

namespace {

using tart::trace::Trace;
using tart::trace::TraceCategory;
using tart::trace::TraceEvent;
using tart::trace::TraceEventKind;

constexpr int kExitOk = 0;
constexpr int kExitDivergence = 1;
constexpr int kExitError = 2;

int usage() {
  std::cerr
      << "usage:\n"
         "  tart-trace dump <file> [--merged] "
         "[--category=sched|diag|lineage|all]\n"
         "  tart-trace diff <a> <b> [--recovery]\n"
         "  tart-trace stats <file>\n"
         "  tart-trace explain <trace...> [--episode N | --top K | --json]\n"
         "  tart-trace lineage <trace...> [--input WIRE:SEQ] [--top K] "
         "[--json]\n";
  return kExitError;
}

std::string category_names(std::uint32_t mask) {
  std::string out;
  if (mask & static_cast<std::uint32_t>(TraceCategory::kScheduling))
    out += "scheduling";
  if (mask & static_cast<std::uint32_t>(TraceCategory::kDiagnostic))
    out += out.empty() ? "diagnostic" : "+diagnostic";
  if (mask & static_cast<std::uint32_t>(TraceCategory::kLineage))
    out += out.empty() ? "lineage" : "+lineage";
  return out.empty() ? "none" : out;
}

void print_event(const TraceEvent& e, bool with_component) {
  std::cout << std::setw(6) << e.seq << "  ";
  if (with_component) std::cout << "c" << e.component.value() << "  ";
  std::cout << std::left << std::setw(12) << tart::trace::name_of(e.kind)
            << std::right << " vt=" << tart::to_string(e.vt);
  if (e.wire.is_valid()) std::cout << " wire=" << e.wire.value();
  std::cout << " aux=" << e.aux;
  if (e.payload_hash != 0)
    std::cout << " payload=" << std::hex << std::setw(16) << std::setfill('0')
              << e.payload_hash << std::setfill(' ') << std::dec;
  std::cout << "\n";
}

int cmd_dump(const Trace& trace, bool merged, std::uint32_t mask) {
  std::cout << "format v" << trace.version
            << "  categories=" << category_names(trace.categories)
            << "  components=" << trace.components.size()
            << "  events=" << trace.total_events() << "\n";
  const auto wanted = [mask](const TraceEvent& e) {
    return (static_cast<std::uint32_t>(tart::trace::category_of(e.kind)) &
            mask) != 0;
  };
  if (merged) {
    std::cout << "-- merged (vt, component, seq) --\n";
    for (const TraceEvent& e : trace.merged())
      if (wanted(e)) print_event(e, /*with_component=*/true);
    return kExitOk;
  }
  for (const auto& ct : trace.components) {
    std::cout << "-- component " << ct.component.value() << " ("
              << ct.events.size() << " events) --\n";
    for (const TraceEvent& e : ct.events)
      if (wanted(e)) print_event(e, /*with_component=*/false);
  }
  return kExitOk;
}

int cmd_diff(const Trace& a, const Trace& b, bool recovery) {
  tart::trace::DiffOptions options;
  options.allow_stutter = recovery;
  const tart::trace::DiffResult result =
      tart::trace::diff_traces(a, b, options);
  std::cout << "compared=" << result.compared
            << " stutter=" << result.stutter_records
            << " skipped=" << result.skipped
            << " fast_forwarded=" << result.fast_forwarded << "\n";
  if (result.identical()) {
    std::cout << (recovery ? "traces match (stutter tolerated)\n"
                           : "traces identical\n");
    return kExitOk;
  }
  std::cout << "DIVERGENCE\n" << result.divergence->describe() << "\n";
  return kExitDivergence;
}

int cmd_stats(const Trace& trace) {
  std::map<TraceEventKind, std::uint64_t> by_kind;
  // Pessimism-stall durations (kStallEnd aux = real ns stalled), bucketed
  // at 100us out to 50ms — the range the paper's pessimism study covers.
  tart::stats::Histogram stall_us(/*width=*/100.0, /*num_buckets=*/500);
  for (const auto& ct : trace.components) {
    for (const TraceEvent& e : ct.events) {
      ++by_kind[e.kind];
      if (e.kind == TraceEventKind::kStallEnd)
        stall_us.add(static_cast<double>(e.aux) / 1000.0);
    }
  }
  std::cout << "events by kind:\n";
  for (const auto& [kind, count] : by_kind)
    std::cout << "  " << std::left << std::setw(12)
              << tart::trace::name_of(kind) << std::right << " " << count
              << "\n";
  std::cout << "events by component:\n";
  for (const auto& ct : trace.components)
    std::cout << "  c" << ct.component.value() << " " << ct.events.size()
              << "\n";
  if (stall_us.count() > 0) {
    std::cout << "pessimism stall duration (us): count=" << stall_us.count()
              << " p50=" << stall_us.percentile(50)
              << " p99=" << stall_us.percentile(99) << "\n"
              << stall_us.render() << "\n";
  }
  return kExitOk;
}

std::string comp_name(tart::ComponentId id) {
  return id.is_valid() ? "c" + std::to_string(id.value()) : "external";
}

std::string us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1e3);
  return std::string(buf) + "us";
}

void print_episode(const tart::trace::Episode& e) {
  if (e.open) {
    // The stream ended (crash or truncation) before kStallResolved: the
    // episode is OPEN — duration is a lower bound, no blocking wire known.
    std::cout << "  " << comp_name(e.component) << " ep#" << e.id
              << ": held vt=" << tart::to_string(e.held_vt) << " on wire "
              << (e.held_wire.is_valid()
                      ? std::to_string(e.held_wire.value())
                      : std::string("?"))
              << ", OPEN (stream ended mid-episode), stall>=" << us(e.stall_ns)
              << "\n";
    return;
  }
  std::cout << "  " << comp_name(e.component) << " ep#" << e.id << ": held vt="
            << tart::to_string(e.held_vt) << " on wire "
            << (e.held_wire.is_valid() ? std::to_string(e.held_wire.value())
                                       : std::string("?"))
            << ", blocked by wire " << e.blocking_wire.value() << " (sender "
            << comp_name(e.sender) << "), stall=" << us(e.stall_ns)
            << " = est " << us(e.split.estimator_error_ns) << " + prop "
            << us(e.split.propagation_lag_ns) << ", deficit="
            << e.split.deficit_ticks << " ticks (est "
            << e.split.estimator_error_ticks << ")";
  if (e.resolving_emit_seq)
    std::cout << ", released by emit seq=" << *e.resolving_emit_seq;
  std::cout << "\n";
}

void print_episode_json(std::string& out, const tart::trace::Episode& e) {
  out += "{\"component\":" + std::to_string(e.component.value());
  out += ",\"episode\":" + std::to_string(e.id);
  out += ",\"held_vt\":" + std::to_string(e.held_vt.ticks());
  out += ",\"held_wire\":";
  out += e.held_wire.is_valid() ? std::to_string(e.held_wire.value()) : "null";
  out += ",\"blocking_wire\":" + std::to_string(e.blocking_wire.value());
  out += ",\"sender\":";
  out += e.sender.is_valid() ? std::to_string(e.sender.value())
                             : std::string("\"external\"");
  out += ",\"stall_ns\":" + std::to_string(e.stall_ns);
  out += ",\"estimator_error_ns\":" +
         std::to_string(e.split.estimator_error_ns);
  out += ",\"propagation_lag_ns\":" +
         std::to_string(e.split.propagation_lag_ns);
  out += ",\"deficit_ticks\":" + std::to_string(e.split.deficit_ticks);
  out += ",\"estimator_error_ticks\":" +
         std::to_string(e.split.estimator_error_ticks);
  out += ",\"attributed\":";
  out += e.attributed ? "true" : "false";
  out += ",\"open\":";
  out += e.open ? "true" : "false";
  if (e.resolving_emit_seq)
    out += ",\"resolving_emit_seq\":" + std::to_string(*e.resolving_emit_seq);
  out += '}';
}

int cmd_explain(const std::vector<Trace>& traces,
                std::optional<std::uint64_t> episode, std::size_t top_k,
                bool json) {
  const tart::trace::ForensicsReport report = tart::trace::analyze(traces);

  if (episode) {
    // Full causal chain for one episode id (across all components).
    bool found = false;
    for (const tart::trace::Episode& e : report.episodes) {
      if (e.id != *episode) continue;
      found = true;
      if (json) {
        std::string out;
        print_episode_json(out, e);
        std::cout << out << "\n";
        continue;
      }
      std::cout << "episode #" << e.id << " at " << comp_name(e.component)
                << ":\n"
                << "  held message: vt=" << tart::to_string(e.held_vt)
                << " wire=" << (e.held_wire.is_valid()
                                    ? std::to_string(e.held_wire.value())
                                    : std::string("?"))
                << "\n"
                << "  blocking wire: " << e.blocking_wire.value()
                << " (sender " << comp_name(e.sender) << "), horizon at begin "
                << tart::to_string(e.h_begin) << ", needed "
                << tart::to_string(e.needed) << " (deficit "
                << e.split.deficit_ticks << " ticks)\n"
                << "  stall: " << us(e.stall_ns) << " = estimator error "
                << us(e.split.estimator_error_ns) << " + propagation lag "
                << us(e.split.propagation_lag_ns) << "\n";
      if (e.promise_wall_ns)
        std::cout << "  released by promise published "
                  << us(*e.promise_wall_ns - e.begin_wall_ns)
                  << " after the stall began";
      else
        std::cout << "  no covering promise found in the sender's stream";
      if (e.resolving_emit_seq)
        std::cout << " (data emit seq=" << *e.resolving_emit_seq << ")";
      std::cout << "\n";
    }
    if (!found) {
      std::cerr << "no episode with id " << *episode << "\n";
      return kExitError;
    }
    return kExitOk;
  }

  if (json) {
    std::string out = "{\"episodes\":" + std::to_string(report.episodes.size());
    out += ",\"open_episodes\":" + std::to_string(report.open_episodes);
    out += ",\"open_stall_ns\":" + std::to_string(report.open_stall_ns);
    out += ",\"total_stall_ns\":" + std::to_string(report.total_stall_ns);
    out += ",\"attributed_stall_ns\":" +
           std::to_string(report.attributed_stall_ns);
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.6f", report.attributed_fraction());
    out += ",\"attributed_fraction\":";
    out += frac;
    out += ",\"blame\":[";
    bool first = true;
    for (const tart::trace::BlameTotal& b : report.blame) {
      if (!first) out += ',';
      first = false;
      out += "{\"component\":" + std::to_string(b.component.value());
      out += ",\"wire\":" + std::to_string(b.wire.value());
      out += ",\"sender\":";
      out += b.sender.is_valid() ? std::to_string(b.sender.value())
                                 : std::string("\"external\"");
      out += ",\"episodes\":" + std::to_string(b.episodes);
      out += ",\"stall_ns\":" + std::to_string(b.stall_ns);
      out += ",\"estimator_error_ns\":" + std::to_string(b.estimator_error_ns);
      out += ",\"propagation_lag_ns\":" + std::to_string(b.propagation_lag_ns);
      out += '}';
    }
    out += "],\"top\":[";
    first = true;
    for (const tart::trace::Episode* e : report.top(top_k)) {
      if (!first) out += ',';
      first = false;
      print_episode_json(out, *e);
    }
    out += "]}";
    std::cout << out << "\n";
    return kExitOk;
  }

  char frac[32];
  std::snprintf(frac, sizeof(frac), "%.1f",
                report.attributed_fraction() * 100.0);
  std::cout << "episodes=" << report.episodes.size() << " total_stall="
            << us(report.total_stall_ns) << " attributed=" << frac << "%";
  if (report.open_episodes > 0)
    std::cout << " open=" << report.open_episodes
              << " (stall>=" << us(report.open_stall_ns)
              << " accumulated when the stream ended)";
  std::cout << "\n";
  if (!report.blame.empty()) {
    std::cout << "blame (worst first):\n";
    for (const tart::trace::BlameTotal& b : report.blame)
      std::cout << "  " << comp_name(b.component) << " <- wire "
                << b.wire.value() << " <- " << comp_name(b.sender)
                << ": episodes=" << b.episodes << " stall=" << us(b.stall_ns)
                << " est_err=" << us(b.estimator_error_ns)
                << " prop_lag=" << us(b.propagation_lag_ns) << "\n";
  }
  const auto top = report.top(top_k);
  if (!top.empty()) {
    std::cout << "top " << top.size() << " episodes:\n";
    for (const tart::trace::Episode* e : top) print_episode(*e);
  }
  return kExitOk;
}

// --- lineage ----------------------------------------------------------------

void print_breakdown_json(std::string& out,
                          const tart::trace::LatencyBreakdown& b) {
  out += "{\"durability_wait_ns\":" + std::to_string(b.durability_wait_ns);
  out += ",\"ingress_queue_ns\":" + std::to_string(b.ingress_queue_ns);
  out += ",\"stall_wait_ns\":" + std::to_string(b.stall_wait_ns);
  out += ",\"processing_ns\":" + std::to_string(b.processing_ns);
  out += ",\"network_ns\":" + std::to_string(b.network_ns);
  out += ",\"output_lag_ns\":" + std::to_string(b.output_lag_ns);
  out += ",\"ack_to_end_ns\":" + std::to_string(b.ack_to_end_ns);
  out += ",\"total_ns\":" + std::to_string(b.total_ns);
  out += '}';
}

void print_input_json(std::string& out, const tart::trace::InputLineage& in) {
  out += "{\"wire\":" + std::to_string(in.wire.value());
  out += ",\"seq\":" + std::to_string(in.seq);
  out += ",\"vt\":" + std::to_string(in.vt.ticks());
  out += ",\"acked\":";
  out += in.acked ? "true" : "false";
  out += ",\"complete\":";
  out += in.complete ? "true" : "false";
  out += ",\"arrive_ns\":" + std::to_string(in.arrive_wall_ns);
  out += ",\"durable_ns\":" + std::to_string(in.durable_wall_ns);
  out += ",\"ack_ns\":" + std::to_string(in.ack_wall_ns);
  out += ",\"hops\":[";
  bool first = true;
  for (const tart::trace::LineageHop& h : in.hops) {
    if (!first) out += ',';
    first = false;
    out += "{\"component\":" + std::to_string(h.component.value());
    out += ",\"wire\":" + std::to_string(h.wire.value());
    out += ",\"seq\":" + std::to_string(h.seq);
    out += ",\"vt\":" + std::to_string(h.vt.ticks());
    out += ",\"depth\":" + std::to_string(h.depth);
    out += ",\"dispatch_ns\":" + std::to_string(h.dispatch_wall_ns);
    out += ",\"done_ns\":" + std::to_string(h.done_wall_ns);
    out += ",\"stall_ns\":" + std::to_string(h.stall_ns);
    out += '}';
  }
  out += "],\"outputs\":[";
  first = true;
  for (const tart::trace::LineageOutput& o : in.outputs) {
    if (!first) out += ',';
    first = false;
    out += "{\"wire\":" + std::to_string(o.wire.value());
    out += ",\"seq\":" + std::to_string(o.seq);
    out += ",\"vt\":" + std::to_string(o.vt.ticks());
    out += ",\"deliver_ns\":" + std::to_string(o.deliver_wall_ns);
    out += '}';
  }
  out += "],\"stalls\":[";
  first = true;
  for (const tart::trace::StallLink& s : in.stalls) {
    if (!first) out += ',';
    first = false;
    out += "{\"component\":" + std::to_string(s.component.value());
    out += ",\"episode\":" + std::to_string(s.episode_id);
    out += ",\"wire\":" + std::to_string(s.wire.value());
    out += ",\"stall_ns\":" + std::to_string(s.stall_ns);
    out += '}';
  }
  out += "],\"breakdown\":";
  print_breakdown_json(out, in.breakdown);
  out += '}';
}

void print_input_text(const tart::trace::InputLineage& in) {
  std::cout << "input " << in.wire.value() << ":" << in.seq
            << " vt=" << tart::to_string(in.vt)
            << (in.acked ? " acked" : " (no ack event)")
            << (in.complete ? " complete" : " INCOMPLETE") << "\n";
  std::cout << "  causal DAG (" << in.hops.size() << " hops, "
            << in.outputs.size() << " outputs):\n";
  for (const tart::trace::LineageHop& h : in.hops) {
    std::cout << "    ";
    for (std::uint32_t d = 0; d < h.depth; ++d) std::cout << "  ";
    std::cout << comp_name(h.component) << " <- wire " << h.wire.value()
              << " seq " << h.seq << " vt=" << tart::to_string(h.vt);
    if (h.stall_ns > 0) std::cout << " [stalled " << us(h.stall_ns) << "]";
    std::cout << "\n";
  }
  for (const tart::trace::LineageOutput& o : in.outputs)
    std::cout << "    -> output wire " << o.wire.value() << " seq " << o.seq
              << " vt=" << tart::to_string(o.vt) << "\n";
  for (const tart::trace::StallLink& s : in.stalls)
    std::cout << "  stall episode: " << comp_name(s.component) << " ep#"
              << s.episode_id << " (" << us(s.stall_ns)
              << ") -- `tart-trace explain --episode " << s.episode_id
              << "`\n";
  const tart::trace::LatencyBreakdown& b = in.breakdown;
  std::cout << "  latency " << us(b.total_ns) << " = durability+ack "
            << us(b.durability_wait_ns) << " | then " << us(b.ack_to_end_ns)
            << " = ingress " << us(b.ingress_queue_ns) << " + stall "
            << us(b.stall_wait_ns) << " + processing " << us(b.processing_ns)
            << " + network " << us(b.network_ns) << " + output-lag "
            << us(b.output_lag_ns) << "\n";
}

int cmd_lineage(const std::vector<Trace>& traces,
                std::optional<std::pair<std::uint32_t, std::uint64_t>> input,
                std::size_t top_k, bool json) {
  if (input) {
    // Force-walk one id: works even when the ingest events are missing
    // (e.g. the acking incarnation was SIGKILLed before trace finalize).
    const tart::trace::InputLineage in = tart::trace::trace_input(
        traces, tart::WireId(input->first), input->second);
    if (in.hops.empty() && in.arrive_wall_ns < 0) {
      std::cerr << "no trace evidence for input " << input->first << ":"
                << input->second << "\n";
      return kExitError;
    }
    if (json) {
      std::string out;
      print_input_json(out, in);
      std::cout << out << "\n";
    } else {
      print_input_text(in);
    }
    return kExitOk;
  }

  const tart::trace::LineageReport report =
      tart::trace::analyze_lineage(traces);

  // Worst inputs by end-to-end latency.
  std::vector<const tart::trace::InputLineage*> worst;
  worst.reserve(report.inputs.size());
  for (const tart::trace::InputLineage& in : report.inputs)
    worst.push_back(&in);
  std::sort(worst.begin(), worst.end(),
            [](const tart::trace::InputLineage* a,
               const tart::trace::InputLineage* b) {
              if (a->breakdown.total_ns != b->breakdown.total_ns)
                return a->breakdown.total_ns > b->breakdown.total_ns;
              if (a->wire != b->wire) return a->wire < b->wire;
              return a->seq < b->seq;
            });
  if (worst.size() > top_k) worst.resize(top_k);

  if (json) {
    std::string out = "{\"inputs\":" + std::to_string(report.inputs.size());
    out += ",\"acked\":" + std::to_string(report.acked);
    out += ",\"resolved\":" + std::to_string(report.resolved);
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.6f", report.resolved_fraction());
    out += ",\"resolved_fraction\":";
    out += frac;
    out += ",\"top\":[";
    bool first = true;
    for (const tart::trace::InputLineage* in : worst) {
      if (!first) out += ',';
      first = false;
      print_input_json(out, *in);
    }
    out += "]}";
    std::cout << out << "\n";
    return kExitOk;
  }

  char frac[32];
  std::snprintf(frac, sizeof(frac), "%.1f",
                report.resolved_fraction() * 100.0);
  std::cout << "inputs=" << report.inputs.size() << " acked=" << report.acked
            << " resolved=" << report.resolved << " (" << frac << "%)\n";
  if (!worst.empty()) {
    std::cout << "slowest " << worst.size() << " inputs:\n";
    for (const tart::trace::InputLineage* in : worst) print_input_text(*in);
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];

  std::vector<std::string> files;
  bool merged = false;
  bool recovery = false;
  bool json = false;
  std::optional<std::uint64_t> episode;
  std::optional<std::pair<std::uint32_t, std::uint64_t>> input;
  std::size_t top_k = 5;
  std::uint32_t mask = static_cast<std::uint32_t>(TraceCategory::kAll);
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--merged") {
      merged = true;
    } else if (a == "--recovery") {
      recovery = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--episode" && i + 1 < args.size()) {
      episode = std::stoull(args[++i]);
    } else if (a.rfind("--episode=", 0) == 0) {
      episode = std::stoull(a.substr(10));
    } else if (a == "--top" && i + 1 < args.size()) {
      top_k = std::stoull(args[++i]);
    } else if (a.rfind("--top=", 0) == 0) {
      top_k = std::stoull(a.substr(6));
    } else if (a == "--input" && i + 1 < args.size()) {
      const std::string spec = args[++i];
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--input expects WIRE:SEQ\n";
        return usage();
      }
      input = {static_cast<std::uint32_t>(std::stoul(spec.substr(0, colon))),
               std::stoull(spec.substr(colon + 1))};
    } else if (a == "--category=sched") {
      mask = static_cast<std::uint32_t>(TraceCategory::kScheduling);
    } else if (a == "--category=diag") {
      mask = static_cast<std::uint32_t>(TraceCategory::kDiagnostic);
    } else if (a == "--category=lineage") {
      mask = static_cast<std::uint32_t>(TraceCategory::kLineage);
    } else if (a == "--category=all") {
      mask = static_cast<std::uint32_t>(TraceCategory::kAll);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown flag: " << a << "\n";
      return usage();
    } else {
      files.push_back(a);
    }
  }

  try {
    if (cmd == "dump" && files.size() == 1) {
      return cmd_dump(tart::trace::TraceReader::read_file(files[0]), merged,
                      mask);
    }
    if (cmd == "diff" && files.size() == 2) {
      return cmd_diff(tart::trace::TraceReader::read_file(files[0]),
                      tart::trace::TraceReader::read_file(files[1]), recovery);
    }
    if (cmd == "stats" && files.size() == 1) {
      return cmd_stats(tart::trace::TraceReader::read_file(files[0]));
    }
    if (cmd == "explain" && !files.empty()) {
      std::vector<Trace> traces;
      traces.reserve(files.size());
      for (const std::string& f : files)
        traces.push_back(tart::trace::TraceReader::read_file(f));
      return cmd_explain(traces, episode, top_k, json);
    }
    if (cmd == "lineage" && !files.empty()) {
      std::vector<Trace> traces;
      traces.reserve(files.size());
      for (const std::string& f : files)
        traces.push_back(tart::trace::TraceReader::read_file(f));
      return cmd_lineage(traces, input, top_k, json);
    }
  } catch (const tart::trace::TraceError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
  return usage();
}
