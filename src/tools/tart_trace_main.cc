// tart-trace: inspect and compare flight-recorder trace files.
//
//   tart-trace dump <file> [--merged] [--category=sched|diag|all]
//   tart-trace diff <a> <b> [--recovery]
//   tart-trace stats <file>
//
// Exit codes: 0 success (diff: traces match), 1 diff found a divergence,
// 2 usage or I/O error.

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "trace/diff.h"
#include "trace/trace_event.h"
#include "trace/trace_file.h"

namespace {

using tart::trace::Trace;
using tart::trace::TraceCategory;
using tart::trace::TraceEvent;
using tart::trace::TraceEventKind;

constexpr int kExitOk = 0;
constexpr int kExitDivergence = 1;
constexpr int kExitError = 2;

int usage() {
  std::cerr
      << "usage:\n"
         "  tart-trace dump <file> [--merged] [--category=sched|diag|all]\n"
         "  tart-trace diff <a> <b> [--recovery]\n"
         "  tart-trace stats <file>\n";
  return kExitError;
}

std::string category_names(std::uint32_t mask) {
  std::string out;
  if (mask & static_cast<std::uint32_t>(TraceCategory::kScheduling))
    out += "scheduling";
  if (mask & static_cast<std::uint32_t>(TraceCategory::kDiagnostic))
    out += out.empty() ? "diagnostic" : "+diagnostic";
  return out.empty() ? "none" : out;
}

void print_event(const TraceEvent& e, bool with_component) {
  std::cout << std::setw(6) << e.seq << "  ";
  if (with_component) std::cout << "c" << e.component.value() << "  ";
  std::cout << std::left << std::setw(12) << tart::trace::name_of(e.kind)
            << std::right << " vt=" << tart::to_string(e.vt);
  if (e.wire.is_valid()) std::cout << " wire=" << e.wire.value();
  std::cout << " aux=" << e.aux;
  if (e.payload_hash != 0)
    std::cout << " payload=" << std::hex << std::setw(16) << std::setfill('0')
              << e.payload_hash << std::setfill(' ') << std::dec;
  std::cout << "\n";
}

int cmd_dump(const Trace& trace, bool merged, std::uint32_t mask) {
  std::cout << "format v" << trace.version
            << "  categories=" << category_names(trace.categories)
            << "  components=" << trace.components.size()
            << "  events=" << trace.total_events() << "\n";
  const auto wanted = [mask](const TraceEvent& e) {
    return (static_cast<std::uint32_t>(tart::trace::category_of(e.kind)) &
            mask) != 0;
  };
  if (merged) {
    std::cout << "-- merged (vt, component, seq) --\n";
    for (const TraceEvent& e : trace.merged())
      if (wanted(e)) print_event(e, /*with_component=*/true);
    return kExitOk;
  }
  for (const auto& ct : trace.components) {
    std::cout << "-- component " << ct.component.value() << " ("
              << ct.events.size() << " events) --\n";
    for (const TraceEvent& e : ct.events)
      if (wanted(e)) print_event(e, /*with_component=*/false);
  }
  return kExitOk;
}

int cmd_diff(const Trace& a, const Trace& b, bool recovery) {
  tart::trace::DiffOptions options;
  options.allow_stutter = recovery;
  const tart::trace::DiffResult result =
      tart::trace::diff_traces(a, b, options);
  std::cout << "compared=" << result.compared
            << " stutter=" << result.stutter_records
            << " skipped=" << result.skipped << "\n";
  if (result.identical()) {
    std::cout << (recovery ? "traces match (stutter tolerated)\n"
                           : "traces identical\n");
    return kExitOk;
  }
  std::cout << "DIVERGENCE\n" << result.divergence->describe() << "\n";
  return kExitDivergence;
}

int cmd_stats(const Trace& trace) {
  std::map<TraceEventKind, std::uint64_t> by_kind;
  // Pessimism-stall durations (kStallEnd aux = real ns stalled), bucketed
  // at 100us out to 50ms — the range the paper's pessimism study covers.
  tart::stats::Histogram stall_us(/*width=*/100.0, /*num_buckets=*/500);
  for (const auto& ct : trace.components) {
    for (const TraceEvent& e : ct.events) {
      ++by_kind[e.kind];
      if (e.kind == TraceEventKind::kStallEnd)
        stall_us.add(static_cast<double>(e.aux) / 1000.0);
    }
  }
  std::cout << "events by kind:\n";
  for (const auto& [kind, count] : by_kind)
    std::cout << "  " << std::left << std::setw(12)
              << tart::trace::name_of(kind) << std::right << " " << count
              << "\n";
  std::cout << "events by component:\n";
  for (const auto& ct : trace.components)
    std::cout << "  c" << ct.component.value() << " " << ct.events.size()
              << "\n";
  if (stall_us.count() > 0) {
    std::cout << "pessimism stall duration (us): count=" << stall_us.count()
              << " p50=" << stall_us.percentile(50)
              << " p99=" << stall_us.percentile(99) << "\n"
              << stall_us.render() << "\n";
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];

  std::vector<std::string> files;
  bool merged = false;
  bool recovery = false;
  std::uint32_t mask = static_cast<std::uint32_t>(TraceCategory::kAll);
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--merged") {
      merged = true;
    } else if (a == "--recovery") {
      recovery = true;
    } else if (a == "--category=sched") {
      mask = static_cast<std::uint32_t>(TraceCategory::kScheduling);
    } else if (a == "--category=diag") {
      mask = static_cast<std::uint32_t>(TraceCategory::kDiagnostic);
    } else if (a == "--category=all") {
      mask = static_cast<std::uint32_t>(TraceCategory::kAll);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown flag: " << a << "\n";
      return usage();
    } else {
      files.push_back(a);
    }
  }

  try {
    if (cmd == "dump" && files.size() == 1) {
      return cmd_dump(tart::trace::TraceReader::read_file(files[0]), merged,
                      mask);
    }
    if (cmd == "diff" && files.size() == 2) {
      return cmd_diff(tart::trace::TraceReader::read_file(files[0]),
                      tart::trace::TraceReader::read_file(files[1]), recovery);
    }
    if (cmd == "stats" && files.size() == 1) {
      return cmd_stats(tart::trace::TraceReader::read_file(files[0]));
    }
  } catch (const tart::trace::TraceError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
  return usage();
}
