// tart-trace: inspect and compare flight-recorder trace files.
//
//   tart-trace dump <file> [--merged] [--category=sched|diag|all]
//   tart-trace diff <a> <b> [--recovery]
//   tart-trace stats <file>
//   tart-trace explain <trace...> [--episode N | --top K | --json]
//
// `explain` loads one or more traces (one per node of a deployment) and
// reconstructs every pessimism-stall episode's causal chain — held message
// -> blocking wire -> upstream sender -> the promise that released it —
// with the estimator-error / propagation-lag split (see
// src/trace/forensics.h).
//
// Exit codes: 0 success (diff: traces match), 1 diff found a divergence,
// 2 usage or I/O error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "trace/diff.h"
#include "trace/forensics.h"
#include "trace/trace_event.h"
#include "trace/trace_file.h"

namespace {

using tart::trace::Trace;
using tart::trace::TraceCategory;
using tart::trace::TraceEvent;
using tart::trace::TraceEventKind;

constexpr int kExitOk = 0;
constexpr int kExitDivergence = 1;
constexpr int kExitError = 2;

int usage() {
  std::cerr
      << "usage:\n"
         "  tart-trace dump <file> [--merged] [--category=sched|diag|all]\n"
         "  tart-trace diff <a> <b> [--recovery]\n"
         "  tart-trace stats <file>\n"
         "  tart-trace explain <trace...> [--episode N | --top K | --json]\n";
  return kExitError;
}

std::string category_names(std::uint32_t mask) {
  std::string out;
  if (mask & static_cast<std::uint32_t>(TraceCategory::kScheduling))
    out += "scheduling";
  if (mask & static_cast<std::uint32_t>(TraceCategory::kDiagnostic))
    out += out.empty() ? "diagnostic" : "+diagnostic";
  return out.empty() ? "none" : out;
}

void print_event(const TraceEvent& e, bool with_component) {
  std::cout << std::setw(6) << e.seq << "  ";
  if (with_component) std::cout << "c" << e.component.value() << "  ";
  std::cout << std::left << std::setw(12) << tart::trace::name_of(e.kind)
            << std::right << " vt=" << tart::to_string(e.vt);
  if (e.wire.is_valid()) std::cout << " wire=" << e.wire.value();
  std::cout << " aux=" << e.aux;
  if (e.payload_hash != 0)
    std::cout << " payload=" << std::hex << std::setw(16) << std::setfill('0')
              << e.payload_hash << std::setfill(' ') << std::dec;
  std::cout << "\n";
}

int cmd_dump(const Trace& trace, bool merged, std::uint32_t mask) {
  std::cout << "format v" << trace.version
            << "  categories=" << category_names(trace.categories)
            << "  components=" << trace.components.size()
            << "  events=" << trace.total_events() << "\n";
  const auto wanted = [mask](const TraceEvent& e) {
    return (static_cast<std::uint32_t>(tart::trace::category_of(e.kind)) &
            mask) != 0;
  };
  if (merged) {
    std::cout << "-- merged (vt, component, seq) --\n";
    for (const TraceEvent& e : trace.merged())
      if (wanted(e)) print_event(e, /*with_component=*/true);
    return kExitOk;
  }
  for (const auto& ct : trace.components) {
    std::cout << "-- component " << ct.component.value() << " ("
              << ct.events.size() << " events) --\n";
    for (const TraceEvent& e : ct.events)
      if (wanted(e)) print_event(e, /*with_component=*/false);
  }
  return kExitOk;
}

int cmd_diff(const Trace& a, const Trace& b, bool recovery) {
  tart::trace::DiffOptions options;
  options.allow_stutter = recovery;
  const tart::trace::DiffResult result =
      tart::trace::diff_traces(a, b, options);
  std::cout << "compared=" << result.compared
            << " stutter=" << result.stutter_records
            << " skipped=" << result.skipped
            << " fast_forwarded=" << result.fast_forwarded << "\n";
  if (result.identical()) {
    std::cout << (recovery ? "traces match (stutter tolerated)\n"
                           : "traces identical\n");
    return kExitOk;
  }
  std::cout << "DIVERGENCE\n" << result.divergence->describe() << "\n";
  return kExitDivergence;
}

int cmd_stats(const Trace& trace) {
  std::map<TraceEventKind, std::uint64_t> by_kind;
  // Pessimism-stall durations (kStallEnd aux = real ns stalled), bucketed
  // at 100us out to 50ms — the range the paper's pessimism study covers.
  tart::stats::Histogram stall_us(/*width=*/100.0, /*num_buckets=*/500);
  for (const auto& ct : trace.components) {
    for (const TraceEvent& e : ct.events) {
      ++by_kind[e.kind];
      if (e.kind == TraceEventKind::kStallEnd)
        stall_us.add(static_cast<double>(e.aux) / 1000.0);
    }
  }
  std::cout << "events by kind:\n";
  for (const auto& [kind, count] : by_kind)
    std::cout << "  " << std::left << std::setw(12)
              << tart::trace::name_of(kind) << std::right << " " << count
              << "\n";
  std::cout << "events by component:\n";
  for (const auto& ct : trace.components)
    std::cout << "  c" << ct.component.value() << " " << ct.events.size()
              << "\n";
  if (stall_us.count() > 0) {
    std::cout << "pessimism stall duration (us): count=" << stall_us.count()
              << " p50=" << stall_us.percentile(50)
              << " p99=" << stall_us.percentile(99) << "\n"
              << stall_us.render() << "\n";
  }
  return kExitOk;
}

std::string comp_name(tart::ComponentId id) {
  return id.is_valid() ? "c" + std::to_string(id.value()) : "external";
}

std::string us(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1e3);
  return std::string(buf) + "us";
}

void print_episode(const tart::trace::Episode& e) {
  std::cout << "  " << comp_name(e.component) << " ep#" << e.id << ": held vt="
            << tart::to_string(e.held_vt) << " on wire "
            << (e.held_wire.is_valid() ? std::to_string(e.held_wire.value())
                                       : std::string("?"))
            << ", blocked by wire " << e.blocking_wire.value() << " (sender "
            << comp_name(e.sender) << "), stall=" << us(e.stall_ns)
            << " = est " << us(e.split.estimator_error_ns) << " + prop "
            << us(e.split.propagation_lag_ns) << ", deficit="
            << e.split.deficit_ticks << " ticks (est "
            << e.split.estimator_error_ticks << ")";
  if (e.resolving_emit_seq)
    std::cout << ", released by emit seq=" << *e.resolving_emit_seq;
  std::cout << "\n";
}

void print_episode_json(std::string& out, const tart::trace::Episode& e) {
  out += "{\"component\":" + std::to_string(e.component.value());
  out += ",\"episode\":" + std::to_string(e.id);
  out += ",\"held_vt\":" + std::to_string(e.held_vt.ticks());
  out += ",\"held_wire\":";
  out += e.held_wire.is_valid() ? std::to_string(e.held_wire.value()) : "null";
  out += ",\"blocking_wire\":" + std::to_string(e.blocking_wire.value());
  out += ",\"sender\":";
  out += e.sender.is_valid() ? std::to_string(e.sender.value())
                             : std::string("\"external\"");
  out += ",\"stall_ns\":" + std::to_string(e.stall_ns);
  out += ",\"estimator_error_ns\":" +
         std::to_string(e.split.estimator_error_ns);
  out += ",\"propagation_lag_ns\":" +
         std::to_string(e.split.propagation_lag_ns);
  out += ",\"deficit_ticks\":" + std::to_string(e.split.deficit_ticks);
  out += ",\"estimator_error_ticks\":" +
         std::to_string(e.split.estimator_error_ticks);
  out += ",\"attributed\":";
  out += e.attributed ? "true" : "false";
  if (e.resolving_emit_seq)
    out += ",\"resolving_emit_seq\":" + std::to_string(*e.resolving_emit_seq);
  out += '}';
}

int cmd_explain(const std::vector<Trace>& traces,
                std::optional<std::uint64_t> episode, std::size_t top_k,
                bool json) {
  const tart::trace::ForensicsReport report = tart::trace::analyze(traces);

  if (episode) {
    // Full causal chain for one episode id (across all components).
    bool found = false;
    for (const tart::trace::Episode& e : report.episodes) {
      if (e.id != *episode) continue;
      found = true;
      if (json) {
        std::string out;
        print_episode_json(out, e);
        std::cout << out << "\n";
        continue;
      }
      std::cout << "episode #" << e.id << " at " << comp_name(e.component)
                << ":\n"
                << "  held message: vt=" << tart::to_string(e.held_vt)
                << " wire=" << (e.held_wire.is_valid()
                                    ? std::to_string(e.held_wire.value())
                                    : std::string("?"))
                << "\n"
                << "  blocking wire: " << e.blocking_wire.value()
                << " (sender " << comp_name(e.sender) << "), horizon at begin "
                << tart::to_string(e.h_begin) << ", needed "
                << tart::to_string(e.needed) << " (deficit "
                << e.split.deficit_ticks << " ticks)\n"
                << "  stall: " << us(e.stall_ns) << " = estimator error "
                << us(e.split.estimator_error_ns) << " + propagation lag "
                << us(e.split.propagation_lag_ns) << "\n";
      if (e.promise_wall_ns)
        std::cout << "  released by promise published "
                  << us(*e.promise_wall_ns - e.begin_wall_ns)
                  << " after the stall began";
      else
        std::cout << "  no covering promise found in the sender's stream";
      if (e.resolving_emit_seq)
        std::cout << " (data emit seq=" << *e.resolving_emit_seq << ")";
      std::cout << "\n";
    }
    if (!found) {
      std::cerr << "no episode with id " << *episode << "\n";
      return kExitError;
    }
    return kExitOk;
  }

  if (json) {
    std::string out = "{\"episodes\":" + std::to_string(report.episodes.size());
    out += ",\"total_stall_ns\":" + std::to_string(report.total_stall_ns);
    out += ",\"attributed_stall_ns\":" +
           std::to_string(report.attributed_stall_ns);
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.6f", report.attributed_fraction());
    out += ",\"attributed_fraction\":";
    out += frac;
    out += ",\"blame\":[";
    bool first = true;
    for (const tart::trace::BlameTotal& b : report.blame) {
      if (!first) out += ',';
      first = false;
      out += "{\"component\":" + std::to_string(b.component.value());
      out += ",\"wire\":" + std::to_string(b.wire.value());
      out += ",\"sender\":";
      out += b.sender.is_valid() ? std::to_string(b.sender.value())
                                 : std::string("\"external\"");
      out += ",\"episodes\":" + std::to_string(b.episodes);
      out += ",\"stall_ns\":" + std::to_string(b.stall_ns);
      out += ",\"estimator_error_ns\":" + std::to_string(b.estimator_error_ns);
      out += ",\"propagation_lag_ns\":" + std::to_string(b.propagation_lag_ns);
      out += '}';
    }
    out += "],\"top\":[";
    first = true;
    for (const tart::trace::Episode* e : report.top(top_k)) {
      if (!first) out += ',';
      first = false;
      print_episode_json(out, *e);
    }
    out += "]}";
    std::cout << out << "\n";
    return kExitOk;
  }

  char frac[32];
  std::snprintf(frac, sizeof(frac), "%.1f",
                report.attributed_fraction() * 100.0);
  std::cout << "episodes=" << report.episodes.size() << " total_stall="
            << us(report.total_stall_ns) << " attributed=" << frac << "%\n";
  if (!report.blame.empty()) {
    std::cout << "blame (worst first):\n";
    for (const tart::trace::BlameTotal& b : report.blame)
      std::cout << "  " << comp_name(b.component) << " <- wire "
                << b.wire.value() << " <- " << comp_name(b.sender)
                << ": episodes=" << b.episodes << " stall=" << us(b.stall_ns)
                << " est_err=" << us(b.estimator_error_ns)
                << " prop_lag=" << us(b.propagation_lag_ns) << "\n";
  }
  const auto top = report.top(top_k);
  if (!top.empty()) {
    std::cout << "top " << top.size() << " episodes:\n";
    for (const tart::trace::Episode* e : top) print_episode(*e);
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];

  std::vector<std::string> files;
  bool merged = false;
  bool recovery = false;
  bool json = false;
  std::optional<std::uint64_t> episode;
  std::size_t top_k = 5;
  std::uint32_t mask = static_cast<std::uint32_t>(TraceCategory::kAll);
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--merged") {
      merged = true;
    } else if (a == "--recovery") {
      recovery = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--episode" && i + 1 < args.size()) {
      episode = std::stoull(args[++i]);
    } else if (a.rfind("--episode=", 0) == 0) {
      episode = std::stoull(a.substr(10));
    } else if (a == "--top" && i + 1 < args.size()) {
      top_k = std::stoull(args[++i]);
    } else if (a.rfind("--top=", 0) == 0) {
      top_k = std::stoull(a.substr(6));
    } else if (a == "--category=sched") {
      mask = static_cast<std::uint32_t>(TraceCategory::kScheduling);
    } else if (a == "--category=diag") {
      mask = static_cast<std::uint32_t>(TraceCategory::kDiagnostic);
    } else if (a == "--category=all") {
      mask = static_cast<std::uint32_t>(TraceCategory::kAll);
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown flag: " << a << "\n";
      return usage();
    } else {
      files.push_back(a);
    }
  }

  try {
    if (cmd == "dump" && files.size() == 1) {
      return cmd_dump(tart::trace::TraceReader::read_file(files[0]), merged,
                      mask);
    }
    if (cmd == "diff" && files.size() == 2) {
      return cmd_diff(tart::trace::TraceReader::read_file(files[0]),
                      tart::trace::TraceReader::read_file(files[1]), recovery);
    }
    if (cmd == "stats" && files.size() == 1) {
      return cmd_stats(tart::trace::TraceReader::read_file(files[0]));
    }
    if (cmd == "explain" && !files.empty()) {
      std::vector<Trace> traces;
      traces.reserve(files.size());
      for (const std::string& f : files)
        traces.push_back(tart::trace::TraceReader::read_file(f));
      return cmd_explain(traces, episode, top_k, json);
    }
  } catch (const tart::trace::TraceError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitError;
  }
  return usage();
}
