#include "transport/reliable_link.h"

namespace tart::transport {

namespace {
enum PacketKind : std::uint8_t { kData = 0, kAck = 1 };

std::vector<std::byte> make_data_packet(std::uint64_t seq, std::uint64_t ack,
                                        const Frame& frame) {
  serde::Writer w;
  w.write_u8(kData);
  w.write_varint(seq);
  w.write_varint(ack);
  encode_frame(w, frame);
  return w.take();
}

std::vector<std::byte> make_ack_packet(std::uint64_t ack) {
  serde::Writer w;
  w.write_u8(kAck);
  w.write_varint(ack);
  return w.take();
}
}  // namespace

ReliableChannel::ReliableChannel(ReliableConfig config, FrameHandler a_handler,
                                 FrameHandler b_handler)
    : config_(config),
      a_handler_(std::move(a_handler)),
      b_handler_(std::move(b_handler)) {
  forward_ = std::make_unique<NetworkLink>(
      config_.forward, [this](std::vector<std::byte> packet) {
        // Packets from A arrive here (endpoint B side).
        on_packet(a_to_b_, *backward_, b_handler_, std::move(packet));
      });
  backward_ = std::make_unique<NetworkLink>(
      config_.backward, [this](std::vector<std::byte> packet) {
        on_packet(b_to_a_, *forward_, a_handler_, std::move(packet));
      });
  retransmit_thread_ = std::thread([this] { retransmit_loop(); });
}

ReliableChannel::~ReliableChannel() { shutdown(); }

void ReliableChannel::send_from_a(const Frame& frame) {
  send(a_to_b_, *forward_, frame);
}

void ReliableChannel::send_from_b(const Frame& frame) {
  send(b_to_a_, *backward_, frame);
}

void ReliableChannel::send(Direction& dir, NetworkLink& link,
                           const Frame& frame) {
  std::vector<std::byte> packet;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t seq = dir.next_send_seq++;
    // Piggyback the cumulative ack for the *opposite* direction: what this
    // endpoint has delivered so far.
    Direction& opposite = (&dir == &a_to_b_) ? b_to_a_ : a_to_b_;
    packet = make_data_packet(seq, opposite.next_deliver_seq, frame);
    dir.unacked.emplace(seq, packet);
    dir.sent_at.emplace(seq, std::chrono::steady_clock::now());
  }
  link.send(std::move(packet));
}

void ReliableChannel::on_packet(Direction& dir, NetworkLink& reverse_link,
                                const FrameHandler& handler,
                                std::vector<std::byte> packet) {
  std::vector<Frame> to_deliver;
  bool send_ack = false;
  std::uint64_t ack_value = 0;
  try {
    serde::Reader r(packet);
    const auto kind = r.read_u8();
    if (kind == kAck) {
      const std::uint64_t ack = r.read_varint();
      const std::lock_guard<std::mutex> lock(mutex_);
      // An ack arriving on this direction acknowledges *this direction's
      // opposite*? No: acks travel on the reverse physical link of the data
      // they acknowledge. on_packet(dir=...) is invoked with the direction
      // whose data flows on the link the packet arrived on, so a standalone
      // ack carried on that link acknowledges the opposite direction.
      Direction& opposite = (&dir == &a_to_b_) ? b_to_a_ : a_to_b_;
      opposite.unacked.erase(opposite.unacked.begin(),
                             opposite.unacked.lower_bound(ack));
      opposite.sent_at.erase(opposite.sent_at.begin(),
                             opposite.sent_at.lower_bound(ack));
      return;
    }
    const std::uint64_t seq = r.read_varint();
    const std::uint64_t ack = r.read_varint();
    Frame frame = decode_frame(r);

    const std::lock_guard<std::mutex> lock(mutex_);
    // The piggybacked ack acknowledges data we sent on the reverse
    // direction.
    Direction& opposite = (&dir == &a_to_b_) ? b_to_a_ : a_to_b_;
    opposite.unacked.erase(opposite.unacked.begin(),
                           opposite.unacked.lower_bound(ack));
    opposite.sent_at.erase(opposite.sent_at.begin(),
                           opposite.sent_at.lower_bound(ack));

    if (seq < dir.next_deliver_seq) {
      // Duplicate of something already delivered: re-ack so the sender can
      // trim, then drop.
      send_ack = true;
      ack_value = dir.next_deliver_seq;
    } else {
      dir.reorder.emplace(seq, std::move(frame));
      while (!dir.reorder.empty() &&
             dir.reorder.begin()->first == dir.next_deliver_seq) {
        to_deliver.push_back(std::move(dir.reorder.begin()->second));
        dir.reorder.erase(dir.reorder.begin());
        ++dir.next_deliver_seq;
      }
      send_ack = true;
      ack_value = dir.next_deliver_seq;
    }
  } catch (const serde::DecodeError&) {
    return;  // corrupted packet: treat as lost
  }

  if (send_ack) reverse_link.send(make_ack_packet(ack_value));
  for (Frame& f : to_deliver) handler(std::move(f));
}

void ReliableChannel::retransmit_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    stop_cv_.wait_for(lock, config_.retransmit_timeout / 2,
                      [this] { return stop_; });
    if (stop_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto* dir : {&a_to_b_, &b_to_a_}) {
      NetworkLink& link = (dir == &a_to_b_) ? *forward_ : *backward_;
      std::vector<std::vector<std::byte>> resend;
      for (auto& [seq, at] : dir->sent_at) {
        if (now - at >= config_.retransmit_timeout) {
          resend.push_back(dir->unacked.at(seq));
          at = now;
          ++retransmissions_;
        }
      }
      if (resend.empty()) continue;
      lock.unlock();
      for (auto& packet : resend) link.send(std::move(packet));
      lock.lock();
    }
  }
}

void ReliableChannel::set_down(bool down) {
  forward_->set_down(down);
  backward_->set_down(down);
}

void ReliableChannel::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (retransmit_thread_.joinable()) retransmit_thread_.join();
  forward_->shutdown();
  backward_->shutdown();
}

std::uint64_t ReliableChannel::retransmissions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return retransmissions_;
}

}  // namespace tart::transport
