// Thread-safe blocking MPSC/MPMC queue used between engine threads and the
// simulated network's delivery threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tart::transport {

template <typename T>
class BlockingQueue {
 public:
  /// False when the queue is closed: the item was NOT enqueued. Callers
  /// that care about delivery (rather than racing a shutdown) must check —
  /// a silently swallowed push during teardown once masked message loss.
  [[nodiscard]] bool push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  [[nodiscard]] std::optional<T> try_pop() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wakes all waiters; subsequent pops drain then return nullopt.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tart::transport
