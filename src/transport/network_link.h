// Simulated unreliable physical link.
//
// The paper's failure model includes "link failures (causing loss,
// re-ordering, or duplication of messages sent over physical links)"
// (§II.A) while the middleware model assumes communication that is
// "reliable, FIFO, and fair". This link provides the former; the
// ReliableLink layered on top provides the latter.
//
// A background delivery thread dispatches byte packets to the receiver
// callback after a configurable real-time delay; packets may be dropped,
// duplicated, or reordered per the fault plan. The link can also be taken
// down entirely (fail-stop of the path) and brought back up.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace tart::transport {

struct LinkConfig {
  std::chrono::microseconds base_delay{50};
  std::chrono::microseconds delay_jitter{0};  ///< uniform extra [0, jitter]
  double loss_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Probability that a packet's delay is doubled (creates reordering
  /// relative to later packets without violating eventual delivery).
  double reorder_probability = 0.0;
  std::uint64_t seed = 1;
};

class NetworkLink {
 public:
  using Receiver = std::function<void(std::vector<std::byte>)>;

  NetworkLink(LinkConfig config, Receiver receiver);
  ~NetworkLink();

  NetworkLink(const NetworkLink&) = delete;
  NetworkLink& operator=(const NetworkLink&) = delete;

  /// Queues a packet; subject to the link's fault plan.
  void send(std::vector<std::byte> packet);

  /// Fail-stop the path: packets sent (and not yet delivered) are lost.
  void set_down(bool down);
  [[nodiscard]] bool is_down() const;

  /// Stops the delivery thread; undelivered packets are dropped.
  void shutdown();

  [[nodiscard]] std::uint64_t packets_sent() const;
  [[nodiscard]] std::uint64_t packets_delivered() const;
  [[nodiscard]] std::uint64_t packets_lost() const;

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliver_at;
    std::uint64_t id;  // FIFO tiebreak for equal times
    std::vector<std::byte> packet;
    bool operator>(const Pending& other) const {
      return std::tie(deliver_at, id) > std::tie(other.deliver_at, other.id);
    }
  };

  void delivery_loop();

  LinkConfig config_;
  Receiver receiver_;
  Rng rng_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  bool down_ = false;
  bool stop_ = false;
  std::uint64_t next_id_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;

  std::thread thread_;
};

}  // namespace tart::transport
