#include "transport/frame.h"

namespace tart::transport {

namespace {
enum Tag : std::uint8_t {
  kData = 0,
  kSilence = 1,
  kProbe = 2,
  kReplayRequest = 3,
  kStability = 4,
};
}  // namespace

void encode_frame(serde::Writer& w, const Frame& f) {
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, DataFrame>) {
          w.write_u8(kData);
          v.msg.encode(w);
        } else if constexpr (std::is_same_v<T, SilenceFrame>) {
          w.write_u8(kSilence);
          w.write_u32(v.wire.value());
          w.write_vt(v.through);
          w.write_varint(v.expected_seq);
        } else if constexpr (std::is_same_v<T, ProbeFrame>) {
          w.write_u8(kProbe);
          w.write_u32(v.wire.value());
        } else if constexpr (std::is_same_v<T, ReplayRequestFrame>) {
          w.write_u8(kReplayRequest);
          w.write_u32(v.wire.value());
          w.write_vt(v.after);
          w.write_varint(v.from_seq);
        } else if constexpr (std::is_same_v<T, StabilityFrame>) {
          w.write_u8(kStability);
          w.write_u32(v.wire.value());
          w.write_vt(v.through);
        }
      },
      f);
}

Frame decode_frame(serde::Reader& r) {
  switch (r.read_u8()) {
    case kData:
      return DataFrame{Message::decode(r)};
    case kSilence: {
      SilenceFrame f;
      f.wire = WireId(r.read_u32());
      f.through = r.read_vt();
      f.expected_seq = r.read_varint();
      return f;
    }
    case kProbe:
      return ProbeFrame{WireId(r.read_u32())};
    case kReplayRequest: {
      ReplayRequestFrame f;
      f.wire = WireId(r.read_u32());
      f.after = r.read_vt();
      f.from_seq = r.read_varint();
      return f;
    }
    case kStability: {
      StabilityFrame f;
      f.wire = WireId(r.read_u32());
      f.through = r.read_vt();
      return f;
    }
    default:
      throw serde::DecodeError("bad frame tag");
  }
}

std::vector<std::byte> frame_to_bytes(const Frame& f) {
  serde::Writer w;
  encode_frame(w, f);
  return w.take();
}

Frame frame_from_bytes(const std::vector<std::byte>& bytes) {
  serde::Reader r(bytes);
  Frame f = decode_frame(r);
  if (!r.at_end()) throw serde::DecodeError("trailing bytes after frame");
  return f;
}

WireId frame_wire(const Frame& f) {
  return std::visit(
      [](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, DataFrame>) {
          return v.msg.wire;
        } else {
          return v.wire;
        }
      },
      f);
}

}  // namespace tart::transport
