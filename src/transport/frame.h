// Cross-engine protocol frames.
//
// Everything engines exchange travels as one of these frames: data
// messages, silence announcements, curiosity probes (§II.H), replay
// requests after gaps or failover (§II.F.4), and stability
// acknowledgements that let senders trim their retention buffers.
#pragma once

#include <cstdint>
#include <variant>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "serde/archive.h"
#include "wire/message.h"

namespace tart::transport {

/// A component-to-component message (data, call, or reply tick).
struct DataFrame {
  Message msg;
};

/// "Wire `wire` carries no *further* data through tick `through`, and
/// exactly `expected_seq` data messages were sent at or before it."
///
/// The data-message count completes the paper's tick accounting (§II.F.1:
/// every tick is a data tick or a silence tick): a receiver holding fewer
/// than expected_seq messages knows ticks were lost — e.g. dropped while
/// its engine was down — and requests replay. expected_seq == 0 means the
/// count is unknown (plain horizon advance only).
struct SilenceFrame {
  WireId wire;
  VirtualTime through;
  std::uint64_t expected_seq = 0;
};

/// Curiosity probe: the receiver of `wire` is in a pessimism delay and asks
/// the sender to compute and announce a fresh silence interval.
struct ProbeFrame {
  WireId wire;
};

/// Replay request: receiver detected a gap (or restored a checkpoint) and
/// needs every tick after `after` (equivalently, from sequence `from_seq`).
struct ReplayRequestFrame {
  WireId wire;
  VirtualTime after;
  std::uint64_t from_seq = 0;
};

/// Stability acknowledgement: the receiver's state through `through` is
/// safely checkpointed; retained messages with vt <= through can never be
/// requested again.
struct StabilityFrame {
  WireId wire;
  VirtualTime through;
};

using Frame = std::variant<DataFrame, SilenceFrame, ProbeFrame,
                           ReplayRequestFrame, StabilityFrame>;

void encode_frame(serde::Writer& w, const Frame& f);
[[nodiscard]] Frame decode_frame(serde::Reader& r);

/// Serializes a frame to a standalone byte buffer (what crosses the
/// simulated network).
[[nodiscard]] std::vector<std::byte> frame_to_bytes(const Frame& f);
[[nodiscard]] Frame frame_from_bytes(const std::vector<std::byte>& bytes);

/// The wire a frame pertains to (routing key).
[[nodiscard]] WireId frame_wire(const Frame& f);

}  // namespace tart::transport
