// Reliable, FIFO, exactly-once frame channel over a pair of unreliable
// simulated links.
//
// The TART model assumes "all communication ... is guaranteed to be
// reliable, FIFO, and fair" (§II.A); this layer manufactures that guarantee
// on top of the lossy NetworkLink: per-packet sequence numbers, cumulative
// acknowledgements (piggybacked on data and sent standalone), a retransmit
// timer, an out-of-order reassembly buffer, and duplicate suppression.
//
// Both directions are independent sliding windows; an endpoint delivers
// frames to its handler in send order, exactly once, as long as the link
// eventually comes back up.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "transport/frame.h"
#include "transport/network_link.h"

namespace tart::transport {

struct ReliableConfig {
  LinkConfig forward;   ///< A -> B physical path.
  LinkConfig backward;  ///< B -> A physical path.
  std::chrono::microseconds retransmit_timeout{2000};
};

class ReliableChannel {
 public:
  using FrameHandler = std::function<void(Frame)>;

  /// `a_handler` receives frames sent by endpoint B and vice versa.
  /// Handlers run on link delivery threads; they must be thread-safe.
  ReliableChannel(ReliableConfig config, FrameHandler a_handler,
                  FrameHandler b_handler);
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  void send_from_a(const Frame& frame);
  void send_from_b(const Frame& frame);

  /// Fail-stop / restore the physical paths (both directions).
  void set_down(bool down);

  void shutdown();

  /// Diagnostics.
  [[nodiscard]] std::uint64_t retransmissions() const;

 private:
  struct Direction {
    // Sender state.
    std::uint64_t next_send_seq = 0;
    std::map<std::uint64_t, std::vector<std::byte>> unacked;  // seq -> packet
    std::map<std::uint64_t, std::chrono::steady_clock::time_point> sent_at;
    // Receiver state (owned by the opposite endpoint).
    std::uint64_t next_deliver_seq = 0;
    std::map<std::uint64_t, Frame> reorder;  // out-of-order stash
  };

  void send(Direction& dir, NetworkLink& link, const Frame& frame);
  void on_packet(Direction& dir, NetworkLink& reverse_link,
                 const FrameHandler& handler, std::vector<std::byte> packet);
  void retransmit_loop();

  ReliableConfig config_;
  FrameHandler a_handler_;
  FrameHandler b_handler_;

  mutable std::mutex mutex_;
  Direction a_to_b_;
  Direction b_to_a_;
  std::uint64_t retransmissions_ = 0;
  bool stop_ = false;

  // Declared after state so their delivery threads never observe
  // partially-constructed members.
  std::unique_ptr<NetworkLink> forward_;
  std::unique_ptr<NetworkLink> backward_;
  std::thread retransmit_thread_;
  std::condition_variable stop_cv_;
};

}  // namespace tart::transport
