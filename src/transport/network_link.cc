#include "transport/network_link.h"

namespace tart::transport {

NetworkLink::NetworkLink(LinkConfig config, Receiver receiver)
    : config_(config),
      receiver_(std::move(receiver)),
      rng_(config.seed),
      thread_([this] { delivery_loop(); }) {}

NetworkLink::~NetworkLink() { shutdown(); }

void NetworkLink::send(std::vector<std::byte> packet) {
  std::size_t copies = 1;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++sent_;
    if (stop_ || down_ || rng_.chance(config_.loss_probability)) {
      ++lost_;
      return;
    }
    if (rng_.chance(config_.duplicate_probability)) copies = 2;

    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < copies; ++i) {
      auto delay = config_.base_delay;
      if (config_.delay_jitter.count() > 0) {
        delay += std::chrono::microseconds(
            rng_.uniform_int(0, config_.delay_jitter.count()));
      }
      if (rng_.chance(config_.reorder_probability)) delay *= 2;
      queue_.push(Pending{now + delay, next_id_++, packet});
    }
  }
  cv_.notify_one();
}

void NetworkLink::set_down(bool down) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    down_ = down;
    if (down) {
      // Everything in flight on a failed path is lost.
      lost_ += queue_.size();
      while (!queue_.empty()) queue_.pop();
    }
  }
  cv_.notify_one();
}

bool NetworkLink::is_down() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return down_;
}

void NetworkLink::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t NetworkLink::packets_sent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sent_;
}
std::uint64_t NetworkLink::packets_delivered() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return delivered_;
}
std::uint64_t NetworkLink::packets_lost() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lost_;
}

void NetworkLink::delivery_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      continue;
    }
    const auto when = queue_.top().deliver_at;
    if (std::chrono::steady_clock::now() < when) {
      cv_.wait_until(lock, when);
      continue;
    }
    std::vector<std::byte> packet = queue_.top().packet;
    queue_.pop();
    ++delivered_;
    lock.unlock();
    receiver_(std::move(packet));
    lock.lock();
  }
}

}  // namespace tart::transport
