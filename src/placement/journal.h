// Migration intent journal: crash-safe ownership records.
//
// Live migration is a distributed handoff; a SIGKILL can land between any
// two of its stages. The journal is the local source of truth each node
// consults at boot to answer ONE question: "which components do I own right
// now, and is any handoff unresolved?" Records are appended with an fsync
// before the corresponding protocol action takes effect, so the action is
// never visible to peers without its record being durable:
//
//   source:  kIntent(E,c,from,to)  before anything is shipped
//            kRelease(E,...)       after the target acknowledged adoption
//            kAbort(E,...)         when the migration failed or was
//                                  abandoned (restart with no adopted peer)
//   target:  kStaged(E,...)        once the first slice landed complete
//            kAdopt(E,...)         before activating the component
//   anyone:  kApplied(E,c,->to)    a placement override learned from a peer
//                                  (kPlacementUpdate / HELLO), journaled so
//                                  routing survives a restart without peers
//
// Recovery rules (docs/PLACEMENT.md failure matrix):
//   - kAdopt / kRelease / kApplied records are placement overrides; the
//     highest epoch per component wins.
//   - a kIntent without kRelease/kAbort is an *in-doubt* handoff: the
//     source keeps ownership (deterministic re-execution makes a transient
//     dual owner harmless) until a peer proves adoption at epoch >= E via
//     HELLO/kPlacementUpdate, at which point kRelease is journaled; if the
//     target instead denies adoption, kAbort is journaled.
//   - a kStaged without kAdopt is discarded: the slice file is deleted and
//     the target never owned the component.
//
// File format: length-prefixed serde records, each CRC-32-guarded, fsynced
// per append. A torn tail (crash mid-append) is detected and dropped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"

namespace tart::placement {

enum class JournalRecordKind : std::uint8_t {
  kIntent = 1,
  kStaged = 2,
  kAdopt = 3,
  kRelease = 4,
  kAbort = 5,
  kApplied = 6,
};

struct JournalRecord {
  JournalRecordKind kind = JournalRecordKind::kIntent;
  std::uint64_t epoch = 0;
  ComponentId component;
  EngineId from;
  EngineId to;
};

[[nodiscard]] const char* journal_kind_name(JournalRecordKind kind);

/// What a journal scan recovers at boot.
struct JournalRecovery {
  std::vector<JournalRecord> records;  ///< valid prefix, in append order
  std::uint64_t max_epoch = 0;
  /// Placement overrides: adopt/release/applied records, highest epoch per
  /// component. `to` is the owning engine.
  std::vector<JournalRecord> overrides;
  /// Source-side intents with no release/abort — ownership in doubt.
  std::vector<JournalRecord> pending_intents;
  /// Target-side staged records with no adopt — staged state to discard.
  std::vector<JournalRecord> pending_staged;
  /// Adopt records (the migration slice may still be needed at boot if no
  /// later durable checkpoint covers the component).
  std::vector<JournalRecord> adopted;
};

class MigrationJournal {
 public:
  /// `dir` empty -> records are accepted and dropped (volatile node).
  explicit MigrationJournal(std::string dir);

  /// Appends + fsyncs. Returns false when the write failed (callers must
  /// treat this as a fatal migration error — never act without the record).
  bool append(const JournalRecord& record);

  [[nodiscard]] bool durable() const { return !dir_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Scans `dir`'s journal (missing file -> empty recovery).
  [[nodiscard]] static JournalRecovery recover(const std::string& dir);

  /// Path of the staged-slice blob for an epoch (written by the target
  /// between kStaged and kAdopt so adoption survives a restart).
  [[nodiscard]] static std::string slice_path(const std::string& dir,
                                              std::uint64_t epoch);
  /// Atomic write (tmp + fsync + rename). Returns false on failure.
  [[nodiscard]] static bool write_slice_file(const std::string& path,
                                             const std::vector<std::byte>& b);
  [[nodiscard]] static std::optional<std::vector<std::byte>> read_slice_file(
      const std::string& path);
  static void remove_slice_files(const std::string& dir,
                                 std::uint64_t below_epoch);

 private:
  std::string dir_;
  std::string path_;
};

}  // namespace tart::placement
