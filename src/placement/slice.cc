#include "placement/slice.h"

#include "serde/archive.h"

namespace tart::placement {
namespace {

constexpr std::uint32_t kSliceMagic = 0x54534C43;  // "TSLC"
constexpr std::uint8_t kSliceVersion = 1;

}  // namespace

std::vector<std::byte> MigrationSlice::encode() const {
  serde::Writer w;
  w.write_u32(kSliceMagic);
  w.write_u8(kSliceVersion);
  w.write_varint(epoch);
  w.write_u32(component.value());
  w.write_u32(from.value());
  w.write_u32(to.value());
  w.write_bool(is_delta);
  plan.base.encode(w);
  w.write_varint(plan.deltas.size());
  for (const auto& d : plan.deltas) d.encode(w);
  w.write_varint(inputs.size());
  for (const auto& in : inputs) {
    w.write_u32(in.wire.value());
    w.write_varint(in.base_seq);
    w.write_vt(in.base_vt);
    w.write_bool(in.closed);
    w.write_varint(in.records.size());
    for (const auto& m : in.records) m.encode(w);
  }
  return w.take();
}

std::optional<MigrationSlice> MigrationSlice::decode(
    const std::vector<std::byte>& blob) {
  try {
    serde::Reader r(blob);
    if (r.read_u32() != kSliceMagic) return std::nullopt;
    if (r.read_u8() != kSliceVersion) return std::nullopt;
    MigrationSlice s;
    s.epoch = r.read_varint();
    s.component = ComponentId(r.read_u32());
    s.from = EngineId(r.read_u32());
    s.to = EngineId(r.read_u32());
    s.is_delta = r.read_bool();
    s.plan.base = checkpoint::ComponentSnapshot::decode(r);
    const std::uint64_t deltas = r.read_varint();
    s.plan.deltas.reserve(deltas);
    for (std::uint64_t i = 0; i < deltas; ++i)
      s.plan.deltas.push_back(checkpoint::ComponentSnapshot::decode(r));
    const std::uint64_t wires = r.read_varint();
    s.inputs.reserve(wires);
    for (std::uint64_t i = 0; i < wires; ++i) {
      WireLogSlice in;
      in.wire = WireId(r.read_u32());
      in.base_seq = r.read_varint();
      in.base_vt = r.read_vt();
      in.closed = r.read_bool();
      const std::uint64_t n = r.read_varint();
      in.records.reserve(n);
      for (std::uint64_t j = 0; j < n; ++j)
        in.records.push_back(Message::decode(r));
      s.inputs.push_back(std::move(in));
    }
    if (!r.at_end()) return std::nullopt;
    return s;
  } catch (const serde::DecodeError&) {
    return std::nullopt;
  }
}

std::uint64_t MigrationSlice::record_count() const {
  std::uint64_t n = 0;
  for (const auto& in : inputs) n += in.records.size();
  return n;
}

}  // namespace tart::placement
