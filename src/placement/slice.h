// The unit of migration transfer: everything the target needs to adopt a
// component, in one CRC-verified blob.
//
// A slice is self-describing recovery input, not live state: it carries the
// component's RestorePlan (durable base checkpoint + deltas, exactly what a
// failover replica would restore from) plus, for each external input wire
// feeding the component, the log suffix the plan does NOT cover. Restoring
// the plan and replaying the suffix deterministically reproduces the
// component at the source's seal point — migration IS recovery, aimed at a
// different node (docs/PLACEMENT.md).
//
// Two slices travel per migration: the bulk slice (full plan + suffix at
// prepare time, streamed while the source keeps serving) and the delta
// slice (fresh deltas + records accrued during the transfer, shipped after
// the source seals). Both use this codec; `is_delta` flags the second.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "checkpoint/replica.h"
#include "common/ids.h"
#include "common/virtual_time.h"
#include "wire/message.h"

namespace tart::placement {

/// StreamOpenBody.kind tags for migration streams.
enum StreamKind : std::uint32_t {
  kSliceBulk = 1,
  kSliceDelta = 2,
};

/// One external input wire's log suffix: records with seq >= base_seq that
/// the slice's plan does not cover, plus the base accounting the target
/// needs for ExternalMessageLog::set_base.
struct WireLogSlice {
  WireId wire;
  std::uint64_t base_seq = 0;  ///< first seq carried (plan covers below)
  VirtualTime base_vt{-1};     ///< vt of the record below base_seq
  bool closed = false;  ///< external source already closed at the site
  std::vector<Message> records;
};

struct MigrationSlice {
  std::uint64_t epoch = 0;
  ComponentId component;
  EngineId from;
  EngineId to;
  bool is_delta = false;
  checkpoint::RestorePlan plan;
  std::vector<WireLogSlice> inputs;

  [[nodiscard]] std::vector<std::byte> encode() const;
  /// nullopt on any framing/CRC-free decode error (the stream layer already
  /// CRC-checked the blob; this guards version/shape mismatches).
  [[nodiscard]] static std::optional<MigrationSlice> decode(
      const std::vector<std::byte>& blob);

  [[nodiscard]] std::uint64_t record_count() const;
};

}  // namespace tart::placement
