#include "placement/coordinator.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "transport/frame.h"

namespace tart::placement {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Stream ids carry the migration epoch; bit 0 distinguishes the delta.
std::uint64_t bulk_stream_id(std::uint64_t epoch) { return epoch << 1; }
std::uint64_t delta_stream_id(std::uint64_t epoch) { return (epoch << 1) | 1; }

net::PlacementMove move_of(const JournalRecord& r) {
  return net::PlacementMove{r.component.value(), r.to.value(), r.epoch};
}

}  // namespace

MigrationCoordinator::MigrationCoordinator(
    core::Runtime& runtime, EngineId self,
    std::map<ComponentId, EngineId> initial_placement, Options options,
    Callbacks callbacks)
    : runtime_(runtime),
      self_(self),
      options_(std::move(options)),
      cb_(std::move(callbacks)),
      journal_(options_.journal_dir),
      table_(std::move(initial_placement)),
      receiver_(
          // Completion runs inside on_peer_message with mu_ held.
          [this](const net::StreamOpenBody& open, std::vector<std::byte> blob) {
            auto slice = MigrationSlice::decode(blob);
            if (!slice) return;  // shape mismatch; sender will time out
            const std::uint64_t e = slice->epoch;
            counters_.bytes_received += blob.size();
            if (journal_.durable()) {
              (void)MigrationJournal::write_slice_file(
                  MigrationJournal::slice_path(options_.journal_dir,
                                               open.stream_id),
                  blob);
            }
            Staged staged{open, std::move(*slice)};
            if (!staged.slice.is_delta) {
              journal_.append({JournalRecordKind::kStaged, e,
                               staged.slice.component, staged.slice.from,
                               staged.slice.to});
              target_stage_ = "staged";
              target_epoch_ = e;
              staged_bulk_[e] = std::move(staged);
              maybe_crash("staged");
            } else {
              staged_delta_[e] = std::move(staged);
            }
          },
          [](const net::StreamOpenBody& open) -> std::string {
            if (open.kind != kSliceBulk && open.kind != kSliceDelta)
              return "unknown migration stream kind";
            return "";
          }) {}

void MigrationCoordinator::maybe_crash(const char* stage) {
  if (!options_.crash_at.empty() && options_.crash_at == stage) _exit(137);
}

bool MigrationCoordinator::journal_or_fail(const JournalRecord& rec,
                                           std::string* error) {
  if (journal_.append(rec)) return true;
  if (error != nullptr)
    *error = std::string("migration journal append failed (") +
             journal_kind_name(rec.kind) + ")";
  return false;
}

// --- Boot --------------------------------------------------------------------

void MigrationCoordinator::recover_from_journal() {
  const JournalRecovery rec = MigrationJournal::recover(options_.journal_dir);
  std::unique_lock<std::mutex> lk(mu_);
  for (const JournalRecord& r : rec.overrides) table_.apply(move_of(r));
  for (const JournalRecord& r : rec.pending_intents)
    pending_intents_[r.component.value()] = r;
  // Staged-but-never-adopted slices are dead weight: the source still owns.
  for (const JournalRecord& r : rec.pending_staged) {
    ::unlink(MigrationJournal::slice_path(options_.journal_dir,
                                          bulk_stream_id(r.epoch))
                 .c_str());
    ::unlink(MigrationJournal::slice_path(options_.journal_dir,
                                          delta_stream_id(r.epoch))
                 .c_str());
  }
  // Re-adopt components this node owns by journal but that the static
  // placement (which the runtime booted from) puts elsewhere. The newest
  // durable checkpoint may already cover the component; otherwise the
  // staged slice file persisted between kStaged and kAdopt fills in.
  for (const JournalRecord& r : rec.adopted) {
    const ComponentId c = r.component;
    if (table_.engine_of(c) != self_) continue;  // later override moved it on
    auto plan = runtime_.export_component_plan(c);
    std::vector<core::Runtime::AdoptedInput> inputs;
    if (!plan) {
      const auto bulk_blob = MigrationJournal::read_slice_file(
          MigrationJournal::slice_path(options_.journal_dir,
                                       bulk_stream_id(r.epoch)));
      const auto delta_blob = MigrationJournal::read_slice_file(
          MigrationJournal::slice_path(options_.journal_dir,
                                       delta_stream_id(r.epoch)));
      std::optional<MigrationSlice> bulk, delta;
      if (bulk_blob) bulk = MigrationSlice::decode(*bulk_blob);
      if (delta_blob) delta = MigrationSlice::decode(*delta_blob);
      if (bulk) {
        inputs = merge_inputs(*bulk, delta ? &*delta : nullptr);
        plan = delta ? delta->plan : bulk->plan;
      }
    }
    std::string err;
    if (runtime_.adopt_component(c, self_, plan, inputs, &err)) {
      ++counters_.recovered_adoptions;
      runtime_.apply_placement(c, self_);
      if (cb_.on_ownership_changed) cb_.on_ownership_changed(c, true);
    }
  }
  // Components the static placement put HERE but the journal moved away:
  // the runtime booted them; evict so exactly one owner runs. Remaining
  // drifted entries are routing-only updates.
  for (const auto& [c, eng] : table_.snapshot()) {
    if (eng == self_) continue;
    if (runtime_.component_is_local(c))
      evict_local_locked(c, eng);
    else
      runtime_.apply_placement(c, eng);
  }
}

// --- Source side -------------------------------------------------------------

MigrationResult MigrationCoordinator::migrate(ComponentId component,
                                              EngineId to) {
  MigrationResult res;
  std::unique_lock<std::mutex> lk(mu_);
  if (source_) {
    res.error = "a migration is already in progress on this node";
    return res;
  }
  if (to == self_) {
    res.error = "target engine is the source";
    return res;
  }
  if (table_.engine_of(component) != self_) {
    res.error = "component is not owned by this node";
    return res;
  }
  if (pending_intents_.count(component.value()) != 0) {
    res.error = "a prior migration of this component is unresolved";
    return res;
  }

  const std::uint64_t epoch = table_.epoch() + 1;
  res.epoch = epoch;
  ++counters_.started;
  source_.emplace();
  source_->epoch = epoch;
  source_->component = component;
  source_->to = to;
  source_->stage = "prepare";

  const JournalRecord intent{JournalRecordKind::kIntent, epoch, component,
                             self_, to};
  if (!journal_or_fail(intent, &res.error)) {
    source_.reset();
    ++counters_.failed;
    return res;
  }
  pending_intents_[component.value()] = intent;
  maybe_crash("prepare");

  const auto fail_before_seal = [&](std::string why) {
    // The component never stopped serving; just tear the attempt down.
    journal_.append({JournalRecordKind::kAbort, epoch, component, self_, to});
    pending_intents_.erase(component.value());
    source_.reset();
    ++counters_.failed;
    res.error = std::move(why);
    return res;
  };

  lk.unlock();
  const bool ckpt_ok = runtime_.force_component_checkpoint(
      component, options_.checkpoint_timeout);
  lk.lock();
  if (!ckpt_ok) return fail_before_seal("component checkpoint barrier timed out");

  auto bulk = export_slice(component, to, epoch, /*is_delta=*/false, {},
                           &res.error);
  if (!bulk) return fail_before_seal(res.error);
  std::map<WireId, std::uint64_t> ship_end;
  for (const auto& in : bulk->inputs)
    ship_end[in.wire] = in.base_seq + in.records.size();

  std::vector<std::byte> blob = bulk->encode();
  res.slice_bytes = blob.size();
  res.record_count += bulk->record_count();

  source_->stage = "transfer";
  source_->sender = std::make_unique<net::StreamSender>(
      bulk_stream_id(epoch), kSliceBulk,
      "engine-" + std::to_string(self_.value()), std::move(blob),
      options_.stream);
  const Clock::time_point transfer_t0 = Clock::now();
  pump_sender_locked(lk);
  maybe_crash("transfer");

  const auto deadline = Clock::now() + options_.transfer_timeout;
  const auto wait_sender = [&]() -> bool {  // true = done, false = timeout/fail
    while (!source_->sender->done() && !source_->sender->failed()) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
          !source_->sender->done() && !source_->sender->failed())
        return false;
      pump_sender_locked(lk);
    }
    return source_->sender->done();
  };
  if (!wait_sender()) {
    return fail_before_seal(source_->sender->failed()
                                ? "bulk stream refused: " +
                                      source_->sender->error()
                                : "bulk stream transfer timed out");
  }
  res.transfer_ms = ms_since(transfer_t0);

  // --- Delta round: blackout begins -----------------------------------------
  source_->stage = "delta";
  maybe_crash("delta");
  lk.unlock();
  const bool delta_ckpt_ok = runtime_.force_component_checkpoint(
      component, options_.checkpoint_timeout);
  const Clock::time_point seal_t0 = Clock::now();
  // Seal: stop the runner, drop the input adapters (the gateway starts
  // redirecting new arrivals), flip local routing toward the target.
  std::vector<core::Runtime::SealedOutput> sealed;
  if (delta_ckpt_ok) sealed = runtime_.evict_component(component, to);
  if (cb_.on_ownership_changed) cb_.on_ownership_changed(component, false);
  lk.lock();
  ++counters_.evicted;
  table_.apply(net::PlacementMove{component.value(), to.value(), epoch});

  const auto rollback_to_local = [&](std::string why) {
    // Post-seal failure: re-adopt locally (the log and replica never left)
    // under a FRESH epoch so a target that did adopt loses the tie
    // deterministically on reconnect.
    journal_.append({JournalRecordKind::kAbort, epoch, component, self_, to});
    pending_intents_.erase(component.value());
    const std::uint64_t back = table_.epoch() + 1;
    lk.unlock();
    auto plan = runtime_.export_component_plan(component);
    std::string err;
    runtime_.adopt_component(component, self_, plan, {}, &err);
    lk.lock();
    table_.apply(net::PlacementMove{component.value(), self_.value(), back});
    journal_.append(
        {JournalRecordKind::kApplied, back, component, to, self_});
    broadcast_update_locked(back, {net::PlacementMove{component.value(),
                                                      self_.value(), back}});
    source_.reset();
    ++counters_.failed;
    res.error = std::move(why);
    lk.unlock();
    if (cb_.on_ownership_changed) cb_.on_ownership_changed(component, true);
    lk.lock();
    return res;
  };
  if (!delta_ckpt_ok)
    return rollback_to_local("seal checkpoint barrier timed out");

  auto delta = export_slice(component, to, epoch, /*is_delta=*/true, ship_end,
                            &res.error);
  if (!delta) return rollback_to_local(res.error);
  std::vector<std::byte> delta_blob = delta->encode();
  res.delta_bytes = delta_blob.size();
  res.record_count += delta->record_count();
  source_->sender = std::make_unique<net::StreamSender>(
      delta_stream_id(epoch), kSliceDelta,
      "engine-" + std::to_string(self_.value()), std::move(delta_blob),
      options_.stream);
  pump_sender_locked(lk);
  if (!wait_sender()) {
    return rollback_to_local(source_->sender->failed()
                                 ? "delta stream refused: " +
                                       source_->sender->error()
                                 : "delta stream transfer timed out");
  }

  // --- Cutover ---------------------------------------------------------------
  source_->stage = "cutover";
  net::PlacementUpdateBody commit;
  commit.placement_epoch = epoch;
  commit.moves = {net::PlacementMove{component.value(), to.value(), epoch}};
  if (cb_.send(to, net::NetMessage{net::NetMsgType::kMigrateCommit,
                                   commit.encode()}))
    source_->commit_sent = true;
  else
    source_->peer_up = false;
  maybe_crash("cutover-commit");
  while (!source_->commit_acked && !source_->commit_refused) {
    // A reconnect clears commit_sent: a commit in flight when the link (or
    // the target) died may never have been processed, and adoption is
    // idempotent on the target, so re-offer it.
    if (!source_->commit_sent && source_->peer_up) {
      source_->commit_sent = cb_.send(
          to, net::NetMessage{net::NetMsgType::kMigrateCommit,
                              commit.encode()});
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        !source_->commit_acked && !source_->commit_refused)
      return rollback_to_local("cutover commit timed out");
  }
  if (source_->commit_refused)
    return rollback_to_local("target refused adoption");

  // Target owns. Release, seal wires with final silence, tell the world.
  journal_.append({JournalRecordKind::kRelease, epoch, component, self_, to});
  pending_intents_.erase(component.value());
  for (const auto& s : sealed)
    runtime_.to_receiver(
        s.wire, transport::SilenceFrame{s.wire, s.horizon, s.next_seq});
  broadcast_update_locked(epoch, commit.moves);
  res.blackout_ms = ms_since(seal_t0);
  res.ok = true;
  ++counters_.completed;
  source_.reset();
  return res;
}

std::optional<MigrationSlice> MigrationCoordinator::export_slice(
    ComponentId component, EngineId to, std::uint64_t epoch, bool is_delta,
    const std::map<WireId, std::uint64_t>& floor, std::string* error) {
  auto plan = runtime_.export_component_plan(component);
  if (!plan) {
    if (error != nullptr) *error = "no checkpoint to export for component";
    return std::nullopt;
  }
  MigrationSlice s;
  s.epoch = epoch;
  s.component = component;
  s.from = self_;
  s.to = to;
  s.is_delta = is_delta;
  s.plan = std::move(*plan);
  const checkpoint::ComponentSnapshot& newest =
      s.plan.deltas.empty() ? s.plan.base : s.plan.deltas.back();
  const log::ExternalMessageLog& log = runtime_.external_log();
  for (const WireId wire : runtime_.external_inputs_of(component)) {
    WireLogSlice in;
    in.wire = wire;
    if (const auto it = floor.find(wire); it != floor.end()) {
      in.base_seq = it->second;
    } else {
      // Bulk slice: ship everything the plan does not cover.
      in.base_seq = 0;
      for (const auto& pos : newest.inputs)
        if (pos.wire == wire) in.base_seq = pos.next_seq;
    }
    in.base_vt = log.vt_below(wire, in.base_seq);
    in.closed = runtime_.external_input_state(wire).closed;
    in.records = log.replay_from_seq(wire, in.base_seq);
    s.inputs.push_back(std::move(in));
  }
  return s;
}

void MigrationCoordinator::pump_sender_locked(
    std::unique_lock<std::mutex>& lk) {
  (void)lk;
  if (!source_ || !source_->sender || !source_->peer_up) return;
  while (auto m = source_->sender->next_message()) {
    counters_.bytes_sent += m->payload.size();
    if (!cb_.send(source_->to, std::move(*m))) {
      source_->peer_up = false;
      return;
    }
  }
}

// --- Net-thread entry points -------------------------------------------------

bool MigrationCoordinator::on_peer_message(EngineId from,
                                           const net::NetMessage& msg) {
  std::unique_lock<std::mutex> lk(mu_);
  switch (msg.type) {
    case net::NetMsgType::kStreamOpen: {
      const auto reply = receiver_.on_open(net::StreamOpenBody::decode(msg.payload));
      if (reply) cb_.send(from, *reply);
      return true;
    }
    case net::NetMsgType::kStreamChunk: {
      const auto reply =
          receiver_.on_chunk(net::StreamChunkBody::decode(msg.payload));
      if (reply) cb_.send(from, *reply);
      return true;
    }
    case net::NetMsgType::kStreamClose:
      receiver_.on_close(net::StreamCloseBody::decode(msg.payload));
      return true;
    case net::NetMsgType::kStreamAck: {
      if (source_ && source_->sender) {
        source_->sender->on_ack(net::StreamAckBody::decode(msg.payload));
        pump_sender_locked(lk);
        cv_.notify_all();
      }
      return true;
    }
    case net::NetMsgType::kMigrateCommit:
      handle_commit(from, net::PlacementUpdateBody::decode(msg.payload));
      return true;
    case net::NetMsgType::kMigrateCommitAck: {
      const auto body = net::PlacementUpdateBody::decode(msg.payload);
      if (source_ && body.placement_epoch == source_->epoch) {
        if (body.moves.empty())
          source_->commit_refused = true;
        else
          source_->commit_acked = true;
        cv_.notify_all();
      }
      return true;
    }
    case net::NetMsgType::kPlacementUpdate: {
      const auto body = net::PlacementUpdateBody::decode(msg.payload);
      apply_remote_moves_locked(body.moves, lk);
      return true;
    }
    default:
      return false;
  }
}

void MigrationCoordinator::handle_commit(EngineId from,
                                         const net::PlacementUpdateBody& body) {
  if (body.moves.size() != 1) return;
  const net::PlacementMove move = body.moves[0];
  const std::uint64_t epoch = move.epoch;
  const ComponentId c(move.component);
  net::PlacementUpdateBody ack;
  ack.placement_epoch = epoch;
  const bool already_ours =
      table_.epoch_of(c) >= epoch && table_.engine_of(c) == self_;
  std::string err;
  if (already_ours || adopt_staged(epoch, from, &err)) {
    ack.moves = {move};
    if (!already_ours) {
      target_stage_ = "adopt";
      broadcast_update_locked(epoch, ack.moves);
    }
    maybe_crash("adopt");
  }
  cb_.send(from,
           net::NetMessage{net::NetMsgType::kMigrateCommitAck, ack.encode()});
  target_stage_.clear();
  target_epoch_ = 0;
}

bool MigrationCoordinator::adopt_staged(std::uint64_t epoch, EngineId from,
                                        std::string* error) {
  auto bulk_it = staged_bulk_.find(epoch);
  auto delta_it = staged_delta_.find(epoch);
  std::optional<MigrationSlice> bulk, delta;
  if (bulk_it != staged_bulk_.end()) bulk = std::move(bulk_it->second.slice);
  if (delta_it != staged_delta_.end())
    delta = std::move(delta_it->second.slice);
  if (!bulk && journal_.durable()) {
    // The receiver state died with a restart, but staging was durable.
    if (const auto blob = MigrationJournal::read_slice_file(
            MigrationJournal::slice_path(options_.journal_dir,
                                         bulk_stream_id(epoch))))
      bulk = MigrationSlice::decode(*blob);
    if (const auto blob = MigrationJournal::read_slice_file(
            MigrationJournal::slice_path(options_.journal_dir,
                                         delta_stream_id(epoch))))
      delta = MigrationSlice::decode(*blob);
  }
  if (!bulk) {
    if (error != nullptr) *error = "no staged slice for epoch";
    return false;
  }
  const ComponentId c = bulk->component;
  if (!journal_or_fail({JournalRecordKind::kAdopt, epoch, c, from, self_},
                       error))
    return false;
  const auto inputs = merge_inputs(*bulk, delta ? &*delta : nullptr);
  std::optional<checkpoint::RestorePlan> plan =
      delta ? std::move(delta->plan) : std::move(bulk->plan);
  if (!runtime_.adopt_component(c, self_, plan, inputs, error)) return false;
  table_.apply(net::PlacementMove{c.value(), self_.value(), epoch});
  ++counters_.adopted;
  if (bulk_it != staged_bulk_.end()) staged_bulk_.erase(bulk_it);
  if (delta_it != staged_delta_.end()) staged_delta_.erase(delta_it);
  if (cb_.on_ownership_changed) cb_.on_ownership_changed(c, true);
  return true;
}

std::vector<core::Runtime::AdoptedInput> MigrationCoordinator::merge_inputs(
    const MigrationSlice& bulk, const MigrationSlice* delta) {
  std::map<std::uint32_t, core::Runtime::AdoptedInput> by_wire;
  for (const auto& in : bulk.inputs) {
    core::Runtime::AdoptedInput a;
    a.wire = in.wire;
    a.base_seq = in.base_seq;
    a.base_vt = in.base_vt;
    a.closed = in.closed;
    a.records = in.records;
    by_wire[in.wire.value()] = std::move(a);
  }
  if (delta != nullptr) {
    for (const auto& in : delta->inputs) {
      auto it = by_wire.find(in.wire.value());
      if (it == by_wire.end()) {
        core::Runtime::AdoptedInput a;
        a.wire = in.wire;
        a.base_seq = in.base_seq;
        a.base_vt = in.base_vt;
        a.closed = in.closed;
        a.records = in.records;
        by_wire[in.wire.value()] = std::move(a);
        continue;
      }
      core::Runtime::AdoptedInput& a = it->second;
      a.closed = a.closed || in.closed;
      for (const auto& m : in.records) {
        // The delta resumes at the bulk's ship end; tolerate overlap from a
        // retried round by skipping already-carried seqs.
        if (a.records.empty() || m.seq > a.records.back().seq)
          a.records.push_back(m);
      }
    }
  }
  std::vector<core::Runtime::AdoptedInput> out;
  out.reserve(by_wire.size());
  for (auto& [w, a] : by_wire) out.push_back(std::move(a));
  return out;
}

void MigrationCoordinator::on_peer_connected(
    EngineId peer, std::uint64_t epoch,
    const std::vector<net::PlacementMove>& moves) {
  (void)epoch;
  std::unique_lock<std::mutex> lk(mu_);
  apply_remote_moves_locked(moves, lk);
  if (source_ && source_->to == peer) {
    source_->peer_up = true;
    source_->commit_sent = false;  // re-offer a possibly-lost commit
    if (source_->sender) {
      source_->sender->reopen();
      pump_sender_locked(lk);
    }
    cv_.notify_all();
  }
}

void MigrationCoordinator::on_peer_disconnected(EngineId peer) {
  const std::lock_guard<std::mutex> lk(mu_);
  if (source_ && source_->to == peer) {
    source_->peer_up = false;
    cv_.notify_all();
  }
  // Receiver partials are kept: the peer's re-open resumes the stream.
}

void MigrationCoordinator::apply_remote_moves(
    const std::vector<net::PlacementMove>& moves) {
  std::unique_lock<std::mutex> lk(mu_);
  apply_remote_moves_locked(moves, lk);
}

void MigrationCoordinator::apply_remote_moves_locked(
    const std::vector<net::PlacementMove>& moves,
    std::unique_lock<std::mutex>& lk) {
  for (const net::PlacementMove& m : moves) {
    const ComponentId c(m.component);
    const EngineId eng(m.engine);
    // A peer's override at epoch >= an unresolved local intent proves the
    // handoff completed: the in-doubt source releases. This must run BEFORE
    // the table staleness check — the source flipped its own table at the
    // seal, so the target's override arrives epoch-equal ("stale") yet is
    // still the proof of adoption.
    bool resolved_intent = false;
    if (const auto it = pending_intents_.find(m.component);
        it != pending_intents_.end() && m.epoch >= it->second.epoch &&
        eng != self_) {
      journal_.append(
          {JournalRecordKind::kRelease, m.epoch, c, self_, eng});
      pending_intents_.erase(it);
      resolved_intent = true;
      // The override IS proof of adoption — stronger than the commit ack.
      // Wake an in-flight migrate() whose ack the target's crash (or a
      // dropped link) swallowed, so it completes instead of timing out and
      // wrongly re-adopting a component the target already owns.
      if (source_ && source_->component == c && source_->to == eng &&
          m.epoch >= source_->epoch) {
        source_->commit_acked = true;
        cv_.notify_all();
      }
    }
    const bool was_local = table_.engine_of(c) == self_;
    if (!table_.apply(m)) continue;  // stale epoch
    ++counters_.updates_applied;
    if (!resolved_intent)
      journal_.append({JournalRecordKind::kApplied, m.epoch, c,
                       EngineId::invalid(), eng});
    if (eng != self_ && was_local) {
      evict_local_locked(c, eng);
    } else if (eng == self_ && !was_local) {
      // Named owner without a migration slice (journal lost, or an
      // operator-forced move): adopt from whatever the local replica and
      // log hold — recovery semantics rebuild the state.
      lk.unlock();
      auto plan = runtime_.export_component_plan(c);
      std::string err;
      const bool ok = runtime_.adopt_component(c, self_, plan, {}, &err);
      if (ok && cb_.on_ownership_changed) cb_.on_ownership_changed(c, true);
      lk.lock();
      if (ok) ++counters_.recovered_adoptions;
    } else {
      runtime_.apply_placement(c, eng);
    }
  }
}

void MigrationCoordinator::evict_local_locked(ComponentId c,
                                              EngineId new_owner) {
  const auto sealed = runtime_.evict_component(c, new_owner);
  for (const auto& s : sealed)
    runtime_.to_receiver(
        s.wire, transport::SilenceFrame{s.wire, s.horizon, s.next_seq});
  ++counters_.evicted;
  if (cb_.on_ownership_changed) cb_.on_ownership_changed(c, false);
}

void MigrationCoordinator::broadcast_update_locked(
    std::uint64_t epoch, const std::vector<net::PlacementMove>& moves) {
  if (!cb_.broadcast) return;
  net::PlacementUpdateBody body;
  body.placement_epoch = epoch;
  body.moves = moves;
  cb_.broadcast(
      net::NetMessage{net::NetMsgType::kPlacementUpdate, body.encode()});
}

// --- Introspection -----------------------------------------------------------

std::uint64_t MigrationCoordinator::epoch() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return table_.epoch();
}

std::vector<net::PlacementMove> MigrationCoordinator::overrides() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::vector<net::PlacementMove> out = table_.overrides();
  // Ownership is decided at release, not at the local routing flip. A move
  // whose intent is still unresolved must not leak into HELLOs: a target
  // that restarted mid-transfer (staged slice discarded) would otherwise
  // adopt from its EMPTY replica on reconnect and then ack the commit via
  // the already-ours shortcut — silently losing the component's state.
  std::erase_if(out, [this](const net::PlacementMove& m) {
    const auto it = pending_intents_.find(m.component);
    return it != pending_intents_.end() && it->second.epoch <= m.epoch &&
           it->second.to.value() == m.engine;
  });
  return out;
}

EngineId MigrationCoordinator::engine_of(ComponentId c) const {
  const std::lock_guard<std::mutex> lk(mu_);
  return table_.engine_of(c);
}

std::map<ComponentId, EngineId> MigrationCoordinator::placement_snapshot()
    const {
  const std::lock_guard<std::mutex> lk(mu_);
  return table_.snapshot();
}

std::vector<MigrationInfo> MigrationCoordinator::inflight() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::vector<MigrationInfo> out;
  if (source_) {
    out.push_back(MigrationInfo{source_->epoch, source_->component, self_,
                                source_->to, source_->stage});
  }
  if (!target_stage_.empty() && target_epoch_ != 0) {
    if (const auto it = staged_bulk_.find(target_epoch_);
        it != staged_bulk_.end()) {
      out.push_back(MigrationInfo{target_epoch_, it->second.slice.component,
                                  it->second.slice.from, self_,
                                  target_stage_});
    }
  }
  return out;
}

MigrationCounters MigrationCoordinator::counters() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

std::size_t MigrationCoordinator::pending_intents() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return pending_intents_.size();
}

void MigrationCoordinator::on_durable_checkpoint() {
  const std::lock_guard<std::mutex> lk(mu_);
  if (!journal_.durable()) return;
  // Slice files for epochs at or below the table's epoch are superseded by
  // the checkpoint that just landed; in-flight stagings use higher epochs.
  MigrationJournal::remove_slice_files(options_.journal_dir,
                                       bulk_stream_id(table_.epoch() + 1));
}

}  // namespace tart::placement
