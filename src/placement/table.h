// Epoch-guarded placement overrides on top of the static deployment map.
//
// The deployment file gives every node the SAME initial component->engine
// map (epoch 0). Live migration moves components at runtime; each completed
// move stamps the component with the move's epoch — a cluster-wide
// monotonically increasing counter allocated by the migration source as
// max(seen)+1. The table holds only the *overrides*; resolution order is
// "override if present, else static placement".
//
// Convergence rule (the whole consistency story): for a given component,
// the override with the HIGHEST epoch wins, everywhere. Overrides travel in
// the HELLO handshake and in kPlacementUpdate broadcasts, and are journaled
// (placement::MigrationJournal kApplied) so a restarted node routes
// correctly before any peer reconnects. A node applying an override for a
// component it currently runs knows it lost ownership; one applying an
// override naming itself knows it must adopt. Stale frames routed by a
// lagging peer are harmless — the receiving node drops non-local frames and
// counts them, and the sender's own seq-gap replay machinery re-delivers
// once routing converges (docs/PLACEMENT.md).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "net/wire_format.h"

namespace tart::placement {

class PlacementTable {
 public:
  /// `initial`: the static (epoch-0) placement from the deployment config.
  explicit PlacementTable(std::map<ComponentId, EngineId> initial)
      : static_(std::move(initial)) {}

  /// Applies one override; returns true when it changed the table (epoch
  /// higher than any existing override for the component).
  bool apply(const net::PlacementMove& move);

  /// Applies a batch; returns the moves that actually changed the table.
  std::vector<net::PlacementMove> apply_all(
      const std::vector<net::PlacementMove>& moves);

  [[nodiscard]] EngineId engine_of(ComponentId c) const;
  /// Epoch of the override governing `c` (0 when static placement rules).
  [[nodiscard]] std::uint64_t epoch_of(ComponentId c) const;
  /// Highest epoch applied so far (0 = pristine static placement).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// All overrides, for HELLO / kPlacementUpdate bodies.
  [[nodiscard]] std::vector<net::PlacementMove> overrides() const;
  /// Full resolved map (static + overrides), for status reporting.
  [[nodiscard]] std::map<ComponentId, EngineId> snapshot() const;

 private:
  std::map<ComponentId, EngineId> static_;
  std::map<ComponentId, net::PlacementMove> overrides_;
  std::uint64_t epoch_ = 0;
};

}  // namespace tart::placement
