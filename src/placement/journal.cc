#include "placement/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <map>
#include <sstream>

#include "net/wire_format.h"
#include "serde/archive.h"

namespace tart::placement {
namespace {

constexpr const char* kJournalFile = "migration.journal";

std::vector<std::byte> encode_record(const JournalRecord& r) {
  serde::Writer w;
  w.write_u8(static_cast<std::uint8_t>(r.kind));
  w.write_varint(r.epoch);
  w.write_u32(r.component.value());
  w.write_u32(r.from.value());
  w.write_u32(r.to.value());
  return w.take();
}

JournalRecord decode_record(const std::vector<std::byte>& payload) {
  serde::Reader r(payload);
  JournalRecord rec;
  rec.kind = static_cast<JournalRecordKind>(r.read_u8());
  rec.epoch = r.read_varint();
  rec.component = ComponentId(r.read_u32());
  rec.from = EngineId(r.read_u32());
  rec.to = EngineId(r.read_u32());
  if (!r.at_end()) throw serde::DecodeError("trailing bytes in journal record");
  return rec;
}

bool write_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

const char* journal_kind_name(JournalRecordKind kind) {
  switch (kind) {
    case JournalRecordKind::kIntent:
      return "intent";
    case JournalRecordKind::kStaged:
      return "staged";
    case JournalRecordKind::kAdopt:
      return "adopt";
    case JournalRecordKind::kRelease:
      return "release";
    case JournalRecordKind::kAbort:
      return "abort";
    case JournalRecordKind::kApplied:
      return "applied";
  }
  return "?";
}

MigrationJournal::MigrationJournal(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) path_ = dir_ + "/" + kJournalFile;
}

bool MigrationJournal::append(const JournalRecord& record) {
  if (dir_.empty()) return true;  // volatile node: nothing to make durable
  const std::vector<std::byte> payload = encode_record(record);
  serde::Writer w;
  w.write_u32(static_cast<std::uint32_t>(payload.size()));
  for (const std::byte b : payload) w.write_u8(std::to_integer<std::uint8_t>(b));
  w.write_u32(net::crc32(payload));
  const std::vector<std::byte>& framed = w.bytes();

  const int fd = ::open(path_.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const bool ok =
      write_all(fd, framed.data(), framed.size()) && ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

JournalRecovery MigrationJournal::recover(const std::string& dir) {
  JournalRecovery out;
  if (dir.empty()) return out;
  std::ifstream in(dir + "/" + kJournalFile, std::ios::binary);
  if (!in) return out;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string& raw = buf.str();
  const auto* bytes = reinterpret_cast<const std::byte*>(raw.data());

  const auto read_le32 = [&raw](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t{static_cast<unsigned char>(raw[at + i])} << (8 * i);
    return v;
  };
  std::size_t off = 0;
  while (off + 4 <= raw.size()) {
    const std::uint32_t len = read_le32(off);
    if (off + 4 + len + 4 > raw.size()) break;  // torn tail
    std::vector<std::byte> payload(bytes + off + 4, bytes + off + 4 + len);
    const std::uint32_t crc = read_le32(off + 4 + len);
    if (net::crc32(payload) != crc) break;  // torn/corrupt tail
    try {
      out.records.push_back(decode_record(payload));
    } catch (const serde::DecodeError&) {
      break;
    }
    off += 4 + len + 4;
  }

  // Reduce the record sequence to the recovery views the boot path needs.
  std::map<std::uint32_t, JournalRecord> overrides;  // component -> winner
  std::map<std::uint32_t, JournalRecord> intents;    // component -> open intent
  std::map<std::uint64_t, JournalRecord> staged;     // epoch -> open staged
  for (const JournalRecord& rec : out.records) {
    out.max_epoch = std::max(out.max_epoch, rec.epoch);
    const std::uint32_t c = rec.component.value();
    switch (rec.kind) {
      case JournalRecordKind::kIntent:
        intents[c] = rec;
        break;
      case JournalRecordKind::kStaged:
        staged[rec.epoch] = rec;
        break;
      case JournalRecordKind::kAdopt:
        staged.erase(rec.epoch);
        out.adopted.push_back(rec);
        [[fallthrough]];
      case JournalRecordKind::kApplied: {
        const auto it = overrides.find(c);
        if (it == overrides.end() || it->second.epoch <= rec.epoch)
          overrides[c] = rec;
        break;
      }
      case JournalRecordKind::kRelease: {
        if (const auto it = intents.find(c);
            it != intents.end() && it->second.epoch <= rec.epoch)
          intents.erase(it);
        const auto it = overrides.find(c);
        if (it == overrides.end() || it->second.epoch <= rec.epoch)
          overrides[c] = rec;
        break;
      }
      case JournalRecordKind::kAbort:
        if (const auto it = intents.find(c);
            it != intents.end() && it->second.epoch <= rec.epoch)
          intents.erase(it);
        break;
    }
  }
  for (const auto& [c, rec] : overrides) out.overrides.push_back(rec);
  for (const auto& [c, rec] : intents) out.pending_intents.push_back(rec);
  for (const auto& [e, rec] : staged) out.pending_staged.push_back(rec);
  return out;
}

std::string MigrationJournal::slice_path(const std::string& dir,
                                         std::uint64_t epoch) {
  return dir + "/migration.slice." + std::to_string(epoch);
}

bool MigrationJournal::write_slice_file(const std::string& path,
                                        const std::vector<std::byte>& b) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const bool wrote = write_all(fd, b.data(), b.size()) && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  const auto slash = path.find_last_of('/');
  if (slash != std::string::npos) fsync_dir(path.substr(0, slash));
  return true;
}

std::optional<std::vector<std::byte>> MigrationJournal::read_slice_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string& raw = buf.str();
  const auto* bytes = reinterpret_cast<const std::byte*>(raw.data());
  return std::vector<std::byte>(bytes, bytes + raw.size());
}

void MigrationJournal::remove_slice_files(const std::string& dir,
                                          std::uint64_t below_epoch) {
  for (std::uint64_t e = below_epoch > 16 ? below_epoch - 16 : 0;
       e < below_epoch; ++e)
    ::unlink(slice_path(dir, e).c_str());
}

}  // namespace tart::placement
