#include "placement/table.h"

#include <algorithm>

namespace tart::placement {

bool PlacementTable::apply(const net::PlacementMove& move) {
  epoch_ = std::max(epoch_, move.epoch);
  const ComponentId c(move.component);
  const auto it = overrides_.find(c);
  if (it != overrides_.end() && it->second.epoch >= move.epoch) return false;
  // An override that restates the static placement still matters: its epoch
  // outranks any earlier override (a component migrated away and back).
  const EngineId current = engine_of(c);
  overrides_[c] = move;
  return EngineId(move.engine) != current;
}

std::vector<net::PlacementMove> PlacementTable::apply_all(
    const std::vector<net::PlacementMove>& moves) {
  std::vector<net::PlacementMove> changed;
  for (const auto& m : moves)
    if (apply(m)) changed.push_back(m);
  return changed;
}

EngineId PlacementTable::engine_of(ComponentId c) const {
  if (const auto it = overrides_.find(c); it != overrides_.end())
    return EngineId(it->second.engine);
  if (const auto it = static_.find(c); it != static_.end()) return it->second;
  return EngineId::invalid();
}

std::uint64_t PlacementTable::epoch_of(ComponentId c) const {
  const auto it = overrides_.find(c);
  return it == overrides_.end() ? 0 : it->second.epoch;
}

std::vector<net::PlacementMove> PlacementTable::overrides() const {
  std::vector<net::PlacementMove> out;
  out.reserve(overrides_.size());
  for (const auto& [c, m] : overrides_) out.push_back(m);
  return out;
}

std::map<ComponentId, EngineId> PlacementTable::snapshot() const {
  std::map<ComponentId, EngineId> out = static_;
  for (const auto& [c, m] : overrides_) out[c] = EngineId(m.engine);
  return out;
}

}  // namespace tart::placement
