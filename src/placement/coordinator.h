// MigrationCoordinator: the staged live-migration protocol + the node's
// placement control plane.
//
// Migration IS recovery, aimed at a different node. A migrated component is
// adopted exactly the way a failed-over component is restored: from a
// RestorePlan plus log replay, with request_replays() healing internal
// wires from upstream retention. The coordinator's job is only to move the
// recovery *inputs* (checkpoint slice + external-log suffix) across the
// network and to sequence the ownership flip so that, at every instant and
// after any SIGKILL, the cluster converges on exactly one owner.
//
// Source-side stages (each is a crash-injection point, --migrate-crash-at):
//
//   prepare   journal kIntent(E); force a FULL soft checkpoint of the
//             component; export the bulk slice (RestorePlan + external-log
//             suffix past the plan's coverage).
//   transfer  stream the bulk slice to the target (chunked, CRC-verified,
//             resumable — net/stream_channel.h) while the component KEEPS
//             SERVING; arrivals during the transfer accrue in the log.
//   delta     blackout begins: force a fresh checkpoint, evict the
//             component (stop runner, drop input adapters — the gateway
//             starts redirecting), flip local routing to the target, and
//             stream the much smaller delta slice (fresh plan + records
//             accrued since the bulk slice).
//   cutover   send kMigrateCommit(E); target journals kAdopt, adopts, acks;
//             source journals kRelease, seals each output wire with a final
//             silence frame at its published horizon, and broadcasts
//             kPlacementUpdate. Blackout ends at the ack.
//
// Target-side stages: staged (bulk slice durable on disk + kStaged
// journaled) and adopt (kAdopt journaled, component live, ack sent).
//
// Ownership rule after ANY crash: the journal decides (placement/journal.h).
// An unresolved kIntent keeps the source owning; kAdopt makes the target
// owner; the overlap window — target adopted, source not yet released — is
// the one state where both nodes briefly run the component, and it is
// BENIGN: deterministic replay makes the two executions byte-identical, so
// downstream duplicate-discard by (vt, seq) absorbs the echo. Reconnect
// HELLOs carry placement overrides; the higher epoch wins and the stale
// owner journals kRelease and evicts (docs/PLACEMENT.md failure matrix).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "net/stream_channel.h"
#include "net/wire_format.h"
#include "placement/journal.h"
#include "placement/slice.h"
#include "placement/table.h"

namespace tart::placement {

struct MigrationResult {
  bool ok = false;
  std::string error;
  std::uint64_t epoch = 0;
  std::uint64_t slice_bytes = 0;  ///< bulk slice size
  std::uint64_t delta_bytes = 0;  ///< delta slice size
  std::uint64_t record_count = 0;  ///< log records shipped (bulk + delta)
  double transfer_ms = 0;   ///< bulk stream wall time (component serving)
  double blackout_ms = 0;   ///< seal -> commit-ack wall time
};

/// One in-flight migration, as shown by /status and tart-obs.
struct MigrationInfo {
  std::uint64_t epoch = 0;
  ComponentId component;
  EngineId from;
  EngineId to;
  std::string stage;  ///< prepare|transfer|delta|cutover|staged|adopt
};

struct MigrationCounters {
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t adopted = 0;
  std::uint64_t evicted = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t recovered_adoptions = 0;  ///< adoptions replayed from journal
};

class MigrationCoordinator {
 public:
  struct Callbacks {
    /// Enqueue one envelope to a peer; false when the peer link is down.
    std::function<bool(EngineId, net::NetMessage)> send;
    /// Broadcast to every connected peer (placement updates).
    std::function<void(net::NetMessage)> broadcast;
    /// Local ownership changed (gateway refreshes its local-input set).
    std::function<void(ComponentId, bool now_local)> on_ownership_changed;
  };

  struct Options {
    std::string journal_dir;  ///< "" = volatile (no journal, no staging)
    std::string crash_at;     ///< fault injection: _exit(137) at this stage
    std::chrono::milliseconds checkpoint_timeout{10'000};
    std::chrono::milliseconds transfer_timeout{120'000};
    net::StreamSender::Options stream;
  };

  MigrationCoordinator(core::Runtime& runtime, EngineId self,
                       std::map<ComponentId, EngineId> initial_placement,
                       Options options, Callbacks callbacks);

  // --- Boot -----------------------------------------------------------------

  /// Replays the migration journal: re-applies placement overrides,
  /// re-adopts components whose adoption predates the newest durable
  /// checkpoint (from staged slice files), discards staged-but-unadopted
  /// slices, and keeps unresolved intents pending. Call after the runtime
  /// booted, before serving peers.
  void recover_from_journal();

  // --- Source side (control thread; blocking) -------------------------------

  MigrationResult migrate(ComponentId component, EngineId to);

  // --- Net-thread entry points ----------------------------------------------

  /// Stream + migration envelopes from peer `from`. Replies go out via
  /// callbacks. Returns true when the type was consumed.
  bool on_peer_message(EngineId from, const net::NetMessage& msg);

  void on_peer_connected(EngineId peer, std::uint64_t epoch,
                         const std::vector<net::PlacementMove>& moves);
  void on_peer_disconnected(EngineId peer);

  /// Applies remote overrides (HELLO or kPlacementUpdate): journals them,
  /// adopts/evicts when they name this node, resolves pending intents.
  void apply_remote_moves(const std::vector<net::PlacementMove>& moves);

  // --- Introspection (any thread) -------------------------------------------

  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::vector<net::PlacementMove> overrides() const;
  [[nodiscard]] EngineId engine_of(ComponentId c) const;
  [[nodiscard]] std::map<ComponentId, EngineId> placement_snapshot() const;
  [[nodiscard]] std::vector<MigrationInfo> inflight() const;
  [[nodiscard]] MigrationCounters counters() const;
  /// Unresolved source-side intents (ownership in doubt until a peer's
  /// override or an explicit abort resolves them).
  [[nodiscard]] std::size_t pending_intents() const;

  /// Durable-checkpoint completion hook: staged slice files at or below
  /// `epoch_bound` are superseded and removed.
  void on_durable_checkpoint();

 private:
  struct Staged {
    net::StreamOpenBody open;
    MigrationSlice slice;
  };

  void maybe_crash(const char* stage);
  void pump_sender_locked(std::unique_lock<std::mutex>& lk);
  [[nodiscard]] bool journal_or_fail(const JournalRecord& rec,
                                     std::string* error);
  /// Builds a slice for `component`: plan + external-log records with
  /// seq >= the per-wire floor (bulk: plan coverage; delta: bulk ship end).
  [[nodiscard]] std::optional<MigrationSlice> export_slice(
      ComponentId component, EngineId to, std::uint64_t epoch, bool is_delta,
      const std::map<WireId, std::uint64_t>& floor, std::string* error);
  void handle_commit(EngineId from, const net::PlacementUpdateBody& body);
  /// Adopts from staged slices; returns false (with error) when the staged
  /// state is incomplete or the runtime refused.
  bool adopt_staged(std::uint64_t epoch, EngineId from, std::string* error);
  [[nodiscard]] static std::vector<core::Runtime::AdoptedInput> merge_inputs(
      const MigrationSlice& bulk, const MigrationSlice* delta);
  void apply_remote_moves_locked(const std::vector<net::PlacementMove>& moves,
                                 std::unique_lock<std::mutex>& lk);
  void evict_local_locked(ComponentId c, EngineId new_owner);
  void broadcast_update_locked(std::uint64_t epoch,
                               const std::vector<net::PlacementMove>& moves);

  core::Runtime& runtime_;
  const EngineId self_;
  Options options_;
  Callbacks cb_;
  MigrationJournal journal_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  PlacementTable table_;
  MigrationCounters counters_;

  // Source-side in-flight state (one migration at a time per source).
  struct SourceMigration {
    std::uint64_t epoch = 0;
    ComponentId component;
    EngineId to;
    std::string stage;
    std::unique_ptr<net::StreamSender> sender;
    bool peer_up = true;
    bool commit_sent = false;
    bool commit_acked = false;
    bool commit_refused = false;
  };
  std::optional<SourceMigration> source_;

  // Target-side staging: epoch -> {bulk, delta} as they land.
  std::map<std::uint64_t, Staged> staged_bulk_;
  std::map<std::uint64_t, Staged> staged_delta_;
  std::string target_stage_;  ///< staged|adopt ("" when idle)
  std::uint64_t target_epoch_ = 0;

  /// Source-side intents awaiting resolution (survive restarts).
  std::map<std::uint32_t, JournalRecord> pending_intents_;

  net::StreamReceiver receiver_;
};

}  // namespace tart::placement
