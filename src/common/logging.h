// Lightweight leveled diagnostics. Quiet by default so benchmarks are not
// perturbed; enable with set_log_level for debugging runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>

namespace tart {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();
void log_line(LogLevel level, const std::string& line);

/// Steady-clock token bucket for rate-limiting noisy call sites: `rate`
/// tokens per second up to `burst`. try_acquire() is thread-safe (single
/// CAS on the packed state) and returns the number of events suppressed
/// since the last grant, so the next allowed line can say "(+N dropped)".
class LogTokenBucket {
 public:
  LogTokenBucket(double rate_per_s, std::uint32_t burst);

  struct Grant {
    bool allowed = false;
    std::uint64_t suppressed = 0;  ///< Denied events since the last grant.
  };
  Grant try_acquire();

 private:
  double rate_per_s_;
  double burst_;
  std::atomic<std::int64_t> tokens_milli_;  ///< Millitokens, for CAS math.
  std::atomic<std::int64_t> last_refill_ns_;
  std::atomic<std::uint64_t> suppressed_{0};
};

namespace detail {
/// Counter behind TART_LOG_EVERY_N: passes events 0, n, 2n, ...
class Every {
 public:
  explicit Every(std::uint64_t n) : n_(n ? n : 1) {}
  bool tick() { return count_.fetch_add(1, std::memory_order_relaxed) % n_ == 0; }

 private:
  std::uint64_t n_;
  std::atomic<std::uint64_t> count_{0};
};

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << '[' << basename(file) << ':' << line << "] ";
  }
  ~LogMessage() { log_line(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  static const char* basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p)
      if (*p == '/') base = p + 1;
    return base;
  }
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define TART_LOG(level)                                              \
  if (::tart::log_level() > ::tart::LogLevel::level) {               \
  } else                                                             \
    ::tart::detail::LogMessage(::tart::LogLevel::level, __FILE__,    \
                               __LINE__)                             \
        .stream()

/// Level-checked log line that fires on the 1st, (n+1)th, (2n+1)th, ...
/// hit of this call site. For hot-path warnings (per-message decode
/// failures under soak) where one line per incident is noise control
/// enough. `n` is fixed at first evaluation.
#define TART_LOG_EVERY_N(level, n)                                   \
  if (::tart::log_level() > ::tart::LogLevel::level) {               \
  } else if (![](std::uint64_t every) {                              \
               static ::tart::detail::Every counter(every);          \
               return counter.tick();                                \
             }(n)) {                                                 \
  } else                                                             \
    ::tart::detail::LogMessage(::tart::LogLevel::level, __FILE__,    \
                               __LINE__)                             \
        .stream()

#define TART_WARN_EVERY_N(n) TART_LOG_EVERY_N(kWarn, n)

#define TART_TRACE TART_LOG(kTrace)
#define TART_DEBUG TART_LOG(kDebug)
#define TART_INFO TART_LOG(kInfo)
#define TART_WARN TART_LOG(kWarn)
#define TART_ERROR TART_LOG(kError)

}  // namespace tart
