// Lightweight leveled diagnostics. Quiet by default so benchmarks are not
// perturbed; enable with set_log_level for debugging runs.
#pragma once

#include <sstream>
#include <string>

namespace tart {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();
void log_line(LogLevel level, const std::string& line);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << '[' << basename(file) << ':' << line << "] ";
  }
  ~LogMessage() { log_line(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  static const char* basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p)
      if (*p == '/') base = p + 1;
    return base;
  }
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define TART_LOG(level)                                              \
  if (::tart::log_level() > ::tart::LogLevel::level) {               \
  } else                                                             \
    ::tart::detail::LogMessage(::tart::LogLevel::level, __FILE__,    \
                               __LINE__)                             \
        .stream()

#define TART_TRACE TART_LOG(kTrace)
#define TART_DEBUG TART_LOG(kDebug)
#define TART_INFO TART_LOG(kInfo)
#define TART_WARN TART_LOG(kWarn)
#define TART_ERROR TART_LOG(kError)

}  // namespace tart
