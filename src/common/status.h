// Minimal status/result types used across module boundaries where an
// exception would be inappropriate (e.g. transport-layer delivery results).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace tart {

enum class StatusCode {
  kOk,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kUnavailable,
  kDataLoss,
  kOutOfRange,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  friend std::ostream& operator<<(std::ostream& os, const Status& s) {
    os << to_string(s.code_);
    if (!s.message_.empty()) os << ": " << s.message_;
    return os;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-status result.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tart
