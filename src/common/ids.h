// Strong identifier types for the entities of a TART deployment.
//
// Wire ids double as the deterministic tie-breaking rule of the paper
// (footnote 2): when two messages carry the identical virtual time, the
// message on the wire with the smaller id is processed first.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <ostream>

namespace tart {

namespace detail {

/// CRTP strong integer id. Distinct Tag types do not convert to each other.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] static constexpr StrongId invalid() {
    return StrongId(UINT32_MAX);
  }
  [[nodiscard]] constexpr bool is_valid() const { return value_ != UINT32_MAX; }

  constexpr auto operator<=>(const StrongId&) const = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << '#' << id.value_;
  }

 private:
  std::uint32_t value_ = UINT32_MAX;
};

}  // namespace detail

struct ComponentTag {};
struct WireTag {};
struct EngineTag {};
struct PortTag {};

/// Identifies a component instance within a deployment.
using ComponentId = detail::StrongId<ComponentTag>;
/// Identifies a directed wire (sender port -> receiver port). Total order on
/// WireId is the deterministic tie-break for equal virtual times.
using WireId = detail::StrongId<WireTag>;
/// Identifies an execution engine (a machine or container).
using EngineId = detail::StrongId<EngineTag>;
/// Identifies a port within a component.
using PortId = detail::StrongId<PortTag>;

}  // namespace tart

namespace std {
template <typename Tag>
struct hash<tart::detail::StrongId<Tag>> {
  size_t operator()(tart::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
