// Deterministic pseudo-random number generation.
//
// Everything in a TART reproduction that looks random (workload arrivals,
// jitter, loss injection) must be reproducible from a seed, so experiments
// and property tests can be re-run bit-identically. We use xoshiro256**
// seeded via splitmix64 — fast, high quality, and trivially portable.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace tart {

/// splitmix64: used to expand a single seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic generator with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDF00DULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Unbiased uniform integer in [0, bound) (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling on the high bits; bias is negligible for our use
    // but we reject the classic way for exactness.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Standard normal via Box–Muller (deterministic; no cached spare so the
  /// draw count per call is fixed).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean (inter-arrival times of a Poisson
  /// process — the paper's external clients feed via a Poisson process).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Lognormal: exp(N(mu, sigma^2)). Used for right-skewed jitter banks.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Fork an independent stream (for per-entity determinism regardless of
  /// interleaving of draws between entities).
  Rng fork() { return Rng(next() ^ 0xA02BDBF7BB3C0A7ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tart
