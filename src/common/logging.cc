#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace tart {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& line) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s %s\n", level_tag(level), line.c_str());
}

LogTokenBucket::LogTokenBucket(double rate_per_s, std::uint32_t burst)
    : rate_per_s_(rate_per_s > 0 ? rate_per_s : 1.0),
      burst_(burst > 0 ? static_cast<double>(burst) : 1.0),
      tokens_milli_(static_cast<std::int64_t>(burst_ * 1000.0)),
      last_refill_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count()) {}

LogTokenBucket::Grant LogTokenBucket::try_acquire() {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  // Refill: one thread wins the CAS on last_refill_ns_ and deposits the
  // elapsed-time tokens; losers just see a fresher timestamp.
  std::int64_t last = last_refill_ns_.load(std::memory_order_relaxed);
  if (now_ns > last &&
      last_refill_ns_.compare_exchange_strong(last, now_ns,
                                              std::memory_order_relaxed)) {
    const double earned_milli =
        static_cast<double>(now_ns - last) * 1e-9 * rate_per_s_ * 1000.0;
    const auto cap = static_cast<std::int64_t>(burst_ * 1000.0);
    std::int64_t cur = tokens_milli_.load(std::memory_order_relaxed);
    std::int64_t next;
    do {
      next = std::min<std::int64_t>(
          cap, cur + static_cast<std::int64_t>(earned_milli));
    } while (!tokens_milli_.compare_exchange_weak(cur, next,
                                                  std::memory_order_relaxed));
  }
  // Spend one token if available.
  std::int64_t cur = tokens_milli_.load(std::memory_order_relaxed);
  while (cur >= 1000) {
    if (tokens_milli_.compare_exchange_weak(cur, cur - 1000,
                                            std::memory_order_relaxed)) {
      return Grant{true, suppressed_.exchange(0, std::memory_order_relaxed)};
    }
  }
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return Grant{false, 0};
}

}  // namespace tart
