#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tart {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& line) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s %s\n", level_tag(level), line.c_str());
}

}  // namespace tart
