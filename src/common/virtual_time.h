// Virtual time: the discretized logical clock that drives deterministic
// scheduling in TART. One tick == one (virtual) nanosecond, matching the
// paper's convention ("In our implementation, a tick is a nanosecond").
//
// Virtual time is intended to approximate real time, but correctness only
// requires that (a) causally later events have later virtual times and
// (b) all virtual-time computations are deterministic.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>
#include <string>

namespace tart {

/// A duration measured in virtual ticks (nanoseconds of virtual time).
class TickDuration {
 public:
  constexpr TickDuration() = default;
  constexpr explicit TickDuration(std::int64_t ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const { return ticks_; }

  /// Convenience constructors mirroring common units used in the paper.
  [[nodiscard]] static constexpr TickDuration nanos(std::int64_t n) {
    return TickDuration(n);
  }
  [[nodiscard]] static constexpr TickDuration micros(std::int64_t us) {
    return TickDuration(us * 1000);
  }
  [[nodiscard]] static constexpr TickDuration millis(std::int64_t ms) {
    return TickDuration(ms * 1'000'000);
  }
  [[nodiscard]] static constexpr TickDuration seconds(std::int64_t s) {
    return TickDuration(s * 1'000'000'000);
  }

  [[nodiscard]] constexpr double to_micros() const {
    return static_cast<double>(ticks_) / 1000.0;
  }

  constexpr auto operator<=>(const TickDuration&) const = default;

  constexpr TickDuration& operator+=(TickDuration other) {
    ticks_ += other.ticks_;
    return *this;
  }
  constexpr TickDuration& operator-=(TickDuration other) {
    ticks_ -= other.ticks_;
    return *this;
  }

  friend constexpr TickDuration operator+(TickDuration a, TickDuration b) {
    return TickDuration(a.ticks_ + b.ticks_);
  }
  friend constexpr TickDuration operator-(TickDuration a, TickDuration b) {
    return TickDuration(a.ticks_ - b.ticks_);
  }
  friend constexpr TickDuration operator*(TickDuration a, std::int64_t k) {
    return TickDuration(a.ticks_ * k);
  }
  friend constexpr TickDuration operator*(std::int64_t k, TickDuration a) {
    return TickDuration(a.ticks_ * k);
  }

 private:
  std::int64_t ticks_ = 0;
};

/// A point in virtual time. Totally ordered; arithmetic with TickDuration.
class VirtualTime {
 public:
  constexpr VirtualTime() = default;
  constexpr explicit VirtualTime(std::int64_t ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const { return ticks_; }

  [[nodiscard]] static constexpr VirtualTime zero() { return VirtualTime(0); }
  /// Sentinel: later than any reachable virtual time. Used as the silence
  /// horizon of a closed (finished) wire.
  [[nodiscard]] static constexpr VirtualTime infinity() {
    return VirtualTime(std::numeric_limits<std::int64_t>::max());
  }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ticks_ == std::numeric_limits<std::int64_t>::max();
  }

  constexpr auto operator<=>(const VirtualTime&) const = default;

  friend constexpr VirtualTime operator+(VirtualTime t, TickDuration d) {
    return VirtualTime(t.ticks_ + d.ticks());
  }
  friend constexpr VirtualTime operator-(VirtualTime t, TickDuration d) {
    return VirtualTime(t.ticks_ - d.ticks());
  }
  friend constexpr TickDuration operator-(VirtualTime a, VirtualTime b) {
    return TickDuration(a.ticks_ - b.ticks_);
  }

  VirtualTime& operator+=(TickDuration d) {
    ticks_ += d.ticks();
    return *this;
  }

  /// Predecessor / successor ticks (saturating at infinity).
  [[nodiscard]] constexpr VirtualTime prev() const {
    return is_infinite() ? *this : VirtualTime(ticks_ - 1);
  }
  [[nodiscard]] constexpr VirtualTime next() const {
    return is_infinite() ? *this : VirtualTime(ticks_ + 1);
  }

 private:
  std::int64_t ticks_ = 0;
};

[[nodiscard]] constexpr VirtualTime max(VirtualTime a, VirtualTime b) {
  return a < b ? b : a;
}
[[nodiscard]] constexpr VirtualTime min(VirtualTime a, VirtualTime b) {
  return a < b ? a : b;
}

inline std::ostream& operator<<(std::ostream& os, VirtualTime t) {
  if (t.is_infinite()) return os << "VT(+inf)";
  return os << "VT(" << t.ticks() << ")";
}
inline std::ostream& operator<<(std::ostream& os, TickDuration d) {
  return os << d.ticks() << "t";
}

[[nodiscard]] inline std::string to_string(VirtualTime t) {
  return t.is_infinite() ? "+inf" : std::to_string(t.ticks());
}

}  // namespace tart
