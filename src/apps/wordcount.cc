#include "apps/wordcount.h"

#include <chrono>
#include <thread>
#include <stdexcept>

namespace tart::apps {

void WordCountSender::on_message(core::Context& ctx, PortId /*port*/,
                                 const Payload& payload) {
  const auto& sent = payload.as_strings();
  std::int64_t count = 0;
  for (const auto& word : sent) {
    ctx.count_block(0);
    const std::int64_t prior = map_.contains(word) ? *map_.find(word) : 0;
    map_.put(word, prior + 1);
    count += prior;
  }
  ctx.send(PortId(0), Payload(count));
}

std::optional<estimator::BlockCounters> WordCountSender::prescient_counters(
    PortId, const Payload& payload) const {
  estimator::BlockCounters c;
  c.count(0, payload.as_strings().size());
  return c;
}

void TotalingMerger::on_message(core::Context& ctx, PortId /*port*/,
                                const Payload& payload) {
  ctx.count_block(0);
  total_.mutate([&](std::int64_t& t) { t += payload.as_int(); });
  ctx.send(PortId(0), Payload(total_.get()));
}

void ScalingService::on_message(core::Context&, PortId, const Payload&) {
  throw std::logic_error("ScalingService accepts calls only");
}

Payload ScalingService::on_call(core::Context& ctx, PortId /*port*/,
                                const Payload& payload) {
  ctx.count_block(0);
  calls_.mutate([](std::int64_t& c) { ++c; });
  return Payload(payload.as_int() * calls_.get());
}

void CallingComponent::on_message(core::Context& ctx, PortId /*port*/,
                                  const Payload& payload) {
  ctx.count_block(0);
  ctx.send(PortId(0), ctx.call(PortId(1), payload));
}

void Passthrough::on_message(core::Context& ctx, PortId /*port*/,
                             const Payload& payload) {
  ctx.count_block(0);
  ctx.send(PortId(0), payload);
}

void SpinService::on_message(core::Context& ctx, PortId /*port*/,
                             const Payload& payload) {
  ctx.count_block(0);
  if (spin_) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(service_ns_);
    while (std::chrono::steady_clock::now() < until) {
      // burn
    }
  } else {
    std::this_thread::sleep_for(std::chrono::nanoseconds(service_ns_));
  }
  ctx.send(PortId(0), payload);
}

Payload sentence(std::initializer_list<const char*> words) {
  std::vector<std::string> v;
  v.reserve(words.size());
  for (const char* w : words) v.emplace_back(w);
  return Payload(std::move(v));
}

Payload sentence(const std::vector<std::string>& words) {
  return Payload(words);
}

}  // namespace tart::apps
