// Stream-processing operator library.
//
// The paper motivates TART with component-oriented event/stream processing
// middleware ("mediation components, transformation components, and
// business logic components", §I.A): components that filter, transform,
// window-aggregate, join and deduplicate event streams while keeping
// state in ordinary variables. These operators are ordinary TART
// components — fully checkpointable, estimator-annotated (block counters),
// and deterministic, so entire analytics pipelines inherit transparent
// recovery.
//
// Event encoding: an event is a Payload holding a vector<int64> of the
// form [key, value]; operators that only need a scalar use value alone.
// Windowing uses *virtual* time (Context::now()) — the deterministic
// timing service of §II.B — so window assignment replays identically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "checkpoint/checkpointed_map.h"
#include "checkpoint/checkpointed_value.h"
#include "core/component.h"

namespace tart::apps {

/// [key, value] event helpers.
[[nodiscard]] inline Payload event(std::int64_t key, std::int64_t value) {
  return Payload(std::vector<std::int64_t>{key, value});
}
[[nodiscard]] inline std::int64_t event_key(const Payload& p) {
  return p.as_ints()[0];
}
[[nodiscard]] inline std::int64_t event_value(const Payload& p) {
  return p.as_ints()[1];
}

/// Drops events whose value falls outside [min_value, max_value].
/// Stateless apart from a drop counter (checkpointed so metrics replay).
class FilterOperator : public core::Component {
 public:
  FilterOperator(std::int64_t min_value, std::int64_t max_value)
      : min_(min_value), max_(max_value) {}

  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override;
  void restore_full(serde::Reader& r) override;

  [[nodiscard]] std::int64_t dropped() const { return dropped_.get(); }

 private:
  std::int64_t min_;
  std::int64_t max_;
  checkpoint::CheckpointedValue<std::int64_t> dropped_{0};
};

/// Affine transform on the value: value' = scale * value + offset.
class MapOperator : public core::Component {
 public:
  MapOperator(std::int64_t scale, std::int64_t offset)
      : scale_(scale), offset_(offset) {}

  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }

 private:
  std::int64_t scale_;
  std::int64_t offset_;
};

/// Per-key tumbling-window sum over *virtual* time. An event landing in a
/// newer window than the one currently open for its key flushes the old
/// aggregate downstream as [key, sum] and opens the new window. Because
/// windows are assigned from deterministic virtual time, replay reproduces
/// identical window contents — the property a wall-clock-windowed system
/// cannot offer.
class TumblingWindowSum : public core::Component {
 public:
  explicit TumblingWindowSum(TickDuration width) : width_(width.ticks()) {}

  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override;
  void capture_delta(serde::Writer& w) override;
  [[nodiscard]] bool supports_delta() const override { return true; }
  void restore_full(serde::Reader& r) override;
  void apply_delta(serde::Reader& r) override;

 private:
  struct Window {
    std::int64_t id = -1;
    std::int64_t sum = 0;
  };
  friend void encode_window(serde::Writer&, const Window&);

  std::int64_t width_;
  // key -> open window (id, partial sum), encoded as two parallel maps to
  // reuse the incremental container.
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> window_id_;
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> window_sum_;
};

/// Keyed inner join of two streams. Port 0 and port 1 each carry [key,
/// value] events; the latest value per key per side is retained, and a
/// match emits [key, left_value + right_value] (a symbolic combine —
/// enough to observe join correctness deterministically).
class KeyedJoin : public core::Component {
 public:
  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override;
  void capture_delta(serde::Writer& w) override;
  [[nodiscard]] bool supports_delta() const override { return true; }
  void restore_full(serde::Reader& r) override;
  void apply_delta(serde::Reader& r) override;

 private:
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> left_;
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> right_;
};

/// Drops events whose (key, value) pair was already seen. The seen-set is
/// the component's state — after failover it must replay to exactly the
/// same contents or the output stream would change.
class DeduplicateOperator : public core::Component {
 public:
  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override;
  void capture_delta(serde::Writer& w) override;
  [[nodiscard]] bool supports_delta() const override { return true; }
  void restore_full(serde::Reader& r) override;
  void apply_delta(serde::Reader& r) override;

 private:
  checkpoint::CheckpointedMap<std::string, std::int64_t> seen_;
};

/// Routes each event to output port (key mod fanout) — a deterministic
/// partitioner for scale-out stages.
class KeyRouter : public core::Component {
 public:
  explicit KeyRouter(std::uint32_t fanout) : fanout_(fanout) {}

  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }

 private:
  std::uint32_t fanout_;
};

/// Running top-1 tracker: emits [key, value] whenever a new maximum value
/// is observed (monotonic output — the paper's example of output where
/// stutter is trivially compensated).
class RunningMax : public core::Component {
 public:
  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override;
  void restore_full(serde::Reader& r) override;

 private:
  checkpoint::CheckpointedValue<std::int64_t> best_{
      std::numeric_limits<std::int64_t>::min()};
};

}  // namespace tart::apps

namespace tart::apps {

/// Sliding average over the last `window_size` values per key (count-based
/// window; the state is the ring of recent values, fully checkpointed).
/// Emits [key, average] on every input.
class SlidingAverage : public core::Component {
 public:
  explicit SlidingAverage(int window_size) : window_size_(window_size) {}

  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override;
  void restore_full(serde::Reader& r) override;

 private:
  int window_size_;
  // key -> most recent values, oldest first (bounded by window_size_).
  checkpoint::CheckpointedMap<std::int64_t, std::vector<std::int64_t>>
      recent_;
};

/// Virtual-time token-bucket rate limiter: at most `burst` events per key
/// per `period` of VIRTUAL time pass through; the rest are dropped (and
/// counted). Deterministic — replay drops exactly the same events, which
/// a wall-clock limiter cannot promise.
class RateLimiter : public core::Component {
 public:
  RateLimiter(TickDuration period, int burst)
      : period_(period.ticks()), burst_(burst) {}

  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override;
  void restore_full(serde::Reader& r) override;

  [[nodiscard]] std::int64_t dropped() const { return dropped_.get(); }

 private:
  std::int64_t period_;
  int burst_;
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> window_start_;
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> window_count_;
  checkpoint::CheckpointedValue<std::int64_t> dropped_{0};
};

/// Tracks the K largest values seen (by value, ties by key) and emits the
/// full top-K list whenever it changes, as alternating [key, value] pairs.
class TopK : public core::Component {
 public:
  explicit TopK(int k) : k_(k) {}

  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override;
  void restore_full(serde::Reader& r) override;

 private:
  int k_;
  // value -> key, largest values last; bounded to k_ entries.
  checkpoint::CheckpointedMap<std::int64_t, std::int64_t> best_;
};

}  // namespace tart::apps
