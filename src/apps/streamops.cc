#include "apps/streamops.h"

#include <limits>

namespace tart::apps {

// --- FilterOperator ---------------------------------------------------------

void FilterOperator::on_message(core::Context& ctx, PortId /*port*/,
                                const Payload& payload) {
  ctx.count_block(0);
  const std::int64_t v = event_value(payload);
  if (v < min_ || v > max_) {
    dropped_.mutate([](std::int64_t& d) { ++d; });
    return;
  }
  ctx.send(PortId(0), payload);
}

void FilterOperator::capture_full(serde::Writer& w) const {
  dropped_.capture_full(w);
}
void FilterOperator::restore_full(serde::Reader& r) {
  dropped_.restore_full(r);
}

// --- MapOperator ---------------------------------------------------------------

void MapOperator::on_message(core::Context& ctx, PortId /*port*/,
                             const Payload& payload) {
  ctx.count_block(0);
  ctx.send(PortId(0),
           event(event_key(payload), scale_ * event_value(payload) + offset_));
}

// --- TumblingWindowSum -----------------------------------------------------------

void TumblingWindowSum::on_message(core::Context& ctx, PortId /*port*/,
                                   const Payload& payload) {
  ctx.count_block(0);
  const std::int64_t key = event_key(payload);
  const std::int64_t value = event_value(payload);
  // Window assignment from deterministic virtual time (§II.B's timing
  // service): the same input at the same virtual time always lands in the
  // same window, in the original run and in every replay.
  const std::int64_t window = ctx.now().ticks() / width_;

  const std::int64_t* open = window_id_.find(key);
  if (open != nullptr && *open != window) {
    // Flush the closed window downstream.
    ctx.count_block(1);
    ctx.send(PortId(0), event(key, *window_sum_.find(key)));
    window_sum_.put(key, 0);
  }
  window_id_.put(key, window);
  window_sum_.update(key, [value](std::int64_t& s) { s += value; });
}

void TumblingWindowSum::capture_full(serde::Writer& w) const {
  window_id_.capture_full(w);
  window_sum_.capture_full(w);
}
void TumblingWindowSum::capture_delta(serde::Writer& w) {
  window_id_.capture_delta(w);
  window_sum_.capture_delta(w);
}
void TumblingWindowSum::restore_full(serde::Reader& r) {
  window_id_.restore_full(r);
  window_sum_.restore_full(r);
}
void TumblingWindowSum::apply_delta(serde::Reader& r) {
  window_id_.apply_delta(r);
  window_sum_.apply_delta(r);
}

// --- KeyedJoin ---------------------------------------------------------------------

void KeyedJoin::on_message(core::Context& ctx, PortId port,
                           const Payload& payload) {
  ctx.count_block(0);
  const std::int64_t key = event_key(payload);
  const std::int64_t value = event_value(payload);
  auto& mine = port == PortId(0) ? left_ : right_;
  const auto& other = port == PortId(0) ? right_ : left_;
  mine.put(key, value);
  if (const std::int64_t* match = other.find(key)) {
    ctx.count_block(1);
    ctx.send(PortId(0), event(key, value + *match));
  }
}

void KeyedJoin::capture_full(serde::Writer& w) const {
  left_.capture_full(w);
  right_.capture_full(w);
}
void KeyedJoin::capture_delta(serde::Writer& w) {
  left_.capture_delta(w);
  right_.capture_delta(w);
}
void KeyedJoin::restore_full(serde::Reader& r) {
  left_.restore_full(r);
  right_.restore_full(r);
}
void KeyedJoin::apply_delta(serde::Reader& r) {
  left_.apply_delta(r);
  right_.apply_delta(r);
}

// --- DeduplicateOperator ----------------------------------------------------------

void DeduplicateOperator::on_message(core::Context& ctx, PortId /*port*/,
                                     const Payload& payload) {
  ctx.count_block(0);
  const std::string fingerprint = std::to_string(event_key(payload)) + ":" +
                                  std::to_string(event_value(payload));
  if (seen_.contains(fingerprint)) return;
  seen_.put(fingerprint, 1);
  ctx.send(PortId(0), payload);
}

void DeduplicateOperator::capture_full(serde::Writer& w) const {
  seen_.capture_full(w);
}
void DeduplicateOperator::capture_delta(serde::Writer& w) {
  seen_.capture_delta(w);
}
void DeduplicateOperator::restore_full(serde::Reader& r) {
  seen_.restore_full(r);
}
void DeduplicateOperator::apply_delta(serde::Reader& r) {
  seen_.apply_delta(r);
}

// --- KeyRouter -------------------------------------------------------------------

void KeyRouter::on_message(core::Context& ctx, PortId /*port*/,
                           const Payload& payload) {
  ctx.count_block(0);
  const auto port_index = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(event_key(payload)) % fanout_);
  ctx.send(PortId(port_index), payload);
}

// --- RunningMax -----------------------------------------------------------------

void RunningMax::on_message(core::Context& ctx, PortId /*port*/,
                            const Payload& payload) {
  ctx.count_block(0);
  const std::int64_t v = event_value(payload);
  if (v > best_.get()) {
    best_.set(v);
    ctx.send(PortId(0), payload);
  }
}

void RunningMax::capture_full(serde::Writer& w) const {
  best_.capture_full(w);
}
void RunningMax::restore_full(serde::Reader& r) { best_.restore_full(r); }

}  // namespace tart::apps

namespace tart::apps {

// --- SlidingAverage ---------------------------------------------------------

void SlidingAverage::on_message(core::Context& ctx, PortId /*port*/,
                                const Payload& payload) {
  ctx.count_block(0);
  const std::int64_t key = event_key(payload);
  const std::int64_t value = event_value(payload);
  recent_.update(key, [&](std::vector<std::int64_t>& ring) {
    ring.push_back(value);
    if (ring.size() > static_cast<std::size_t>(window_size_))
      ring.erase(ring.begin());
  });
  const auto& ring = *recent_.find(key);
  std::int64_t sum = 0;
  for (const auto v : ring) {
    ctx.count_block(1);
    sum += v;
  }
  ctx.send(PortId(0),
           event(key, sum / static_cast<std::int64_t>(ring.size())));
}

void SlidingAverage::capture_full(serde::Writer& w) const {
  recent_.capture_full(w);
}
void SlidingAverage::restore_full(serde::Reader& r) {
  recent_.restore_full(r);
}

// --- RateLimiter -------------------------------------------------------------

void RateLimiter::on_message(core::Context& ctx, PortId /*port*/,
                             const Payload& payload) {
  ctx.count_block(0);
  const std::int64_t key = event_key(payload);
  // Fixed windows in deterministic virtual time.
  const std::int64_t window = ctx.now().ticks() / period_;
  const std::int64_t* start = window_start_.find(key);
  if (start == nullptr || *start != window) {
    window_start_.put(key, window);
    window_count_.put(key, 0);
  }
  const std::int64_t used = *window_count_.find(key);
  if (used >= burst_) {
    dropped_.mutate([](std::int64_t& d) { ++d; });
    return;
  }
  window_count_.put(key, used + 1);
  ctx.send(PortId(0), payload);
}

void RateLimiter::capture_full(serde::Writer& w) const {
  window_start_.capture_full(w);
  window_count_.capture_full(w);
  dropped_.capture_full(w);
}
void RateLimiter::restore_full(serde::Reader& r) {
  window_start_.restore_full(r);
  window_count_.restore_full(r);
  dropped_.restore_full(r);
}

// --- TopK ---------------------------------------------------------------------

void TopK::on_message(core::Context& ctx, PortId /*port*/,
                      const Payload& payload) {
  ctx.count_block(0);
  const std::int64_t key = event_key(payload);
  const std::int64_t value = event_value(payload);

  if (best_.contains(value)) return;  // identical value: no change
  if (best_.size() >= static_cast<std::size_t>(k_)) {
    const std::int64_t smallest = best_.entries().begin()->first;
    if (value <= smallest) return;  // does not make the cut
    best_.erase(smallest);
  }
  best_.put(value, key);

  std::vector<std::int64_t> flat;
  for (auto it = best_.entries().rbegin(); it != best_.entries().rend();
       ++it) {
    ctx.count_block(1);
    flat.push_back(it->second);  // key
    flat.push_back(it->first);   // value
  }
  ctx.send(PortId(0), Payload(std::move(flat)));
}

void TopK::capture_full(serde::Writer& w) const { best_.capture_full(w); }
void TopK::restore_full(serde::Reader& r) { best_.restore_full(r); }

}  // namespace tart::apps
