// The paper's running application (Figure 1 / Code Body 1): word-count
// sender components fanning into a totaling merger, plus small call-based
// service components. These are the reference components used by the
// examples, the integration tests, and the benchmark harnesses.
#pragma once

#include <string>
#include <vector>

#include "checkpoint/checkpointed_map.h"
#include "checkpoint/checkpointed_value.h"
#include "core/component.h"

namespace tart::apps {

/// Code Body 1: counts word occurrences in ordinary state ("State need not
/// be stored in special objects"), replying with the total prior count of
/// this sentence's words. Basic block 0 counts loop iterations (xi_1 of
/// Equation 1); an estimator of the form tau = beta1 * xi_1 fits it.
class WordCountSender : public core::Component {
 public:
  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  /// The loop bound (sentence length) is knowable before execution — the
  /// basis of the paper's "Prescient" mode.
  [[nodiscard]] std::optional<estimator::BlockCounters> prescient_counters(
      PortId port, const Payload& payload) const override;

  void capture_full(serde::Writer& w) const override { map_.capture_full(w); }
  void capture_delta(serde::Writer& w) override { map_.capture_delta(w); }
  [[nodiscard]] bool supports_delta() const override { return true; }
  void restore_full(serde::Reader& r) override { map_.restore_full(r); }
  void apply_delta(serde::Reader& r) override { map_.apply_delta(r); }

  [[nodiscard]] std::size_t vocabulary_size() const { return map_.size(); }

 private:
  checkpoint::CheckpointedMap<std::string, std::int64_t> map_;
};

/// Figure 1's Merger: accumulates incoming counts, emitting running totals.
class TotalingMerger : public core::Component {
 public:
  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override {
    total_.capture_full(w);
  }
  void capture_delta(serde::Writer& w) override { total_.capture_delta(w); }
  [[nodiscard]] bool supports_delta() const override { return true; }
  void restore_full(serde::Reader& r) override { total_.restore_full(r); }
  void apply_delta(serde::Reader& r) override { total_.apply_delta(r); }

  [[nodiscard]] std::int64_t total() const { return total_.get(); }

 private:
  checkpoint::CheckpointedValue<std::int64_t> total_{0};
};

/// Two-way service: multiplies the request by its running call count.
class ScalingService : public core::Component {
 public:
  void on_message(core::Context&, PortId, const Payload&) override;
  Payload on_call(core::Context& ctx, PortId port,
                  const Payload& payload) override;

  void capture_full(serde::Writer& w) const override {
    calls_.capture_full(w);
  }
  void restore_full(serde::Reader& r) override { calls_.restore_full(r); }

 private:
  checkpoint::CheckpointedValue<std::int64_t> calls_{0};
};

/// Forwards each input through a two-way call before emitting the reply.
class CallingComponent : public core::Component {
 public:
  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }
};

/// Stateless passthrough.
class Passthrough : public core::Component {
 public:
  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }
};

/// Takes a constant real service time then forwards its payload — the
/// "constant-time service" shape of the paper's distributed experiment
/// (Figure 5). The matching estimator is a ConstantEstimator of the same
/// duration (the paper's "ad-hoc estimators"). `spin` selects busy-waiting
/// (real CPU cost) versus sleeping (service latency without monopolizing
/// the CPU — preferable when benchmarking on fewer cores than components).
class SpinService : public core::Component {
 public:
  explicit SpinService(std::int64_t service_ns, bool spin = true)
      : service_ns_(service_ns), spin_(spin) {}

  void on_message(core::Context& ctx, PortId port,
                  const Payload& payload) override;
  void capture_full(serde::Writer& w) const override { w.write_u8(0); }
  void restore_full(serde::Reader& r) override { (void)r.read_u8(); }

 private:
  std::int64_t service_ns_;
  bool spin_;
};

/// Builds a sentence payload.
[[nodiscard]] Payload sentence(std::initializer_list<const char*> words);
[[nodiscard]] Payload sentence(const std::vector<std::string>& words);

}  // namespace tart::apps
