// Unified telemetry registry: named counters / gauges / histograms with
// low-cardinality labels (component, wire, sender).
//
// Design constraints, in order:
//
//   1. Lock-free hot path. Instrumented code holds a handle (Counter&,
//      Histogram&) obtained once at construction; every inc()/record() is
//      a relaxed atomic op on a stable cell — no lookup, no lock, no
//      allocation. The registry mutex is taken only at registration and
//      when an observer snapshots.
//   2. Deterministic non-interference. The registry only *observes* wall
//      time and counts; nothing in the deterministic protocol (virtual
//      times, scheduling decisions) ever reads it. Two seeded runs with
//      telemetry on or off produce byte-identical flight-recorder traces
//      (tests/trace_determinism_test.cc holds this line).
//   3. One counting path. The per-component scheduler counters that used
//      to live in ad-hoc atomics (core::RunnerMetrics) are registry cells
//      now; MetricsSnapshot is derived *from* the registry, never
//      maintained beside it.
//
// Naming follows Prometheus conventions (docs/OBSERVABILITY.md): `tart_`
// prefix, `_total` on counters, `_seconds` base units. Cells registered in
// other units carry an exposition scale (e.g. nanosecond counters expose
// as seconds).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"

namespace tart::serde {
class Writer;
class Reader;
}  // namespace tart::serde

namespace tart::obs {

struct Label {
  std::string key;
  std::string value;

  auto operator<=>(const Label&) const = default;
};
/// Sorted by key at registration; order-insensitive lookup.
using Labels = std::vector<Label>;

enum class Kind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// Monotone (except for checkpoint restore, see set()) 64-bit counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Checkpoint restore only: a recovered component resumes its count from
  /// the restored snapshot instead of re-counting replayed work.
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raise-to-maximum (high-water marks).
  void max_with(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// One exemplar: a concrete observation annotated with the stall episode
/// it came from, so a fat histogram bucket links back to the flight
/// recorder's kStallResolved/kStallBlame records for that episode
/// (`tart-trace explain --episode`).
struct Exemplar {
  double value = 0;           ///< Observed value, base units.
  std::uint64_t episode = 0;  ///< Per-component stall episode id.
  std::uint32_t component = 0;
  std::uint32_t wire = 0;

  bool operator==(const Exemplar&) const = default;
};

/// An exemplar as read out of a histogram snapshot: the ring entry plus
/// the bucket it landed in.
struct BucketExemplar {
  std::uint32_t bucket = 0;
  Exemplar ex;

  bool operator==(const BucketExemplar&) const = default;
};

/// Lock-free fixed-bucket histogram cell. record() is wait-free per bucket
/// (relaxed fetch_add) plus a CAS loop for the max; snapshot() produces a
/// stats::Histogram for percentile math, merging, and serde.
class Histogram {
 public:
  Histogram(double width, std::size_t num_buckets);

  void record(double x);
  /// Bulk form: `n` observations of value `x` in one update per field —
  /// lets the profiler harvest fold a whole log2 bucket's worth of spans
  /// into the registry histogram without an O(events) loop.
  void record_n(double x, std::uint64_t n);
  /// record() plus stash the exemplar in the target bucket's ring (newest
  /// evicts oldest). No-op attachment unless enable_exemplars was called.
  /// Cold path only (stall release, not per-message); relaxed atomics, so
  /// a reader racing a writer may observe a torn exemplar — observational
  /// data, never fed back into scheduling.
  void record(double x, const Exemplar& ex);

  /// Opt in to exemplar capture with a per-bucket ring of `ring_capacity`
  /// slots. Idempotent (first capacity wins); safe to race with record().
  void enable_exemplars(std::uint32_t ring_capacity);
  [[nodiscard]] bool exemplars_enabled() const {
    return ex_capacity_.load(std::memory_order_acquire) != 0;
  }
  /// Occupied exemplar slots, bucket-ordered (oldest-first within a ring).
  [[nodiscard]] std::vector<BucketExemplar> exemplars() const;

  [[nodiscard]] double bucket_width() const { return width_; }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Relaxed snapshot: buckets read while writers run may be off by the
  /// in-flight few — observational, never used for scheduling.
  [[nodiscard]] stats::Histogram snapshot() const;

 private:
  /// All-atomic so record() and exemplars() never lock.
  struct ExemplarSlot {
    std::atomic<bool> used{false};
    std::atomic<double> value{0};
    std::atomic<std::uint64_t> episode{0};
    std::atomic<std::uint32_t> component{0};
    std::atomic<std::uint32_t> wire{0};
  };

  [[nodiscard]] std::size_t bucket_index(double x) const;

  double width_;
  std::size_t size_;  // buckets incl. overflow
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
  // Exemplar rings: size_ * capacity slots, one write cursor per bucket.
  // capacity is published last (release) so racing record()s see fully
  // constructed arrays.
  std::atomic<std::uint32_t> ex_capacity_{0};
  std::unique_ptr<ExemplarSlot[]> ex_slots_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> ex_cursor_;
  std::mutex ex_enable_mu_;
};

/// One plain-value sample, as read out of the registry (and as shipped in
/// the control-plane kObs body).
struct Sample {
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  /// Multiplier applied at exposition (e.g. 1e-9 for ns-unit counters
  /// exposed under a `_seconds_total` name). Raw values stay integral so
  /// cross-node aggregation is exact.
  double scale = 1.0;
  Labels labels;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  std::optional<stats::Histogram> hist;
  /// Histogram exemplars (empty unless the cell opted in). Travel with the
  /// sample through serde and cross-node merges.
  std::vector<BucketExemplar> exemplars;
};

/// Process-local metric registry. One per core::Runtime (NOT a global:
/// tests run several runtimes in one process and their components share
/// names). Find-or-create semantics: re-registering the same name+labels
/// returns the existing cell — a recovered component re-attaches to its
/// counters, so counts survive engine crash/recover the way the trace
/// streams do.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Throws std::logic_error if the name+labels is already
  /// registered as a different kind.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {}, double scale = 1.0);
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  /// Width/bucket shape is fixed by the first registration; later calls
  /// with a different shape return the existing cell.
  Histogram& histogram(const std::string& name, const std::string& help,
                       Labels labels, double width, std::size_t num_buckets);

  /// Plain-value readout, sorted by (name, labels) so exposition and serde
  /// are deterministic given the same registration set.
  [[nodiscard]] std::vector<Sample> samples() const;

 private:
  struct Cell {
    std::string name;
    std::string help;
    Kind kind;
    double scale = 1.0;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };

  [[nodiscard]] Cell* find_locked(const std::string& name,
                                  const Labels& labels);

  mutable std::mutex mu_;
  /// unique_ptr cells: handle addresses stay stable across vector growth.
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// Serde for a sample set (control-plane kObs body). Deterministic byte
/// encoding given the same samples.
void encode_samples(serde::Writer& w, const std::vector<Sample>& samples);
[[nodiscard]] std::vector<Sample> decode_samples(serde::Reader& r);

/// Aggregates samples across nodes by (name, labels): counters sum, gauges
/// take the max (high-water semantics), histograms merge bucketwise
/// (bound-mismatched histograms keep the first seen — see
/// stats::Histogram::merge). Used by tart-obs.
[[nodiscard]] std::vector<Sample> merge_samples(
    std::vector<std::vector<Sample>> per_node);

}  // namespace tart::obs
