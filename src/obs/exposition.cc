#include "obs/exposition.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>
#include <unordered_map>

#include "core/metrics.h"
#include "core/status.h"

namespace tart::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string escape_help(const std::string& h) {
  std::string out;
  out.reserve(h.size());
  for (const char c : h) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

void append_header(std::string& out, const std::string& name,
                   const std::string& help, const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += escape_help(help);
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// Renders `{k="v",...}`; `extra` appends one more pair (quantile).
void append_labels(std::string& out, const Labels& labels,
                   const char* extra_key = nullptr,
                   const char* extra_val = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    out += escape_label(l.value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_val;
    out += '"';
  }
  out += '}';
}

void append_scalar_family(std::string& out, const char* name, const char* help,
                          const char* type, double scale, std::uint64_t value) {
  append_header(out, name, help, type);
  out += name;
  out += ' ';
  if (scale == 1.0)
    out += std::to_string(value);
  else
    append_double(out, static_cast<double>(value) * scale);
  out += '\n';
}

void append_sample_line(std::string& out, const std::string& name,
                        const Labels& labels, double value,
                        const char* extra_key = nullptr,
                        const char* extra_val = nullptr) {
  out += name;
  append_labels(out, labels, extra_key, extra_val);
  out += ' ';
  append_double(out, value);
  out += '\n';
}

/// One OpenMetrics exemplar'd bucket line:
///   name_bucket{labels,le="U"} N # {episode="E",component="C",wire="W"} v
/// Only buckets that actually captured an exemplar are rendered (the
/// summary quantiles above already carry the full distribution); `cum` is
/// the cumulative count through the bucket, `le` its upper bound ("+Inf"
/// for the overflow bucket).
void append_exemplar_bucket_line(std::string& out, const std::string& name,
                                 const Labels& labels, const std::string& le,
                                 std::uint64_t cum, const BucketExemplar& be,
                                 double scale) {
  out += name;
  out += "_bucket";
  out += '{';
  for (const Label& l : labels) {
    out += l.key;
    out += "=\"";
    out += escape_label(l.value);
    out += "\",";
  }
  out += "le=\"";
  out += le;
  out += "\"} ";
  out += std::to_string(cum);
  out += " # {episode=\"";
  out += std::to_string(be.ex.episode);
  out += "\",component=\"";
  out += std::to_string(be.ex.component);
  out += "\",wire=\"";
  out += std::to_string(be.ex.wire);
  out += "\"} ";
  append_double(out, be.ex.value * scale);
  out += '\n';
}

}  // namespace

std::string render_prometheus_samples(const std::vector<Sample>& samples,
                                      bool with_exemplars) {
  std::string out;
  // Samples arrive sorted by (name, labels); each run of equal names is
  // one family.
  for (std::size_t i = 0; i < samples.size();) {
    std::size_t j = i;
    while (j < samples.size() && samples[j].name == samples[i].name) ++j;
    const Sample& head = samples[i];
    switch (head.kind) {
      case Kind::kCounter:
        append_header(out, head.name, head.help, "counter");
        for (std::size_t k = i; k < j; ++k) {
          const Sample& s = samples[k];
          out += s.name;
          append_labels(out, s.labels);
          out += ' ';
          if (s.scale == 1.0)
            out += std::to_string(s.counter_value);
          else
            append_double(out,
                          static_cast<double>(s.counter_value) * s.scale);
          out += '\n';
        }
        break;
      case Kind::kGauge:
        append_header(out, head.name, head.help, "gauge");
        for (std::size_t k = i; k < j; ++k) {
          const Sample& s = samples[k];
          out += s.name;
          append_labels(out, s.labels);
          out += ' ';
          out += std::to_string(s.gauge_value);
          out += '\n';
        }
        break;
      case Kind::kHistogram: {
        append_header(out, head.name, head.help, "summary");
        for (std::size_t k = i; k < j; ++k) {
          const Sample& s = samples[k];
          if (!s.hist) continue;
          const stats::Histogram& h = *s.hist;
          append_sample_line(out, s.name, s.labels,
                            h.percentile(50.0) * s.scale, "quantile", "0.5");
          append_sample_line(out, s.name, s.labels,
                            h.percentile(99.0) * s.scale, "quantile", "0.99");
          append_sample_line(out, s.name + "_sum", s.labels,
                            h.sum() * s.scale);
          out += s.name + "_count";
          append_labels(out, s.labels);
          out += ' ';
          out += std::to_string(h.count());
          out += '\n';
        }
        if (with_exemplars) {
          // OpenMetrics mode: bucket lines carrying `# {...}` exemplars,
          // rendered only for buckets that captured one (newest per
          // bucket). The lint accepts these as _bucket children of the
          // summary family.
          for (std::size_t k = i; k < j; ++k) {
            const Sample& s = samples[k];
            if (!s.hist || s.exemplars.empty()) continue;
            const auto& buckets = s.hist->buckets();
            // Newest exemplar per bucket: the snapshot is oldest-first
            // within each ring, so a forward scan keeps the last seen.
            std::unordered_map<std::uint32_t, const BucketExemplar*> newest;
            for (const BucketExemplar& be : s.exemplars) newest[be.bucket] = &be;
            std::vector<std::uint32_t> order;
            order.reserve(newest.size());
            for (const auto& [b, be] : newest) order.push_back(b);
            std::sort(order.begin(), order.end());
            for (const std::uint32_t b : order) {
              if (b >= buckets.size()) continue;
              std::uint64_t cum = 0;
              for (std::uint32_t x = 0; x <= b; ++x) cum += buckets[x];
              std::string le;
              if (b + 1 == buckets.size()) {
                le = "+Inf";
              } else {
                le.clear();
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.9g",
                              static_cast<double>(b + 1) *
                                  s.hist->bucket_width() * s.scale);
                le = buf;
              }
              append_exemplar_bucket_line(out, s.name, s.labels, le, cum,
                                          *newest[b], s.scale);
            }
          }
        }
        // Summaries cannot carry a max; expose it as a sibling gauge family.
        const std::string max_name = head.name + "_max";
        append_header(out, max_name, "Largest single observation of " +
                                          head.name + ".",
                      "gauge");
        for (std::size_t k = i; k < j; ++k) {
          const Sample& s = samples[k];
          if (!s.hist) continue;
          append_sample_line(out, max_name, s.labels,
                            s.hist->max_seen() * s.scale);
        }
        break;
      }
    }
    i = j;
  }
  return out;
}

std::string render_prometheus(const core::MetricsSnapshot& snap,
                              const Registry* registry,
                              bool with_exemplars) {
#define TART_OBS_TYPE_SUM "counter"
#define TART_OBS_TYPE_MAX "gauge"
  std::string out;
  if (registry == nullptr) {
    // No registry (bench one-shots): the per-component totals come from
    // the snapshot, unlabelled.
#define TART_OBS_EMIT(field, prom, help, agg, scale) \
  append_scalar_family(out, prom, help, TART_OBS_TYPE_##agg, scale, snap.field);
    TART_METRICS_COMPONENT_FIELDS(TART_OBS_EMIT)
#undef TART_OBS_EMIT
  }
#define TART_OBS_EMIT(field, prom, help, agg, scale) \
  append_scalar_family(out, prom, help, TART_OBS_TYPE_##agg, scale, snap.field);
  TART_METRICS_GLOBAL_FIELDS(TART_OBS_EMIT)
#undef TART_OBS_EMIT
#undef TART_OBS_TYPE_SUM
#undef TART_OBS_TYPE_MAX
  if (registry != nullptr)
    out += render_prometheus_samples(registry->samples(), with_exemplars);
  return out;
}

// --- Lint -------------------------------------------------------------------

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_' ||
        name[0] == ':'))
    return false;
  for (const char c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':'))
      return false;
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool parse_value(const std::string& token) {
  if (token == "+Inf" || token == "-Inf" || token == "NaN") return true;
  const char* begin = token.c_str();
  char* end = nullptr;
  std::strtod(begin, &end);
  return end != begin && *end == '\0';
}

}  // namespace

std::optional<std::string> lint_exposition(const std::string& text) {
  std::unordered_map<std::string, std::string> type_of;
  std::set<std::string> helped;
  std::size_t lineno = 0;
  std::size_t pos = 0;
  auto fail = [&](const std::string& what) {
    return "exposition line " + std::to_string(lineno) + ": " + what;
  };
  while (pos < text.size()) {
    ++lineno;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"; other comments pass.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_help = line[2] == 'H';
        const std::size_t name_begin = 7;
        const std::size_t name_end = line.find(' ', name_begin);
        if (name_end == std::string::npos)
          return fail("truncated HELP/TYPE line");
        const std::string family = line.substr(name_begin, name_end - name_begin);
        if (!valid_metric_name(family)) return fail("bad family name");
        if (family.rfind("tart_", 0) != 0)
          return fail("family '" + family + "' lacks the tart_ prefix");
        if (is_help) {
          if (!helped.insert(family).second)
            return fail("duplicate HELP for family '" + family + "'");
        } else {
          const std::string type = line.substr(name_end + 1);
          if (type != "counter" && type != "gauge" && type != "summary" &&
              type != "histogram" && type != "untyped")
            return fail("unknown TYPE '" + type + "'");
          if (type == "counter" && !ends_with(family, "_total"))
            return fail("counter family '" + family +
                        "' does not end in _total");
          if (!type_of.emplace(family, type).second)
            return fail("duplicate TYPE for family '" + family + "'");
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' &&
           line[name_end] != ' ')
      ++name_end;
    const std::string name = line.substr(0, name_end);
    if (!valid_metric_name(name)) return fail("bad sample name");
    if (name.rfind("tart_", 0) != 0)
      return fail("sample '" + name + "' lacks the tart_ prefix");
    std::size_t cursor = name_end;
    if (cursor < line.size() && line[cursor] == '{') {
      // Scan past the label set, respecting quoted values.
      ++cursor;
      bool in_quotes = false;
      for (; cursor < line.size(); ++cursor) {
        const char c = line[cursor];
        if (in_quotes) {
          if (c == '\\')
            ++cursor;
          else if (c == '"')
            in_quotes = false;
        } else if (c == '"') {
          in_quotes = true;
        } else if (c == '}') {
          break;
        }
      }
      if (cursor >= line.size()) return fail("unterminated label set");
      ++cursor;
    }
    if (cursor >= line.size() || line[cursor] != ' ')
      return fail("sample '" + name + "' has no value");
    std::string value = line.substr(cursor + 1);
    // OpenMetrics exemplar suffix: "<value> # {labels} <exemplar-value>".
    // Only legal on _bucket samples (and counters, which we never emit
    // exemplars on); plain Prometheus mode never produces one.
    if (const std::size_t ex = value.find(" # "); ex != std::string::npos) {
      const std::string exemplar = value.substr(ex + 3);
      value = value.substr(0, ex);
      if (!ends_with(name, "_bucket"))
        return fail("exemplar on non-bucket sample '" + name + "'");
      if (exemplar.empty() || exemplar[0] != '{')
        return fail("malformed exemplar on '" + name + "'");
      std::size_t ec = 1;
      bool in_quotes = false;
      for (; ec < exemplar.size(); ++ec) {
        const char c = exemplar[ec];
        if (in_quotes) {
          if (c == '\\')
            ++ec;
          else if (c == '"')
            in_quotes = false;
        } else if (c == '"') {
          in_quotes = true;
        } else if (c == '}') {
          break;
        }
      }
      if (ec >= exemplar.size())
        return fail("unterminated exemplar label set on '" + name + "'");
      ++ec;
      if (ec >= exemplar.size() || exemplar[ec] != ' ' ||
          !parse_value(exemplar.substr(ec + 1)))
        return fail("exemplar on '" + name + "' has no parseable value");
    }
    if (!parse_value(value))
      return fail("unparseable value '" + value + "' for '" + name + "'");
    // Resolve the owning family: exact, or a _sum/_count/_bucket child of
    // a summary/histogram family.
    std::string family;
    if (type_of.count(name) != 0) {
      family = name;
    } else {
      for (const char* suffix : {"_sum", "_count", "_bucket"}) {
        if (!ends_with(name, suffix)) continue;
        const std::string base =
            name.substr(0, name.size() - std::strlen(suffix));
        const auto it = type_of.find(base);
        if (it != type_of.end() &&
            (it->second == "summary" || it->second == "histogram")) {
          family = base;
          break;
        }
      }
    }
    if (family.empty())
      return fail("sample '" + name + "' appears before its TYPE line");
    if (helped.count(family) == 0)
      return fail("family '" + family + "' has TYPE but no HELP");
  }
  return std::nullopt;
}

// --- Status JSON ------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_horizon(std::string& out, std::int64_t ticks) {
  if (ticks == std::numeric_limits<std::int64_t>::max())
    out += "\"inf\"";
  else
    out += std::to_string(ticks);
}

}  // namespace

std::string render_status_json(const core::StatusReport& report,
                               const std::vector<Sample>* samples) {
  std::string out = "{\"components\":[";
  bool first_comp = true;
  for (const core::ComponentStatus& c : report.components) {
    if (!first_comp) out += ',';
    first_comp = false;
    out += "{\"id\":" + std::to_string(c.id.value());
    out += ",\"name\":\"" + json_escape(c.name) + '"';
    out += ",\"crashed\":";
    out += c.crashed ? "true" : "false";
    out += ",\"vt\":" + std::to_string(c.vt_ticks);
    out += ",\"pending\":" + std::to_string(c.pending);
    out += ",\"exhausted\":";
    out += c.exhausted ? "true" : "false";
    out += ",\"held\":";
    out += c.held ? "true" : "false";
    if (c.held) {
      out += ",\"held_vt\":" + std::to_string(c.held_vt);
      out += ",\"held_wire\":" + std::to_string(c.held_wire.value());
    }
    out += ",\"inputs\":[";
    bool first_wire = true;
    for (const core::WireStatus& w : c.inputs) {
      if (!first_wire) out += ',';
      first_wire = false;
      out += "{\"wire\":" + std::to_string(w.wire.value());
      out += ",\"sender\":\"" + json_escape(w.sender) + '"';
      out += ",\"horizon\":";
      append_horizon(out, w.horizon_ticks);
      out += ",\"pending\":" + std::to_string(w.pending);
      out += ",\"blocking\":";
      out += w.blocking ? "true" : "false";
      out += '}';
    }
    out += "]}";
  }
  out += ']';
  if (samples != nullptr) {
    // Stall exemplars: the bridge from a histogram bucket to the flight
    // recorder (`tart-trace explain --episode <id>`).
    out += ",\"stall_exemplars\":[";
    bool first_ex = true;
    for (const Sample& s : *samples) {
      for (const BucketExemplar& be : s.exemplars) {
        if (!first_ex) out += ',';
        first_ex = false;
        out += "{\"metric\":\"" + json_escape(s.name) + '"';
        out += ",\"labels\":{";
        bool first_label = true;
        for (const Label& l : s.labels) {
          if (!first_label) out += ',';
          first_label = false;
          out += '"' + json_escape(l.key) + "\":\"" + json_escape(l.value) +
                 '"';
        }
        out += '}';
        out += ",\"bucket\":" + std::to_string(be.bucket);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", be.ex.value * s.scale);
        out += ",\"value\":";
        out += buf;
        out += ",\"episode\":" + std::to_string(be.ex.episode);
        out += ",\"component\":" + std::to_string(be.ex.component);
        out += ",\"wire\":" + std::to_string(be.ex.wire);
        out += '}';
      }
    }
    out += ']';
  }
  out += '}';
  return out;
}

}  // namespace tart::obs
