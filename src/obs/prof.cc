#include "obs/prof.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "obs/registry.h"

namespace tart::obs::prof {

namespace {

/// One site's accumulators inside a thread block. Plain relaxed atomics:
/// the owning thread is the only writer, the harvester the only other
/// reader, and observational skew between fields is acceptable.
struct SiteAccum {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, kLog2Buckets> log2{};
};

struct ThreadBlock {
  std::array<SiteAccum, kMaxSites> sites;
  ThreadBlock();
  ~ThreadBlock();
};

/// Plain (non-atomic) mirror used for retired threads and merging.
struct PlainAccum {
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kLog2Buckets> log2{};
};

struct Global {
  std::mutex mu;
  // Site table: registration order; names are stable for process life.
  std::array<std::string, kMaxSites> names;
  std::array<SiteKind, kMaxSites> kinds{};
  std::atomic<std::uint32_t> num_sites{0};
  // Live thread blocks plus the folded totals of exited threads.
  std::vector<ThreadBlock*> live;
  std::array<PlainAccum, kMaxSites> retired;
  std::uint64_t threads_ever = 0;
  std::uint64_t epoch_ns = 0;  ///< now_ns() at first touch.
};

std::atomic<bool> g_enabled{true};

/// Leaked on purpose: worker threads may exit after main()'s static
/// destructors have run, and their ThreadBlock destructors touch this.
Global& global() {
  static Global* g = [] {
    auto* made = new Global();
    made->epoch_ns = now_ns();
    return made;
  }();
  return *g;
}

ThreadBlock::ThreadBlock() {
  Global& g = global();
  const std::lock_guard<std::mutex> lk(g.mu);
  g.live.push_back(this);
  ++g.threads_ever;
}

ThreadBlock::~ThreadBlock() {
  Global& g = global();
  const std::lock_guard<std::mutex> lk(g.mu);
  for (std::size_t s = 0; s < kMaxSites; ++s) {
    PlainAccum& dst = g.retired[s];
    const SiteAccum& src = sites[s];
    dst.count += src.count.load(std::memory_order_relaxed);
    dst.total += src.total.load(std::memory_order_relaxed);
    dst.max = std::max(dst.max, src.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kLog2Buckets; ++b)
      dst.log2[b] += src.log2[b].load(std::memory_order_relaxed);
  }
  g.live.erase(std::remove(g.live.begin(), g.live.end(), this), g.live.end());
}

ThreadBlock& this_thread_block() {
  static thread_local ThreadBlock block;
  return block;
}

SiteId register_site(const char* name, SiteKind kind) {
  Global& g = global();
  const std::lock_guard<std::mutex> lk(g.mu);
  const std::uint32_t n = g.num_sites.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i)
    if (g.names[i] == name) return i;
  if (n >= kMaxSites) return kInvalidSite;  // table full: site is silent
  g.names[n] = name;
  g.kinds[n] = kind;
  g.num_sites.store(n + 1, std::memory_order_release);
  return n;
}

std::size_t log2_bucket(std::uint64_t ns) {
  std::size_t b = 0;
  while (ns != 0 && b + 1 < kLog2Buckets) {
    ns >>= 1;
    ++b;
  }
  return b;
}

/// Geometric midpoint of a log2 bucket, in ns.
double log2_midpoint_ns(std::size_t bucket) {
  if (bucket == 0) return 0.5;
  return 1.5 * static_cast<double>(1ull << (bucket - 1));
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::uint64_t now_ns() {
#if defined(TART_PROF_CLOCK_RAW)
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

SiteId register_span(const char* name) {
  return register_site(name, SiteKind::kSpan);
}

SiteId register_bytes(const char* name) {
  return register_site(name, SiteKind::kBytes);
}

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void record_span_ns(SiteId site, std::uint64_t ns) {
  if (site >= kMaxSites || !enabled()) return;
  SiteAccum& a = this_thread_block().sites[site];
  a.count.fetch_add(1, std::memory_order_relaxed);
  a.total.fetch_add(ns, std::memory_order_relaxed);
  if (ns > a.max.load(std::memory_order_relaxed))
    a.max.store(ns, std::memory_order_relaxed);  // single writer per thread
  a.log2[log2_bucket(ns)].fetch_add(1, std::memory_order_relaxed);
}

void add(SiteId site, std::uint64_t count_delta, std::uint64_t total_delta) {
  if (site >= kMaxSites || !enabled()) return;
  SiteAccum& a = this_thread_block().sites[site];
  a.count.fetch_add(count_delta, std::memory_order_relaxed);
  a.total.fetch_add(total_delta, std::memory_order_relaxed);
}

double SiteStats::percentile_ns(double p) const {
  std::uint64_t n = 0;
  for (const std::uint64_t c : log2) n += c;
  if (n == 0) return 0.0;
  const double rank = (p / 100.0) * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kLog2Buckets; ++b) {
    seen += log2[b];
    if (static_cast<double>(seen) >= rank) return log2_midpoint_ns(b);
  }
  return log2_midpoint_ns(kLog2Buckets - 1);
}

Snapshot snapshot() {
  Global& g = global();
  const std::lock_guard<std::mutex> lk(g.mu);
  Snapshot snap;
  snap.uptime_ns = now_ns() - g.epoch_ns;
  snap.threads = g.threads_ever;
  const std::uint32_t n = g.num_sites.load(std::memory_order_acquire);
  snap.sites.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    SiteStats st;
    st.name = g.names[s];
    st.kind = g.kinds[s];
    const PlainAccum& r = g.retired[s];
    st.count = r.count;
    st.total = r.total;
    st.max = r.max;
    st.log2 = r.log2;
    for (const ThreadBlock* block : g.live) {
      const SiteAccum& a = block->sites[s];
      st.count += a.count.load(std::memory_order_relaxed);
      st.total += a.total.load(std::memory_order_relaxed);
      st.max = std::max(st.max, a.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kLog2Buckets; ++b)
        st.log2[b] += a.log2[b].load(std::memory_order_relaxed);
    }
    snap.sites.push_back(std::move(st));
  }
  return snap;
}

// --- Harvest into the registry ----------------------------------------------

namespace {

/// Per-registry harvest memory so the span histograms receive each
/// observation exactly once (deltas between sweeps). Keyed by registry
/// address; never pruned — registries outlive their harvests in production
/// and tests call reset_for_tests().
struct HarvestPrev {
  std::map<std::string, std::array<std::uint64_t, kLog2Buckets>> log2;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
};

std::mutex g_harvest_mu;
std::map<Registry*, HarvestPrev>& harvest_map() {
  static auto* m = new std::map<Registry*, HarvestPrev>();
  return *m;
}

bool is_loop_work_span(const std::string& name) {
  for (const char* w : detail::kLoopWorkSpans)
    if (name == w) return true;
  return false;
}

}  // namespace

void harvest_into(Registry& registry) {
  const Snapshot snap = snapshot();
  const std::lock_guard<std::mutex> lk(g_harvest_mu);
  HarvestPrev& prev = harvest_map()[&registry];

  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
  for (const SiteStats& s : snap.sites) {
    if (s.kind == SiteKind::kSpan) {
      registry
          .counter("tart_prof_span_seconds_total",
                   "Cumulative wall-clock time inside the named hot-path "
                   "span (self-time; spans are disjoint).",
                   {{"span", s.name}}, 1e-9)
          .set(s.total);
      registry
          .counter("tart_prof_span_calls_total",
                   "Entries into the named hot-path span.",
                   {{"span", s.name}})
          .set(s.count);
      // Distribution: deltas since the last sweep, recorded at log2-bucket
      // midpoints (factor-of-two resolution; totals above stay exact).
      Histogram& hist = registry.histogram(
          "tart_prof_span_seconds",
          "Hot-path span durations (log2-resolution observations).",
          {{"span", s.name}}, 200e-6, 500);
      auto& seen = prev.log2[s.name];
      for (std::size_t b = 0; b < kLog2Buckets; ++b) {
        if (s.log2[b] > seen[b])
          hist.record_n(log2_midpoint_ns(b) * 1e-9, s.log2[b] - seen[b]);
        seen[b] = s.log2[b];
      }
      if (s.name == detail::kPollWaitSpan) idle_ns += s.total;
      if (is_loop_work_span(s.name)) busy_ns += s.total;
    } else {
      registry
          .counter("tart_prof_copied_bytes_total",
                   "Bytes copied or allocated on the named wire path.",
                   {{"path", s.name}})
          .set(s.total);
      registry
          .counter("tart_prof_copies_total",
                   "Copy/allocation events on the named wire path.",
                   {{"path", s.name}})
          .set(s.count);
    }
  }

  // Event-loop saturation over the sweep window: share of loop wall time
  // spent working (posted closures, timers, fd dispatch) rather than
  // parked in poll. Aggregated over every EventLoop thread in the process.
  const std::uint64_t d_busy = busy_ns - std::min(busy_ns, prev.busy_ns);
  const std::uint64_t d_idle = idle_ns - std::min(idle_ns, prev.idle_ns);
  prev.busy_ns = busy_ns;
  prev.idle_ns = idle_ns;
  if (d_busy + d_idle > 0) {
    registry
        .gauge("tart_prof_loop_busy_percent",
               "Event-loop saturation: percent of loop time spent working "
               "(not in poll) over the last sweep window.")
        .set(static_cast<std::int64_t>((100 * d_busy) / (d_busy + d_idle)));
  }
  registry
      .gauge("tart_prof_threads",
             "Threads that have recorded into the span profiler.")
      .set(static_cast<std::int64_t>(snap.threads));
}

std::string render_json() {
  const Snapshot snap = snapshot();
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
  for (const SiteStats& s : snap.sites) {
    if (s.kind != SiteKind::kSpan) continue;
    if (s.name == detail::kPollWaitSpan) idle_ns += s.total;
    if (is_loop_work_span(s.name)) busy_ns += s.total;
  }
  char buf[64];
  std::string out = "{\"enabled\":";
  out += enabled() ? "true" : "false";
  out += ",\"uptime_ns\":" + std::to_string(snap.uptime_ns);
  out += ",\"threads\":" + std::to_string(snap.threads);
  out += ",\"loop\":{\"busy_ns\":" + std::to_string(busy_ns);
  out += ",\"idle_ns\":" + std::to_string(idle_ns);
  out += ",\"saturation\":";
  const double denom = static_cast<double>(busy_ns + idle_ns);
  std::snprintf(buf, sizeof(buf), "%.6f",
                denom > 0 ? static_cast<double>(busy_ns) / denom : 0.0);
  out += buf;
  out += "},\"spans\":[";
  bool first = true;
  for (const SiteStats& s : snap.sites) {
    if (s.kind != SiteKind::kSpan) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, s.name);
    out += "\",\"count\":" + std::to_string(s.count);
    out += ",\"total_ns\":" + std::to_string(s.total);
    out += ",\"max_ns\":" + std::to_string(s.max);
    std::snprintf(buf, sizeof(buf), "%.0f", s.percentile_ns(50.0));
    out += ",\"p50_ns\":";
    out += buf;
    std::snprintf(buf, sizeof(buf), "%.0f", s.percentile_ns(99.0));
    out += ",\"p99_ns\":";
    out += buf;
    out += '}';
  }
  out += "],\"counters\":[";
  first = true;
  for (const SiteStats& s : snap.sites) {
    if (s.kind != SiteKind::kBytes) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, s.name);
    out += "\",\"events\":" + std::to_string(s.count);
    out += ",\"bytes\":" + std::to_string(s.total);
    out += '}';
  }
  out += "]}";
  return out;
}

void reset_for_tests() {
  Global& g = global();
  const std::lock_guard<std::mutex> lk(g.mu);
  for (std::size_t s = 0; s < kMaxSites; ++s) {
    g.retired[s] = PlainAccum{};
    for (ThreadBlock* block : g.live) {
      SiteAccum& a = block->sites[s];
      a.count.store(0, std::memory_order_relaxed);
      a.total.store(0, std::memory_order_relaxed);
      a.max.store(0, std::memory_order_relaxed);
      for (auto& b : a.log2) b.store(0, std::memory_order_relaxed);
    }
  }
  const std::lock_guard<std::mutex> hlk(g_harvest_mu);
  harvest_map().clear();
}

}  // namespace tart::obs::prof
