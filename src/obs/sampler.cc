#include "obs/sampler.h"

#include <chrono>
#include <cstdio>

namespace tart::obs {

namespace {

void append_double_json(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_labels_json(std::string& out, const Labels& labels) {
  out += "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += l.key;  // label keys are identifiers, no escaping needed
    out += "\":\"";
    for (const char c : l.value) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  out += '}';
}

}  // namespace

Sampler::Sampler(Options options, const Registry* registry,
                 SnapshotFn snapshot_fn)
    : options_(std::move(options)),
      registry_(registry),
      snapshot_fn_(std::move(snapshot_fn)) {}

Sampler::~Sampler() { stop(); }

bool Sampler::start() {
  if (running_) return true;
  file_ = std::fopen(options_.path.c_str(), "a");
  if (file_ == nullptr) return false;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { run(); });
  return true;
}

void Sampler::stop() {
  if (!running_) return;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  write_sample();  // final sample so short runs still record something
  std::fclose(file_);
  file_ = nullptr;
  running_ = false;
}

void Sampler::run() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                     [this] { return stopping_; }))
      break;
    lk.unlock();
    write_sample();
    lk.lock();
  }
}

void Sampler::write_sample() {
  const auto ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  const core::MetricsSnapshot snap =
      snapshot_fn_ ? snapshot_fn_() : core::MetricsSnapshot{};
  const std::vector<Sample> series =
      registry_ != nullptr ? registry_->samples() : std::vector<Sample>{};
  const std::string line = render_line(ts_ms, snap, series);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  written_.fetch_add(1, std::memory_order_relaxed);
}

std::string Sampler::render_line(std::int64_t ts_ms,
                                 const core::MetricsSnapshot& snap,
                                 const std::vector<Sample>& series) {
  std::string out = "{\"ts_ms\":" + std::to_string(ts_ms) + ",\"metrics\":{";
  bool first = true;
#define TART_OBS_SAMPLE_FIELD(field, prom, help, agg, scale) \
  if (!first) out += ',';                                    \
  first = false;                                             \
  out += "\"" #field "\":" + std::to_string(snap.field);
  TART_METRICS_SCALAR_FIELDS(TART_OBS_SAMPLE_FIELD)
#undef TART_OBS_SAMPLE_FIELD
  out += "},\"series\":[";
  first = true;
  for (const Sample& s : series) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + s.name + "\",\"labels\":";
    append_labels_json(out, s.labels);
    switch (s.kind) {
      case Kind::kCounter:
        out += ",\"value\":" + std::to_string(s.counter_value);
        break;
      case Kind::kGauge:
        out += ",\"value\":" + std::to_string(s.gauge_value);
        break;
      case Kind::kHistogram:
        if (s.hist) {
          const stats::Histogram& h = *s.hist;
          out += ",\"count\":" + std::to_string(h.count());
          out += ",\"p50\":";
          append_double_json(out, h.percentile(50.0));
          out += ",\"p99\":";
          append_double_json(out, h.percentile(99.0));
          out += ",\"max\":";
          append_double_json(out, h.max_seen());
          out += ",\"sum\":";
          append_double_json(out, h.sum());
        }
        break;
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace tart::obs
