// Prometheus text exposition (format 0.0.4) — the ONE rendering routine
// behind the gateway's GET /metrics, the control-plane metrics dump shown
// by tart-ctl, and bench printouts. Three hand-rolled renderings used to
// drift apart; now they can't.
//
// Conventions enforced here and checked by lint_exposition (which runs in
// scripts/check.sh against a live scrape):
//   - every family name starts with `tart_`
//   - counters end in `_total`; time is exposed in `_seconds` base units
//   - every family gets # HELP and # TYPE lines before its samples
//   - registry histograms render as summaries (quantile="0.5"/"0.99",
//     _sum, _count) plus a separate `<name>_max` gauge family
//   - with exemplars requested (OpenMetrics mode, off by default), a
//     histogram sample carrying exemplars additionally renders
//     `<name>_bucket{...,le="X"} N # {episode=...} value` lines, one per
//     bucket with a captured exemplar (the newest in its ring)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace tart::core {
struct MetricsSnapshot;
struct StatusReport;
}  // namespace tart::core

namespace tart::obs {

/// Content type a conforming scrape endpoint must serve.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4";

/// Renders a full exposition page: the snapshot's process-wide scalar
/// fields plus, when `registry` is non-null, every registered series
/// (labelled per-component counters, stall/estimator/gateway histograms).
/// With a registry present the snapshot's per-component fields are
/// skipped — the registry carries them as labelled families, and emitting
/// both would be the two-divergent-counting-paths bug this module exists
/// to kill.
[[nodiscard]] std::string render_prometheus(const core::MetricsSnapshot& snap,
                                            const Registry* registry,
                                            bool with_exemplars = false);

/// Renders pre-collected samples only (tart-obs --series, cross-node
/// merged views where no single MetricsSnapshot applies). Exemplar
/// rendering is opt-in: plain Prometheus 0.0.4 consumers do not expect
/// `# {...}` suffixes, so the default output never carries them.
[[nodiscard]] std::string render_prometheus_samples(
    const std::vector<Sample>& samples, bool with_exemplars = false);

/// Checks an exposition page against the conventions above. Returns
/// std::nullopt when clean, otherwise a one-line description of the first
/// violation (unknown family, counter without _total, sample before
/// HELP/TYPE, unparseable value, name without tart_ prefix...).
[[nodiscard]] std::optional<std::string> lint_exposition(
    const std::string& text);

/// GET /status body: the silence wavefront as JSON. Infinite silence
/// horizons render as the string "inf". When `samples` is non-null, a
/// "stall_exemplars" section links histogram buckets to the stall episode
/// ids the flight recorder knows about.
[[nodiscard]] std::string render_status_json(
    const core::StatusReport& report,
    const std::vector<Sample>* samples = nullptr);

}  // namespace tart::obs
