#include "obs/registry.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "serde/archive.h"

namespace tart::obs {

// --- Histogram cell ---------------------------------------------------------

Histogram::Histogram(double width, std::size_t num_buckets)
    : width_(width),
      size_(num_buckets + 1),
      buckets_(new std::atomic<std::uint64_t>[size_]) {
  for (std::size_t i = 0; i < size_; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(double x) const {
  if (x < 0) x = 0;
  auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= size_ - 1) idx = size_ - 1;
  return idx;
}

void Histogram::record(double x) {
  if (x < 0) x = 0;
  buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  double cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void Histogram::record_n(double x, std::uint64_t n) {
  if (n == 0) return;
  if (x < 0) x = 0;
  buckets_[bucket_index(x)].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(x * static_cast<double>(n), std::memory_order_relaxed);
  double cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void Histogram::record(double x, const Exemplar& ex) {
  record(x);
  const std::uint32_t cap = ex_capacity_.load(std::memory_order_acquire);
  if (cap == 0) return;
  const std::size_t bucket = bucket_index(x);
  // Ring write: the per-bucket cursor only ever grows, so modulo capacity
  // the newest exemplar evicts the oldest. Fields are individually relaxed
  // (a concurrent reader may see a torn mix of two exemplars — benign for
  // observational data; writes are rare, one per stall episode).
  const std::uint32_t pos =
      ex_cursor_[bucket].fetch_add(1, std::memory_order_relaxed) % cap;
  ExemplarSlot& slot = ex_slots_[bucket * cap + pos];
  slot.value.store(ex.value, std::memory_order_relaxed);
  slot.episode.store(ex.episode, std::memory_order_relaxed);
  slot.component.store(ex.component, std::memory_order_relaxed);
  slot.wire.store(ex.wire, std::memory_order_relaxed);
  slot.used.store(true, std::memory_order_release);
}

void Histogram::enable_exemplars(std::uint32_t ring_capacity) {
  if (ring_capacity == 0) return;
  const std::lock_guard<std::mutex> lk(ex_enable_mu_);
  if (ex_capacity_.load(std::memory_order_relaxed) != 0) return;  // first wins
  ex_slots_ = std::make_unique<ExemplarSlot[]>(size_ * ring_capacity);
  ex_cursor_ = std::make_unique<std::atomic<std::uint32_t>[]>(size_);
  for (std::size_t i = 0; i < size_; ++i)
    ex_cursor_[i].store(0, std::memory_order_relaxed);
  ex_capacity_.store(ring_capacity, std::memory_order_release);
}

std::vector<BucketExemplar> Histogram::exemplars() const {
  std::vector<BucketExemplar> out;
  const std::uint32_t cap = ex_capacity_.load(std::memory_order_acquire);
  if (cap == 0) return out;
  for (std::size_t b = 0; b < size_; ++b) {
    const std::uint32_t cursor =
        ex_cursor_[b].load(std::memory_order_relaxed);
    if (cursor == 0) continue;
    // Oldest-first: the ring holds writes [cursor - cap, cursor).
    const std::uint32_t live = cursor < cap ? cursor : cap;
    for (std::uint32_t i = 0; i < live; ++i) {
      const std::uint32_t pos = (cursor - live + i) % cap;
      const ExemplarSlot& slot = ex_slots_[b * cap + pos];
      if (!slot.used.load(std::memory_order_acquire)) continue;
      BucketExemplar be;
      be.bucket = static_cast<std::uint32_t>(b);
      be.ex.value = slot.value.load(std::memory_order_relaxed);
      be.ex.episode = slot.episode.load(std::memory_order_relaxed);
      be.ex.component = slot.component.load(std::memory_order_relaxed);
      be.ex.wire = slot.wire.load(std::memory_order_relaxed);
      out.push_back(be);
    }
  }
  return out;
}

stats::Histogram Histogram::snapshot() const {
  std::vector<std::uint64_t> buckets(size_);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += buckets[i];
  }
  // The bucket total is the self-consistent count for this snapshot (the
  // count_ cell may be a few in-flight records ahead or behind).
  return stats::Histogram::from_parts(
      width_, std::move(buckets), total, sum_.load(std::memory_order_relaxed),
      max_.load(std::memory_order_relaxed));
}

// --- Registry ---------------------------------------------------------------

namespace {
Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}
}  // namespace

Registry::Cell* Registry::find_locked(const std::string& name,
                                      const Labels& labels) {
  for (const auto& cell : cells_)
    if (cell->name == name && cell->labels == labels) return cell.get();
  return nullptr;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels, double scale) {
  Labels canon = canonical(std::move(labels));
  const std::lock_guard<std::mutex> lk(mu_);
  if (Cell* cell = find_locked(name, canon)) {
    if (cell->kind != Kind::kCounter)
      throw std::logic_error("metric '" + name +
                             "' already registered with another kind");
    return *cell->counter;
  }
  auto cell = std::make_unique<Cell>();
  cell->name = name;
  cell->help = help;
  cell->kind = Kind::kCounter;
  cell->scale = scale;
  cell->labels = std::move(canon);
  cell->counter = std::make_unique<Counter>();
  Counter& out = *cell->counter;
  cells_.push_back(std::move(cell));
  return out;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  Labels canon = canonical(std::move(labels));
  const std::lock_guard<std::mutex> lk(mu_);
  if (Cell* cell = find_locked(name, canon)) {
    if (cell->kind != Kind::kGauge)
      throw std::logic_error("metric '" + name +
                             "' already registered with another kind");
    return *cell->gauge;
  }
  auto cell = std::make_unique<Cell>();
  cell->name = name;
  cell->help = help;
  cell->kind = Kind::kGauge;
  cell->labels = std::move(canon);
  cell->gauge = std::make_unique<Gauge>();
  Gauge& out = *cell->gauge;
  cells_.push_back(std::move(cell));
  return out;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help, Labels labels,
                               double width, std::size_t num_buckets) {
  Labels canon = canonical(std::move(labels));
  const std::lock_guard<std::mutex> lk(mu_);
  if (Cell* cell = find_locked(name, canon)) {
    if (cell->kind != Kind::kHistogram)
      throw std::logic_error("metric '" + name +
                             "' already registered with another kind");
    return *cell->hist;
  }
  auto cell = std::make_unique<Cell>();
  cell->name = name;
  cell->help = help;
  cell->kind = Kind::kHistogram;
  cell->labels = std::move(canon);
  cell->hist = std::make_unique<Histogram>(width, num_buckets);
  Histogram& out = *cell->hist;
  cells_.push_back(std::move(cell));
  return out;
}

std::vector<Sample> Registry::samples() const {
  std::vector<Sample> out;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    out.reserve(cells_.size());
    for (const auto& cell : cells_) {
      Sample s;
      s.name = cell->name;
      s.help = cell->help;
      s.kind = cell->kind;
      s.scale = cell->scale;
      s.labels = cell->labels;
      switch (cell->kind) {
        case Kind::kCounter:
          s.counter_value = cell->counter->value();
          break;
        case Kind::kGauge:
          s.gauge_value = cell->gauge->value();
          break;
        case Kind::kHistogram:
          s.hist = cell->hist->snapshot();
          if (cell->hist->exemplars_enabled())
            s.exemplars = cell->hist->exemplars();
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

// --- Serde ------------------------------------------------------------------

void encode_samples(serde::Writer& w, const std::vector<Sample>& samples) {
  w.write_varint(samples.size());
  for (const Sample& s : samples) {
    w.write_string(s.name);
    w.write_string(s.help);
    w.write_u8(static_cast<std::uint8_t>(s.kind));
    w.write_double(s.scale);
    w.write_varint(s.labels.size());
    for (const Label& l : s.labels) {
      w.write_string(l.key);
      w.write_string(l.value);
    }
    switch (s.kind) {
      case Kind::kCounter:
        w.write_varint(s.counter_value);
        break;
      case Kind::kGauge:
        w.write_svarint(s.gauge_value);
        break;
      case Kind::kHistogram:
        s.hist.value().encode(w);
        break;
    }
    w.write_varint(s.exemplars.size());
    for (const BucketExemplar& be : s.exemplars) {
      w.write_u32(be.bucket);
      w.write_double(be.ex.value);
      w.write_varint(be.ex.episode);
      w.write_u32(be.ex.component);
      w.write_u32(be.ex.wire);
    }
  }
}

std::vector<Sample> decode_samples(serde::Reader& r) {
  const std::uint64_t n = r.read_varint();
  std::vector<Sample> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Sample s;
    s.name = r.read_string();
    s.help = r.read_string();
    const std::uint8_t kind = r.read_u8();
    if (kind > static_cast<std::uint8_t>(Kind::kHistogram))
      throw serde::DecodeError("obs sample: bad kind");
    s.kind = static_cast<Kind>(kind);
    s.scale = r.read_double();
    const std::uint64_t nlabels = r.read_varint();
    for (std::uint64_t j = 0; j < nlabels; ++j) {
      Label l;
      l.key = r.read_string();
      l.value = r.read_string();
      s.labels.push_back(std::move(l));
    }
    switch (s.kind) {
      case Kind::kCounter:
        s.counter_value = r.read_varint();
        break;
      case Kind::kGauge:
        s.gauge_value = r.read_svarint();
        break;
      case Kind::kHistogram:
        s.hist = stats::Histogram::decode(r);
        break;
    }
    const std::uint64_t nex = r.read_varint();
    s.exemplars.reserve(nex);
    for (std::uint64_t j = 0; j < nex; ++j) {
      BucketExemplar be;
      be.bucket = r.read_u32();
      be.ex.value = r.read_double();
      be.ex.episode = r.read_varint();
      be.ex.component = r.read_u32();
      be.ex.wire = r.read_u32();
      s.exemplars.push_back(be);
    }
    out.push_back(std::move(s));
  }
  return out;
}

// --- Cross-node aggregation -------------------------------------------------

std::vector<Sample> merge_samples(std::vector<std::vector<Sample>> per_node) {
  // Key = name + canonical label string (labels are already sorted).
  std::map<std::pair<std::string, std::string>, Sample> merged;
  for (auto& node : per_node) {
    for (auto& s : node) {
      std::string label_key;
      for (const Label& l : s.labels)
        label_key += l.key + "\x1f" + l.value + "\x1e";
      const auto key = std::make_pair(s.name, std::move(label_key));
      const auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(s));
        continue;
      }
      Sample& dst = it->second;
      if (dst.kind != s.kind) continue;  // disagreeing nodes: keep first
      switch (s.kind) {
        case Kind::kCounter:
          dst.counter_value += s.counter_value;
          break;
        case Kind::kGauge:
          dst.gauge_value = std::max(dst.gauge_value, s.gauge_value);
          break;
        case Kind::kHistogram:
          if (dst.hist && s.hist) (void)dst.hist->merge(*s.hist);
          break;
      }
      // Exemplars accumulate across nodes, bounded so a long-lived
      // aggregator cannot grow without limit.
      constexpr std::size_t kMaxMergedExemplars = 64;
      for (const BucketExemplar& be : s.exemplars) {
        if (dst.exemplars.size() >= kMaxMergedExemplars) break;
        dst.exemplars.push_back(be);
      }
    }
  }
  std::vector<Sample> out;
  out.reserve(merged.size());
  for (auto& [key, s] : merged) out.push_back(std::move(s));
  return out;
}

}  // namespace tart::obs
