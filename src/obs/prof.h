// Always-on hot-path span profiler.
//
// TART_PROF_SPAN("net.decode") drops a scoped wall-clock timer into a hot
// path; TART_PROF_BYTES / TART_PROF_COUNT account memory traffic (copies,
// allocations) on the wire path. Every record is a thread-local relaxed
// atomic update — no lock, no allocation, no branch on shared state — so
// the profiler can stay on in production (< 1% of bench_net throughput).
// A background sweep (NetHost::gauge_sweep) harvests the accumulators into
// `tart_prof_*` registry cells; GET /profile and `tart-obs top` read the
// same snapshot.
//
// Design constraints, in order:
//
//   1. Determinism-neutral. Spans only *read* wall clocks and write
//      observational accumulators; nothing here ever feeds a scheduling
//      decision. Two seeded runs with profiling on or off produce
//      byte-identical flight-recorder traces
//      (tests/trace_determinism_test.cc pins this).
//   2. Compiled-out-to-nothing. -DTART_PROF=OFF (CMake option) makes every
//      macro expand to nothing; the API below still exists and links so
//      harvest/readout call sites need no guards.
//   3. Fixed memory. Sites are registered once per call site into a fixed
//      table (kMaxSites); each thread owns a flat accumulator block.
//      Registration past the cap is silently ignored (never a crash).
//
// Span durations also feed a per-site log2 histogram (bucket i covers
// [2^(i-1), 2^i) ns), cheap enough for the hot path and good enough for
// the p50/p99 shown by `tart-obs top` and /profile.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace tart::obs {
class Registry;
}  // namespace tart::obs

namespace tart::obs::prof {

using SiteId = std::uint32_t;
inline constexpr SiteId kInvalidSite = 0xFFFFFFFFu;
inline constexpr std::size_t kMaxSites = 64;
/// log2-ns buckets: bucket 0 is [0,1) ns, bucket i is [2^(i-1), 2^i) ns;
/// 40 buckets reach ~9 minutes, far past any span we time.
inline constexpr std::size_t kLog2Buckets = 40;

enum class SiteKind : std::uint8_t { kSpan = 0, kBytes = 1 };

/// Find-or-create a site. Thread-safe; same name returns the same id.
/// Returns kInvalidSite when the table is full (records then no-op).
SiteId register_span(const char* name);
SiteId register_bytes(const char* name);

/// Runtime kill switch (compile-time kill is the TART_PROF CMake option).
/// Used by the determinism tests to compare on-vs-off traces in one build.
void set_enabled(bool on);
[[nodiscard]] bool enabled();

/// Current profiling clock, nanoseconds from an arbitrary epoch.
/// steady_clock by default; CLOCK_MONOTONIC_RAW with -DTART_PROF_CLOCK=raw.
[[nodiscard]] std::uint64_t now_ns();

/// Record one completed span / one byte-counter delta. Relaxed atomics on
/// the calling thread's accumulator block; wait-free.
void record_span_ns(SiteId site, std::uint64_t ns);
void add(SiteId site, std::uint64_t count_delta, std::uint64_t total_delta);

/// RAII span: stamps now_ns() at construction, records on destruction.
class SpanTimer {
 public:
  explicit SpanTimer(SiteId site)
      : site_(enabled() ? site : kInvalidSite),
        t0_(site_ != kInvalidSite ? now_ns() : 0) {}
  ~SpanTimer() {
    if (site_ != kInvalidSite) record_span_ns(site_, now_ns() - t0_);
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  SiteId site_;
  std::uint64_t t0_;
};

/// Merged per-site totals (all live threads + retired threads).
struct SiteStats {
  std::string name;
  SiteKind kind = SiteKind::kSpan;
  std::uint64_t count = 0;  ///< Span entries / copy events.
  std::uint64_t total = 0;  ///< Nanoseconds (spans) or bytes (counters).
  std::uint64_t max = 0;    ///< Largest single span, ns (spans only).
  std::array<std::uint64_t, kLog2Buckets> log2{};  ///< Spans only.

  /// Percentile (p in [0,100]) from the log2 buckets, in ns. Resolution is
  /// the bucket's geometric midpoint — a factor-of-two estimate, which is
  /// what a live "top" view needs, not what a bench reports.
  [[nodiscard]] double percentile_ns(double p) const;
};

struct Snapshot {
  std::uint64_t uptime_ns = 0;  ///< Since process first touched the profiler.
  std::uint64_t threads = 0;    ///< Accumulator blocks ever registered.
  std::vector<SiteStats> sites;  ///< Registration order.
};

[[nodiscard]] Snapshot snapshot();

/// Writes the snapshot into registry cells (absolute counters; per-window
/// deltas for the span histograms and the loop-saturation gauge). Called
/// from the periodic gauge sweep; safe from any thread.
void harvest_into(Registry& registry);

/// GET /profile body: the full snapshot plus derived loop saturation, as
/// one JSON object (schema in docs/OBSERVABILITY.md).
[[nodiscard]] std::string render_json();

/// Test hook: zero every accumulator and forget harvest windows (site
/// registrations survive — call sites hold their ids). Not thread-safe
/// against concurrent recording; tests only.
void reset_for_tests();

namespace detail {
/// Loop-saturation inputs by convention: these span names, recorded by
/// net::EventLoop, split every loop iteration into waiting vs. working.
inline constexpr const char* kPollWaitSpan = "loop.poll_wait";
inline constexpr const char* kLoopWorkSpans[] = {"loop.posted", "loop.timers",
                                                 "loop.dispatch"};
}  // namespace detail

}  // namespace tart::obs::prof

// --- Macros -----------------------------------------------------------------

#if defined(TART_PROF_ENABLED) && TART_PROF_ENABLED

#define TART_PROF_INTERNAL_CAT2(a, b) a##b
#define TART_PROF_INTERNAL_CAT(a, b) TART_PROF_INTERNAL_CAT2(a, b)

/// Scoped span: times from here to the end of the enclosing scope.
#define TART_PROF_SPAN(name)                                             \
  static const ::tart::obs::prof::SiteId TART_PROF_INTERNAL_CAT(         \
      tart_prof_site_, __LINE__) = ::tart::obs::prof::register_span(name); \
  const ::tart::obs::prof::SpanTimer TART_PROF_INTERNAL_CAT(             \
      tart_prof_timer_, __LINE__)(                                       \
      TART_PROF_INTERNAL_CAT(tart_prof_site_, __LINE__))

/// Span recorded from an already-measured duration (no extra clock reads).
#define TART_PROF_SPAN_NS(name, ns)                                      \
  do {                                                                   \
    if (::tart::obs::prof::enabled()) {                                  \
      static const ::tart::obs::prof::SiteId tart_prof_site_ =           \
          ::tart::obs::prof::register_span(name);                        \
      ::tart::obs::prof::record_span_ns(                                 \
          tart_prof_site_, static_cast<std::uint64_t>(ns));              \
    }                                                                    \
  } while (0)

/// One copy event of `nbytes` on the named path.
#define TART_PROF_BYTES(name, nbytes)                                    \
  do {                                                                   \
    if (::tart::obs::prof::enabled()) {                                  \
      static const ::tart::obs::prof::SiteId tart_prof_site_ =           \
          ::tart::obs::prof::register_bytes(name);                       \
      ::tart::obs::prof::add(tart_prof_site_, 1,                         \
                             static_cast<std::uint64_t>(nbytes));        \
    }                                                                    \
  } while (0)

/// `n` events with no byte payload (e.g. allocations).
#define TART_PROF_COUNT(name, n)                                         \
  do {                                                                   \
    if (::tart::obs::prof::enabled()) {                                  \
      static const ::tart::obs::prof::SiteId tart_prof_site_ =           \
          ::tart::obs::prof::register_bytes(name);                       \
      ::tart::obs::prof::add(tart_prof_site_,                            \
                             static_cast<std::uint64_t>(n), 0);          \
    }                                                                    \
  } while (0)

#else  // profiling compiled out: every site is zero instructions

#define TART_PROF_SPAN(name) static_cast<void>(0)
#define TART_PROF_SPAN_NS(name, ns) static_cast<void>(0)
#define TART_PROF_BYTES(name, nbytes) static_cast<void>(0)
#define TART_PROF_COUNT(name, n) static_cast<void>(0)

#endif  // TART_PROF_ENABLED
