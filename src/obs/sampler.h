// Background telemetry sampler: appends one JSONL registry snapshot per
// interval to a file, for offline time-series analysis of a run
// (plot pessimism-stall percentiles over a soak, watch the estimator
// error converge).
//
// Off by default. Strictly read-only — it loads atomics and writes a
// file; nothing in the deterministic protocol observes it, so seeded runs
// with the sampler on or off produce byte-identical traces
// (tests/trace_determinism_test.cc pins this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "core/metrics.h"
#include "obs/registry.h"

namespace tart::obs {

class Sampler {
 public:
  struct Options {
    std::string path;
    /// Wall-clock sampling period.
    int interval_ms = 1000;
  };

  /// `snapshot_fn` supplies the process-wide MetricsSnapshot (the host's
  /// merged runtime + net + gateway view); may be empty, in which case
  /// only registry series are written.
  using SnapshotFn = std::function<core::MetricsSnapshot()>;

  Sampler(Options options, const Registry* registry, SnapshotFn snapshot_fn);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Opens the file (append) and starts the thread. Returns false if the
  /// file cannot be opened.
  [[nodiscard]] bool start();
  /// Writes one final sample and joins. Idempotent.
  void stop();

  /// Samples written so far (tests).
  [[nodiscard]] std::uint64_t samples_written() const {
    return written_.load(std::memory_order_relaxed);
  }

  /// One snapshot line, exposed for tests and one-shot dumps.
  [[nodiscard]] static std::string render_line(
      std::int64_t ts_ms, const core::MetricsSnapshot& snap,
      const std::vector<Sample>& series);

 private:
  void run();
  void write_sample();

  Options options_;
  const Registry* registry_;
  SnapshotFn snapshot_fn_;
  std::FILE* file_ = nullptr;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::atomic<std::uint64_t> written_{0};
};

}  // namespace tart::obs
