// Deployment-time tuning knobs (§II.G "Controls Affecting Performance").
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "durability/config.h"
#include "estimator/calibrator.h"
#include "estimator/comm_delay.h"
#include "trace/trace_config.h"
#include "transport/network_link.h"

namespace tart::core {

/// How messages are scheduled at each component.
enum class SchedulingMode {
  /// TART: strict virtual-time order with pessimistic silence waiting.
  kDeterministic,
  /// Baseline: real-time arrival order (a conventional runtime). Used by
  /// the overhead benchmarks; provides no replay guarantee.
  kArrivalOrder,
};

/// Silence-propagation strategy (§II.G.3). Lazy propagation — silence
/// implied by the next data message — is always active; the knobs below add
/// explicit propagation on top of it.
struct SilenceConfig {
  /// Curiosity-driven: a receiver in a pessimism delay probes the lagging
  /// senders for fresh silence intervals.
  bool curiosity = true;
  /// Re-probe cadence while a pessimism delay persists (real time).
  std::chrono::microseconds probe_interval{200};
  /// Aggressive: senders push silence updates unprompted at this real-time
  /// cadence. Zero disables.
  std::chrono::microseconds aggressive_interval{0};
};

struct CheckpointConfig {
  /// Soft-checkpoint a component every N processed messages. Zero disables
  /// (recovery then replays from the beginning of the external log).
  std::uint64_t every_n_messages = 0;
  /// Every k-th snapshot is full; the rest are incremental deltas when the
  /// component supports them.
  std::uint64_t full_every_k = 8;
};

struct RuntimeConfig {
  SchedulingMode mode = SchedulingMode::kDeterministic;
  SilenceConfig silence;
  CheckpointConfig checkpoint;

  /// Flight recorder (src/trace): VT-ordered event tracing for determinism
  /// verification and performance forensics. Off by default; when off the
  /// hot path pays one branch per record point.
  trace::TraceConfig trace;

  /// Online estimator recalibration via determinism faults (§II.G.4).
  bool calibration = false;
  estimator::CalibratorConfig calibrator;

  /// Hyper-aggressive bias per component (§II.G.1 "bias algorithm"):
  /// the designated slow senders round output virtual times up to
  /// (bias+1)-tick grid boundaries and eagerly promise the gaps silent.
  std::map<ComponentId, TickDuration> bias;

  /// Communication-delay estimator per wire; wires without an entry use
  /// LocalDelayEstimator (1 tick).
  std::map<WireId,
           std::function<std::unique_ptr<estimator::CommDelayEstimator>()>>
      comm_delay;

  /// Simulated physical links between engine pairs (ordered pair). Frame
  /// traffic between two engines flows through a ReliableChannel over these
  /// faulty links; engine pairs without an entry communicate directly.
  std::map<std::pair<EngineId, EngineId>, transport::LinkConfig> links;

  /// Partition-aware deployment: the engines hosted by THIS process. Empty
  /// means every engine in the placement is local (the classic
  /// single-process deployment). When non-empty, only local engines are
  /// constructed; frames routed toward a non-local engine are handed to
  /// the remote router (Runtime::set_remote_router) — the socket transport
  /// bridge — and frames arriving from peer processes enter through
  /// Runtime::deliver_from_peer.
  std::set<EngineId> local_engines;

  /// Stable-storage directory (§II.C: the backup can be "a stable storage
  /// device"). When set, the external message log and the determinism
  /// fault log are write-through persisted to <log_dir>/messages.log and
  /// <log_dir>/faults.log; a Runtime constructed over an existing log_dir
  /// recovers them and Runtime::start() replays the recovered input — a
  /// full cold restart of the whole deployment from stable storage.
  std::string log_dir;

  /// Durable checkpoints + checkpoint-gated log compaction + tiered fast
  /// restart (src/durability, docs/RECOVERY.md). Engages only when enabled
  /// AND log_dir is set: the external log then lives in rotated segments
  /// and restart replays only the suffix past the newest durable
  /// checkpoint.
  durability::DurabilityConfig durability;
};

}  // namespace tart::core
