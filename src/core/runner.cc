#include "core/runner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>

#include "common/logging.h"
#include "obs/prof.h"

namespace tart::core {

namespace {
using Clock = std::chrono::steady_clock;

std::int64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}
}  // namespace

// ---------------------------------------------------------------------------
// Handler context

class RunnerContext final : public Context {
 public:
  RunnerContext(ComponentRunner& runner, VirtualTime dequeue_vt,
                TickDuration prescient_charge)
      : runner_(runner),
        dequeue_vt_(dequeue_vt),
        cursor_(dequeue_vt),
        prescient_charge_(prescient_charge) {}

  [[nodiscard]] VirtualTime now() const override { return cursor_; }

  void count_block(std::size_t block, std::uint64_t n) override {
    counters_.count(block, n);
  }

  void send(PortId port, Payload payload) override {
    send_impl(port, std::nullopt, std::move(payload));
  }

  void send_delayed(PortId port, TickDuration delay,
                    Payload payload) override {
    send_impl(port, std::max(delay, TickDuration(1)), std::move(payload));
  }

  void send_impl(PortId port, std::optional<TickDuration> delay,
                 Payload payload) {
    advance_cursor();
    bool any = false;
    for (auto& [wid, out] : runner_.outputs_) {
      if (out->spec.from_port != port) continue;
      if (out->spec.kind == WireKind::kCall) continue;  // calls use call()
      runner_.emit(*out, cursor_, MessageKind::kData, 0, payload, delay);
      any = true;
    }
    if (!any)
      throw std::logic_error("send on unconnected port " +
                             std::to_string(port.value()) + " of " +
                             runner_.name_);
  }

  [[nodiscard]] Payload call(PortId port, Payload payload) override {
    advance_cursor();
    ComponentRunner::OutputState* call_out = nullptr;
    for (auto& [wid, out] : runner_.outputs_) {
      if (out->spec.from_port == port &&
          out->spec.kind == WireKind::kCall) {
        call_out = out.get();
        break;
      }
    }
    if (call_out == nullptr)
      throw std::logic_error("call on unconnected port " +
                             std::to_string(port.value()) + " of " +
                             runner_.name_);
    const WireId reply_wire = call_out->spec.paired;
    const std::uint64_t call_id = call_out->next_seq.load();  // deterministic

    {
      // Arm the rendezvous before routing, so a fast reply can't race past.
      const std::lock_guard<std::mutex> lk(runner_.reply_mu_);
      runner_.pending_reply_.reset();
      runner_.awaited_call_id_ = call_id;
      runner_.awaited_reply_wire_ = reply_wire;
    }
    runner_.emit(*call_out, cursor_, MessageKind::kCall, call_id,
                 std::move(payload));

    std::unique_lock<std::mutex> lk(runner_.reply_mu_);
    runner_.reply_cv_.wait(lk, [this] {
      return runner_.pending_reply_.has_value() || runner_.stop_.load();
    });
    if (!runner_.pending_reply_)
      throw ComponentRunner::StopSignal{};
    Message reply = std::move(*runner_.pending_reply_);
    runner_.pending_reply_.reset();
    // Record the consumed reply position under the rendezvous lock so a
    // concurrently arriving duplicate is classified correctly.
    runner_.last_reply_[reply_wire] = reply.vt;
    lk.unlock();

    // Resume at the reply's virtual arrival time.
    cursor_ = max(cursor_, reply.vt);
    return reply.payload;
  }

  [[nodiscard]] const estimator::BlockCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] VirtualTime cursor() const { return cursor_; }
  [[nodiscard]] VirtualTime dequeue_vt() const { return dequeue_vt_; }
  [[nodiscard]] TickDuration prescient_charge() const {
    return prescient_charge_;
  }

  /// Moves the cursor to dequeue_vt + current estimator charge (monotone).
  void advance_cursor() {
    const TickDuration charge =
        runner_.charge_for(counters_, dequeue_vt_, prescient_charge_);
    cursor_ = max(cursor_, dequeue_vt_ + charge);
  }

 private:
  ComponentRunner& runner_;
  VirtualTime dequeue_vt_;
  VirtualTime cursor_;
  TickDuration prescient_charge_;
  estimator::BlockCounters counters_;
};

// ---------------------------------------------------------------------------
// Construction / wiring

ComponentRunner::ComponentRunner(const Topology& topology, ComponentId id,
                                 const RuntimeConfig& config,
                                 FrameRouter& router,
                                 log::DeterminismFaultLog& fault_log,
                                 checkpoint::ReplicaStore& replica,
                                 obs::Registry& registry,
                                 trace::TraceRecorder* tracer)
    : topology_(topology),
      id_(id),
      name_(topology.component(id).name),
      config_(config),
      router_(router),
      replica_(replica),
      registry_(registry),
      tracer_(tracer),
      bias_([&] {
        const auto it = config.bias.find(id);
        return estimator::BiasPolicy(
            it == config.bias.end() ? TickDuration(0) : it->second);
      }()),
      component_(topology.component(id).factory()),
      estimators_(id, topology.component(id).estimator_factory(),
                  config.calibration ? &fault_log : nullptr,
                  config.calibrator),
      metrics_(registry, topology.component(id).name) {
  inbox_.set_trace(tracer_, id_);
  for (const WireId w : topology.inputs_of(id)) {
    inbox_.add_wire(w);
    input_pos_.emplace(w, InputPos{});
    input_wires_.push_back(w);
    (topology.wire(w).from == id ? self_wires_ : nonself_wires_)
        .push_back(w);
    // Receiver-side bias: if the sending component follows the
    // hyper-aggressive discipline, its data may only occupy ticks on the
    // (bias+1) grid; the ticks between are silent by construction.
    const auto& spec = topology.wire(w);
    if (spec.from.is_valid()) {
      const auto bias_it = config.bias.find(spec.from);
      if (bias_it != config.bias.end() &&
          bias_it->second > TickDuration(0)) {
        inbox_.set_data_grid(w, bias_it->second.ticks() + 1);
      }
    }
  }
  for (const WireId w : topology.outputs_of(id)) {
    auto out = std::make_unique<OutputState>();
    out->spec = topology.wire(w);
    const auto it = config.comm_delay.find(w);
    out->delay = (it != config.comm_delay.end())
                     ? it->second()
                     : std::make_unique<estimator::LocalDelayEstimator>();
    outputs_.emplace(w, std::move(out));
  }
  // Reply wires feeding *into* this component (we are the caller).
  for (const auto& spec : topology.wires()) {
    if (spec.kind == WireKind::kReply && spec.to == id)
      last_reply_.emplace(spec.id, VirtualTime(-1));
  }
  // Telemetry: registered eagerly so the labelled families exist (at zero)
  // from the first scrape, not only after the first stall.
  for (const WireId w : input_wires_) {
    const auto& spec = topology.wire(w);
    const std::string sender = spec.from.is_valid()
                                   ? topology.component(spec.from).name
                                   : "external";
    const obs::Labels labels{{"component", name_},
                             {"sender", sender},
                             {"wire", "w" + std::to_string(w.value())}};
    obs::Histogram& sh = registry.histogram(
        "tart_pessimism_stall_seconds",
        "Pessimism-stall episode duration, attributed to the input "
        "wire whose silence horizon lagged the held message",
        labels, 100e-6, 256);
    // Exemplars link a bucket back to concrete episode ids the flight
    // recorder knows about (`tart-trace explain --episode`).
    sh.enable_exemplars(4);
    stall_hist_.emplace(w, &sh);
    probe_rtt_hist_.emplace(
        w, &registry.histogram(
               "tart_probe_rtt_seconds",
               "Curiosity-probe to silence-response round trip", labels,
               20e-6, 256));
  }
  est_err_hist_ = &registry.histogram(
      "tart_estimator_error_seconds",
      "Absolute error between the estimator's virtual-time charge and the "
      "measured handler time",
      obs::Labels{{"component", name_}}, 1e-6, 256);
  ingress_queue_hist_ = &registry.histogram(
      "tart_lineage_ingress_queue_seconds",
      "Edge arrival to first handler dispatch of an external input "
      "(the ingress-queueing stage of the lineage decomposition)",
      obs::Labels{{"component", name_}}, 50e-6, 256);
}

ComponentRunner::~ComponentRunner() { stop(); }

void ComponentRunner::start() {
  assert(!thread_.joinable());
  stop_ = false;
  thread_ = std::thread([this] { run(); });
}

void ComponentRunner::stop() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (stop_.load() && !thread_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  reply_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

// ---------------------------------------------------------------------------
// Frame entry points

void ComponentRunner::deliver_data(const Message& m) {
  AcceptResult result = AcceptResult::kAccepted;
  VirtualTime gap_after;
  std::uint64_t gap_seq = 0;
  bool dup_call = false;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (m.vt <= max_arrival_vt_) metrics_.out_of_order_arrivals.inc();
    max_arrival_vt_ = max(max_arrival_vt_, m.vt);

    if (config_.mode == SchedulingMode::kArrivalOrder) {
      arrival_queue_.push_back(m);
    } else {
      result = inbox_.offer(m);
      switch (result) {
        case AcceptResult::kAccepted:
          break;
        case AcceptResult::kDuplicate:
          metrics_.duplicates_discarded.inc();
          // A re-sent call means the caller recovered and re-executed: the
          // retained reply must be re-sent (the original may have died with
          // the caller's engine).
          if (m.kind == MessageKind::kCall) {
            control_.push_back(DupCallCtl{m.wire, m.call_id});
            dup_call = true;
          }
          break;
        case AcceptResult::kGap:
          metrics_.gaps_detected.inc();
          gap_after = inbox_.wire_horizon(m.wire);
          gap_seq = inbox_.next_seq(m.wire);
          break;
      }
    }
  }
  cv_.notify_all();
  (void)dup_call;
  if (result == AcceptResult::kGap) {
    router_.to_sender(
        m.wire, transport::ReplayRequestFrame{m.wire, gap_after, gap_seq});
  }
}

void ComponentRunner::deliver_silence(WireId wire, VirtualTime through,
                                      std::uint64_t expected_seq) {
  bool gap = false;
  std::uint64_t from_seq = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    // Reply wires bypass the inbox (the blocked caller is the only
    // consumer); silence on them carries no scheduling information.
    if (!inbox_.has_wire(wire)) return;
    // A silence frame on a probed wire IS the probe response; close the
    // round-trip measurement.
    if (const auto pit = probe_sent_ns_.find(wire);
        pit != probe_sent_ns_.end()) {
      const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now().time_since_epoch())
                              .count();
      if (const auto hit = probe_rtt_hist_.find(wire);
          hit != probe_rtt_hist_.end())
        hit->second->record(static_cast<double>(now_ns - pit->second) * 1e-9);
      probe_sent_ns_.erase(pit);
    }
    if (config_.mode == SchedulingMode::kDeterministic) {
      gap = inbox_.announce_silence(wire, through, expected_seq);
      from_seq = inbox_.next_seq(wire);
    } else if (through.is_infinite()) {
      // Arrival-order baseline: only close tracking, no tick accounting.
      (void)inbox_.announce_silence(wire, through, 0);
    }
  }
  cv_.notify_all();
  if (gap) {
    // The announcement accounted data ticks we never received (lost while
    // this engine was down, or on a raw link): fetch them.
    metrics_.gaps_detected.inc();
    router_.to_sender(wire, transport::ReplayRequestFrame{
                                wire, VirtualTime(-1), from_seq});
  }
}

void ComponentRunner::deliver_reply(const Message& m) {
  {
    const std::lock_guard<std::mutex> lk(reply_mu_);
    const auto it = last_reply_.find(m.wire);
    const VirtualTime seen =
        it == last_reply_.end() ? VirtualTime(-1) : it->second;
    if (m.vt > seen && m.wire == awaited_reply_wire_ &&
        m.call_id == awaited_call_id_ && !pending_reply_) {
      pending_reply_ = m;
    } else {
      // Duplicate of an already-consumed reply (re-sent after a callee
      // failover, or in answer to a re-executed call we no longer await).
      metrics_.duplicates_discarded.inc();
      if (tracer_ != nullptr)
        tracer_->record(id_, trace::TraceEventKind::kDuplicateDiscard, m.vt,
                        m.wire, m.call_id, trace::hash_of(m.payload));
    }
  }
  reply_cv_.notify_all();
}

void ComponentRunner::handle_probe(WireId wire) {
  const auto it = outputs_.find(wire);
  if (it == outputs_.end()) return;
  // Read the data count before the horizon: a count that lags the horizon
  // can only under-report (no false gaps), and probes repeat.
  const std::uint64_t seq = it->second->next_seq.load();
  const VirtualTime horizon(it->second->published.load());
  it->second->probe_pending.store(true);
  router_.to_receiver(wire, transport::SilenceFrame{wire, horizon, seq});

  // Transitive curiosity: this component's own silence horizon is bounded
  // by what its inputs have promised, so "computing a new silence
  // interval" (§II.H) means refreshing those promises too — in particular
  // an external adapter's real-time-anchored silence. Rate-limited so
  // probe chains in deep or cyclic topologies cannot storm.
  const auto now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  std::int64_t last = last_transitive_probe_ns_.load();
  const std::int64_t interval_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          config_.silence.probe_interval)
          .count();
  if (now_ns - last < interval_ns / 2) return;
  if (!last_transitive_probe_ns_.compare_exchange_strong(last, now_ns))
    return;
  for (const WireId in_wire : input_wires_)
    router_.to_sender(in_wire, transport::ProbeFrame{in_wire});
}

void ComponentRunner::enqueue_control(ControlMsg msg) {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    control_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Main loop

void ComponentRunner::run() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    publish_idle_horizons_locked();
  }
  std::unique_lock<std::mutex> lk(mu_);
  bool head_was_delayed = false;  // identity of the currently blocked head
  VirtualTime delayed_vt;
  WireId delayed_wire;
  Clock::time_point stall_start{};
  // Every wire observed lagging during the current stall episode; the
  // episode's duration is attributed to each of them on release.
  std::set<WireId> stall_blockers;

  try {
    while (!stop_.load()) {
      // Control work first: replay/stability/dup-call touch runner-private
      // state, so they run here, between handler invocations.
      drain_control(lk);
      if (stop_.load()) break;

      if (config_.mode == SchedulingMode::kArrivalOrder) {
        if (!arrival_queue_.empty()) {
          Message m = std::move(arrival_queue_.front());
          arrival_queue_.pop_front();
          in_handler_ = true;
          lk.unlock();
          process(m);
          lk.lock();
          in_handler_ = false;
          continue;
        }
        if (inbox_.exhausted() && !final_silence_sent_) {
          lk.unlock();
          publish_final_silence();
          lk.lock();
        }
        cv_.wait_for(lk, std::chrono::milliseconds(1));
        continue;
      }

      if (auto m = inbox_.pop()) {
        if (head_was_delayed) {
          const std::int64_t stall_ns = ns_between(stall_start, Clock::now());
          // The blocking wire: when the held head itself released, the last
          // wire still observed lagging; when an earlier arrival displaced
          // the head, the displacer's wire (its data unblocked the pop).
          const bool displaced =
              m->vt != delayed_vt || m->wire != delayed_wire;
          WireId blocking = delayed_wire;
          if (displaced) {
            blocking = m->wire;
          } else if (!stall_last_lagging_.empty()) {
            blocking = *std::min_element(stall_last_lagging_.begin(),
                                         stall_last_lagging_.end());
          }
          if (tracer_ != nullptr) {
            tracer_->record(id_, trace::TraceEventKind::kStallEnd, m->vt,
                            m->wire, static_cast<std::uint64_t>(stall_ns));
            const auto hb = stall_h_begin_.find(blocking);
            const VirtualTime h_begin = hb != stall_h_begin_.end()
                                            ? VirtualTime(hb->second)
                                            : VirtualTime(-1);
            tracer_->record(id_, trace::TraceEventKind::kStallResolved,
                            delayed_vt, blocking, stall_episode_id_,
                            static_cast<std::uint64_t>(stall_ns));
            tracer_->record(id_, trace::TraceEventKind::kStallBlame, h_begin,
                            blocking, stall_episode_id_,
                            static_cast<std::uint64_t>(stall_begin_wall_ns_));
          }
          const double stall_s = static_cast<double>(stall_ns) * 1e-9;
          for (const WireId w : stall_blockers)
            if (const auto hit = stall_hist_.find(w); hit != stall_hist_.end())
              hit->second->record(
                  stall_s, obs::Exemplar{stall_s, stall_episode_id_,
                                         id_.value(), w.value()});
          stall_blockers.clear();
        }
        head_was_delayed = false;
        in_handler_ = true;
        lk.unlock();
        process(*m);
        lk.lock();
        in_handler_ = false;
        continue;
      }

      if (inbox_.pending() > 0) {
        // Pessimism delay: the earliest message is held until the other
        // senders promise silence through its virtual time (§II.E).
        // Refresh our own horizons first — input horizons may have
        // advanced, and self (timer) wires take their silence from here.
        publish_idle_horizons_locked();
        if (inbox_.head_eligible()) continue;
        const auto head = inbox_.peek();
        if (!head_was_delayed || head->vt != delayed_vt ||
            head->wire != delayed_wire) {
          metrics_.pessimism_events.inc();
          head_was_delayed = true;
          delayed_vt = head->vt;
          delayed_wire = head->wire;
          stall_start = Clock::now();
          stall_blockers.clear();
          // New episode: mint an id and photograph the input horizons, so
          // the release path can report how far the blocking wire was from
          // covering the held vt when the episode began (kStallBlame).
          stall_episode_id_ = stall_episode_seq_++;
          stall_begin_wall_ns_ =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  stall_start.time_since_epoch())
                  .count();
          stall_h_begin_.clear();
          stall_last_lagging_.clear();
          for (const WireId w : input_wires_)
            stall_h_begin_[w] = inbox_.wire_horizon(w).ticks();
          // aux/payload carry the episode id and begin wall stamp (same
          // clock as kStallBlame): if the stream ends before the resolve,
          // forensics can still report the episode as open instead of
          // silently dropping its accumulated stall time.
          if (tracer_ != nullptr)
            tracer_->record(id_, trace::TraceEventKind::kStallBegin,
                            head->vt, head->wire, stall_episode_id_,
                            static_cast<std::uint64_t>(stall_begin_wall_ns_));
        }
        const auto lagging = inbox_.lagging_wires();
        stall_blockers.insert(lagging.begin(), lagging.end());
        if (!lagging.empty()) stall_last_lagging_ = lagging;
        const auto t0 = Clock::now();
        if (config_.silence.curiosity) {
          const auto t0_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  t0.time_since_epoch())
                  .count();
          // Stamp under mu_ so deliver_silence can match the response;
          // an already-outstanding stamp keeps its original send time.
          for (const WireId w : lagging) probe_sent_ns_.try_emplace(w, t0_ns);
          lk.unlock();
          for (const WireId w : lagging) {
            metrics_.probes_sent.inc();
            if (tracer_ != nullptr)
              tracer_->record(id_, trace::TraceEventKind::kCuriosityProbe,
                              delayed_vt, w);
            router_.to_sender(w, transport::ProbeFrame{w});
          }
          lk.lock();
          if (stop_.load()) break;
          // Re-check: probe responses may already have landed.
          if (inbox_.head_eligible()) {
            metrics_.pessimism_wait_ns.inc(
                static_cast<std::uint64_t>(ns_between(t0, Clock::now())));
            continue;
          }
        }
        cv_.wait_for(lk, config_.silence.probe_interval);
        metrics_.pessimism_wait_ns.inc(
            static_cast<std::uint64_t>(ns_between(t0, Clock::now())));
        continue;
      }

      if (inbox_.exhausted()) {
        if (!final_silence_sent_) {
          lk.unlock();
          publish_final_silence();
          lk.lock();
        }
        cv_.wait_for(lk, std::chrono::milliseconds(5));
        continue;
      }

      // Timer (self-loop) wires: once every non-self input is closed and
      // nothing is pending anywhere, no handler can ever run again, so no
      // further timer can be scheduled — the self wires close themselves
      // (breaking the otherwise-circular wait for our own silence).
      if (!self_wires_.empty() && inbox_.pending() == 0) {
        bool others_closed = true;
        for (const WireId w : nonself_wires_)
          if (!inbox_.wire_horizon(w).is_infinite()) others_closed = false;
        if (others_closed) {
          for (const WireId w : self_wires_)
            (void)inbox_.announce_silence(w, VirtualTime::infinity(),
                                          inbox_.next_seq(w));
          continue;
        }
      }

      // Idle: nothing pending. Refresh horizons (the inbox lower bound may
      // have advanced via silence), satisfy any outstanding probe
      // interest, and wait for work.
      publish_idle_horizons_locked();
      lk.unlock();
      flush_probe_responses();
      lk.lock();
      if (stop_.load()) break;
      cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
  } catch (const StopSignal&) {
    // Blocked call interrupted by stop/crash; thread exits, state dropped.
    if (!lk.owns_lock()) lk.lock();
    in_handler_ = false;
  } catch (const std::exception& e) {
    // A component bug (bad payload access, send on an unconnected port,
    // handler exception): the component fail-stops — equivalent to its
    // engine losing this component — rather than taking the process down.
    TART_ERROR << "component '" << name_ << "' failed: " << e.what();
    if (!lk.owns_lock()) lk.lock();
    in_handler_ = false;
  }
}

void ComponentRunner::drain_control(std::unique_lock<std::mutex>& lk) {
  while (!control_.empty()) {
    ControlMsg msg = std::move(control_.front());
    control_.pop_front();
    lk.unlock();
    serve_control(msg);
    lk.lock();
  }
}

void ComponentRunner::serve_control(const ControlMsg& msg) {
  if (const auto* replay = std::get_if<ReplayRequestCtl>(&msg)) {
    const auto it = outputs_.find(replay->wire);
    if (it == outputs_.end()) return;
    OutputState& out = *it->second;
    for (const Message& m : out.retention.replay_from_seq(replay->from_seq))
      router_.to_receiver(m.wire, transport::DataFrame{m});
    // Follow with the current horizon so the receiver is not stuck waiting
    // for silence that was announced before its failover.
    const std::uint64_t seq = out.next_seq.load();
    router_.to_receiver(
        replay->wire,
        transport::SilenceFrame{replay->wire,
                                VirtualTime(out.published.load()), seq});
  } else if (const auto* stability = std::get_if<StabilityCtl>(&msg)) {
    const auto it = outputs_.find(stability->wire);
    if (it == outputs_.end()) return;
    it->second->retention.acknowledge_through(stability->through);
  } else if (const auto* dup = std::get_if<DupCallCtl>(&msg)) {
    // Re-send the retained reply for a duplicate (re-executed) call.
    const auto& call_spec = topology_.wire(dup->call_wire);
    const auto it = outputs_.find(call_spec.paired);
    if (it == outputs_.end()) return;
    if (const auto reply = it->second->retention.find_by_call_id(
            dup->call_id)) {
      router_.to_receiver(reply->wire, transport::DataFrame{*reply});
    }
  } else if (std::holds_alternative<CheckpointNowCtl>(msg)) {
    force_full_checkpoint_ = true;
    capture_checkpoint();
    processed_since_checkpoint_ = 0;
  } else if (const auto* trim = std::get_if<RetentionTrimCtl>(&msg)) {
    const auto it = outputs_.find(trim->wire);
    if (it != outputs_.end()) {
      const std::size_t dropped =
          it->second->retention.trim_below_seq(trim->below_seq);
      if (trim->trimmed != nullptr && dropped > 0)
        trim->trimmed->fetch_add(dropped, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Message processing

void ComponentRunner::process(const Message& m) {
  const auto& spec = topology_.wire(m.wire);
  const VirtualTime dequeue_vt = max(m.vt, current_vt_);
  // The dispatch record IS the scheduling decision: replaying the same log
  // must reproduce this stream exactly (§II.D), which the trace differ
  // checks.
  if (tracer_ != nullptr)
    tracer_->record(id_, trace::TraceEventKind::kDispatch, m.vt, m.wire,
                    m.seq, trace::hash_of(m.payload));

  // Request lineage: descendants emitted during this dispatch inherit the
  // message's origin input; the wall-stamped hop events bracket the
  // handler so the offline decomposition can charge queueing vs
  // processing (lineage category — absent from the scheduling stream).
  current_origin_wire_ = m.origin_wire;
  current_origin_seq_ = m.origin_seq;
  current_origin_wall_ns_ = m.origin_wall_ns;
  const bool record_hops =
      tracer_ != nullptr &&
      tracer_->wants(trace::TraceEventKind::kHopDispatch);
  if (record_hops)
    tracer_->record(id_, trace::TraceEventKind::kHopDispatch, m.vt, m.wire,
                    m.seq,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now().time_since_epoch())
                            .count()));
  // Ingress queueing (live view): edge arrival to this first dispatch,
  // only when this IS the origin input's own hop.
  if (m.origin_wall_ns > 0 && m.wire == m.origin_wire &&
      m.seq == m.origin_seq && ingress_queue_hist_ != nullptr) {
    const std::int64_t q_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count() -
        m.origin_wall_ns;
    if (q_ns >= 0)
      ingress_queue_hist_->record(static_cast<double>(q_ns) * 1e-9);
  }

  TickDuration prescient_charge(0);
  if (config_.mode == SchedulingMode::kDeterministic) {
    if (const auto pc =
            component_->prescient_counters(spec.to_port, m.payload)) {
      prescient_charge = charge_for(*pc, dequeue_vt, TickDuration(0));
      publish_busy_horizons(dequeue_vt + prescient_charge);
    } else {
      publish_busy_horizons(dequeue_vt +
                            estimators_.min_estimate(dequeue_vt));
    }
  }

  RunnerContext ctx(*this, dequeue_vt, prescient_charge);
  const auto t0 = Clock::now();
  Payload reply;
  const bool is_call = m.kind == MessageKind::kCall;
  if (is_call) {
    reply = component_->on_call(ctx, spec.to_port, m.payload);
    metrics_.calls_served.inc();
  } else {
    component_->on_message(ctx, spec.to_port, m.payload);
  }
  const auto elapsed_ns = ns_between(t0, Clock::now());
  // Reuses the two clock reads the estimator already pays for.
  TART_PROF_SPAN_NS("runner.dispatch", elapsed_ns);

  if (config_.mode == SchedulingMode::kDeterministic) {
    // Estimator accuracy: the charge that moved the cursor vs. the wall
    // time the handler actually took (1 tick = 1 virtual ns). Pure
    // observation — the cursor has already advanced by the charge.
    const std::int64_t charged_ns =
        charge_for(ctx.counters(), dequeue_vt, prescient_charge).ticks();
    const std::int64_t err_ns = elapsed_ns - charged_ns;
    if (err_ns > 0) metrics_.estimator_underestimates.inc();
    if (est_err_hist_ != nullptr)
      est_err_hist_->record(
          static_cast<double>(err_ns < 0 ? -err_ns : err_ns) * 1e-9);
  }

  ctx.advance_cursor();
  VirtualTime cursor = ctx.cursor();

  if (is_call) {
    OutputState& reply_out = *outputs_.at(spec.paired);
    const VirtualTime reply_vt =
        emit(reply_out, cursor, MessageKind::kReply, m.call_id,
             std::move(reply));
    (void)reply_vt;
  }

  if (record_hops)
    tracer_->record(id_, trace::TraceEventKind::kHopDone, m.vt, m.wire,
                    m.seq,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now().time_since_epoch())
                            .count()));
  current_origin_wire_ = WireId::invalid();
  current_origin_seq_ = 0;
  current_origin_wall_ns_ = 0;

  current_vt_ = cursor;
  input_pos_[m.wire] = InputPos{m.vt, m.seq + 1};
  metrics_.messages_processed.inc();
  ++processed_since_checkpoint_;

  if (config_.calibration) {
    estimators_.add_sample(ctx.counters(),
                           static_cast<double>(elapsed_ns), current_vt_);
  }

  maybe_checkpoint();

  {
    std::unique_lock<std::mutex> lk(mu_);
    publish_idle_horizons_locked();
  }
  flush_probe_responses();
}

TickDuration ComponentRunner::charge_for(const estimator::BlockCounters& c,
                                         VirtualTime dequeue_vt,
                                         TickDuration floor) const {
  TickDuration charge = estimators_.estimate(c, dequeue_vt);
  charge = std::max(charge, estimators_.min_estimate(dequeue_vt));
  charge = std::max(charge, floor);
  return std::max(charge, TickDuration(1));
}

VirtualTime ComponentRunner::emit(OutputState& out, VirtualTime cursor,
                                  MessageKind kind, std::uint64_t call_id,
                                  Payload payload,
                                  std::optional<TickDuration> explicit_delay) {
  // An explicit delay must still respect the wire's promised silence floor
  // (its minimum delay), or a horizon computed before this send could
  // cover the chosen tick.
  VirtualTime vt =
      cursor + (explicit_delay
                    ? std::max(*explicit_delay, out.delay->min_delay())
                    : out.delay->delay(cursor));
  vt = bias_.adjust(vt);
  if (vt <= out.last_sent) vt = out.last_sent.next();

  Message msg;
  msg.wire = out.spec.id;
  msg.vt = vt;
  msg.seq = out.next_seq.load(std::memory_order_relaxed);
  msg.kind = kind;
  msg.call_id = call_id;
  // Causal inheritance: whatever input triggered the dispatch we are
  // inside (invalid outside a dispatch, e.g. probe machinery) stamps its
  // identity onto the descendant.
  msg.origin_wire = current_origin_wire_;
  msg.origin_seq = current_origin_seq_;
  msg.origin_wall_ns = current_origin_wall_ns_;
  msg.payload = std::move(payload);

  if (tracer_ != nullptr)
    tracer_->record(id_, trace::TraceEventKind::kEmit, vt, out.spec.id,
                    msg.seq, trace::hash_of(msg.payload));

  // Retention keeps a full copy of every sent message until the receiver's
  // checkpoint horizon passes it — the steady-state memory cost the
  // zero-copy work needs a baseline for.
  TART_PROF_BYTES("runner.retention", msg.payload.approx_bytes());
  out.retention.record(msg);
  out.last_sent = vt;
  router_.to_receiver(out.spec.id, transport::DataFrame{msg});
  // Only after the data frame is en route may the accounting cover its
  // tick — otherwise a concurrent probe response could claim a data tick
  // (count or horizon) the receiver has not seen yet.
  out.next_seq.store(msg.seq + 1, std::memory_order_relaxed);
  advance_published(out, vt);
  return vt;
}

// ---------------------------------------------------------------------------
// Silence publication

void ComponentRunner::advance_published(OutputState& out,
                                        VirtualTime through) {
  std::int64_t cur = out.published.load();
  while (through.ticks() > cur &&
         !out.published.compare_exchange_weak(cur, through.ticks())) {
  }
  // cur holds the pre-advance value when the CAS won; diagnostic-class, so
  // gate on the category mask before paying for the record (and for the
  // clock read below).
  if (through.ticks() > cur && tracer_ != nullptr &&
      tracer_->wants(trace::TraceEventKind::kSilencePromise)) {
    // aux = sender-side wall stamp of the promise. Offline forensics
    // subtracts it from a stalled receiver's episode-begin stamp to split
    // the stall into estimator error (promise published late) vs
    // propagation lag (promise in flight). Never read by the scheduler.
    const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now().time_since_epoch())
                            .count();
    tracer_->record(id_, trace::TraceEventKind::kSilencePromise, through,
                    out.spec.id, static_cast<std::uint64_t>(now_ns));
  }
}

void ComponentRunner::publish_busy_horizons(VirtualTime floor) {
  for (auto& [wid, out] : outputs_) {
    VirtualTime h = floor + out->delay->min_delay() - TickDuration(1);
    if (bias_.enabled()) h = max(h, bias_.eager_promise(current_vt_));
    advance_published(*out, h);
  }
}

void ComponentRunner::publish_idle_horizons_locked() {
  // Lower bound on the next dequeue time: the earliest tick any input wire
  // could still produce, and never before our current virtual position.
  // Self-loop (timer) wires are excluded from the bound except for their
  // *pending* heads: any future self-arrival is generated by a dequeue at
  // or after this very bound, so excluding their empty horizons is sound
  // by induction — and breaks the otherwise-circular dependency between a
  // timer wire's input horizon and the component's own output horizon.
  VirtualTime lb = VirtualTime::infinity();
  for (const WireId w : nonself_wires_) lb = min(lb, inbox_.wire_horizon(w).next());
  if (const auto head = inbox_.peek()) lb = min(lb, head->vt);
  lb = max(lb, current_vt_);

  const bool closed = inbox_.exhausted();
  for (auto& [wid, out] : outputs_) {
    if (closed) {
      advance_published(*out, VirtualTime::infinity());
      continue;
    }
    VirtualTime h = lb + estimators_.future_min_estimate(lb) +
                    out->delay->min_delay() - TickDuration(1);
    if (bias_.enabled()) h = max(h, bias_.eager_promise(current_vt_));
    advance_published(*out, h);
    // Self wires: the freshly computed horizon feeds straight back into
    // our own inbox (no probe round trip; delivery on self wires is
    // synchronous and lossless, so no tick accounting is needed).
    if (out->spec.to == id_ && inbox_.has_wire(wid)) {
      (void)inbox_.announce_silence(wid,
                                    VirtualTime(out->published.load()), 0);
    }
  }
}

void ComponentRunner::publish_final_silence() {
  std::vector<SilenceUpdate> updates;
  for (auto& [wid, out] : outputs_) {
    advance_published(*out, VirtualTime::infinity());
    updates.push_back(
        SilenceUpdate{wid, VirtualTime::infinity(), out->next_seq.load()});
  }
  for (const SilenceUpdate& u : updates)
    router_.to_receiver(
        u.wire, transport::SilenceFrame{u.wire, u.through, u.expected_seq});
  {
    const std::lock_guard<std::mutex> lk(mu_);
    final_silence_sent_ = true;
  }
}

void ComponentRunner::flush_probe_responses() {
  for (auto& [wid, out] : outputs_) {
    if (!out->probe_pending.load(std::memory_order_relaxed)) continue;
    const std::uint64_t seq = out->next_seq.load();
    const std::int64_t h = out->published.load();
    if (h <= out->last_pushed.load()) continue;
    out->probe_pending.store(false);
    out->last_pushed.store(h);
    router_.to_receiver(
        wid, transport::SilenceFrame{wid, VirtualTime(h), seq});
  }
}

std::vector<ComponentRunner::SilenceUpdate>
ComponentRunner::collect_silence_updates() {
  std::vector<SilenceUpdate> updates;
  for (auto& [wid, out] : outputs_) {
    const std::uint64_t seq = out->next_seq.load();
    const std::int64_t h = out->published.load();
    if (h > out->last_pushed.load()) {
      out->last_pushed.store(h);
      updates.push_back(SilenceUpdate{wid, VirtualTime(h), seq});
    }
  }
  return updates;
}

// ---------------------------------------------------------------------------
// Checkpointing and recovery

void ComponentRunner::maybe_checkpoint() {
  if (config_.checkpoint.every_n_messages == 0) return;
  if (processed_since_checkpoint_ < config_.checkpoint.every_n_messages)
    return;
  processed_since_checkpoint_ = 0;
  capture_checkpoint();
}

void ComponentRunner::capture_checkpoint() {
  checkpoint::ComponentSnapshot s;
  s.component = id_;
  s.version = ++checkpoint_version_;
  const bool delta_ok = component_->supports_delta() &&
                        !force_full_checkpoint_ &&
                        config_.checkpoint.full_every_k > 0 &&
                        (s.version % config_.checkpoint.full_every_k) != 0;
  s.is_delta = delta_ok;
  serde::Writer w;
  if (delta_ok) {
    component_->capture_delta(w);
  } else {
    component_->capture_full(w);
  }
  s.state = w.take();
  s.vt = current_vt_;
  s.messages_processed = metrics_.messages_processed.value();
  s.estimator_version = estimators_.version_at(current_vt_);

  for (const auto& [wire, pos] : input_pos_) {
    s.inputs.push_back(
        checkpoint::InputPosition{wire, pos.delivered_vt, pos.delivered_seq});
  }
  for (const auto& [wire, vt] : last_reply_) {
    if (outputs_.contains(wire)) continue;  // only reply wires we *receive*
    s.inputs.push_back(checkpoint::InputPosition{wire, vt, 0});
  }
  for (auto& [wire, out] : outputs_) {
    checkpoint::OutputPosition op;
    op.wire = wire;
    op.next_seq = out->next_seq.load();
    op.silence_through = VirtualTime(out->published.load());
    op.last_sent = out->last_sent;
    op.retained = out->retention.contents();
    serde::Writer dw;
    out->delay->capture(dw);
    op.delay_state = dw.take();
    s.outputs.push_back(std::move(op));
  }

  // The kCheckpoint trace event is recorded by the replica on acceptance
  // (a rejected delta is not a durable checkpoint).
  const bool accepted = replica_.store(std::move(s));
  force_full_checkpoint_ = !accepted;
  metrics_.checkpoints_taken.inc();

  // Input ticks at or before the checkpointed positions are now stable:
  // upstream retention can be trimmed.
  for (const auto& [wire, pos] : input_pos_)
    router_.to_sender(wire,
                      transport::StabilityFrame{wire, pos.delivered_vt});
  for (const auto& [wire, vt] : last_reply_) {
    if (outputs_.contains(wire)) continue;
    router_.to_sender(wire, transport::StabilityFrame{wire, vt});
  }
}

void ComponentRunner::restore_from(
    const std::optional<checkpoint::RestorePlan>& plan) {
  assert(!thread_.joinable());
  component_ = topology_.component(id_).factory();
  if (!plan) {
    // Nothing was ever checkpointed: replay from the beginning.
    force_full_checkpoint_ = true;
    return;
  }

  {
    serde::Reader r(plan->base.state);
    component_->restore_full(r);
  }
  for (const auto& delta : plan->deltas) {
    serde::Reader r(delta.state);
    component_->apply_delta(r);
  }

  const checkpoint::ComponentSnapshot& last =
      plan->deltas.empty() ? plan->base : plan->deltas.back();
  current_vt_ = last.vt;
  max_arrival_vt_ = VirtualTime(-1);
  checkpoint_version_ = last.version;
  processed_since_checkpoint_ = 0;
  force_full_checkpoint_ = true;
  metrics_.messages_processed.set(last.messages_processed);
  estimators_.restore_to_version(last.estimator_version);

  for (const auto& in : last.inputs) {
    if (input_pos_.contains(in.wire)) {
      input_pos_[in.wire] = InputPos{in.horizon, in.next_seq};
      inbox_.restore_position(in.wire, in.horizon, in.next_seq);
    } else {
      last_reply_[in.wire] = in.horizon;
    }
  }
  for (const auto& op : last.outputs) {
    const auto it = outputs_.find(op.wire);
    if (it == outputs_.end()) continue;
    OutputState& out = *it->second;
    out.next_seq.store(op.next_seq);
    out.last_sent = op.last_sent;
    out.retention.restore(op.retained, op.next_seq);
    out.published.store(op.silence_through.ticks());
    out.last_pushed.store(-1);
    if (!op.delay_state.empty()) {
      serde::Reader r(op.delay_state);
      out.delay->restore(r);
    }
  }
}

void ComponentRunner::request_replays() {
  for (const auto& [wire, pos] : input_pos_) {
    if (tracer_ != nullptr)
      tracer_->record(id_, trace::TraceEventKind::kReplayStart,
                      pos.delivered_vt, wire, pos.delivered_seq);
    router_.to_sender(wire,
                      transport::ReplayRequestFrame{wire, pos.delivered_vt,
                                                    pos.delivered_seq});
  }
}

// ---------------------------------------------------------------------------
// Introspection

std::vector<ComponentRunner::SilenceUpdate> ComponentRunner::seal_outputs()
    const {
  std::vector<SilenceUpdate> out;
  out.reserve(outputs_.size());
  for (const auto& [wid, o] : outputs_)
    out.push_back(
        SilenceUpdate{wid, VirtualTime(o->published.load()),
                      o->next_seq.load()});
  return out;
}

VirtualTime ComponentRunner::published_horizon(WireId wire) const {
  const auto it = outputs_.find(wire);
  if (it == outputs_.end()) return VirtualTime(-1);
  return VirtualTime(it->second->published.load());
}

bool ComponentRunner::exhausted() const {
  const std::lock_guard<std::mutex> lk(mu_);
  if (in_handler_ || !control_.empty()) return false;
  if (config_.mode == SchedulingMode::kArrivalOrder)
    return arrival_queue_.empty() && inbox_.exhausted();
  return inbox_.exhausted();
}

VirtualTime ComponentRunner::current_vt() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return current_vt_;
}

ComponentStatus ComponentRunner::status() const {
  const std::lock_guard<std::mutex> lk(mu_);
  ComponentStatus st;
  st.id = id_;
  st.name = name_;
  st.vt_ticks = current_vt_.ticks();
  st.pending = inbox_.pending();
  if (config_.mode == SchedulingMode::kArrivalOrder)
    st.pending += arrival_queue_.size();
  st.exhausted = !in_handler_ && inbox_.exhausted();
  const auto head = inbox_.peek();
  st.held = head.has_value() && !inbox_.head_eligible();
  if (st.held) {
    st.held_vt = head->vt.ticks();
    st.held_wire = head->wire;
  }
  const std::vector<WireId> lagging =
      st.held ? inbox_.lagging_wires() : std::vector<WireId>{};
  for (const WireId w : input_wires_) {
    WireStatus ws;
    ws.wire = w;
    const auto& spec = topology_.wire(w);
    ws.sender = spec.from.is_valid() ? topology_.component(spec.from).name
                                     : "external";
    ws.horizon_ticks = inbox_.wire_horizon(w).ticks();
    ws.pending = inbox_.pending_on(w);
    ws.blocking =
        std::find(lagging.begin(), lagging.end(), w) != lagging.end();
    st.inputs.push_back(std::move(ws));
  }
  return st;
}

std::uint64_t ComponentRunner::state_fingerprint() const {
  serde::Writer w;
  component_->capture_full(w);
  return serde::fingerprint(w.bytes());
}

std::size_t ComponentRunner::retained_messages() const {
  std::size_t n = 0;
  for (const auto& [wid, out] : outputs_) n += out->retention.size();
  return n;
}

}  // namespace tart::core
