// Per-component runtime metrics: the quantities the paper's evaluation
// tracks ("We counted the number of out-of-order messages, the number of
// curiosity probes, and the average end-to-end latency", §III.A) plus the
// pessimism-delay accounting that explains the overhead.
#pragma once

#include <atomic>
#include <cstdint>

namespace tart::core {

/// Plain-value snapshot for reporting.
struct MetricsSnapshot {
  std::uint64_t messages_processed = 0;
  std::uint64_t calls_served = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t pessimism_events = 0;
  std::uint64_t pessimism_wait_ns = 0;  ///< real time blocked awaiting silence
  std::uint64_t out_of_order_arrivals = 0;  ///< vt inversions in arrival order
  std::uint64_t duplicates_discarded = 0;
  std::uint64_t gaps_detected = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t trace_events_recorded = 0;
  std::uint64_t trace_events_dropped = 0;  ///< flight-recorder ring overflow

  // Socket-transport counters (src/net), zero in single-process
  // deployments. Filled by the hosting NetHost when it merges its
  // ConnectionManager's counters into the runtime snapshot.
  std::uint64_t net_bytes_in = 0;
  std::uint64_t net_bytes_out = 0;
  std::uint64_t net_frames_in = 0;
  std::uint64_t net_frames_out = 0;
  std::uint64_t net_reconnects = 0;
  std::uint64_t net_heartbeat_misses = 0;
  std::uint64_t net_frames_refused = 0;     ///< backpressure / link-down drops
  std::uint64_t net_queue_high_water = 0;   ///< max frames queued to any peer

  // Stable-store durability counters (src/log), zero without a log_dir.
  // flushes < records_written means group commit coalesced appends.
  std::uint64_t store_records_written = 0;
  std::uint64_t store_flushes = 0;

  // HTTP ingress gateway counters (src/gateway), zero without a gateway.
  // Filled by the hosting Gateway when it merges its counters into the
  // snapshot; the ack-latency and batch-size histograms stay in the
  // gateway (exposed via GET /metrics) — only scalars travel here.
  std::uint64_t gw_requests = 0;        ///< HTTP requests parsed
  std::uint64_t gw_acked = 0;           ///< injections acked 200 (durable)
  std::uint64_t gw_rejected = 0;        ///< 429 admission rejections
  std::uint64_t gw_errors = 0;          ///< other 4xx/5xx responses
  std::uint64_t gw_commit_batches = 0;  ///< group-commit rounds
  std::uint64_t gw_commit_records = 0;  ///< injections across all rounds
  std::uint64_t gw_commit_batch_max = 0;  ///< largest single round
};

class RunnerMetrics {
 public:
  std::atomic<std::uint64_t> messages_processed{0};
  std::atomic<std::uint64_t> calls_served{0};
  std::atomic<std::uint64_t> probes_sent{0};
  std::atomic<std::uint64_t> pessimism_events{0};
  std::atomic<std::uint64_t> pessimism_wait_ns{0};
  std::atomic<std::uint64_t> out_of_order_arrivals{0};
  std::atomic<std::uint64_t> duplicates_discarded{0};
  std::atomic<std::uint64_t> gaps_detected{0};
  std::atomic<std::uint64_t> checkpoints_taken{0};

  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
    s.messages_processed = messages_processed.load();
    s.calls_served = calls_served.load();
    s.probes_sent = probes_sent.load();
    s.pessimism_events = pessimism_events.load();
    s.pessimism_wait_ns = pessimism_wait_ns.load();
    s.out_of_order_arrivals = out_of_order_arrivals.load();
    s.duplicates_discarded = duplicates_discarded.load();
    s.gaps_detected = gaps_detected.load();
    s.checkpoints_taken = checkpoints_taken.load();
    return s;
  }
};

inline MetricsSnapshot& operator+=(MetricsSnapshot& a,
                                   const MetricsSnapshot& b) {
  a.messages_processed += b.messages_processed;
  a.calls_served += b.calls_served;
  a.probes_sent += b.probes_sent;
  a.pessimism_events += b.pessimism_events;
  a.pessimism_wait_ns += b.pessimism_wait_ns;
  a.out_of_order_arrivals += b.out_of_order_arrivals;
  a.duplicates_discarded += b.duplicates_discarded;
  a.gaps_detected += b.gaps_detected;
  a.checkpoints_taken += b.checkpoints_taken;
  a.trace_events_recorded += b.trace_events_recorded;
  a.trace_events_dropped += b.trace_events_dropped;
  a.net_bytes_in += b.net_bytes_in;
  a.net_bytes_out += b.net_bytes_out;
  a.net_frames_in += b.net_frames_in;
  a.net_frames_out += b.net_frames_out;
  a.net_reconnects += b.net_reconnects;
  a.net_heartbeat_misses += b.net_heartbeat_misses;
  a.net_frames_refused += b.net_frames_refused;
  a.net_queue_high_water =
      a.net_queue_high_water > b.net_queue_high_water ? a.net_queue_high_water
                                                      : b.net_queue_high_water;
  a.store_records_written += b.store_records_written;
  a.store_flushes += b.store_flushes;
  a.gw_requests += b.gw_requests;
  a.gw_acked += b.gw_acked;
  a.gw_rejected += b.gw_rejected;
  a.gw_errors += b.gw_errors;
  a.gw_commit_batches += b.gw_commit_batches;
  a.gw_commit_records += b.gw_commit_records;
  a.gw_commit_batch_max = a.gw_commit_batch_max > b.gw_commit_batch_max
                              ? a.gw_commit_batch_max
                              : b.gw_commit_batch_max;
  return a;
}

}  // namespace tart::core
