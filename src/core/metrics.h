// Runtime metrics: the quantities the paper's evaluation tracks ("We
// counted the number of out-of-order messages, the number of curiosity
// probes, and the average end-to-end latency", §III.A) plus the
// pessimism-delay accounting that explains the overhead of determinism.
//
// Every scalar field of MetricsSnapshot is enumerated EXACTLY ONCE, in
// TART_METRICS_COMPONENT_FIELDS / TART_METRICS_GLOBAL_FIELDS below. The
// struct definition, operator+= aggregation, control-plane serde
// (net/control.cc), Prometheus exposition (obs/exposition.cc) and the
// sampler's JSON rendering are all generated from that list — adding a
// counter without listing it is a compile error (see the static_assert),
// not a silently-unmerged field.
//
// X-macro columns: X(field, prom_name, help, agg, scale)
//   field      C++ member name
//   prom_name  exposition name (tart_ prefix, _total/_seconds suffixes per
//              docs/OBSERVABILITY.md)
//   agg        SUM (counter; += merges by addition) or
//              MAX (high-water gauge; += merges by maximum)
//   scale      multiplier applied at exposition only (1e-9 turns a raw
//              nanosecond counter into a _seconds_total series); raw
//              values stay integral so cross-node merging is exact
#pragma once

#include <cstdint>
#include <string>

#include "obs/registry.h"

namespace tart::core {

// Per-component scheduler counters. Kept in the telemetry registry as
// labelled series ({component="..."}); MetricsSnapshot carries the
// plain-value readout.
#define TART_METRICS_COMPONENT_FIELDS(X)                                      \
  X(messages_processed, "tart_messages_processed_total",                      \
    "Messages dispatched to component handlers", SUM, 1.0)                    \
  X(calls_served, "tart_calls_served_total",                                  \
    "Synchronous calls served (on_call invocations)", SUM, 1.0)               \
  X(probes_sent, "tart_probes_sent_total",                                    \
    "Curiosity probes sent at lagging senders", SUM, 1.0)                     \
  X(pessimism_events, "tart_pessimism_events_total",                          \
    "Stall episodes: the earliest message held awaiting silence", SUM, 1.0)   \
  X(pessimism_wait_ns, "tart_pessimism_wait_seconds_total",                   \
    "Wall time blocked awaiting other wires' silence promises", SUM, 1e-9)    \
  X(estimator_underestimates, "tart_estimator_underestimates_total",          \
    "Handler executions that ran longer than the estimator's charge", SUM,    \
    1.0)                                                                      \
  X(out_of_order_arrivals, "tart_out_of_order_arrivals_total",                \
    "Arrivals whose virtual time inverted the arrival order", SUM, 1.0)       \
  X(duplicates_discarded, "tart_duplicates_discarded_total",                  \
    "Replay duplicates discarded by timestamp (SS II.F.4)", SUM, 1.0)         \
  X(gaps_detected, "tart_gaps_detected_total",                                \
    "Sequence gaps detected (lost ticks needing replay)", SUM, 1.0)           \
  X(checkpoints_taken, "tart_checkpoints_taken_total",                        \
    "Soft checkpoints shipped to the passive replica", SUM, 1.0)

// Process-wide counters filled in by the tracer, the socket transport
// (NetHost), stable storage, and the HTTP ingress gateway. Zero when the
// subsystem is not configured.
#define TART_METRICS_GLOBAL_FIELDS(X)                                         \
  X(trace_events_recorded, "tart_trace_events_recorded_total",                \
    "Flight-recorder events recorded", SUM, 1.0)                              \
  X(trace_events_dropped, "tart_trace_events_dropped_total",                  \
    "Flight-recorder events dropped on ring overflow", SUM, 1.0)              \
  X(net_bytes_in, "tart_net_bytes_in_total",                                  \
    "Bytes received from peer nodes", SUM, 1.0)                               \
  X(net_bytes_out, "tart_net_bytes_out_total", "Bytes sent to peer nodes",    \
    SUM, 1.0)                                                                 \
  X(net_frames_in, "tart_net_frames_in_total",                                \
    "Transport frames received from peer nodes", SUM, 1.0)                    \
  X(net_frames_out, "tart_net_frames_out_total",                              \
    "Transport frames sent to peer nodes", SUM, 1.0)                          \
  X(net_reconnects, "tart_net_reconnects_total",                              \
    "Peer connection re-establishments", SUM, 1.0)                            \
  X(net_heartbeat_misses, "tart_net_heartbeat_misses_total",                  \
    "Peer liveness timeouts", SUM, 1.0)                                       \
  X(net_frames_refused, "tart_net_frames_refused_total",                      \
    "Frames dropped by backpressure or link-down", SUM, 1.0)                  \
  X(net_queue_high_water, "tart_net_queue_high_water",                        \
    "Max frames ever queued to any one peer", MAX, 1.0)                       \
  X(store_records_written, "tart_store_records_written_total",                \
    "Records appended to stable storage", SUM, 1.0)                           \
  X(store_flushes, "tart_store_flushes_total",                                \
    "Stable-store fsync flushes (less than records = group commit)", SUM,     \
    1.0)                                                                      \
  X(gw_requests, "tart_gw_requests_total", "HTTP requests parsed", SUM, 1.0)  \
  X(gw_acked, "tart_gw_acked_total",                                          \
    "Injections acked 200 (durable, log-before-ack)", SUM, 1.0)               \
  X(gw_rejected, "tart_gw_rejected_total", "429 admission rejections", SUM,   \
    1.0)                                                                      \
  X(gw_errors, "tart_gw_errors_total", "Other 4xx/5xx responses", SUM, 1.0)   \
  X(gw_commit_batches, "tart_gw_commit_batches_total",                        \
    "Group-commit rounds", SUM, 1.0)                                          \
  X(gw_commit_records, "tart_gw_commit_records_total",                        \
    "Injections across all commit rounds", SUM, 1.0)                          \
  X(gw_commit_batch_max, "tart_gw_commit_batch_max",                          \
    "Largest single group-commit round", MAX, 1.0)                            \
  X(gw_redirects, "tart_gw_redirects_total",                                  \
    "307 redirects to the input's current owner after migration", SUM, 1.0)   \
  X(ckpt_written, "tart_ckpt_written_total",                                  \
    "Durable checkpoint files written", SUM, 1.0)                             \
  X(ckpt_bytes, "tart_ckpt_bytes_total",                                      \
    "Bytes written into durable checkpoint files", SUM, 1.0)                  \
  X(ckpt_failed, "tart_ckpt_failed_total",                                    \
    "Durable checkpoint attempts that failed (barrier or write)", SUM, 1.0)   \
  X(ckpt_skipped_invalid, "tart_ckpt_skipped_invalid_total",                  \
    "Torn/corrupt checkpoint files skipped at restart", SUM, 1.0)             \
  X(log_segments, "tart_log_segments",                                        \
    "External-log segments currently on disk", MAX, 1.0)                      \
  X(log_bytes_on_disk, "tart_log_bytes_on_disk",                              \
    "Bytes the segmented external log occupies on disk", MAX, 1.0)            \
  X(log_segments_deleted, "tart_log_segments_deleted_total",                  \
    "Wholly-covered log segments deleted by compaction", SUM, 1.0)            \
  X(log_records_reclaimed, "tart_log_records_reclaimed_total",                \
    "Log records reclaimed by checkpoint-gated compaction", SUM, 1.0)         \
  X(restart_covered_records, "tart_restart_covered_records",                  \
    "Log records the restart checkpoint covered (not replayed)", MAX, 1.0)    \
  X(restart_suffix_records, "tart_restart_suffix_records",                    \
    "Log records replayed from the suffix at restart", MAX, 1.0)              \
  X(net_msgs_in, "tart_net_msgs_in_total",                                    \
    "Non-frame peer messages received (placement/stream/cover)", SUM, 1.0)    \
  X(net_msgs_out, "tart_net_msgs_out_total",                                  \
    "Non-frame peer messages sent (placement/stream/cover)", SUM, 1.0)        \
  X(mig_started, "tart_mig_started_total",                                    \
    "Live migrations initiated on this node as source", SUM, 1.0)             \
  X(mig_completed, "tart_mig_completed_total",                                \
    "Live migrations that reached cutover (source side)", SUM, 1.0)           \
  X(mig_failed, "tart_mig_failed_total",                                      \
    "Live migrations aborted or rolled back (source side)", SUM, 1.0)         \
  X(mig_adopted, "tart_mig_adopted_total",                                    \
    "Components adopted by this node as migration target", SUM, 1.0)          \
  X(mig_evicted, "tart_mig_evicted_total",                                    \
    "Components evicted from this node after cutover", SUM, 1.0)              \
  X(mig_bytes_sent, "tart_mig_bytes_sent_total",                              \
    "Checkpoint-slice bytes shipped to migration targets", SUM, 1.0)          \
  X(mig_bytes_received, "tart_mig_bytes_received_total",                      \
    "Checkpoint-slice bytes received as migration target", SUM, 1.0)          \
  X(mig_updates_applied, "tart_mig_updates_applied_total",                    \
    "Placement updates applied from peers (re-routes)", SUM, 1.0)             \
  X(retention_trimmed_records, "tart_retention_trimmed_records_total",        \
    "Retention-buffer records trimmed below the remote durable cover",        \
    SUM, 1.0)

#define TART_METRICS_SCALAR_FIELDS(X) \
  TART_METRICS_COMPONENT_FIELDS(X)    \
  TART_METRICS_GLOBAL_FIELDS(X)

/// Plain-value snapshot for reporting; fields generated from the list.
struct MetricsSnapshot {
#define TART_METRICS_DECLARE(field, prom, help, agg, scale) \
  std::uint64_t field = 0;
  TART_METRICS_SCALAR_FIELDS(TART_METRICS_DECLARE)
#undef TART_METRICS_DECLARE
};

namespace detail {
#define TART_METRICS_COUNT(field, prom, help, agg, scale) +1
inline constexpr std::size_t kMetricsFieldCount =
    0 TART_METRICS_SCALAR_FIELDS(TART_METRICS_COUNT);
#undef TART_METRICS_COUNT
}  // namespace detail

// The field-forgetting guard: a uint64 member added to MetricsSnapshot by
// hand (outside the X-macro) changes sizeof without changing the count,
// and the build stops here instead of silently skipping the field in
// operator+=, serde, and exposition.
static_assert(sizeof(MetricsSnapshot) ==
                  detail::kMetricsFieldCount * sizeof(std::uint64_t),
              "every MetricsSnapshot field must be enumerated in "
              "TART_METRICS_COMPONENT_FIELDS or TART_METRICS_GLOBAL_FIELDS");

#define TART_METRICS_AGG_SUM(field) a.field += b.field;
#define TART_METRICS_AGG_MAX(field) \
  a.field = a.field > b.field ? a.field : b.field;
#define TART_METRICS_MERGE(field, prom, help, agg, scale) \
  TART_METRICS_AGG_##agg(field)

inline MetricsSnapshot& operator+=(MetricsSnapshot& a,
                                   const MetricsSnapshot& b) {
  TART_METRICS_SCALAR_FIELDS(TART_METRICS_MERGE)
  return a;
}

#undef TART_METRICS_MERGE
#undef TART_METRICS_AGG_SUM
#undef TART_METRICS_AGG_MAX

/// Per-runner handles into the telemetry registry: one labelled counter
/// cell per component field, found-or-created by name so a recovered
/// component re-attaches to its series (counts survive crash/recover the
/// way trace streams do; checkpoint restore overwrites messages_processed
/// via Counter::set). Increments are relaxed atomic adds on stable cells —
/// the registry is never touched after construction.
class RunnerMetrics {
 public:
  RunnerMetrics(obs::Registry& registry, const std::string& component)
      :
#define TART_METRICS_INIT(field, prom, help, agg, scale)            \
  field(registry.counter(prom, help,                                \
                         obs::Labels{{"component", component}},     \
                         scale)),
        TART_METRICS_COMPONENT_FIELDS(TART_METRICS_INIT)
#undef TART_METRICS_INIT
            component_(component) {
  }

#define TART_METRICS_MEMBER(field, prom, help, agg, scale) obs::Counter& field;
  TART_METRICS_COMPONENT_FIELDS(TART_METRICS_MEMBER)
#undef TART_METRICS_MEMBER

  [[nodiscard]] const std::string& component() const { return component_; }

  [[nodiscard]] MetricsSnapshot snapshot() const {
    MetricsSnapshot s;
#define TART_METRICS_READ(field, prom, help, agg, scale) \
  s.field = field.value();
    TART_METRICS_COMPONENT_FIELDS(TART_METRICS_READ)
#undef TART_METRICS_READ
    return s;
  }

 private:
  const std::string component_;
};

}  // namespace tart::core
