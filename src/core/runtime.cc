#include "core/runtime.h"

#include <cassert>
#include <stdexcept>
#include <thread>

#include "durability/checkpoint_file.h"
#include "durability/manager.h"

namespace tart::core {

Runtime::Runtime(Topology topology, std::map<ComponentId, EngineId> placement,
                 RuntimeConfig config)
    : topology_(std::move(topology)),
      placement_(std::move(placement)),
      config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()) {
  // Flight recorder, shared by every engine (see member comment). EVERY
  // component gets a stream — including ones currently placed remotely:
  // live migration may adopt them here mid-run, and an unregistered
  // component would record nothing. Unused streams stay empty and cost
  // only their preallocated ring. The net pseudo-component carries link
  // events in partitioned deployments.
  if (config_.trace.enabled) {
    std::vector<ComponentId> traced;
    traced.reserve(placement_.size() + 1);
    for (const auto& [component, engine] : placement_)
      traced.push_back(component);
    if (!config_.local_engines.empty()) traced.push_back(kNetTraceComponent);
    // The edge pseudo-component exists only when lineage events can be
    // recorded: keeping the component set unchanged otherwise preserves
    // trace-diff compatibility with lineage-off runs.
    if ((config_.trace.categories &
         static_cast<std::uint32_t>(trace::TraceCategory::kLineage)) != 0)
      traced.push_back(kEdgeTraceComponent);
    tracer_ =
        std::make_unique<trace::TraceRecorder>(config_.trace, traced);
    replica_.set_trace(tracer_.get());
  }
  e2e_hist_ = &registry_.histogram(
      "tart_lineage_e2e_seconds",
      "End-to-end request latency: origin-input arrival at the edge to "
      "causally descendant external-output visibility",
      {}, 250e-6, 256);
  // Exemplars tag fat buckets with the (wire, seq) lineage id: episode =
  // origin seq, wire = origin wire (`tart-trace lineage --input WIRE:SEQ`).
  e2e_hist_->enable_exemplars(4);
  // Engines named by the placement; non-local engines live in peer
  // processes and are reached through the remote router.
  for (const auto& [component, engine] : placement_) {
    if (!engine_is_local(engine)) continue;
    if (!engines_.contains(engine)) {
      engines_.emplace(engine, std::make_unique<Engine>(
                                   engine, topology_, config_, *this,
                                   fault_log_, replica_, registry_,
                                   tracer_.get()));
    }
    engines_.at(engine)->add_component(component);
  }
  // A node that starts with no components still needs its engine running —
  // it may be the TARGET of a live migration and must be able to adopt.
  for (const EngineId engine : config_.local_engines) {
    if (!engines_.contains(engine)) {
      engines_.emplace(engine, std::make_unique<Engine>(
                                   engine, topology_, config_, *this,
                                   fault_log_, replica_, registry_,
                                   tracer_.get()));
    }
  }
  // Stable storage: recover any previously persisted logs, then attach
  // write-through stores for this incarnation.
  const bool durable =
      config_.durability.enabled && !config_.log_dir.empty();
  if (!config_.log_dir.empty() && !durable) {
    const std::string messages_path = config_.log_dir + "/messages.log";
    const std::string faults_path = config_.log_dir + "/faults.log";
    const std::string replica_path = config_.log_dir + "/replica.log";
    message_log_.load_from(messages_path);
    fault_log_.load_from(faults_path);
    replica_.load_from(replica_path);
    message_store_ = std::make_unique<log::FileStableStore>(messages_path);
    fault_store_ = std::make_unique<log::FileStableStore>(faults_path);
    replica_store_ = std::make_unique<log::FileStableStore>(replica_path);
    message_log_.attach_store(message_store_.get());
    fault_log_.attach_store(fault_store_.get());
    replica_.attach_store(replica_store_.get());
  }
  if (durable) {
    // Tiered fast restart (docs/RECOVERY.md): restore plans + per-wire
    // coverage from the newest valid checkpoint file, then load only the
    // log suffix past it. Plans persist in checkpoint files, so the
    // unbounded replica.log write-through is not used in this mode.
    durability::DurabilityConfig& d = config_.durability;
    if (d.dir.empty()) d.dir = config_.log_dir;
    const auto newest =
        durability::CheckpointReader::load_newest(d.dir, d.deployment_fp);
    if (newest.has_value()) {
      recovery_.from_checkpoint = true;
      recovery_.checkpoint_id = newest->checkpoint.id;
      recovery_.skipped_invalid = newest->skipped_invalid;
      for (const auto& [component, plan] : newest->checkpoint.plans)
        replica_.import_plan(component, plan);
      for (const auto& cover : newest->checkpoint.wires) {
        message_log_.set_base(cover.wire, cover.covered_seq, cover.last_vt);
        recovery_.covered_records += cover.covered_seq;
      }
    }
    log::SegmentedStore::Options seg_opts;
    seg_opts.segment_bytes = d.segment_bytes;
    segment_store_ = std::make_unique<log::SegmentedStore>(
        config_.log_dir, "messages", seg_opts);
    message_log_.load_records(segment_store_->scan_all(),
                              segment_store_->first_retained_index());
    message_log_.attach_store(segment_store_.get());
    recovery_.suffix_records = message_log_.total_size();

    const std::string faults_path = config_.log_dir + "/faults.log";
    fault_log_.load_from(faults_path);
    fault_store_ = std::make_unique<log::FileStableStore>(faults_path);
    fault_log_.attach_store(fault_store_.get());

    ckpt_manager_ = std::make_unique<durability::CheckpointManager>(*this, d);
  }

  // External endpoints — only those adjacent to a local component: a
  // remote partition owns (logs, timestamps, replays) its own boundary.
  for (const auto& spec : topology_.wires()) {
    if (spec.kind == WireKind::kExternalInput &&
        engine_is_local(engine_of(spec.to))) {
      auto adapter = std::make_shared<InputAdapter>();
      // Resume positions past anything recovered from stable storage
      // (next_seq, not size: compaction may have truncated a covered
      // prefix out of the retained log).
      adapter->next_seq = message_log_.next_seq(spec.id);
      adapter->last_vt = message_log_.last_vt(spec.id);
      inputs_.emplace(spec.id, std::move(adapter));
    }
    if (spec.kind == WireKind::kExternalOutput &&
        engine_is_local(engine_of(spec.from)))
      outputs_.emplace(spec.id, std::make_shared<OutputSink>());
  }
  // Simulated links between engine pairs (local pairs only; cross-process
  // pairs are bridged by the real socket transport instead).
  for (const auto& [pair, link_config] : config_.links) {
    const auto [a, b] = pair;
    if (!engine_is_local(a) || !engine_is_local(b)) continue;
    const EngineId lo = a < b ? a : b;
    const EngineId hi = a < b ? b : a;
    if (bridge_between(lo, hi) != nullptr) continue;  // one per pair
    auto bridge = std::make_unique<LinkBridge>();
    bridge->lo = lo;
    bridge->hi = hi;
    transport::ReliableConfig rc;
    rc.forward = link_config;
    rc.backward = link_config;
    rc.backward.seed = link_config.seed + 1;
    bridge->channel = std::make_unique<transport::ReliableChannel>(
        rc,
        // a_handler: frames arriving at `lo` (sent by `hi`).
        [this](transport::Frame f) { dispatch_local(f); },
        // b_handler: frames arriving at `hi` (sent by `lo`).
        [this](transport::Frame f) { dispatch_local(f); });
    bridges_.push_back(std::move(bridge));
  }
}

Runtime::~Runtime() { stop(); }

void Runtime::start() {
  assert(!started_);
  // Starting IS recovering: every component restores from whatever the
  // replica holds (nothing, on a fresh deployment; persisted checkpoints,
  // on a cold restart over a log_dir) and asks upstream — external logs
  // included — to replay everything past its restored position.
  for (auto& [id, engine] : engines_) engine->start();
  started_ = true;
  if (ckpt_manager_ != nullptr) ckpt_manager_->start();
}

bool Runtime::drain(std::chrono::milliseconds timeout) {
  close_all_inputs();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    for (const auto& [id, engine] : engines_)
      if (!engine->all_exhausted()) all = false;
    if (all) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void Runtime::stop() {
  // The trigger thread first: a checkpoint barrier against stopping
  // runners would stall until its timeout.
  if (ckpt_manager_ != nullptr) ckpt_manager_->stop();
  for (auto& [id, engine] : engines_) engine->stop();
  for (auto& bridge : bridges_) bridge->channel->shutdown();
  // After every producer thread is quiet: drain the rings, freeze the
  // canonical per-component streams, and write the file. Idempotent.
  if (tracer_ != nullptr) tracer_->finalize();
}

// ---------------------------------------------------------------------------
// External world

VirtualTime Runtime::real_now() const {
  return VirtualTime(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - epoch_)
                         .count());
}

namespace {
/// Absolute steady-clock ns — the same clock every other wall stamp in the
/// trace uses (runner stalls, silence promises), comparable across
/// processes on one machine.
std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void Runtime::record_ingest(const Message& m, std::int64_t arrive_ns,
                            std::int64_t durable_ns) {
  if (tracer_ == nullptr ||
      !tracer_->wants(trace::TraceEventKind::kIngestArrive))
    return;
  tracer_->record(kEdgeTraceComponent, trace::TraceEventKind::kIngestArrive,
                  m.vt, m.wire, m.seq,
                  static_cast<std::uint64_t>(arrive_ns));
  if (durable_ns >= 0)
    tracer_->record(kEdgeTraceComponent,
                    trace::TraceEventKind::kIngestDurable, m.vt, m.wire,
                    m.seq, static_cast<std::uint64_t>(durable_ns));
}

VirtualTime Runtime::inject(WireId input_wire, Payload payload) {
  const auto pinned = input_adapter(input_wire);
  if (pinned == nullptr)
    throw std::out_of_range("inject: wire has no local input adapter");
  InputAdapter& in = *pinned;
  const std::int64_t arrive_ns = wall_now_ns();
  Message m;
  {
    const std::lock_guard<std::mutex> lk(in.mu);
    if (in.closed)
      throw std::logic_error("inject on closed external input");
    if (in.source == InputAdapter::Source::kUnknown)
      in.source = InputAdapter::Source::kRealtime;
    // "It is safe to use the actual real time as the virtual time of this
    // message" (§II.E) — clamped past any silence promise already issued
    // and kept strictly increasing per wire.
    m.vt = max(max(real_now(), in.last_vt.next()), in.promised.next());
    m.wire = input_wire;
    m.seq = in.next_seq++;
    m.kind = MessageKind::kData;
    m.payload = std::move(payload);
    m.origin_wire = input_wire;
    m.origin_seq = m.seq;
    m.origin_wall_ns = arrive_ns;
    in.last_vt = m.vt;
    // Logged synchronously *before* delivery: the message must be durable
    // while its effects are not (§II.E).
    message_log_.append(m);
  }
  record_ingest(m, arrive_ns, wall_now_ns());
  to_receiver(input_wire, transport::DataFrame{m});
  return m.vt;
}

VirtualTime Runtime::inject_at(WireId input_wire, VirtualTime vt,
                               Payload payload) {
  const auto pinned = input_adapter(input_wire);
  if (pinned == nullptr)
    throw std::out_of_range("inject_at: wire has no local input adapter");
  InputAdapter& in = *pinned;
  const std::int64_t arrive_ns = wall_now_ns();
  Message m;
  {
    const std::lock_guard<std::mutex> lk(in.mu);
    if (in.closed)
      throw std::logic_error("inject on closed external input");
    in.source = InputAdapter::Source::kScripted;
    // Per-wire virtual times must be strictly increasing (one event per
    // tick on a wire) and may not land on promised-silent ticks.
    m.vt = max(max(vt, in.last_vt.next()), in.promised.next());
    m.wire = input_wire;
    m.seq = in.next_seq++;
    m.kind = MessageKind::kData;
    m.payload = std::move(payload);
    m.origin_wire = input_wire;
    m.origin_seq = m.seq;
    m.origin_wall_ns = arrive_ns;
    in.last_vt = m.vt;
    message_log_.append(m);
  }
  record_ingest(m, arrive_ns, wall_now_ns());
  to_receiver(input_wire, transport::DataFrame{m});
  return m.vt;
}

InjectResult Runtime::try_inject(WireId input_wire, Payload payload) {
  return try_inject_batch({{input_wire, -1, std::move(payload)}}).front();
}

InjectResult Runtime::try_inject_at(WireId input_wire, VirtualTime vt,
                                    Payload payload) {
  return try_inject_batch({{input_wire, vt.ticks(), std::move(payload)}})
      .front();
}

std::vector<InjectResult> Runtime::try_inject_batch(
    const std::vector<InjectRequest>& requests) {
  std::vector<InjectResult> results(requests.size());

  // Adapters of every wire named by the batch, locked in WireId order (the
  // single-inject paths take one adapter lock at a time, so any consistent
  // multi-lock order is deadlock-free against them). Pinned shared_ptrs: a
  // concurrent eviction may erase the map entry mid-batch.
  std::map<WireId, std::shared_ptr<InputAdapter>> adapters;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto pinned = input_adapter(requests[i].wire);
    if (pinned == nullptr) {
      results[i].status = InjectStatus::kUnknownWire;
    } else {
      adapters.emplace(requests[i].wire, std::move(pinned));
    }
  }
  std::vector<std::unique_lock<std::mutex>> guards;
  guards.reserve(adapters.size());
  for (auto& [wire, adapter] : adapters) guards.emplace_back(adapter->mu);

  // Stamp and log while holding the locks: per-wire memory order, stable
  // store order and seq order must agree even against concurrent single
  // injections (which block on the same adapter locks meanwhile).
  std::vector<Message> batch;
  std::vector<std::size_t> batch_to_request;
  batch.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (results[i].status != InjectStatus::kOk) continue;
    const InjectRequest& req = requests[i];
    InputAdapter& in = *adapters.at(req.wire);
    if (in.closed) {
      results[i].status = InjectStatus::kClosed;
      continue;
    }
    Message m;
    if (req.vt < 0) {
      // Real-time stamping, exactly as inject().
      if (in.source == InputAdapter::Source::kUnknown)
        in.source = InputAdapter::Source::kRealtime;
      m.vt = max(max(real_now(), in.last_vt.next()), in.promised.next());
    } else {
      // Scripted: refuse rather than clamp — the requested timestamp must
      // land strictly after everything already logged or promised silent.
      const VirtualTime vt{req.vt};
      if (vt <= in.last_vt || vt <= in.promised) {
        results[i].status = InjectStatus::kVtRegressed;
        continue;
      }
      in.source = InputAdapter::Source::kScripted;
      m.vt = vt;
    }
    m.wire = req.wire;
    m.seq = in.next_seq++;
    m.kind = MessageKind::kData;
    m.payload = req.payload;
    m.origin_wire = req.wire;
    m.origin_seq = m.seq;
    m.origin_wall_ns =
        req.arrival_wall_ns > 0 ? req.arrival_wall_ns : wall_now_ns();
    in.last_vt = m.vt;
    results[i].vt = m.vt;
    results[i].seq = m.seq;
    batch.push_back(std::move(m));
    batch_to_request.push_back(i);
  }
  // One framed append + one flush for the whole batch: the group commit.
  const bool durable = message_log_.append_batch(batch);
  guards.clear();
  const std::int64_t durable_ns = durable ? wall_now_ns() : -1;

  // Logged (durably or not) — now, and only now, let the messages affect
  // the system (§II.E: log before delivery).
  for (std::size_t b = 0; b < batch.size(); ++b) {
    if (!durable) results[batch_to_request[b]].status = InjectStatus::kStoreFailed;
    record_ingest(batch[b], batch[b].origin_wall_ns, durable_ns);
    to_receiver(batch[b].wire, transport::DataFrame{batch[b]});
  }
  return results;
}

void Runtime::close_input(WireId input_wire) {
  const auto pinned = input_adapter(input_wire);
  if (pinned == nullptr) return;  // not locally owned (anymore)
  InputAdapter& in = *pinned;
  std::uint64_t seq;
  {
    const std::lock_guard<std::mutex> lk(in.mu);
    if (in.closed) return;
    in.closed = true;
    seq = in.next_seq;
  }
  to_receiver(input_wire, transport::SilenceFrame{
                              input_wire, VirtualTime::infinity(), seq});
}

void Runtime::close_all_inputs() {
  for (const WireId wire : external_input_wires()) close_input(wire);
}

void Runtime::subscribe(WireId output_wire, OutputCallback callback) {
  const auto pinned = output_sink(output_wire);
  if (pinned == nullptr)
    throw std::out_of_range("subscribe: wire has no local output sink");
  const std::lock_guard<std::mutex> lk(pinned->mu);
  pinned->callback = std::move(callback);
}

std::vector<OutputRecord> Runtime::output_records(WireId output_wire) const {
  const auto pinned = output_sink(output_wire);
  if (pinned == nullptr) return {};
  const std::lock_guard<std::mutex> lk(pinned->mu);
  return pinned->records;
}

void Runtime::deliver_external_output(WireId wire,
                                      const transport::Frame& frame) {
  const auto* data = std::get_if<transport::DataFrame>(&frame);
  if (data == nullptr) return;  // silence to the external world is dropped
  const auto pinned = output_sink(wire);
  if (pinned == nullptr) {  // output owned by a remote partition
    remote_frames_dropped_.fetch_add(1);
    return;
  }
  OutputSink& sink = *pinned;
  OutputCallback callback;
  OutputRecord record;
  {
    const std::lock_guard<std::mutex> lk(sink.mu);
    record.vt = data->msg.vt;
    record.payload = data->msg.payload;
    record.origin_wire = data->msg.origin_wire;
    record.origin_seq = data->msg.origin_seq;
    // Output stutter (§II.A): after a rollback the system may re-deliver
    // already-delivered external messages; they carry duplicate timestamps
    // so the consumer can compensate.
    record.stutter = data->msg.vt <= sink.last_vt;
    sink.last_vt = max(sink.last_vt, data->msg.vt);
    sink.records.push_back(record);
    // Catch-up replay must be invisible to the outside world (§II.A): the
    // record is kept, the subscriber is not called.
    if (!outputs_suppressed_.load()) callback = sink.callback;
  }
  const std::int64_t deliver_ns = wall_now_ns();
  if (tracer_ != nullptr &&
      tracer_->wants(trace::TraceEventKind::kOutputDeliver))
    tracer_->record(kEdgeTraceComponent,
                    trace::TraceEventKind::kOutputDeliver, data->msg.vt,
                    wire, data->msg.seq,
                    static_cast<std::uint64_t>(deliver_ns));
  // Live end-to-end latency: origin-input arrival to output visibility.
  // Replay catch-up re-deliveries are excluded — their origin stamps are
  // from a previous incarnation and would poison the distribution.
  if (data->msg.origin_wall_ns > 0 && !outputs_suppressed_.load()) {
    const double secs =
        static_cast<double>(deliver_ns - data->msg.origin_wall_ns) * 1e-9;
    obs::Exemplar ex;
    ex.value = secs;
    ex.episode = data->msg.origin_seq;
    ex.component = kEdgeTraceComponent.value();
    ex.wire = data->msg.origin_wire.value();
    e2e_hist_->record(secs, ex);
  }
  if (callback) callback(record.vt, record.payload, record.stutter);
}

void Runtime::handle_external_sender_frame(WireId wire,
                                           const transport::Frame& frame) {
  const auto pinned = input_adapter(wire);
  if (pinned == nullptr) {  // input owned by a remote partition
    remote_frames_dropped_.fetch_add(1);
    return;
  }
  InputAdapter& in = *pinned;
  if (std::holds_alternative<transport::ProbeFrame>(frame)) {
    // A real-time source IS silent through "now": any future arrival will
    // be stamped with a later real time. Scripted sources (inject_at) have
    // no such bound and only promise through their last logged arrival.
    VirtualTime through;
    std::uint64_t seq;
    {
      const std::lock_guard<std::mutex> lk(in.mu);
      seq = in.next_seq;
      if (in.closed) {
        through = VirtualTime::infinity();
      } else if (in.source == InputAdapter::Source::kRealtime) {
        through = max(in.last_vt, real_now());
        in.promised = max(in.promised, through);
      } else {
        through = in.last_vt;
      }
    }
    to_receiver(wire, transport::SilenceFrame{wire, through, seq});
  } else if (const auto* replay =
                 std::get_if<transport::ReplayRequestFrame>(&frame)) {
    // "If the 'sender' is an external component ... the messages are
    // re-sent from the log" (§II.F.4).
    for (const Message& m :
         message_log_.replay_from_seq(wire, replay->from_seq))
      to_receiver(wire, transport::DataFrame{m});
    bool closed;
    VirtualTime through;
    std::uint64_t seq;
    {
      const std::lock_guard<std::mutex> lk(in.mu);
      closed = in.closed;
      through = in.last_vt;
      seq = in.next_seq;
    }
    to_receiver(wire,
                transport::SilenceFrame{
                    wire, closed ? VirtualTime::infinity() : through, seq});
  }
  // Stability acks: the log is already durable; nothing to trim here.
}

// ---------------------------------------------------------------------------
// Routing

EngineId Runtime::engine_of(ComponentId component) const {
  const std::shared_lock<std::shared_mutex> lk(placement_mu_);
  return placement_.at(component);
}

std::map<ComponentId, EngineId> Runtime::placement_snapshot() const {
  const std::shared_lock<std::shared_mutex> lk(placement_mu_);
  return placement_;
}

std::shared_ptr<Runtime::InputAdapter> Runtime::input_adapter(
    WireId wire) const {
  const std::shared_lock<std::shared_mutex> lk(io_mu_);
  const auto it = inputs_.find(wire);
  return it == inputs_.end() ? nullptr : it->second;
}

std::shared_ptr<Runtime::OutputSink> Runtime::output_sink(WireId wire) const {
  const std::shared_lock<std::shared_mutex> lk(io_mu_);
  const auto it = outputs_.find(wire);
  return it == outputs_.end() ? nullptr : it->second;
}

bool Runtime::engine_is_local(EngineId id) const {
  return config_.local_engines.empty() || config_.local_engines.contains(id);
}

void Runtime::set_remote_router(RemoteRouter router) {
  remote_router_ = std::move(router);
}

void Runtime::deliver_from_peer(const transport::Frame& frame) {
  dispatch_local(frame);
}

Runtime::LinkBridge* Runtime::bridge_between(EngineId a, EngineId b) {
  const EngineId lo = a < b ? a : b;
  const EngineId hi = a < b ? b : a;
  for (auto& bridge : bridges_)
    if (bridge->lo == lo && bridge->hi == hi) return bridge.get();
  return nullptr;
}

void Runtime::route(EngineId src, EngineId dst, WireId wire,
                    transport::Frame frame) {
  (void)wire;
  // Cross-partition: the destination engine lives in another process.
  if (dst.is_valid() && !engine_is_local(dst)) {
    if (remote_router_) {
      remote_router_(dst, frame);
    } else {
      remote_frames_dropped_.fetch_add(1);
    }
    return;
  }
  if (src == dst || !src.is_valid() || !dst.is_valid()) {
    dispatch_local(frame);
    return;
  }
  LinkBridge* bridge = bridge_between(src, dst);
  if (bridge == nullptr) {
    dispatch_local(frame);
    return;
  }
  if (src == bridge->lo) {
    bridge->channel->send_from_a(frame);
  } else {
    bridge->channel->send_from_b(frame);
  }
}

void Runtime::dispatch_local(const transport::Frame& frame) {
  // Frame direction is implied by its type: data/silence travel with the
  // wire, probes/replays/stability travel against it.
  const WireId wire = transport::frame_wire(frame);
  if (std::holds_alternative<transport::DataFrame>(frame) ||
      std::holds_alternative<transport::SilenceFrame>(frame)) {
    dispatch_to_receiver_local(wire, frame);
  } else {
    dispatch_to_sender_local(wire, frame);
  }
}

void Runtime::dispatch_to_receiver_local(WireId wire,
                                         const transport::Frame& frame) {
  const auto& spec = topology_.wire(wire);
  if (spec.kind == WireKind::kExternalOutput) {
    deliver_external_output(wire, frame);
    return;
  }
  // A peer process may (buggily) hand us a frame for a component it hosts
  // itself; dropping beats crashing the node.
  if (!engine_is_local(engine_of(spec.to))) {
    remote_frames_dropped_.fetch_add(1);
    return;
  }
  engines_.at(engine_of(spec.to))->deliver_to_receiver(wire, frame);
}

void Runtime::dispatch_to_sender_local(WireId wire,
                                       const transport::Frame& frame) {
  const auto& spec = topology_.wire(wire);
  if (spec.kind == WireKind::kExternalInput) {
    handle_external_sender_frame(wire, frame);
    return;
  }
  if (!engine_is_local(engine_of(spec.from))) {
    remote_frames_dropped_.fetch_add(1);
    return;
  }
  engines_.at(engine_of(spec.from))->deliver_to_sender(wire, frame);
}

void Runtime::to_receiver(WireId wire, transport::Frame frame) {
  const auto& spec = topology_.wire(wire);
  if (spec.kind == WireKind::kExternalOutput) {
    deliver_external_output(wire, frame);
    return;
  }
  const EngineId dst = engine_of(spec.to);
  // External inputs enter at the receiver's engine (the adapter timestamps
  // and logs at the boundary), so their src is the destination itself.
  const EngineId src = spec.kind == WireKind::kExternalInput || !spec.from.is_valid()
                           ? dst
                           : engine_of(spec.from);
  route(src, dst, wire, std::move(frame));
}

void Runtime::to_sender(WireId wire, transport::Frame frame) {
  const auto& spec = topology_.wire(wire);
  if (spec.kind == WireKind::kExternalInput) {
    handle_external_sender_frame(wire, frame);
    return;
  }
  const EngineId dst = engine_of(spec.from);
  const EngineId src = spec.to.is_valid() ? engine_of(spec.to) : dst;
  route(src, dst, wire, std::move(frame));
}

// ---------------------------------------------------------------------------
// Failure injection and introspection

void Runtime::crash_engine(EngineId engine) { engines_.at(engine)->crash(); }

void Runtime::recover_engine(EngineId engine) {
  engines_.at(engine)->recover();
}

void Runtime::set_link_down(EngineId a, EngineId b, bool down) {
  if (LinkBridge* bridge = bridge_between(a, b))
    bridge->channel->set_down(down);
}

MetricsSnapshot Runtime::metrics(ComponentId component) const {
  const EngineId e = engine_of(component);
  if (!engine_is_local(e)) return MetricsSnapshot{};
  return engines_.at(e)->metrics(component);
}

std::uint64_t Runtime::state_fingerprint(ComponentId component) {
  if (!engine_is_local(engine_of(component))) return 0;
  Engine& e = *engines_.at(engine_of(component));
  const auto r = e.runner(component);
  return r == nullptr ? 0 : r->state_fingerprint();
}

std::size_t Runtime::retained_messages(ComponentId component) {
  if (!engine_is_local(engine_of(component))) return 0;
  Engine& e = *engines_.at(engine_of(component));
  const auto r = e.runner(component);
  return r == nullptr ? 0 : r->retained_messages();
}

MetricsSnapshot Runtime::total_metrics() const {
  MetricsSnapshot total;
  for (const auto& [component, engine] : placement_snapshot()) {
    if (!engine_is_local(engine)) continue;
    const MetricsSnapshot s = engines_.at(engine)->metrics(component);
    total += s;
  }
  for (const auto* store :
       {message_store_.get(), fault_store_.get(), replica_store_.get()}) {
    if (store == nullptr) continue;
    total.store_records_written += store->records_written();
    total.store_flushes += store->flushes();
  }
  if (segment_store_ != nullptr) {
    total.store_records_written += segment_store_->records_written();
    total.store_flushes += segment_store_->flushes();
    total.log_segments = segment_store_->segment_count();
    total.log_bytes_on_disk = segment_store_->bytes_on_disk();
    total.log_segments_deleted = segment_store_->segments_deleted();
    total.log_records_reclaimed = message_log_.truncated_messages();
  }
  if (ckpt_manager_ != nullptr) {
    total.ckpt_written = ckpt_manager_->checkpoints_written();
    total.ckpt_bytes = ckpt_manager_->checkpoint_bytes();
    total.ckpt_failed = ckpt_manager_->checkpoint_failures();
  }
  total.ckpt_skipped_invalid = recovery_.skipped_invalid;
  total.restart_covered_records = recovery_.covered_records;
  total.restart_suffix_records = recovery_.suffix_records;
  return total;
}

// ---------------------------------------------------------------------------
// Durability (docs/RECOVERY.md)

std::vector<WireId> Runtime::external_input_wires() const {
  const std::shared_lock<std::shared_mutex> lk(io_mu_);
  std::vector<WireId> wires;
  wires.reserve(inputs_.size());
  for (const auto& [wire, adapter] : inputs_) wires.push_back(wire);
  return wires;
}

bool Runtime::force_component_checkpoints(std::chrono::milliseconds timeout) {
  struct Pending {
    ComponentId component;
    std::uint64_t pre_version;
  };
  std::vector<Pending> pending;
  for (const auto& [component, engine] : placement_snapshot()) {
    if (!engine_is_local(engine)) continue;
    Engine& e = *engines_.at(engine);
    if (e.crashed()) continue;  // fail-stopped: nothing to capture
    const auto runner = e.runner(component);
    if (runner == nullptr) continue;
    pending.push_back({component, replica_.latest_version(component)});
    runner->enqueue_control(CheckpointNowCtl{});
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    for (const auto& p : pending)
      if (replica_.latest_version(p.component) <= p.pre_version) all = false;
    if (all) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

std::uint64_t Runtime::compact_below(
    const std::map<WireId, std::uint64_t>& covered) {
  const std::uint64_t before = message_log_.truncated_messages();
  const std::uint64_t first_retained = message_log_.truncate_covered(covered);
  if (segment_store_ != nullptr)
    segment_store_->truncate_below(first_retained);
  return message_log_.truncated_messages() - before;
}

std::uint64_t Runtime::log_bytes_on_disk() const {
  return segment_store_ == nullptr ? 0 : segment_store_->bytes_on_disk();
}

StatusReport Runtime::status() const {
  StatusReport report;
  for (const auto& [component, engine] : placement_snapshot()) {
    if (!engine_is_local(engine)) continue;
    const auto runner = engines_.at(engine)->runner(component);
    if (runner == nullptr) {
      // Crashed (or not yet started): show the placement with no detail.
      ComponentStatus st;
      st.id = component;
      st.name = topology_.component(component).name;
      st.crashed = true;
      report.components.push_back(std::move(st));
      continue;
    }
    report.components.push_back(runner->status());
  }
  return report;
}

// ---------------------------------------------------------------------------
// Elastic placement (live migration; src/placement)

std::vector<WireId> Runtime::external_inputs_of(ComponentId c) const {
  std::vector<WireId> wires;
  for (const auto& spec : topology_.wires())
    if (spec.kind == WireKind::kExternalInput && spec.to == c)
      wires.push_back(spec.id);
  return wires;
}

Runtime::ExternalInputState Runtime::external_input_state(WireId wire) const {
  ExternalInputState st;
  const auto pinned = input_adapter(wire);
  if (pinned == nullptr) {
    // No adapter (remote or already evicted): the log still knows the
    // durable position, which is what a migration slice needs.
    st.next_seq = message_log_.next_seq(wire);
    st.last_vt = message_log_.last_vt(wire);
    return st;
  }
  const std::lock_guard<std::mutex> lk(pinned->mu);
  st.known = true;
  st.next_seq = pinned->next_seq;
  st.last_vt = pinned->last_vt;
  st.closed = pinned->closed;
  return st;
}

bool Runtime::component_is_local(ComponentId c) const {
  return engine_is_local(engine_of(c));
}

bool Runtime::force_component_checkpoint(ComponentId c,
                                         std::chrono::milliseconds timeout) {
  const EngineId e = engine_of(c);
  if (!engine_is_local(e)) return false;
  const auto eit = engines_.find(e);
  if (eit == engines_.end() || eit->second->crashed()) return false;
  const auto runner = eit->second->runner(c);
  if (runner == nullptr) return false;
  const std::uint64_t pre = replica_.latest_version(c);
  runner->enqueue_control(CheckpointNowCtl{});
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (replica_.latest_version(c) <= pre) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

std::optional<checkpoint::RestorePlan> Runtime::export_component_plan(
    ComponentId c) {
  return replica_.restore(c);
}

bool Runtime::adopt_component(ComponentId c, EngineId onto,
                              const std::optional<checkpoint::RestorePlan>& plan,
                              const std::vector<AdoptedInput>& inputs,
                              std::string* error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!engine_is_local(onto)) return fail("adopting engine is not local");
  const auto eit = engines_.find(onto);
  if (eit == engines_.end()) return fail("adopting engine does not exist");
  if (eit->second->crashed()) return fail("adopting engine is crashed");
  // Seed the external log with the shipped suffix before the new runner can
  // request replays from it. Overlap with records already held (re-adoption,
  // resumed delta rounds) is skipped by seq — append() demands order.
  for (const AdoptedInput& in : inputs) {
    if (message_log_.next_seq(in.wire) == 0 && in.base_seq > 0)
      message_log_.set_base(in.wire, in.base_seq, in.base_vt);
    for (const Message& m : in.records)
      if (m.seq >= message_log_.next_seq(in.wire)) message_log_.append(m);
  }
  // Import the shipped plan so the local replica owns it from here on
  // (delta checkpoints chain off it; durable checkpoints persist it).
  if (plan.has_value()) replica_.import_plan(c, *plan);
  // Routing flips first: replay requests the new runner issues must resolve
  // against the local wires. Peers flip via the placement protocol, not
  // this map.
  {
    const std::unique_lock<std::shared_mutex> lk(placement_mu_);
    placement_[c] = onto;
  }
  // (Re)create the boundary adapters the component owns here now, resuming
  // past whatever the freshly seeded log holds.
  {
    const std::unique_lock<std::shared_mutex> lk(io_mu_);
    for (const auto& spec : topology_.wires()) {
      if (spec.kind == WireKind::kExternalInput && spec.to == c &&
          !inputs_.contains(spec.id)) {
        auto adapter = std::make_shared<InputAdapter>();
        adapter->next_seq = message_log_.next_seq(spec.id);
        adapter->last_vt = message_log_.last_vt(spec.id);
        inputs_.emplace(spec.id, std::move(adapter));
      }
      if (spec.kind == WireKind::kExternalOutput && spec.from == c &&
          !outputs_.contains(spec.id))
        outputs_.emplace(spec.id, std::make_shared<OutputSink>());
    }
  }
  for (const AdoptedInput& in : inputs) {
    if (!in.closed) continue;
    if (const auto pinned = input_adapter(in.wire)) {
      const std::lock_guard<std::mutex> lk(pinned->mu);
      pinned->closed = true;
    }
  }
  // The engine restores whatever the replica now holds (the imported plan,
  // or the pre-eviction local state on a rollback), requests replays past
  // the restored positions and starts the scheduler thread.
  if (!eit->second->adopt_component(c, replica_.restore(c)))
    return fail("component is already hosted on the adopting engine");
  return true;
}

std::vector<Runtime::SealedOutput> Runtime::evict_component(
    ComponentId c, EngineId new_owner) {
  std::vector<SealedOutput> sealed;
  const EngineId cur = engine_of(c);
  if (engine_is_local(cur)) {
    const auto eit = engines_.find(cur);
    if (eit != engines_.end()) {
      // Stops and joins the runner thread with NO runtime lock held — the
      // thread may be routing frames through this very object right now.
      if (const auto updates = eit->second->evict_component(c)) {
        sealed.reserve(updates->size());
        for (const auto& u : *updates)
          sealed.push_back({u.wire, u.through, u.expected_seq});
      }
    }
  }
  {
    const std::unique_lock<std::shared_mutex> lk(placement_mu_);
    placement_[c] = new_owner;
  }
  // Drop the boundary adapters: external arrivals are the new owner's to
  // timestamp and log from now on (the gateway redirects).
  {
    const std::unique_lock<std::shared_mutex> lk(io_mu_);
    for (const auto& spec : topology_.wires()) {
      if (spec.kind == WireKind::kExternalInput && spec.to == c)
        inputs_.erase(spec.id);
      if (spec.kind == WireKind::kExternalOutput && spec.from == c)
        outputs_.erase(spec.id);
    }
  }
  return sealed;
}

void Runtime::apply_placement(ComponentId c, EngineId engine) {
  const std::unique_lock<std::shared_mutex> lk(placement_mu_);
  placement_[c] = engine;
}

void Runtime::trim_retention_below(WireId wire, std::uint64_t below_seq) {
  const auto& spec = topology_.wire(wire);
  // External inputs are log-backed, not retention-backed; the checkpoint
  // compaction path owns their trimming.
  if (spec.kind == WireKind::kExternalInput || !spec.from.is_valid()) return;
  const EngineId e = engine_of(spec.from);
  if (!engine_is_local(e)) return;
  const auto eit = engines_.find(e);
  if (eit == engines_.end()) return;
  if (const auto runner = eit->second->runner(spec.from))
    runner->enqueue_control(
        RetentionTrimCtl{wire, below_seq, &retention_trimmed_});
}

}  // namespace tart::core
