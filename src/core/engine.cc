#include "core/engine.h"

#include <algorithm>
#include <cassert>

namespace tart::core {

Engine::Engine(EngineId id, const Topology& topology,
               const RuntimeConfig& config, FrameRouter& router,
               log::DeterminismFaultLog& fault_log,
               checkpoint::ReplicaStore& replica, obs::Registry& registry,
               trace::TraceRecorder* tracer)
    : id_(id),
      topology_(topology),
      config_(config),
      router_(router),
      fault_log_(fault_log),
      replica_(replica),
      registry_(registry),
      tracer_(tracer) {}

Engine::~Engine() { stop(); }

void Engine::add_component(ComponentId component) {
  assert(!started_.load());
  placed_.push_back(component);
}

Engine::RunnerMap Engine::make_runners() const {
  std::vector<ComponentId> placed;
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    placed = placed_;
  }
  RunnerMap runners;
  for (const ComponentId c : placed) {
    runners.emplace(c, std::make_shared<ComponentRunner>(
                           topology_, c, config_, router_, fault_log_,
                           replica_, registry_, tracer_));
  }
  return runners;
}

std::shared_ptr<ComponentRunner> Engine::pin(ComponentId component) const {
  const std::lock_guard<std::mutex> lk(map_mu_);
  if (crashed_.load()) return nullptr;
  const auto it = runners_.find(component);
  return it == runners_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<ComponentRunner>> Engine::pin_all() const {
  std::vector<std::shared_ptr<ComponentRunner>> out;
  const std::lock_guard<std::mutex> lk(map_mu_);
  if (crashed_.load()) return out;
  out.reserve(runners_.size());
  for (const auto& [c, r] : runners_) out.push_back(r);
  return out;
}

void Engine::start() {
  // Starting is the same protocol as recovering: restore whatever the
  // replica holds (nullopt -> fresh component) and request replay past the
  // restored positions. On a fresh deployment the requests are no-ops; on
  // a cold restart over persisted state they resume the execution.
  RunnerMap runners = make_runners();
  for (auto& [c, r] : runners) {
    const auto plan = replica_.restore(c);
    // A cold restart that found persisted state IS a recovery: the marker
    // tells the trace differ (diff --recovery) which dispatch prefix the
    // restored checkpoint already covers. A truly fresh component gets no
    // marker — its trace must match a never-failed run exactly.
    if (plan && tracer_ != nullptr) {
      const checkpoint::ComponentSnapshot& last =
          plan->deltas.empty() ? plan->base : plan->deltas.back();
      tracer_->record(c, trace::TraceEventKind::kRecoveryStart, last.vt,
                      WireId::invalid(), last.version);
    }
    r->restore_from(plan);
  }
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    runners_ = std::move(runners);
  }
  for (const auto& r : pin_all()) r->request_replays();
  for (const auto& r : pin_all()) r->start();
  started_ = true;
  if (config_.silence.aggressive_interval.count() > 0 &&
      !aggressive_thread_.joinable()) {
    aggressive_thread_ = std::thread([this] { aggressive_loop(); });
  }
}

void Engine::stop() {
  {
    const std::lock_guard<std::mutex> lk(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (aggressive_thread_.joinable()) aggressive_thread_.join();
  for (const auto& r : pin_all()) r->stop();
}

void Engine::crash() {
  // Swap the map out under the brief lock; in-flight dispatches still pin
  // the old runners and complete harmlessly against dying objects.
  RunnerMap dead;
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    crashed_ = true;
    dead = std::move(runners_);
    runners_.clear();
  }
  // Join the scheduler threads with no lock held (they may be routing
  // frames into this very engine).
  for (auto& [c, r] : dead) r->stop();
  if (tracer_ != nullptr) {
    for (const ComponentId c : components())
      tracer_->record(c, trace::TraceEventKind::kCrash, VirtualTime(-1),
                      WireId::invalid(), id_.value());
  }
  // Fail-stop: state dies when the last in-flight pin expires.
}

void Engine::recover() {
  assert(crashed_.load());
  RunnerMap runners = make_runners();
  for (auto& [c, r] : runners) {
    const auto plan = replica_.restore(c);
    // Recorded here rather than in restore_from so a component that never
    // checkpointed (restart-from-scratch) still gets its recovery marker —
    // the differ needs it to license the replayed dispatch stutter.
    if (tracer_ != nullptr) {
      const checkpoint::ComponentSnapshot* last =
          plan ? (plan->deltas.empty() ? &plan->base : &plan->deltas.back())
               : nullptr;
      tracer_->record(c, trace::TraceEventKind::kRecoveryStart,
                      last != nullptr ? last->vt : VirtualTime(-1),
                      WireId::invalid(),
                      last != nullptr ? last->version : 0);
    }
    r->restore_from(plan);
  }
  // Request replays before the scheduler threads start: request_replays
  // reads the restored input positions, which the running threads mutate.
  // Replayed frames arriving before start() simply queue in the inboxes —
  // but only once the map is published and crashed_ cleared.
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    runners_ = std::move(runners);
    crashed_ = false;
  }
  for (const auto& r : pin_all()) r->request_replays();
  for (const auto& r : pin_all()) r->start();
}

void Engine::deliver_to_receiver(WireId wire, const transport::Frame& frame) {
  const auto& spec = topology_.wire(wire);
  const auto r = pin(spec.to);
  if (r == nullptr) return;  // crashed: the machine is gone, frames lost

  if (const auto* data = std::get_if<transport::DataFrame>(&frame)) {
    if (spec.kind == WireKind::kReply) {
      r->deliver_reply(data->msg);
    } else {
      r->deliver_data(data->msg);
    }
  } else if (const auto* silence =
                 std::get_if<transport::SilenceFrame>(&frame)) {
    r->deliver_silence(silence->wire, silence->through,
                       silence->expected_seq);
  }
}

void Engine::deliver_to_sender(WireId wire, const transport::Frame& frame) {
  const auto& spec = topology_.wire(wire);
  const auto r = pin(spec.from);
  if (r == nullptr) return;

  if (std::holds_alternative<transport::ProbeFrame>(frame)) {
    r->handle_probe(wire);
  } else if (const auto* replay =
                 std::get_if<transport::ReplayRequestFrame>(&frame)) {
    r->enqueue_control(
        ReplayRequestCtl{replay->wire, replay->after, replay->from_seq});
  } else if (const auto* stability =
                 std::get_if<transport::StabilityFrame>(&frame)) {
    r->enqueue_control(StabilityCtl{stability->wire, stability->through});
  }
}

std::shared_ptr<ComponentRunner> Engine::runner(ComponentId component) const {
  return pin(component);
}

bool Engine::all_exhausted() const {
  if (crashed_.load()) return false;
  std::vector<std::shared_ptr<ComponentRunner>> runners;
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    if (runners_.size() != placed_.size()) return false;
    runners.reserve(runners_.size());
    for (const auto& [c, r] : runners_) runners.push_back(r);
  }
  for (const auto& r : runners)
    if (!r->exhausted()) return false;
  return true;
}

MetricsSnapshot Engine::metrics(ComponentId component) const {
  const auto r = pin(component);
  return r == nullptr ? MetricsSnapshot{} : r->metrics();
}

std::vector<ComponentId> Engine::components() const {
  const std::lock_guard<std::mutex> lk(map_mu_);
  return placed_;
}

bool Engine::adopt_component(
    ComponentId component, const std::optional<checkpoint::RestorePlan>& plan) {
  if (crashed_.load()) return false;
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    if (runners_.count(component) != 0) return false;
  }
  auto r = std::make_shared<ComponentRunner>(topology_, component, config_,
                                             router_, fault_log_, replica_,
                                             registry_, tracer_);
  // Adoption IS recovery on a new node: the marker tells the trace differ
  // (diff --recovery) which dispatch prefix the restored plan covers.
  if (tracer_ != nullptr) {
    const checkpoint::ComponentSnapshot* last =
        plan ? (plan->deltas.empty() ? &plan->base : &plan->deltas.back())
             : nullptr;
    tracer_->record(component, trace::TraceEventKind::kRecoveryStart,
                    last != nullptr ? last->vt : VirtualTime(-1),
                    WireId::invalid(), last != nullptr ? last->version : 0);
  }
  r->restore_from(plan);
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    if (!runners_.emplace(component, r).second) return false;  // raced adopt
    placed_.push_back(component);
  }
  r->request_replays();
  r->start();
  return true;
}

std::optional<std::vector<ComponentRunner::SilenceUpdate>>
Engine::evict_component(ComponentId component) {
  std::shared_ptr<ComponentRunner> r;
  {
    const std::lock_guard<std::mutex> lk(map_mu_);
    const auto it = runners_.find(component);
    if (it == runners_.end()) return std::nullopt;
    r = it->second;
    runners_.erase(it);
    placed_.erase(std::remove(placed_.begin(), placed_.end(), component),
                  placed_.end());
  }
  // Join the scheduler thread with no lock held (it may be routing frames).
  r->stop();
  return r->seal_outputs();
}

void Engine::aggressive_loop() {
  std::unique_lock<std::mutex> lk(timer_mu_);
  while (!timer_stop_) {
    timer_cv_.wait_for(lk, config_.silence.aggressive_interval);
    if (timer_stop_) return;
    lk.unlock();
    for (const auto& r : pin_all()) {
      for (const auto& u : r->collect_silence_updates())
        router_.to_receiver(
            u.wire,
            transport::SilenceFrame{u.wire, u.through, u.expected_seq});
    }
    lk.lock();
  }
}

}  // namespace tart::core
