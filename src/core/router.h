// Frame routing between engines, external adapters, and runners.
//
// Data and silence frames flow *with* a wire (to its receiver); probes,
// replay requests and stability acknowledgements flow *against* it (to its
// sender). The Runtime implements this interface, optionally passing
// cross-engine hops through simulated network links.
#pragma once

#include "common/ids.h"
#include "transport/frame.h"

namespace tart::core {

class FrameRouter {
 public:
  virtual ~FrameRouter() = default;

  /// Delivers a frame to the receiving end of `wire` (component inbox,
  /// reply slot, or external consumer).
  virtual void to_receiver(WireId wire, transport::Frame frame) = 0;

  /// Delivers a frame to the sending end of `wire` (component runner or
  /// external input adapter).
  virtual void to_sender(WireId wire, transport::Frame frame) = 0;
};

}  // namespace tart::core
