// The TART component model.
//
// A component (§II.B) is a piece of software that receives input requests,
// performs processing, possibly holds state, and possibly sends messages —
// one-way sends or two-way calls. Restrictions (enforced by this API rather
// than by a Java dialect):
//   - no shared memory: payloads are values;
//   - no internal concurrency: the runtime invokes one handler at a time;
//   - no non-deterministic operations: the only clock available is
//     Context::now(), which returns deterministic *virtual* time;
//   - no blocking except awaiting a call's reply (Context::call);
//   - static code and wiring (no dynamic rewiring).
//
// State lives in ordinary member variables; the component exposes it to the
// recovery machinery through the Checkpointable interface (manual
// augmentation — the C++ analogue of the paper's transparent bytecode
// transformation). Handlers report basic-block execution counts through
// Context::count_block; estimators map those counts to virtual durations.
#pragma once

#include <optional>
#include <stdexcept>

#include "checkpoint/checkpointable.h"
#include "common/ids.h"
#include "common/virtual_time.h"
#include "estimator/counters.h"
#include "wire/payload.h"

namespace tart::core {

/// Handler-side services provided by the runtime. Everything observable
/// through a Context is deterministic.
class Context {
 public:
  virtual ~Context() = default;

  /// Current virtual time. This is the component's "timing service"
  /// exception to the no-non-determinism rule (§II.B): requesting the
  /// current time is allowed because it returns deterministic virtual time.
  [[nodiscard]] virtual VirtualTime now() const = 0;

  /// Records `n` executions of basic block `block` of this handler, for the
  /// estimator (Equation 1's xi values).
  virtual void count_block(std::size_t block, std::uint64_t n = 1) = 0;

  /// One-way asynchronous send on output port `port`.
  virtual void send(PortId port, Payload payload) = 0;

  /// Time-aware send (the paper's §IV extension: "user-generated
  /// timestamps, in which timestamps represent arrival deadlines"): the
  /// message is stamped to arrive exactly `delay` virtual ticks after the
  /// current virtual time (minimum 1 tick; monotonicity per wire still
  /// enforced). Sent on a self-loop wire (Topology::timer) this is a
  /// deterministic timer: it merges with the component's other inputs in
  /// virtual-time order and replays identically.
  virtual void send_delayed(PortId port, TickDuration delay,
                            Payload payload) = 0;

  /// Two-way service call on output port `port`; blocks (in real time)
  /// until the reply arrives and resumes at the reply's virtual time.
  [[nodiscard]] virtual Payload call(PortId port, Payload payload) = 0;
};

class Component : public checkpoint::Checkpointable {
 public:
  /// Handles a one-way message delivered on input port `port`.
  virtual void on_message(Context& ctx, PortId port, const Payload& payload) = 0;

  /// Services a two-way call on input port `port`, returning the reply.
  /// Default: components without call ports never receive calls.
  [[nodiscard]] virtual Payload on_call(Context& ctx, PortId port,
                                        const Payload& payload) {
    (void)ctx;
    (void)port;
    (void)payload;
    throw std::logic_error("component has no call handler");
  }

  /// Prescience hook (§III.A "Prescient" mode): if the full block counts of
  /// handling `payload` are knowable before execution (e.g. Code Body 1,
  /// where the loop bound is the sentence length), return them; the runtime
  /// then publishes precise silence horizons at dequeue time instead of
  /// after the handler completes. Return nullopt when not knowable.
  [[nodiscard]] virtual std::optional<estimator::BlockCounters>
  prescient_counters(PortId port, const Payload& payload) const {
    (void)port;
    (void)payload;
    return std::nullopt;
  }
};

}  // namespace tart::core
