// ComponentRunner: one component's deterministic scheduler.
//
// Each component gets a dedicated thread (as in the paper's experiments,
// where "the three components each had a dedicated thread"). The runner:
//
//   - merges the component's input wires pessimistically in virtual-time
//     order (Inbox), waiting out pessimism delays and firing curiosity
//     probes at lagging senders (§II.E, §II.H);
//   - runs handlers one at a time, maintaining a virtual-time cursor that
//     advances by estimator charges (never by measured time);
//   - stamps outgoing messages with deterministic virtual arrival times
//     (compute estimate + communication-delay estimate, optionally rounded
//     up by the hyper-aggressive bias policy);
//   - publishes per-output-wire silence horizons (lock-free, so probe
//     servicing never blocks on a busy or blocked component);
//   - retains sent messages until downstream stability acknowledgements
//     trim them, and serves replay requests from that retention;
//   - takes soft checkpoints between handlers and ships them to the
//     passive replica;
//   - supports an arrival-order mode, the non-deterministic baseline the
//     paper compares against.
//
// Thread-safety protocol: `mu_` guards the inbox, control queue and
// arrival queue; the runner's scheduling state (cursor, positions,
// retention, estimators) is touched only by the runner thread; published
// horizons are atomics readable by any thread. Frames are never routed
// while holding `mu_` (no lock-order cycles between runners).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <variant>
#include <vector>

#include "checkpoint/replica.h"
#include "checkpoint/snapshot.h"
#include "common/ids.h"
#include "common/virtual_time.h"
#include "core/component.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/router.h"
#include "core/status.h"
#include "core/topology.h"
#include "estimator/bias.h"
#include "estimator/comm_delay.h"
#include "estimator/estimator_manager.h"
#include "log/fault_log.h"
#include "trace/recorder.h"
#include "wire/inbox.h"
#include "wire/retention_buffer.h"

namespace tart::core {

/// Control messages processed on the runner thread (they touch
/// runner-private state such as retention buffers).
struct ReplayRequestCtl {
  WireId wire;
  VirtualTime after;
  std::uint64_t from_seq;
};
struct StabilityCtl {
  WireId wire;
  VirtualTime through;
};
struct DupCallCtl {
  WireId call_wire;
  std::uint64_t call_id;
};
/// Forces an immediate FULL soft checkpoint on the runner thread — the
/// per-component barrier a durable checkpoint is assembled from
/// (src/durability). Full, so the replica's latest version is guaranteed
/// to advance even if a delta would have been rejected.
struct CheckpointNowCtl {};
/// Drops output retention on `wire` below `below_seq`: the remote
/// consumer's durable checkpoint covers those messages, so no failover can
/// ever replay-request them (checkpoint-bounded retention; the bound
/// arrives in HELLO / kCoverUpdate frames).
struct RetentionTrimCtl {
  WireId wire;
  std::uint64_t below_seq;
  /// When set, the number of records dropped is added here (the runtime's
  /// process-wide trim counter; surfaced as a metric).
  std::atomic<std::uint64_t>* trimmed = nullptr;
};
using ControlMsg = std::variant<ReplayRequestCtl, StabilityCtl, DupCallCtl,
                                CheckpointNowCtl, RetentionTrimCtl>;

class ComponentRunner {
 public:
  /// `tracer` may be null (tracing disabled): every record point then
  /// costs a single branch. `registry` outlives the runner (owned by the
  /// Runtime); re-registration after crash/recover re-attaches to the
  /// same cells.
  ComponentRunner(const Topology& topology, ComponentId id,
                  const RuntimeConfig& config, FrameRouter& router,
                  log::DeterminismFaultLog& fault_log,
                  checkpoint::ReplicaStore& replica, obs::Registry& registry,
                  trace::TraceRecorder* tracer);
  ~ComponentRunner();

  ComponentRunner(const ComponentRunner&) = delete;
  ComponentRunner& operator=(const ComponentRunner&) = delete;

  /// Spawns the scheduler thread. For a recovering component, call
  /// restore_from + request_replays first.
  void start();

  /// Cooperative stop; joins the thread. Safe to call twice.
  void stop();

  // --- Frame entry points (any thread) -----------------------------------

  void deliver_data(const Message& m);
  void deliver_silence(WireId wire, VirtualTime through,
                       std::uint64_t expected_seq = 0);
  void deliver_reply(const Message& m);
  /// Curiosity probe service: answered immediately from the published
  /// horizon without involving the runner thread.
  void handle_probe(WireId wire);
  void enqueue_control(ControlMsg msg);

  // --- Recovery (call only while the thread is not running) --------------

  /// Rebuilds the component from a replica restore plan; with nullopt the
  /// component starts fresh (replay then re-feeds from the beginning).
  void restore_from(const std::optional<checkpoint::RestorePlan>& plan);

  /// Asks every upstream sender (component or external adapter) to replay
  /// ticks past the restored positions.
  void request_replays();

  // --- Introspection ------------------------------------------------------

  [[nodiscard]] ComponentId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] VirtualTime published_horizon(WireId wire) const;
  [[nodiscard]] MetricsSnapshot metrics() const {
    MetricsSnapshot s = metrics_.snapshot();
    if (tracer_ != nullptr) {
      s.trace_events_recorded = tracer_->recorded(id_);
      s.trace_events_dropped = tracer_->dropped(id_);
    }
    return s;
  }
  /// All inputs closed and processed, no handler running.
  [[nodiscard]] bool exhausted() const;
  [[nodiscard]] VirtualTime current_vt() const;

  /// Silence-wavefront view: the VT frontier, per-input-wire horizons and
  /// queue depths, and — when the head is held by pessimism — which wires
  /// are blocking it. Consistent read under the runner lock; read-only.
  [[nodiscard]] ComponentStatus status() const;

  /// FNV hash of the component's full serialized state. Only meaningful
  /// when the component is quiescent (drained or stopped); used by tests to
  /// assert replayed state is bit-identical to a never-failed run.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

  /// Total messages currently retained across all output wires (bounded by
  /// downstream checkpoint progress; the retention ablation measures this).
  [[nodiscard]] std::size_t retained_messages() const;

  struct SilenceUpdate {
    WireId wire;
    VirtualTime through;
    std::uint64_t expected_seq;
  };

  /// Silence updates not yet pushed (aggressive propagation): wires whose
  /// published horizon advanced past the last push. Calling marks them
  /// pushed. Invoked by the engine's aggressive timer.
  [[nodiscard]] std::vector<SilenceUpdate> collect_silence_updates();

  /// Every output wire's sealed position (published horizon + next seq).
  /// Call only after stop(): the departing node of a live migration
  /// promises this as its final silence on each wire it abandons.
  [[nodiscard]] std::vector<SilenceUpdate> seal_outputs() const;

 private:
  friend class RunnerContext;

  struct OutputState {
    WireSpec spec;
    /// Written only by the runner thread; read by probe servicing from any
    /// thread (it travels in SilenceFrame::expected_seq).
    std::atomic<std::uint64_t> next_seq{0};
    VirtualTime last_sent = VirtualTime(-1);
    RetentionBuffer retention;
    std::unique_ptr<estimator::CommDelayEstimator> delay;
    std::atomic<std::int64_t> published{-1};    // silence horizon (ticks)
    std::atomic<std::int64_t> last_pushed{-1};  // aggressive-push watermark
    /// A probe arrived and could not be satisfied beyond `published`; push
    /// the horizon to the receiver as soon as it advances (the probed
    /// sender "computes a new silence interval" and delivers it, §II.H).
    std::atomic<bool> probe_pending{false};
  };

  struct InputPos {
    VirtualTime delivered_vt = VirtualTime(-1);
    std::uint64_t delivered_seq = 0;
  };

  /// Thrown out of a blocked call when the runner is stopped/crashed.
  struct StopSignal {};

  void run();
  void process(const Message& m);
  void drain_control(std::unique_lock<std::mutex>& lk);
  void serve_control(const ControlMsg& msg);
  void send_probes();

  /// Sends one message on a specific wire from handler context; returns
  /// the assigned virtual time. `explicit_delay` overrides the wire's
  /// communication-delay estimator (time-aware sends / timers). Runner
  /// thread only.
  VirtualTime emit(OutputState& out, VirtualTime cursor, MessageKind kind,
                   std::uint64_t call_id, Payload payload,
                   std::optional<TickDuration> explicit_delay = std::nullopt);

  /// Publishes horizons while a handler runs: no output can appear before
  /// floor + min_delay(wire).
  void publish_busy_horizons(VirtualTime floor);
  /// Publishes horizons between handlers, from the inbox lower bound.
  /// Requires `mu_`.
  void publish_idle_horizons_locked();
  void advance_published(OutputState& out, VirtualTime through);
  /// Publishes +inf on all outputs and routes final silence frames.
  void publish_final_silence();

  /// Pushes freshly-advanced horizons to receivers with outstanding probe
  /// interest. Must be called with no locks held.
  void flush_probe_responses();

  void maybe_checkpoint();
  void capture_checkpoint();

  [[nodiscard]] TickDuration charge_for(const estimator::BlockCounters& c,
                                        VirtualTime dequeue_vt,
                                        TickDuration floor) const;

  // Immutable wiring (set at construction).
  const Topology& topology_;
  const ComponentId id_;
  const std::string name_;
  const RuntimeConfig& config_;
  FrameRouter& router_;
  checkpoint::ReplicaStore& replica_;
  obs::Registry& registry_;
  /// Flight recorder; null when tracing is off. Owned by the Runtime, so
  /// a component's event stream continues across engine crash/recover.
  trace::TraceRecorder* const tracer_;
  estimator::BiasPolicy bias_;
  /// Immutable after construction; safe to read from any thread (probe
  /// servicing fans transitive probes out over it).
  std::vector<WireId> input_wires_;
  /// Self-loop (timer) input wires and the rest, split. A self wire closes
  /// itself once every non-self input is closed and nothing is pending —
  /// no future handler could schedule another timer.
  std::vector<WireId> self_wires_;
  std::vector<WireId> nonself_wires_;

  std::unique_ptr<Component> component_;
  estimator::EstimatorManager estimators_;

  // Scheduling state guarded by mu_.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Inbox inbox_;
  std::deque<Message> arrival_queue_;  // kArrivalOrder mode
  std::deque<ControlMsg> control_;
  std::atomic<bool> stop_{false};
  bool in_handler_ = false;
  bool final_silence_sent_ = false;

  // Runner-thread-private state.
  VirtualTime current_vt_ = VirtualTime::zero();
  VirtualTime max_arrival_vt_ = VirtualTime(-1);  // out-of-order detection
  std::map<WireId, InputPos> input_pos_;          // data/call/external inputs
  std::map<WireId, VirtualTime> last_reply_;      // reply-wire positions
  std::map<WireId, std::unique_ptr<OutputState>> outputs_;
  std::uint64_t processed_since_checkpoint_ = 0;
  std::uint64_t checkpoint_version_ = 0;
  bool force_full_checkpoint_ = true;

  // Call/reply rendezvous.
  std::mutex reply_mu_;
  std::condition_variable reply_cv_;
  std::optional<Message> pending_reply_;
  std::uint64_t awaited_call_id_ = 0;
  WireId awaited_reply_wire_;

  /// Rate limiter for transitive curiosity probes (see handle_probe).
  std::atomic<std::int64_t> last_transitive_probe_ns_{0};

  // Telemetry cells (registry-owned; registered at construction, recorded
  // into lock-free). Stall attribution is per blocking input wire; probe
  // RTT matches a probe send stamp (probe_sent_ns_, guarded by mu_) to the
  // next silence frame on that wire.
  std::map<WireId, obs::Histogram*> stall_hist_;
  std::map<WireId, obs::Histogram*> probe_rtt_hist_;
  obs::Histogram* est_err_hist_ = nullptr;
  /// Ingress queueing: durable-commit to first dispatch of an external
  /// input (recorded on the input's own first hop only).
  obs::Histogram* ingress_queue_hist_ = nullptr;
  std::map<WireId, std::int64_t> probe_sent_ns_;

  // Request-lineage origin of the message currently being processed
  // (runner thread only): every emit() during the dispatch copies it onto
  // the outgoing message, so descendants inherit the input's identity.
  WireId current_origin_wire_ = WireId::invalid();
  std::uint64_t current_origin_seq_ = 0;
  std::int64_t current_origin_wall_ns_ = 0;

  // Stall-forensics state (runner thread only). Each pessimism episode is
  // minted a per-component id that rides in kStallResolved/kStallBlame
  // trace events and histogram exemplars, so a fat p99 bucket links back
  // to concrete trace records (`tart-trace explain --episode`). The
  // horizons photographed at episode begin let the release path report the
  // blocking wire's deficit without re-deriving it offline.
  std::uint64_t stall_episode_seq_ = 0;
  std::uint64_t stall_episode_id_ = 0;
  std::int64_t stall_begin_wall_ns_ = 0;
  std::map<WireId, std::int64_t> stall_h_begin_;
  std::vector<WireId> stall_last_lagging_;

  RunnerMetrics metrics_;
  std::thread thread_;
};

}  // namespace tart::core
