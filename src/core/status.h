// Stall introspection: the "silence wavefront" view of a runtime.
//
// The paper's pessimistic merge holds the earliest pending message until
// every other input wire has promised silence past its virtual time
// (SS II.D). When a pipeline looks stuck, the question is always the same:
// WHICH component is holding WHAT message, and WHICH input wires' silence
// horizons are behind it. StatusReport answers exactly that, per
// component, from a consistent read under the runner lock.
//
// Served as the `status` control verb (tart-ctl / tart-obs) and as
// GET /status JSON on the gateway. Read-only: building a report never
// perturbs scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"

namespace tart::core {

/// One input wire of one component, as seen by the pessimistic merge.
struct WireStatus {
  WireId wire = WireId::invalid();
  /// Name of the sending component, or "external" for ingress wires.
  std::string sender;
  /// Silence horizon: the sender has promised no message earlier than
  /// this (ticks; VirtualTime::infinity() when the wire is closed).
  std::int64_t horizon_ticks = 0;
  /// Messages queued on this wire, not yet merged.
  std::uint64_t pending = 0;
  /// True when this wire is what the held message is waiting on: its
  /// horizon has not passed the held message's virtual time.
  bool blocking = false;
};

/// One component's frontier.
struct ComponentStatus {
  ComponentId id = ComponentId::invalid();
  std::string name;
  /// Virtual-time frontier: everything up to here is settled.
  std::int64_t vt_ticks = 0;
  /// Total messages pending across all input wires.
  std::uint64_t pending = 0;
  bool exhausted = false;
  /// Crashed and awaiting recovery; the rest of the fields are zero.
  bool crashed = false;
  /// True when the earliest pending message is being held by pessimism.
  bool held = false;
  std::int64_t held_vt = 0;
  WireId held_wire = WireId::invalid();
  std::vector<WireStatus> inputs;
};

/// Where one component lives right now (placement overrides applied).
struct PlacementEntry {
  std::uint32_t component = 0;  ///< ComponentId::value()
  std::uint32_t engine = 0;     ///< EngineId::value() of the owner
  std::uint64_t epoch = 0;      ///< 0 = static (config) placement
};

/// One in-flight live migration, as seen from this node (either side).
struct MigrationStatus {
  std::uint64_t epoch = 0;
  std::uint32_t component = 0;
  std::uint32_t from_engine = 0;
  std::uint32_t to_engine = 0;
  std::string stage;  ///< prepare/transfer/delta/cutover (source);
                      ///< staged/adopt (target)
};

/// Point-in-time wavefront over every component placed on this runtime.
/// Each component's entry is internally consistent (read under its runner
/// lock); entries are mutually concurrent.
struct StatusReport {
  std::vector<ComponentStatus> components;

  // --- Placement control plane (filled by the net host; empty when the
  // runtime is in-process and placement is static) --------------------------
  std::uint64_t placement_epoch = 0;
  std::vector<PlacementEntry> placement;
  std::vector<MigrationStatus> migrations;
};

}  // namespace tart::core
