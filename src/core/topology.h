// Application graph: components, ports, wires, external endpoints.
//
// "Components of an application ... originally have no affinity to any
// particular execution engine" (§II.C). A Topology describes the logical
// application; placement onto engines happens at deployment (Runtime).
// Wire ids are assigned in creation order and double as the deterministic
// tie-break for equal virtual times, so connection order is part of the
// application's deterministic specification.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/component.h"
#include "estimator/estimator.h"

namespace tart::core {

enum class WireKind : std::uint8_t {
  kData,           ///< one-way send between components
  kCall,           ///< two-way request (paired with a kReply wire)
  kReply,          ///< reply leg of a call (paired with its kCall wire)
  kExternalInput,  ///< from an external producer into a component
  kExternalOutput, ///< from a component to an external consumer
};

struct WireSpec {
  WireId id;
  WireKind kind = WireKind::kData;
  ComponentId from;        ///< invalid for external inputs
  PortId from_port;
  ComponentId to;          ///< invalid for external outputs
  PortId to_port;
  WireId paired;           ///< kCall <-> kReply pairing; invalid otherwise
};

struct ComponentSpec {
  ComponentId id;
  std::string name;
  std::function<std::unique_ptr<Component>()> factory;
  /// Estimator used for this component's handlers; default is a constant
  /// 1000-tick (1 us) estimate.
  std::function<std::unique_ptr<estimator::ComputeEstimator>()>
      estimator_factory;
};

class Topology {
 public:
  /// Registers a component with its factory (fresh instances are created at
  /// deployment and again on failover restore).
  ComponentId add(
      std::string name,
      std::function<std::unique_ptr<Component>()> factory);

  /// Sets the compute estimator for a component's handlers.
  void set_estimator(
      ComponentId component,
      std::function<std::unique_ptr<estimator::ComputeEstimator>()> factory);

  /// One-way wire from (from, out_port) to (to, in_port).
  WireId connect(ComponentId from, PortId out_port, ComponentId to,
                 PortId in_port);

  /// Two-way call wiring; creates the call wire (returned) and its reply
  /// wire (query via spec().paired).
  WireId connect_call(ComponentId caller, PortId out_port, ComponentId callee,
                      PortId in_port);

  /// Deterministic timer wire: a self-loop from (component, out_port) back
  /// to (component, in_port). Messages sent on it with
  /// Context::send_delayed arrive at exact virtual offsets, merged with
  /// the component's other inputs in virtual-time order.
  WireId timer(ComponentId component, PortId out_port, PortId in_port);

  /// External producer feeding (to, in_port). Returns the input wire.
  WireId external_input(ComponentId to, PortId in_port);

  /// External consumer fed by (from, out_port). Returns the output wire.
  WireId external_output(ComponentId from, PortId out_port);

  [[nodiscard]] const ComponentSpec& component(ComponentId id) const;
  [[nodiscard]] const WireSpec& wire(WireId id) const;
  [[nodiscard]] const std::vector<ComponentSpec>& components() const {
    return components_;
  }
  [[nodiscard]] const std::vector<WireSpec>& wires() const { return wires_; }

  /// Input wires of a component (data + call + external-input + reply wires
  /// are NOT included for replies — replies bypass the inbox).
  [[nodiscard]] std::vector<WireId> inputs_of(ComponentId id) const;
  /// Output wires of a component (data + call + reply + external-output).
  [[nodiscard]] std::vector<WireId> outputs_of(ComponentId id) const;
  /// Wires leaving (component, out_port) — multicast fan-out is allowed.
  [[nodiscard]] std::vector<WireId> wires_from_port(ComponentId id,
                                                    PortId out_port) const;

 private:
  WireId new_wire(WireSpec spec);

  std::vector<ComponentSpec> components_;
  std::vector<WireSpec> wires_;
};

}  // namespace tart::core
