// Runtime: deploys a Topology onto engines and runs it.
//
// Responsibilities (§II.C deployment steps):
//   - placement: components -> engines;
//   - transformation: estimator/bias/checkpoint machinery is attached to
//     each component via its runner (the C++ analogue of the automatic
//     code transformation);
//   - backups: one shared ReplicaStore stands in for each engine's passive
//     replica (it is keyed by component, so it behaves like one replica per
//     engine);
//   - external world: input adapters that timestamp + log arriving
//     messages (§II.E) and output sinks that deliver to external
//     consumers, recording output stutter;
//   - routing: frames between engines flow directly or through simulated
//     network links (ReliableChannel) when configured;
//   - failure injection: engine crash/recover and link up/down.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "checkpoint/replica.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "core/router.h"
#include "core/status.h"
#include "core/topology.h"
#include "log/fault_log.h"
#include "log/message_log.h"
#include "log/segmented_store.h"
#include "trace/recorder.h"
#include "transport/reliable_link.h"

namespace tart::durability {
class CheckpointManager;
}

namespace tart::core {

/// Pseudo-component the net layer records link-lifecycle trace events
/// against (kLinkUp/kLinkDown). Registered with the flight recorder only
/// in partitioned deployments; real component ids never reach this range.
inline constexpr ComponentId kNetTraceComponent{0xFFFFFF00};

/// Pseudo-component the edge records request-lineage trace events against
/// (kIngestArrive/kIngestDurable/kIngestAck/kOutputDeliver). Registered
/// with the flight recorder only when the lineage category is enabled —
/// conditional registration keeps component sets (and hence trace diffs)
/// identical for lineage-off runs.
inline constexpr ComponentId kEdgeTraceComponent{0xFFFFFF01};

/// One record delivered to an external consumer.
struct OutputRecord {
  VirtualTime vt;
  Payload payload;
  bool stutter = false;  ///< re-delivery of an already-delivered tick
  /// Lineage tag: the external input this output causally descends from
  /// (invalid wire = unknown, e.g. pre-lineage logs).
  WireId origin_wire = WireId::invalid();
  std::uint64_t origin_seq = 0;
};

/// Typed outcome of a non-throwing injection (try_inject*): production
/// ingress gateways map these to protocol-level failures (404/409/503)
/// instead of catching logic_error.
enum class InjectStatus : std::uint8_t {
  kOk = 0,
  kUnknownWire,  ///< no local external-input adapter for the wire
  kClosed,       ///< the input was closed (silence-forever promised)
  kVtRegressed,  ///< scripted vt not strictly after last logged/promised vt
  kStoreFailed,  ///< stable-store append failed: message delivered but NOT
                 ///< durable — log-before-ack callers must refuse the ack
};

/// One injection of a batch (vt < 0 = real-time stamping, like inject()).
struct InjectRequest {
  WireId wire;
  std::int64_t vt = -1;
  Payload payload;
  /// Steady-clock ns when the request reached the edge (0 = stamp at
  /// injection time). The gateway passes its HTTP-arrival stamp so the
  /// lineage ingress events measure queueing in front of the commit.
  std::int64_t arrival_wall_ns = 0;
};

struct InjectResult {
  InjectStatus status = InjectStatus::kOk;
  VirtualTime vt{-1};  ///< assigned virtual time when status != error
  std::uint64_t seq = 0;  ///< assigned per-wire sequence when status == kOk:
                          ///< with the wire it forms the request's globally
                          ///< unique lineage id (wire, seq)
};

/// What this incarnation booted from (durable mode; see docs/RECOVERY.md).
struct RecoveryInfo {
  bool from_checkpoint = false;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t skipped_invalid = 0;  ///< torn/corrupt checkpoint files
  std::uint64_t covered_records = 0;  ///< log records the checkpoint covers
  std::uint64_t suffix_records = 0;   ///< log records left to replay
};

class Runtime final : public FrameRouter {
 public:
  using OutputCallback =
      std::function<void(VirtualTime, const Payload&, bool stutter)>;

  Runtime(Topology topology, std::map<ComponentId, EngineId> placement,
          RuntimeConfig config);
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  void start();

  /// Closes every external input and waits (up to `timeout`) until every
  /// component has processed everything. Returns true on quiescence.
  bool drain(std::chrono::milliseconds timeout = std::chrono::seconds(30));

  void stop();

  // --- External world -----------------------------------------------------

  /// Injects an external message; its virtual time is the real arrival
  /// time (nanoseconds since runtime construction), logged before delivery.
  VirtualTime inject(WireId input_wire, Payload payload);

  /// Injects with a scripted virtual time (clamped to stay monotone per
  /// wire). Deterministic tests use this so the log is run-independent.
  VirtualTime inject_at(WireId input_wire, VirtualTime vt, Payload payload);

  /// Non-throwing inject: returns a typed status instead of throwing on a
  /// closed input or asserting on an unknown wire. Unlike inject_at, a
  /// scripted vt that cannot be honored exactly (it does not land strictly
  /// after the wire's last logged vt and silence promise) is REFUSED with
  /// kVtRegressed rather than clamped — an external client asked for a
  /// specific timestamp and must learn it did not get it.
  [[nodiscard]] InjectResult try_inject(WireId input_wire, Payload payload);
  [[nodiscard]] InjectResult try_inject_at(WireId input_wire, VirtualTime vt,
                                           Payload payload);

  /// Group commit: stamps and logs a whole batch with ONE stable-store
  /// flush (§II.E's "(a) given a timestamp, and then (b) logged" for every
  /// message, amortizing the durability cost), then delivers. Results are
  /// positional; failed entries are neither logged nor delivered (except
  /// kStoreFailed, see InjectStatus). Per-wire arrival order follows batch
  /// order.
  [[nodiscard]] std::vector<InjectResult> try_inject_batch(
      const std::vector<InjectRequest>& requests);

  /// Marks an external input finished: the source promises silence forever.
  void close_input(WireId input_wire);
  void close_all_inputs();

  /// Registers a consumer callback for an external output wire (call
  /// before start()). Records are kept regardless of subscription.
  void subscribe(WireId output_wire, OutputCallback callback);

  /// Everything delivered on an external output so far, in delivery order
  /// (stutter re-deliveries flagged).
  [[nodiscard]] std::vector<OutputRecord> output_records(
      WireId output_wire) const;

  // --- Partition-aware wiring (multi-process deployments) ------------------

  /// Sink for frames whose destination engine is not hosted by this
  /// process (see RuntimeConfig::local_engines). Set before start(); the
  /// net layer forwards them to the peer process hosting `dst`. Without a
  /// router, cross-partition frames are dropped and counted — the replay
  /// protocol recovers them once a router exists.
  using RemoteRouter =
      std::function<void(EngineId dst, const transport::Frame&)>;
  void set_remote_router(RemoteRouter router);

  /// Entry point for frames arriving from a peer process: dispatched
  /// exactly as a local frame would be. Frames naming non-local components
  /// are dropped (counted), never fatal — a confused peer must not crash
  /// this node.
  void deliver_from_peer(const transport::Frame& frame);

  [[nodiscard]] bool engine_is_local(EngineId id) const;
  /// Cross-partition frames dropped for lack of a route or local owner.
  [[nodiscard]] std::uint64_t remote_frames_dropped() const {
    return remote_frames_dropped_.load();
  }

  // --- Failure injection ---------------------------------------------------

  void crash_engine(EngineId engine);
  void recover_engine(EngineId engine);
  /// Takes the simulated physical links between two engines down or up
  /// (no-op for engine pairs without a configured link).
  void set_link_down(EngineId a, EngineId b, bool down);

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] MetricsSnapshot metrics(ComponentId component) const;
  [[nodiscard]] MetricsSnapshot total_metrics() const;
  /// Silence wavefront across every locally-placed component: VT
  /// frontiers, per-input-wire horizons and the wires blocking any held
  /// message. Crashed components appear with crashed=true and no detail.
  [[nodiscard]] StatusReport status() const;
  /// The telemetry registry every runner (and the gateway) records into.
  /// Lives as long as the runtime; snapshot with registry().samples().
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }
  /// State hash of a quiescent component (see ComponentRunner). Returns 0
  /// for components on a crashed engine.
  [[nodiscard]] std::uint64_t state_fingerprint(ComponentId component);
  /// Messages currently held in a component's output retention buffers.
  [[nodiscard]] std::size_t retained_messages(ComponentId component);
  [[nodiscard]] const log::ExternalMessageLog& external_log() const {
    return message_log_;
  }
  [[nodiscard]] log::DeterminismFaultLog& fault_log() { return fault_log_; }
  [[nodiscard]] checkpoint::ReplicaStore& replica() { return replica_; }

  // --- Elastic placement (live migration; src/placement) -------------------

  /// Everything a migration slice carries to re-create one external input
  /// at the adopting node: the log base below the shipped suffix, plus the
  /// suffix records themselves (appended to the local log, skipping seqs
  /// already held — re-adoptions and resumed rounds overlap harmlessly).
  struct AdoptedInput {
    WireId wire;
    std::uint64_t base_seq = 0;
    VirtualTime base_vt{-1};
    bool closed = false;
    std::vector<Message> records;
  };

  /// An output wire's position at eviction: the final silence the departing
  /// node may promise on the sealed wire (the adopter deterministically
  /// continues from exactly this point).
  struct SealedOutput {
    WireId wire;
    VirtualTime horizon{-1};
    std::uint64_t next_seq = 0;
  };

  struct ExternalInputState {
    bool known = false;  ///< an adapter exists locally
    std::uint64_t next_seq = 0;
    VirtualTime last_vt{-1};
    bool closed = false;
  };

  /// External input wires feeding one component (migration slices ship the
  /// log suffix per such wire).
  [[nodiscard]] std::vector<WireId> external_inputs_of(ComponentId c) const;
  [[nodiscard]] ExternalInputState external_input_state(WireId wire) const;
  [[nodiscard]] bool component_is_local(ComponentId c) const;
  /// Live owner of `component` (placement overrides applied; hot-path
  /// shared-lock read).
  [[nodiscard]] EngineId engine_of(ComponentId component) const;

  /// Single-component FULL checkpoint barrier (the migration prepare and
  /// seal points). False on timeout or when the component is not running.
  bool force_component_checkpoint(ComponentId c,
                                  std::chrono::milliseconds timeout);

  /// The component's restore plan from the local replica (durable-boot
  /// imports included); nullopt when the replica holds nothing.
  [[nodiscard]] std::optional<checkpoint::RestorePlan> export_component_plan(
      ComponentId c);

  /// Makes `c` live on local engine `onto`: seeds the external log with the
  /// shipped suffix, re-creates the boundary adapters, flips routing, and
  /// runs the engine's single-component recovery (restore + request
  /// replays + start). `plan` nullopt restores whatever the local replica
  /// holds (rollback / repair path).
  bool adopt_component(ComponentId c, EngineId onto,
                       const std::optional<checkpoint::RestorePlan>& plan,
                       const std::vector<AdoptedInput>& inputs,
                       std::string* error);

  /// Stops and unhosts a local component, drops its boundary adapters (the
  /// gateway redirects external arrivals from then on) and flips routing to
  /// `new_owner`. Returns the sealed output positions. Safe to call for a
  /// non-local component (routing-only flip, empty result).
  std::vector<SealedOutput> evict_component(ComponentId c, EngineId new_owner);

  /// Routing-only placement override (the bystander path: neither adopting
  /// nor evicting, just learning where a component lives now).
  void apply_placement(ComponentId c, EngineId engine);

  /// Trims the LOCAL sender's output retention on `wire` below `below_seq`
  /// — the remote consumer's durable-checkpoint cover, which no failover
  /// can ever replay-request again. No-op for external or non-local wires.
  void trim_retention_below(WireId wire, std::uint64_t below_seq);

  /// Records trimmed by trim_retention_below across all wires (monotone;
  /// the host surfaces it as tart_retention_trimmed_records_total).
  [[nodiscard]] std::uint64_t retention_trimmed() const {
    return retention_trimmed_.load(std::memory_order_relaxed);
  }

  // --- Durability (docs/RECOVERY.md; active only in durable mode) ----------

  /// External input wires whose consumer is local — the wires a durable
  /// checkpoint records coverage for.
  [[nodiscard]] std::vector<WireId> external_input_wires() const;

  /// Forces every live local component to take a FULL soft checkpoint and
  /// waits until the replica holds them all. Returns false on timeout (a
  /// crashed component is skipped, not waited for).
  bool force_component_checkpoints(std::chrono::milliseconds timeout);

  /// Checkpoint-gated compaction: drops log records covered per-wire by
  /// `covered` (consumer next_seq bounds) and deletes wholly-covered log
  /// segments. Call only after the covering checkpoint is durable.
  /// Returns records reclaimed from memory.
  std::uint64_t compact_below(const std::map<WireId, std::uint64_t>& covered);

  /// Bytes the segmented external log occupies on disk (0 when not in
  /// durable mode).
  [[nodiscard]] std::uint64_t log_bytes_on_disk() const;

  /// Suppresses external output callbacks (records are still kept): the
  /// replay driver hides catch-up re-deliveries from the outside world.
  void set_output_suppressed(bool suppressed) {
    outputs_suppressed_.store(suppressed);
  }
  [[nodiscard]] bool outputs_suppressed() const {
    return outputs_suppressed_.load();
  }

  /// What this incarnation restored from (zeroes outside durable mode).
  [[nodiscard]] const RecoveryInfo& recovery_info() const { return recovery_; }
  /// Null when durable mode is off.
  [[nodiscard]] durability::CheckpointManager* checkpoint_manager() {
    return ckpt_manager_.get();
  }
  /// Null when durable mode is off.
  [[nodiscard]] log::SegmentedStore* segment_store() {
    return segment_store_.get();
  }
  /// Flight recorder; nullptr when `config.trace.enabled` is false. The
  /// trace file (if configured) is written when the runtime stops.
  [[nodiscard]] trace::TraceRecorder* trace_recorder() {
    return tracer_.get();
  }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] Engine& engine(EngineId id) { return *engines_.at(id); }

  // --- FrameRouter ----------------------------------------------------------

  void to_receiver(WireId wire, transport::Frame frame) override;
  void to_sender(WireId wire, transport::Frame frame) override;

 private:
  struct InputAdapter {
    std::mutex mu;
    std::uint64_t next_seq = 0;
    VirtualTime last_vt = VirtualTime(-1);
    /// Greatest silence promise ever issued; future injections must land
    /// strictly after it (a promised-silent tick can never carry data).
    VirtualTime promised = VirtualTime(-1);
    /// A source's nature is established by first use: inject() marks it
    /// real-time (probes may promise silence through "now", since any
    /// future arrival is stamped later); inject_at() marks it scripted
    /// (virtual times are unrelated to real time, so probes may only
    /// promise through the last logged arrival). Probes before the first
    /// injection promise nothing beyond last_vt.
    enum class Source { kUnknown, kRealtime, kScripted };
    Source source = Source::kUnknown;
    bool closed = false;
  };

  struct OutputSink {
    mutable std::mutex mu;
    OutputCallback callback;
    std::vector<OutputRecord> records;
    VirtualTime last_vt = VirtualTime(-1);
  };

  struct LinkBridge {
    EngineId lo;
    EngineId hi;
    std::unique_ptr<transport::ReliableChannel> channel;
  };

  void dispatch_local(const transport::Frame& frame);
  void dispatch_to_receiver_local(WireId wire, const transport::Frame& frame);
  void dispatch_to_sender_local(WireId wire, const transport::Frame& frame);
  void handle_external_sender_frame(WireId wire,
                                    const transport::Frame& frame);
  void deliver_external_output(WireId wire, const transport::Frame& frame);
  [[nodiscard]] LinkBridge* bridge_between(EngineId a, EngineId b);
  /// Routes a frame that must travel from engine `src` toward engine `dst`,
  /// through the pair's link when one is configured.
  void route(EngineId src, EngineId dst, WireId wire, transport::Frame frame);
  [[nodiscard]] VirtualTime real_now() const;
  /// Records kIngestArrive (+ kIngestDurable when durable_ns >= 0) for one
  /// stamped-and-logged injection against the edge pseudo-component.
  void record_ingest(const Message& m, std::int64_t arrive_ns,
                     std::int64_t durable_ns);
  /// Pins the adapter/sink for a wire (nullptr when not locally owned);
  /// shared_ptr so a concurrent eviction cannot free it mid-call.
  [[nodiscard]] std::shared_ptr<InputAdapter> input_adapter(WireId wire) const;
  [[nodiscard]] std::shared_ptr<OutputSink> output_sink(WireId wire) const;
  [[nodiscard]] std::map<ComponentId, EngineId> placement_snapshot() const;

  Topology topology_;
  /// Live placement: migration rewrites entries mid-run. Reads on the
  /// routing hot path take the shared lock; only adopt/evict/apply mutate.
  mutable std::shared_mutex placement_mu_;
  std::map<ComponentId, EngineId> placement_;
  RuntimeConfig config_;

  RemoteRouter remote_router_;
  std::atomic<std::uint64_t> remote_frames_dropped_{0};
  std::atomic<std::uint64_t> retention_trimmed_{0};

  log::ExternalMessageLog message_log_;
  log::DeterminismFaultLog fault_log_;
  checkpoint::ReplicaStore replica_;
  std::unique_ptr<log::FileStableStore> message_store_;
  std::unique_ptr<log::FileStableStore> fault_store_;
  std::unique_ptr<log::FileStableStore> replica_store_;

  /// Durable mode (config.durability.enabled && log_dir set): the external
  /// log lives in rotated segments instead of one messages.log, and the
  /// manager writes checkpoint files + gates compaction on them.
  std::unique_ptr<log::SegmentedStore> segment_store_;
  std::unique_ptr<durability::CheckpointManager> ckpt_manager_;
  RecoveryInfo recovery_;
  std::atomic<bool> outputs_suppressed_{false};

  /// Owned here, not by the engines: a component's trace stream (and its
  /// sequence counter) must survive engine crash/recover for recovery
  /// traces to be prefix-comparable. Declared before engines_ so it
  /// outlives every runner holding a raw pointer to it.
  std::unique_ptr<trace::TraceRecorder> tracer_;

  /// Telemetry registry: like the tracer, owned here and declared before
  /// engines_ — runners hold handles into it, and a recovered runner
  /// re-attaches to the same cells (counts survive crash/recover).
  obs::Registry registry_;
  /// Live end-to-end latency (origin arrival -> output visibility), with
  /// (wire, seq) exemplars; registered in the ctor, recorded in
  /// deliver_external_output.
  obs::Histogram* e2e_hist_ = nullptr;

  std::map<EngineId, std::unique_ptr<Engine>> engines_;
  /// Guards the MAP STRUCTURE of inputs_/outputs_ (adoption inserts,
  /// eviction erases); the per-adapter mutexes still guard the values.
  /// Values are shared_ptr so in-flight calls outlive a concurrent erase.
  mutable std::shared_mutex io_mu_;
  std::map<WireId, std::shared_ptr<InputAdapter>> inputs_;
  std::map<WireId, std::shared_ptr<OutputSink>> outputs_;
  std::vector<std::unique_ptr<LinkBridge>> bridges_;

  std::chrono::steady_clock::time_point epoch_;
  bool started_ = false;
};

}  // namespace tart::core
