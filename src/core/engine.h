// Execution engine: the failure unit.
//
// "An execution engine is either a physical machine or a container such as
// a JVM within a machine" (§II.C). An engine hosts the runners of the
// components placed on it, dispatches incoming frames to them, runs the
// aggressive-silence push timer, and implements fail-stop semantics:
// crash() discards every runner (state, queues, retention) exactly as a
// machine loss would; recover() rebuilds them from the passive replica and
// triggers replay.
//
// Locking: the runner map is guarded by a plain mutex held only for
// lookups; dispatch pins the target runner with a shared_ptr and calls
// into it with NO engine lock held (frames routed onward from inside a
// runner may re-enter any engine — holding a lock across that is a
// lock-order cycle waiting to happen). crash() swaps the map out, joins
// the threads, and lets in-flight pins expire.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "checkpoint/replica.h"
#include "common/ids.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/router.h"
#include "core/runner.h"
#include "core/topology.h"
#include "log/fault_log.h"

namespace tart::core {

class Engine {
 public:
  /// `tracer` may be null (tracing disabled).
  Engine(EngineId id, const Topology& topology, const RuntimeConfig& config,
         FrameRouter& router, log::DeterminismFaultLog& fault_log,
         checkpoint::ReplicaStore& replica, obs::Registry& registry,
         trace::TraceRecorder* tracer);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a component placed on this engine (before start()).
  void add_component(ComponentId component);

  void start();
  void stop();

  /// Fail-stop: every hosted component loses its state, queues, and
  /// retention buffers. Frames arriving while crashed are dropped (the
  /// machine is gone).
  void crash();

  /// Failover: "the passive backup becomes active. The checkpoint is
  /// restored, and connections are made to sending engines ... the sending
  /// engine will be asked to replay messages" (§II.F.3).
  void recover();

  // --- Elastic placement (live migration; src/placement) -------------------

  /// Adds a component to a RUNNING engine: builds its runner, restores it
  /// from `plan` (nullopt = fresh), requests replays past the restored
  /// positions and starts the scheduler thread — the recover() protocol,
  /// scoped to one component. No-op (false) if the component is already
  /// hosted or the engine is crashed.
  bool adopt_component(ComponentId component,
                       const std::optional<checkpoint::RestorePlan>& plan);

  /// Removes a component from a RUNNING engine: stops its runner thread and
  /// unhosts it. Returns the sealed output positions (published horizon +
  /// next seq per wire) the departing node may promise as final silence, or
  /// nullopt when the component is not hosted.
  std::optional<std::vector<ComponentRunner::SilenceUpdate>> evict_component(
      ComponentId component);

  [[nodiscard]] bool crashed() const { return crashed_.load(); }
  [[nodiscard]] EngineId id() const { return id_; }

  // Frame dispatch (called by the Runtime's router).
  void deliver_to_receiver(WireId wire, const transport::Frame& frame);
  void deliver_to_sender(WireId wire, const transport::Frame& frame);

  [[nodiscard]] std::shared_ptr<ComponentRunner> runner(
      ComponentId component) const;
  [[nodiscard]] bool all_exhausted() const;
  [[nodiscard]] MetricsSnapshot metrics(ComponentId component) const;
  [[nodiscard]] std::vector<ComponentId> components() const;

 private:
  using RunnerMap = std::map<ComponentId, std::shared_ptr<ComponentRunner>>;

  [[nodiscard]] RunnerMap make_runners() const;
  /// Pins the runner hosting `component`; nullptr when crashed or unknown.
  [[nodiscard]] std::shared_ptr<ComponentRunner> pin(
      ComponentId component) const;
  [[nodiscard]] std::vector<std::shared_ptr<ComponentRunner>> pin_all() const;
  void aggressive_loop();

  const EngineId id_;
  const Topology& topology_;
  const RuntimeConfig& config_;
  FrameRouter& router_;
  log::DeterminismFaultLog& fault_log_;
  checkpoint::ReplicaStore& replica_;
  obs::Registry& registry_;
  trace::TraceRecorder* const tracer_;

  /// Guarded by map_mu_ since live migration mutates it mid-run.
  std::vector<ComponentId> placed_;
  mutable std::mutex map_mu_;  // guards runners_ + placed_; never held across calls
  RunnerMap runners_;
  std::atomic<bool> crashed_{false};
  std::atomic<bool> started_{false};

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  bool timer_stop_ = false;
  std::thread aggressive_thread_;
};

}  // namespace tart::core
