#include "core/topology.h"

#include <cassert>
#include <stdexcept>

namespace tart::core {

ComponentId Topology::add(
    std::string name, std::function<std::unique_ptr<Component>()> factory) {
  const ComponentId id(static_cast<std::uint32_t>(components_.size()));
  ComponentSpec spec;
  spec.id = id;
  spec.name = std::move(name);
  spec.factory = std::move(factory);
  spec.estimator_factory = [] {
    return std::make_unique<estimator::ConstantEstimator>(
        TickDuration::micros(1));
  };
  components_.push_back(std::move(spec));
  return id;
}

void Topology::set_estimator(
    ComponentId component,
    std::function<std::unique_ptr<estimator::ComputeEstimator>()> factory) {
  components_.at(component.value()).estimator_factory = std::move(factory);
}

WireId Topology::new_wire(WireSpec spec) {
  spec.id = WireId(static_cast<std::uint32_t>(wires_.size()));
  wires_.push_back(std::move(spec));
  return wires_.back().id;
}

WireId Topology::connect(ComponentId from, PortId out_port, ComponentId to,
                         PortId in_port) {
  WireSpec spec;
  spec.kind = WireKind::kData;
  spec.from = from;
  spec.from_port = out_port;
  spec.to = to;
  spec.to_port = in_port;
  return new_wire(spec);
}

WireId Topology::connect_call(ComponentId caller, PortId out_port,
                              ComponentId callee, PortId in_port) {
  WireSpec call;
  call.kind = WireKind::kCall;
  call.from = caller;
  call.from_port = out_port;
  call.to = callee;
  call.to_port = in_port;
  const WireId call_id = new_wire(call);

  WireSpec reply;
  reply.kind = WireKind::kReply;
  reply.from = callee;
  reply.from_port = PortId::invalid();
  reply.to = caller;
  reply.to_port = PortId::invalid();
  reply.paired = call_id;
  const WireId reply_id = new_wire(reply);

  wires_[call_id.value()].paired = reply_id;
  return call_id;
}

WireId Topology::timer(ComponentId component, PortId out_port,
                       PortId in_port) {
  return connect(component, out_port, component, in_port);
}

WireId Topology::external_input(ComponentId to, PortId in_port) {
  WireSpec spec;
  spec.kind = WireKind::kExternalInput;
  spec.to = to;
  spec.to_port = in_port;
  return new_wire(spec);
}

WireId Topology::external_output(ComponentId from, PortId out_port) {
  WireSpec spec;
  spec.kind = WireKind::kExternalOutput;
  spec.from = from;
  spec.from_port = out_port;
  return new_wire(spec);
}

const ComponentSpec& Topology::component(ComponentId id) const {
  return components_.at(id.value());
}

const WireSpec& Topology::wire(WireId id) const {
  return wires_.at(id.value());
}

std::vector<WireId> Topology::inputs_of(ComponentId id) const {
  std::vector<WireId> out;
  for (const auto& w : wires_) {
    if (w.to != id) continue;
    if (w.kind == WireKind::kReply) continue;  // replies bypass the inbox
    out.push_back(w.id);
  }
  return out;
}

std::vector<WireId> Topology::outputs_of(ComponentId id) const {
  std::vector<WireId> out;
  for (const auto& w : wires_)
    if (w.from == id) out.push_back(w.id);
  return out;
}

std::vector<WireId> Topology::wires_from_port(ComponentId id,
                                              PortId out_port) const {
  std::vector<WireId> out;
  for (const auto& w : wires_) {
    if (w.from != id || w.from_port != out_port) continue;
    if (w.kind == WireKind::kReply) continue;
    out.push_back(w.id);
  }
  return out;
}

}  // namespace tart::core
