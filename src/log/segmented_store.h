// Rotated-segment stable storage: the compactable external log.
//
// A FileStableStore grows one file forever, so the only way to reclaim
// space would be to rewrite it in place — unsafe under the log-before-ack
// contract. SegmentedStore keeps the same framing and group-commit
// semantics but rotates to a fresh file once the active segment exceeds
// `segment_bytes`. Sealed segments are immutable; checkpoint-gated
// compaction (src/durability) deletes a sealed segment only when every
// record in it lies below the newest durable checkpoint's covered offset —
// the gating invariant documented in docs/RECOVERY.md. Records carry
// global indices (append order across all segments); a segment file is
// named `<base>.<first_index>.seg` so a scan can reconstruct the index of
// every surviving record after any number of deletions.
//
// A legacy single-file `<base>.log` (written by FileStableStore before the
// durability subsystem existed) is adopted on open by renaming it to the
// index-0 segment; cold restarts across the format change keep working.
//
// Thread-safe: appends (gateway group commit), truncation (checkpoint
// manager) and size queries (gauge sweeps) race by design.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "log/stable_store.h"

namespace tart::log {

class SegmentedStore final : public StableSink {
 public:
  struct Options {
    /// Seal the active segment and rotate once it reaches this many bytes.
    std::uint64_t segment_bytes = 4ull << 20;
  };

  /// Opens (creating if needed) the segment set `<dir>/<base>.*.seg`. The
  /// highest-index segment becomes the active one; if its tail is torn
  /// (crash mid-write) the file is truncated back to the intact prefix so
  /// later appends stay scannable.
  SegmentedStore(std::string dir, std::string base, Options options);
  SegmentedStore(std::string dir, std::string base);

  bool append(const std::vector<std::byte>& record) override;
  bool append_batch(std::span<const std::vector<std::byte>> records) override;
  [[nodiscard]] std::uint64_t records_written() const override;
  [[nodiscard]] std::uint64_t flushes() const override;

  /// Every intact record across all surviving segments, in global append
  /// order. The first returned record has index first_retained_index().
  [[nodiscard]] std::vector<std::vector<std::byte>> scan_all() const;

  /// Deletes every sealed segment whose records all have index < `index`
  /// (the active segment is never deleted). Returns records reclaimed.
  std::uint64_t truncate_below(std::uint64_t index);

  /// Global index of the earliest record still on disk.
  [[nodiscard]] std::uint64_t first_retained_index() const;
  /// Global index the next appended record will get.
  [[nodiscard]] std::uint64_t next_index() const;
  [[nodiscard]] std::uint64_t segment_count() const;
  [[nodiscard]] std::uint64_t bytes_on_disk() const;
  [[nodiscard]] std::uint64_t segments_deleted() const;
  [[nodiscard]] std::uint64_t records_reclaimed() const;

 private:
  struct Segment {
    std::uint64_t first_index = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::string path;
  };

  [[nodiscard]] std::string segment_path(std::uint64_t first_index) const;
  /// Seals the active segment and opens a fresh one. Requires mu_.
  void rotate_locked();
  void open_active_locked(std::uint64_t first_index);

  const std::string dir_;
  const std::string base_;
  const Options options_;

  mutable std::mutex mu_;
  std::vector<Segment> sealed_;
  Segment active_meta_;
  std::unique_ptr<FileStableStore> active_;

  std::uint64_t written_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t segments_deleted_ = 0;
  std::uint64_t records_reclaimed_ = 0;
};

}  // namespace tart::log
