#include "log/message_log.h"

#include <algorithm>
#include <cassert>

namespace tart::log {

void ExternalMessageLog::append(const Message& message) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& list = entries_[message.wire];
  assert(list.empty() || (message.seq == list.back().seq + 1 &&
                          message.vt >= list.back().vt));
  list.push_back(message);
  if (store_ != nullptr) {
    serde::Writer w;
    message.encode(w);
    store_->append(w.bytes());
  }
}

bool ExternalMessageLog::append_batch(const std::vector<Message>& messages) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool durable = true;
  if (store_ != nullptr && !messages.empty()) {
    std::vector<std::vector<std::byte>> records;
    records.reserve(messages.size());
    for (const Message& m : messages) {
      serde::Writer w;
      m.encode(w);
      records.push_back(w.take());
    }
    durable = store_->append_batch(records);
  }
  for (const Message& m : messages) {
    auto& list = entries_[m.wire];
    assert(list.empty() ||
           (m.seq == list.back().seq + 1 && m.vt >= list.back().vt));
    list.push_back(m);
  }
  return durable;
}

void ExternalMessageLog::attach_store(FileStableStore* store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = store;
}

void ExternalMessageLog::load_from(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& record : FileStableStore::scan(path)) {
    serde::Reader r(record);
    const Message m = Message::decode(r);
    entries_[m.wire].push_back(m);
  }
  // Batched appends from one writer may interleave with single appends
  // from another across wires; per wire the seq order is authoritative.
  for (auto& [wire, list] : entries_)
    std::sort(list.begin(), list.end(),
              [](const Message& a, const Message& b) { return a.seq < b.seq; });
}

std::vector<Message> ExternalMessageLog::replay_after(
    WireId wire, VirtualTime after) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out;
  const auto it = entries_.find(wire);
  if (it == entries_.end()) return out;
  for (const Message& m : it->second)
    if (m.vt > after) out.push_back(m);
  return out;
}

std::vector<Message> ExternalMessageLog::replay_from_seq(
    WireId wire, std::uint64_t from_seq) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out;
  const auto it = entries_.find(wire);
  if (it == entries_.end()) return out;
  for (const Message& m : it->second)
    if (m.seq >= from_seq) out.push_back(m);
  return out;
}

std::uint64_t ExternalMessageLog::size(WireId wire) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(wire);
  return it == entries_.end() ? 0 : it->second.size();
}

std::uint64_t ExternalMessageLog::total_size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& [w, list] : entries_) n += list.size();
  return n;
}

VirtualTime ExternalMessageLog::last_vt(WireId wire) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(wire);
  if (it == entries_.end() || it->second.empty()) return VirtualTime(-1);
  return it->second.back().vt;
}

}  // namespace tart::log
