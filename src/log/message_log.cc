#include "log/message_log.h"

#include <algorithm>
#include <cassert>

namespace tart::log {

void ExternalMessageLog::append_locked(const Message& message) {
  auto& list = entries_[message.wire];
  if (list.empty()) {
    // First retained entry on this wire must continue from the base (when
    // a compaction base exists; otherwise any starting seq is accepted).
    const auto base = base_seq_.find(message.wire);
    assert(base == base_seq_.end() || message.seq == base->second);
    (void)base;
  } else {
    assert(message.seq == list.back().seq + 1 &&
           message.vt >= list.back().vt);
  }
  list.push_back(message);
  order_.emplace_back(message.wire, message.seq);
}

void ExternalMessageLog::append(const Message& message) {
  const std::lock_guard<std::mutex> lock(mutex_);
  append_locked(message);
  if (store_ != nullptr) {
    serde::Writer w;
    message.encode(w);
    store_->append(w.bytes());
  }
}

bool ExternalMessageLog::append_batch(const std::vector<Message>& messages) {
  const std::lock_guard<std::mutex> lock(mutex_);
  bool durable = true;
  if (store_ != nullptr && !messages.empty()) {
    std::vector<std::vector<std::byte>> records;
    records.reserve(messages.size());
    for (const Message& m : messages) {
      serde::Writer w;
      m.encode(w);
      records.push_back(w.take());
    }
    durable = store_->append_batch(records);
  }
  for (const Message& m : messages) append_locked(m);
  return durable;
}

void ExternalMessageLog::attach_store(StableSink* store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = store;
}

void ExternalMessageLog::load_from(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& record : FileStableStore::scan(path)) {
    serde::Reader r(record);
    const Message m = Message::decode(r);
    entries_[m.wire].push_back(m);
    order_.emplace_back(m.wire, m.seq);
  }
  // Batched appends from one writer may interleave with single appends
  // from another across wires; per wire the seq order is authoritative.
  for (auto& [wire, list] : entries_)
    std::sort(list.begin(), list.end(),
              [](const Message& a, const Message& b) { return a.seq < b.seq; });
}

void ExternalMessageLog::load_records(
    const std::vector<std::vector<std::byte>>& records,
    std::uint64_t first_index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  order_base_ = first_index;
  for (const auto& record : records) {
    serde::Reader r(record);
    const Message m = Message::decode(r);
    // The order index must mirror the store record-for-record — including
    // covered records whose segment has not been reclaimed yet — or a
    // later covered_record_index would point at the wrong segment.
    order_.emplace_back(m.wire, m.seq);
    const auto base = base_seq_.find(m.wire);
    if (base != base_seq_.end() && m.seq < base->second)
      continue;  // covered by the restored checkpoint
    entries_[m.wire].push_back(m);
  }
  for (auto& [wire, list] : entries_)
    std::sort(list.begin(), list.end(),
              [](const Message& a, const Message& b) { return a.seq < b.seq; });
}

void ExternalMessageLog::set_base(WireId wire, std::uint64_t next_seq,
                                  VirtualTime last_vt) {
  const std::lock_guard<std::mutex> lock(mutex_);
  base_seq_[wire] = next_seq;
  base_vt_[wire] = last_vt;
}

std::vector<Message> ExternalMessageLog::replay_after(
    WireId wire, VirtualTime after) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out;
  const auto it = entries_.find(wire);
  if (it == entries_.end()) return out;
  for (const Message& m : it->second)
    if (m.vt > after) out.push_back(m);
  return out;
}

std::vector<Message> ExternalMessageLog::replay_from_seq(
    WireId wire, std::uint64_t from_seq) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out;
  const auto it = entries_.find(wire);
  if (it == entries_.end()) return out;
  for (const Message& m : it->second)
    if (m.seq >= from_seq) out.push_back(m);
  return out;
}

std::uint64_t ExternalMessageLog::size(WireId wire) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(wire);
  return it == entries_.end() ? 0 : it->second.size();
}

std::uint64_t ExternalMessageLog::total_size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& [w, list] : entries_) n += list.size();
  return n;
}

VirtualTime ExternalMessageLog::last_vt(WireId wire) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(wire);
  if (it != entries_.end() && !it->second.empty()) return it->second.back().vt;
  const auto base = base_vt_.find(wire);
  return base == base_vt_.end() ? VirtualTime(-1) : base->second;
}

std::uint64_t ExternalMessageLog::next_seq(WireId wire) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(wire);
  if (it != entries_.end() && !it->second.empty())
    return it->second.back().seq + 1;
  const auto base = base_seq_.find(wire);
  return base == base_seq_.end() ? 0 : base->second;
}

VirtualTime ExternalMessageLog::vt_below(WireId wire,
                                         std::uint64_t seq) const {
  if (seq == 0) return VirtualTime(-1);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(wire);
  if (it != entries_.end()) {
    const auto& list = it->second;
    const auto pos = std::lower_bound(
        list.begin(), list.end(), seq - 1,
        [](const Message& m, std::uint64_t s) { return m.seq < s; });
    if (pos != list.end() && pos->seq == seq - 1) return pos->vt;
  }
  const auto base = base_vt_.find(wire);
  return base == base_vt_.end() ? VirtualTime(-1) : base->second;
}

std::uint64_t ExternalMessageLog::covered_record_index(
    const std::map<WireId, std::uint64_t>& covered) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t index = order_base_;
  for (const auto& [wire, seq] : order_) {
    const auto bound = covered.find(wire);
    if (bound == covered.end() || seq >= bound->second) break;
    ++index;
  }
  return index;
}

std::uint64_t ExternalMessageLog::truncate_covered(
    const std::map<WireId, std::uint64_t>& covered) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<WireId, std::uint64_t> drop;  // wire -> entries to erase
  while (!order_.empty()) {
    const auto& [wire, seq] = order_.front();
    const auto bound = covered.find(wire);
    if (bound == covered.end() || seq >= bound->second) break;
    auto& base = base_seq_[wire];
    if (seq >= base) {
      base = seq + 1;
      ++drop[wire];
    }
    order_.pop_front();
    ++order_base_;
    ++truncated_;
  }
  for (const auto& [wire, count] : drop) {
    auto& list = entries_[wire];
    const std::size_t n = std::min<std::size_t>(count, list.size());
    if (n > 0) {
      base_vt_[wire] = max(base_vt_.try_emplace(wire, VirtualTime(-1))
                               .first->second,
                           list[n - 1].vt);
      list.erase(list.begin(), list.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }
  return order_base_;
}

std::uint64_t ExternalMessageLog::truncated_messages() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return truncated_;
}

}  // namespace tart::log
