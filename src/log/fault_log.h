// Determinism-fault log.
//
// Recalibrating an estimator reacts to *measured* (non-deterministic)
// execution times, so it would break replay unless recorded: "we must log
// these events synchronously ... During replay, the component must be
// careful to use the old estimator until reaching [the logged virtual
// time], and only then using the new estimator" (§II.G.4).
//
// Each record binds: the component, the new estimator coefficients, the
// virtual time at which they take effect, and a version number. Appends
// are synchronous (stable before the recalibration is applied).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "log/stable_store.h"
#include "serde/archive.h"

namespace tart::log {

struct FaultRecord {
  ComponentId component;
  std::uint64_t version = 0;        ///< estimator version this installs
  VirtualTime effective_vt;         ///< first vt computed under the new betas
  std::vector<double> coefficients; ///< [beta0, beta1, ...]

  void encode(serde::Writer& w) const;
  [[nodiscard]] static FaultRecord decode(serde::Reader& r);
};

class DeterminismFaultLog {
 public:
  /// Synchronously appends a record. Versions per component must be
  /// contiguous and effective_vt nondecreasing.
  void append(const FaultRecord& record);

  /// All records for a component with version > `after_version`, in order —
  /// what replay must re-apply on top of a checkpoint's estimator version.
  [[nodiscard]] std::vector<FaultRecord> records_after(
      ComponentId component, std::uint64_t after_version) const;

  /// Latest version recorded for a component (0 when none).
  [[nodiscard]] std::uint64_t latest_version(ComponentId component) const;

  [[nodiscard]] std::uint64_t total_records() const;

  /// Write-through persistence and recovery (see ExternalMessageLog).
  void attach_store(FileStableStore* store);
  void load_from(const std::string& path);

 private:
  mutable std::mutex mutex_;
  std::map<ComponentId, std::vector<FaultRecord>> records_;
  FileStableStore* store_ = nullptr;
};

}  // namespace tart::log
