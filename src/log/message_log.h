// Stable log of external input messages.
//
// "When a message arrives at the system from an external source, it is
// (a) given a timestamp, and then is (b) logged ... Because the message is
// logged, it is safe to use the actual real time as the virtual time of
// this message. Only external messages are logged" (§II.E).
//
// The log is the only durable input source in the system: after any
// failure, the entire execution is a deterministic function of this log.
// Entries are keyed by the external wire they enter on; replay reads a
// contiguous range by virtual time or sequence.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "log/stable_store.h"
#include "wire/message.h"

namespace tart::log {

class ExternalMessageLog {
 public:
  /// Appends an external arrival. Synchronous — returns once durable (in
  /// this reproduction, once in the in-memory stable store). Entries per
  /// wire must arrive with increasing seq and nondecreasing vt.
  void append(const Message& message);

  /// Appends N arrivals with ONE stable-store flush (group commit): the
  /// attached store's append_batch frames every record and fsyncs once.
  /// Per-wire ordering rules are those of append(); messages for the same
  /// wire must appear in seq order within the batch. Returns false when a
  /// store is attached and its batched write failed — the messages are
  /// still appended in memory (the system keeps running) but callers that
  /// promised durability (log-before-ack) must surface the failure.
  bool append_batch(const std::vector<Message>& messages);

  /// All logged messages on `wire` with vt strictly greater than `after`,
  /// in order — the replay feed after a failover.
  [[nodiscard]] std::vector<Message> replay_after(WireId wire,
                                                  VirtualTime after) const;

  /// All logged messages on `wire` with seq >= from_seq.
  [[nodiscard]] std::vector<Message> replay_from_seq(
      WireId wire, std::uint64_t from_seq) const;

  [[nodiscard]] std::uint64_t size(WireId wire) const;
  [[nodiscard]] std::uint64_t total_size() const;

  /// Highest vt logged on a wire (or -1 when empty) — external sources are
  /// silent through this when closed.
  [[nodiscard]] VirtualTime last_vt(WireId wire) const;

  /// Write-through persistence: every subsequent append is also framed
  /// into `store` before the call returns (stable-storage durability).
  void attach_store(FileStableStore* store);

  /// Reloads a log persisted by attach_store. Call on an empty log before
  /// re-attaching a store.
  void load_from(const std::string& path);

 private:
  mutable std::mutex mutex_;
  std::map<WireId, std::vector<Message>> entries_;
  FileStableStore* store_ = nullptr;
};

}  // namespace tart::log
