// Stable log of external input messages.
//
// "When a message arrives at the system from an external source, it is
// (a) given a timestamp, and then is (b) logged ... Because the message is
// logged, it is safe to use the actual real time as the virtual time of
// this message. Only external messages are logged" (§II.E).
//
// The log is the only durable input source in the system: after any
// failure, the entire execution is a deterministic function of this log.
// Entries are keyed by the external wire they enter on; replay reads a
// contiguous range by virtual time or sequence.
//
// Compaction support (src/durability): once a durable checkpoint covers a
// prefix of the log, that prefix never needs replaying again. Each wire
// then carries a *base* — the first sequence number still retained and the
// virtual time of the last message below it — so position accounting
// (next_seq, last_vt) survives truncation. The log also tracks the global
// append order of records (mirroring the backing store's record indices),
// which lets the checkpoint manager translate per-wire covered sequence
// numbers into a store record index safe to truncate below.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "log/stable_store.h"
#include "wire/message.h"

namespace tart::log {

class ExternalMessageLog {
 public:
  /// Appends an external arrival. Synchronous — returns once durable (in
  /// this reproduction, once in the in-memory stable store). Entries per
  /// wire must arrive with increasing seq and nondecreasing vt.
  void append(const Message& message);

  /// Appends N arrivals with ONE stable-store flush (group commit): the
  /// attached store's append_batch frames every record and fsyncs once.
  /// Per-wire ordering rules are those of append(); messages for the same
  /// wire must appear in seq order within the batch. Returns false when a
  /// store is attached and its batched write failed — the messages are
  /// still appended in memory (the system keeps running) but callers that
  /// promised durability (log-before-ack) must surface the failure.
  bool append_batch(const std::vector<Message>& messages);

  /// All logged messages on `wire` with vt strictly greater than `after`,
  /// in order — the replay feed after a failover.
  [[nodiscard]] std::vector<Message> replay_after(WireId wire,
                                                  VirtualTime after) const;

  /// All logged messages on `wire` with seq >= from_seq.
  [[nodiscard]] std::vector<Message> replay_from_seq(
      WireId wire, std::uint64_t from_seq) const;

  [[nodiscard]] std::uint64_t size(WireId wire) const;
  [[nodiscard]] std::uint64_t total_size() const;

  /// Highest vt logged on a wire — external sources are silent through
  /// this when closed. Falls back to the wire's base vt (the last
  /// truncated message's vt) when no entry survives, and -1 when the wire
  /// never logged anything.
  [[nodiscard]] VirtualTime last_vt(WireId wire) const;

  /// Sequence number the next arrival on `wire` will get: one past the
  /// last retained entry, or the wire's base when nothing is retained.
  [[nodiscard]] std::uint64_t next_seq(WireId wire) const;

  /// VT of the message just below `seq` on `wire` (-1 when seq == 0);
  /// answers from retained entries or the base.
  [[nodiscard]] VirtualTime vt_below(WireId wire, std::uint64_t seq) const;

  // --- Compaction (checkpoint-gated; see src/durability) -------------------

  /// Restores a wire's position accounting from a durable checkpoint:
  /// messages with seq < next_seq are covered (loads skip them) and the
  /// wire's silence floor is `last_vt`. Call before load_records.
  void set_base(WireId wire, std::uint64_t next_seq, VirtualTime last_vt);

  /// Largest global record index N such that every record with index < N
  /// is covered: its wire appears in `covered` with a sequence bound
  /// strictly above the record's seq. Records at index >= N stay.
  [[nodiscard]] std::uint64_t covered_record_index(
      const std::map<WireId, std::uint64_t>& covered) const;

  /// Drops every covered record in the global prefix (advancing per-wire
  /// bases) and returns the new first retained record index — the bound to
  /// hand to SegmentedStore::truncate_below. Never drops a record above
  /// the covered bound: the gating invariant.
  std::uint64_t truncate_covered(
      const std::map<WireId, std::uint64_t>& covered);

  [[nodiscard]] std::uint64_t truncated_messages() const;

  /// Write-through persistence: every subsequent append is also framed
  /// into `store` before the call returns (stable-storage durability).
  void attach_store(StableSink* store);

  /// Reloads a log persisted by attach_store. Call on an empty log before
  /// re-attaching a store.
  void load_from(const std::string& path);

  /// Reloads from pre-scanned store records whose first record has global
  /// index `first_index` (SegmentedStore::scan_all after compaction).
  /// Records below a wire's base (covered by the restored checkpoint but
  /// not yet reclaimed from disk) are index-tracked but not retained.
  void load_records(const std::vector<std::vector<std::byte>>& records,
                    std::uint64_t first_index);

 private:
  void append_locked(const Message& message);

  mutable std::mutex mutex_;
  std::map<WireId, std::vector<Message>> entries_;
  std::map<WireId, std::uint64_t> base_seq_;
  std::map<WireId, VirtualTime> base_vt_;
  /// (wire, seq) of every record still backed by the store, in global
  /// append order; front has index order_base_.
  std::deque<std::pair<WireId, std::uint64_t>> order_;
  std::uint64_t order_base_ = 0;
  std::uint64_t truncated_ = 0;
  StableSink* store_ = nullptr;
};

}  // namespace tart::log
