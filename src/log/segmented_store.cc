#include "log/segmented_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>

#include "common/logging.h"

namespace tart::log {

namespace {

/// On-disk frame overhead per record (magic + size + fingerprint).
constexpr std::uint64_t kFrameHeaderBytes = 16;

std::uint64_t framed_size(std::span<const std::vector<std::byte>> records) {
  std::uint64_t n = 0;
  for (const auto& r : records) n += kFrameHeaderBytes + r.size();
  return n;
}

}  // namespace

SegmentedStore::SegmentedStore(std::string dir, std::string base)
    : SegmentedStore(std::move(dir), std::move(base), Options()) {}

SegmentedStore::SegmentedStore(std::string dir, std::string base,
                               Options options)
    : dir_(std::move(dir)), base_(std::move(base)), options_(options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);

  // Adopt a legacy single-file log as the index-0 segment.
  const std::string legacy = dir_ + "/" + base_ + ".log";
  if (fs::exists(legacy, ec)) {
    bool have_segments = false;
    const std::string prefix = base_ + ".";
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0 && name.size() > 4 &&
          name.compare(name.size() - 4, 4, ".seg") == 0) {
        have_segments = true;
        break;
      }
    }
    if (!have_segments) {
      std::rename(legacy.c_str(), segment_path(0).c_str());
    }
  }

  // Discover surviving segments, sorted by first index.
  std::vector<std::uint64_t> firsts;
  const std::string prefix = base_ + ".";
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() + 4 ||
        name.compare(name.size() - 4, 4, ".seg") != 0)
      continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    firsts.push_back(std::stoull(digits));
  }
  std::sort(firsts.begin(), firsts.end());

  const std::lock_guard<std::mutex> lk(mu_);
  for (const std::uint64_t first : firsts) {
    Segment seg;
    seg.first_index = first;
    seg.path = segment_path(first);
    std::uint64_t intact = 0;
    seg.records = FileStableStore::scan(seg.path, &intact).size();
    seg.bytes = intact;
    sealed_.push_back(seg);
  }

  if (sealed_.empty()) {
    open_active_locked(0);
    return;
  }
  // The highest segment is the writable one. A torn tail (crash mid-write)
  // is cut off so frames appended by this incarnation remain reachable by
  // scan (which stops at the first bad frame).
  active_meta_ = sealed_.back();
  sealed_.pop_back();
  struct stat st{};
  if (::stat(active_meta_.path.c_str(), &st) == 0 &&
      static_cast<std::uint64_t>(st.st_size) != active_meta_.bytes) {
    TART_ERROR << "segmented store: truncating torn tail of "
               << active_meta_.path << " (" << st.st_size << " -> "
               << active_meta_.bytes << " bytes)";
    if (::truncate(active_meta_.path.c_str(), static_cast<off_t>(
                       active_meta_.bytes)) != 0) {
      TART_ERROR << "segmented store: truncate failed: " << errno;
    }
  }
  active_ = std::make_unique<FileStableStore>(active_meta_.path);
}

std::string SegmentedStore::segment_path(std::uint64_t first_index) const {
  char digits[24];
  std::snprintf(digits, sizeof(digits), "%020llu",
                static_cast<unsigned long long>(first_index));
  return dir_ + "/" + base_ + "." + digits + ".seg";
}

void SegmentedStore::open_active_locked(std::uint64_t first_index) {
  active_meta_ = Segment{};
  active_meta_.first_index = first_index;
  active_meta_.path = segment_path(first_index);
  active_ = std::make_unique<FileStableStore>(active_meta_.path);
}

void SegmentedStore::rotate_locked() {
  active_.reset();  // closes the fd; the segment is now sealed
  const std::uint64_t next = active_meta_.first_index + active_meta_.records;
  sealed_.push_back(active_meta_);
  open_active_locked(next);
}

bool SegmentedStore::append(const std::vector<std::byte>& record) {
  return append_batch({&record, 1});
}

bool SegmentedStore::append_batch(
    std::span<const std::vector<std::byte>> records) {
  if (records.empty()) return true;
  const std::lock_guard<std::mutex> lk(mu_);
  // Rotation happens between batches only: one batch = one durability
  // point = one segment, so a torn batch tears inside a single file.
  if (active_meta_.records > 0 && active_meta_.bytes >= options_.segment_bytes)
    rotate_locked();
  if (!active_->append_batch(records)) return false;
  active_meta_.records += records.size();
  active_meta_.bytes += framed_size(records);
  written_ += records.size();
  ++flushes_;
  return true;
}

std::uint64_t SegmentedStore::records_written() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return written_;
}

std::uint64_t SegmentedStore::flushes() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return flushes_;
}

std::vector<std::vector<std::byte>> SegmentedStore::scan_all() const {
  std::vector<std::string> paths;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    paths.reserve(sealed_.size() + 1);
    for (const Segment& seg : sealed_) paths.push_back(seg.path);
    paths.push_back(active_meta_.path);
  }
  std::vector<std::vector<std::byte>> out;
  for (const std::string& path : paths) {
    auto records = FileStableStore::scan(path);
    out.insert(out.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  return out;
}

std::uint64_t SegmentedStore::truncate_below(std::uint64_t index) {
  const std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t reclaimed = 0;
  auto it = sealed_.begin();
  while (it != sealed_.end() && it->first_index + it->records <= index) {
    if (::unlink(it->path.c_str()) != 0 && errno != ENOENT) {
      TART_ERROR << "segmented store: unlink " << it->path
                 << " failed: " << errno;
      break;  // keep the segment; retry at the next checkpoint
    }
    reclaimed += it->records;
    ++segments_deleted_;
    it = sealed_.erase(it);
  }
  records_reclaimed_ += reclaimed;
  return reclaimed;
}

std::uint64_t SegmentedStore::first_retained_index() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return sealed_.empty() ? active_meta_.first_index
                         : sealed_.front().first_index;
}

std::uint64_t SegmentedStore::next_index() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return active_meta_.first_index + active_meta_.records;
}

std::uint64_t SegmentedStore::segment_count() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return sealed_.size() + 1;
}

std::uint64_t SegmentedStore::bytes_on_disk() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = active_meta_.bytes;
  for (const Segment& seg : sealed_) n += seg.bytes;
  return n;
}

std::uint64_t SegmentedStore::segments_deleted() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return segments_deleted_;
}

std::uint64_t SegmentedStore::records_reclaimed() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return records_reclaimed_;
}

}  // namespace tart::log
