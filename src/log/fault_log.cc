#include "log/fault_log.h"

#include <cassert>

namespace tart::log {

void FaultRecord::encode(serde::Writer& w) const {
  w.write_u32(component.value());
  w.write_varint(version);
  w.write_vt(effective_vt);
  w.write_varint(coefficients.size());
  for (const double c : coefficients) w.write_double(c);
}

FaultRecord FaultRecord::decode(serde::Reader& r) {
  FaultRecord rec;
  rec.component = ComponentId(r.read_u32());
  rec.version = r.read_varint();
  rec.effective_vt = r.read_vt();
  const auto n = r.read_varint();
  rec.coefficients.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    rec.coefficients.push_back(r.read_double());
  return rec;
}

void DeterminismFaultLog::append(const FaultRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& list = records_[record.component];
  assert(list.empty() || (record.version == list.back().version + 1 &&
                          record.effective_vt >= list.back().effective_vt));
  list.push_back(record);
  if (store_ != nullptr) {
    serde::Writer w;
    record.encode(w);
    store_->append(w.bytes());
  }
}

void DeterminismFaultLog::attach_store(FileStableStore* store) {
  const std::lock_guard<std::mutex> lock(mutex_);
  store_ = store;
}

void DeterminismFaultLog::load_from(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& record : FileStableStore::scan(path)) {
    serde::Reader r(record);
    const FaultRecord rec = FaultRecord::decode(r);
    records_[rec.component].push_back(rec);
  }
}

std::vector<FaultRecord> DeterminismFaultLog::records_after(
    ComponentId component, std::uint64_t after_version) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultRecord> out;
  const auto it = records_.find(component);
  if (it == records_.end()) return out;
  for (const FaultRecord& r : it->second)
    if (r.version > after_version) out.push_back(r);
  return out;
}

std::uint64_t DeterminismFaultLog::latest_version(
    ComponentId component) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(component);
  if (it == records_.end() || it->second.empty()) return 0;
  return it->second.back().version;
}

std::uint64_t DeterminismFaultLog::total_records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& [c, list] : records_) n += list.size();
  return n;
}

}  // namespace tart::log
