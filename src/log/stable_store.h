// Append-only file-backed stable storage.
//
// The paper gives two durability options for external input (§II.C/§II.E):
// a passive replica on another machine (ReplicaStore / in-memory logs) or
// "a stable storage device for holding checkpoints". This is the stable
// storage device: length-and-checksum framed records appended to a file,
// synced on every append, and scanned back on recovery. A torn final
// record (crash mid-write) is detected by the checksum and dropped —
// everything before it is intact.
//
// Durability granularity is the *flush*, not the record: append() writes
// and fsyncs one record; append_batch() frames N records into one write
// and one fsync — the group-commit primitive the HTTP ingress gateway
// uses so durability does not cost one fsync per request. A crash during
// a batched write tears at a record boundary exactly like a single
// append: scan() recovers the intact prefix of the batch.
//
// ExternalMessageLog and DeterminismFaultLog can attach a store for
// write-through persistence and be reloaded from one after a process
// restart.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tart::log {

/// Anything a log can write through to for durability. FileStableStore is
/// the single-file implementation; SegmentedStore (segmented_store.h)
/// rotates across files so checkpoint-gated compaction can reclaim whole
/// prefixes by deleting sealed segments.
class StableSink {
 public:
  virtual ~StableSink() = default;
  virtual bool append(const std::vector<std::byte>& record) = 0;
  virtual bool append_batch(
      std::span<const std::vector<std::byte>> records) = 0;
  [[nodiscard]] virtual std::uint64_t records_written() const = 0;
  [[nodiscard]] virtual std::uint64_t flushes() const = 0;
};

class FileStableStore final : public StableSink {
 public:
  /// Opens (creating if absent) the store for appending.
  explicit FileStableStore(std::string path);
  ~FileStableStore();

  FileStableStore(const FileStableStore&) = delete;
  FileStableStore& operator=(const FileStableStore&) = delete;

  /// Appends one record durably (framed + checksummed + fsynced). Returns
  /// false on I/O failure.
  bool append(const std::vector<std::byte>& record) override;

  /// Appends N records with ONE write and ONE fsync: the records become
  /// durable together, for the cost of a single flush. Returns false on
  /// I/O failure (no record of the batch should then be trusted durable,
  /// though an intact prefix may still survive a scan). An empty batch is
  /// a no-op that succeeds without flushing.
  bool append_batch(std::span<const std::vector<std::byte>> records) override;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t records_written() const override {
    return written_.load(std::memory_order_relaxed);
  }
  /// Durability flushes issued (fsync calls): one per append(), one per
  /// non-empty append_batch(). records_written / flushes is the achieved
  /// group-commit factor.
  [[nodiscard]] std::uint64_t flushes() const override {
    return flushes_.load(std::memory_order_relaxed);
  }

  /// Reads every intact record from a store file, stopping at the first
  /// torn or corrupted frame. Missing file yields an empty list. When
  /// `intact_bytes` is non-null it receives the byte length of the intact
  /// prefix, so a writer reopening the file can truncate a torn tail
  /// before appending past it.
  [[nodiscard]] static std::vector<std::vector<std::byte>> scan(
      const std::string& path, std::uint64_t* intact_bytes = nullptr);

 private:
  std::string path_;
  int fd_ = -1;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> flushes_{0};
};

}  // namespace tart::log
