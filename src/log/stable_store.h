// Append-only file-backed stable storage.
//
// The paper gives two durability options for external input (§II.C/§II.E):
// a passive replica on another machine (ReplicaStore / in-memory logs) or
// "a stable storage device for holding checkpoints". This is the stable
// storage device: length-and-checksum framed records appended to a file,
// flushed on every append, and scanned back on recovery. A torn final
// record (crash mid-write) is detected by the checksum and dropped —
// everything before it is intact.
//
// ExternalMessageLog and DeterminismFaultLog can attach a store for
// write-through persistence and be reloaded from one after a process
// restart.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace tart::log {

class FileStableStore {
 public:
  /// Opens (creating if absent) the store for appending.
  explicit FileStableStore(std::string path);

  FileStableStore(const FileStableStore&) = delete;
  FileStableStore& operator=(const FileStableStore&) = delete;

  /// Appends one record durably (framed + checksummed + flushed). Returns
  /// false on I/O failure.
  bool append(const std::vector<std::byte>& record);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t records_written() const { return written_; }

  /// Reads every intact record from a store file, stopping at the first
  /// torn or corrupted frame. Missing file yields an empty list.
  [[nodiscard]] static std::vector<std::vector<std::byte>> scan(
      const std::string& path);

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t written_ = 0;
};

}  // namespace tart::log
