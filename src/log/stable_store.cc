#include "log/stable_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>

#include "serde/archive.h"

namespace tart::log {

namespace {
constexpr std::uint32_t kMagic = 0x54A27106;  // frame marker

void frame_record(serde::Writer& out, const std::vector<std::byte>& record) {
  out.write_u32(kMagic);
  out.write_u32(static_cast<std::uint32_t>(record.size()));
  out.write_u64(serde::fingerprint(record));
  out.write_raw(record.data(), record.size());
}

bool write_all(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FileStableStore::FileStableStore(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
}

FileStableStore::~FileStableStore() {
  if (fd_ >= 0) ::close(fd_);
}

bool FileStableStore::append(const std::vector<std::byte>& record) {
  return append_batch({&record, 1});
}

bool FileStableStore::append_batch(
    std::span<const std::vector<std::byte>> records) {
  if (fd_ < 0) return false;
  if (records.empty()) return true;
  serde::Writer buf;
  for (const auto& record : records) frame_record(buf, record);
  if (!write_all(fd_, buf.bytes())) return false;
  // One durability point for the whole batch — this is the group commit.
  if (::fsync(fd_) != 0) return false;
  written_.fetch_add(records.size(), std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<std::vector<std::byte>> FileStableStore::scan(
    const std::string& path, std::uint64_t* intact_bytes) {
  std::vector<std::vector<std::byte>> records;
  std::uint64_t intact = 0;
  std::ifstream in(path, std::ios::binary);
  if (intact_bytes != nullptr) *intact_bytes = 0;
  if (!in.is_open()) return records;

  for (;;) {
    std::byte header[16];
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (in.gcount() != sizeof(header)) break;  // clean EOF or torn header
    serde::Reader r(header, sizeof(header));
    if (r.read_u32() != kMagic) break;  // corrupted frame marker
    const std::uint32_t size = r.read_u32();
    const std::uint64_t checksum = r.read_u64();

    std::vector<std::byte> record(size);
    in.read(reinterpret_cast<char*>(record.data()), size);
    if (in.gcount() != static_cast<std::streamsize>(size)) break;  // torn
    if (serde::fingerprint(record) != checksum) break;  // corrupted
    records.push_back(std::move(record));
    intact += sizeof(header) + size;
  }
  if (intact_bytes != nullptr) *intact_bytes = intact;
  return records;
}

}  // namespace tart::log
