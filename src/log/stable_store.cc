#include "log/stable_store.h"

#include "serde/archive.h"

namespace tart::log {

namespace {
constexpr std::uint32_t kMagic = 0x54A27106;  // frame marker
}  // namespace

FileStableStore::FileStableStore(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::app);
}

bool FileStableStore::append(const std::vector<std::byte>& record) {
  if (!out_.is_open()) return false;
  serde::Writer frame;
  frame.write_u32(kMagic);
  frame.write_u32(static_cast<std::uint32_t>(record.size()));
  frame.write_u64(serde::fingerprint(record));
  const auto& header = frame.bytes();
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.write(reinterpret_cast<const char*>(record.data()),
             static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_.good()) return false;
  ++written_;
  return true;
}

std::vector<std::vector<std::byte>> FileStableStore::scan(
    const std::string& path) {
  std::vector<std::vector<std::byte>> records;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return records;

  for (;;) {
    std::byte header[16];
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (in.gcount() != sizeof(header)) break;  // clean EOF or torn header
    serde::Reader r(header, sizeof(header));
    if (r.read_u32() != kMagic) break;  // corrupted frame marker
    const std::uint32_t size = r.read_u32();
    const std::uint64_t checksum = r.read_u64();

    std::vector<std::byte> record(size);
    in.read(reinterpret_cast<char*>(record.data()), size);
    if (in.gcount() != static_cast<std::streamsize>(size)) break;  // torn
    if (serde::fingerprint(record) != checksum) break;  // corrupted
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace tart::log
