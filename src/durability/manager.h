// CheckpointManager: turns in-memory soft checkpoints into durable
// checkpoint files and drives checkpoint-gated log compaction.
//
// A durable checkpoint is taken in four steps, serialized under one lock:
//   1. barrier — every live local component is forced to capture a FULL
//      soft checkpoint (kCheckpoint control verb on its runner thread);
//   2. export — the replica store's restore plans are copied atomically;
//      per-component snapshot times need not align, because each snapshot
//      carries its own input positions and retained outputs (§II.F.2);
//   3. persist — plans + per-wire covered positions + the covered
//      external-log record index are written atomically to disk
//      (CheckpointWriter);
//   4. compact — only after the file is durable, the external log drops
//      covered records and deletes wholly-covered segments. The gating
//      invariant: nothing is ever truncated above the newest durable
//      checkpoint's covered offset.
//
// Triggers: an interval timer, a log-growth bytes threshold, and on-demand
// (kCheckpoint control verb / POST /checkpoint / tests).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "durability/checkpoint_file.h"
#include "durability/config.h"

namespace tart::core {
class Runtime;
}

namespace tart::durability {

struct CheckpointStats {
  bool ok = false;
  std::uint64_t id = 0;
  std::uint64_t bytes = 0;              ///< checkpoint file size
  std::uint64_t covered_records = 0;    ///< global log records covered
  std::uint64_t reclaimed_records = 0;  ///< log records dropped by this pass
  std::string error;                    ///< set when !ok
};

class CheckpointManager {
 public:
  CheckpointManager(core::Runtime& runtime, DurabilityConfig config);
  ~CheckpointManager();

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Starts the trigger thread (no-op when neither trigger is configured).
  void start();
  void stop();

  /// Takes one durable checkpoint now (steps 1-4 above). Thread-safe;
  /// concurrent callers serialize.
  CheckpointStats checkpoint_now();

  [[nodiscard]] std::uint64_t checkpoints_written() const {
    return written_.load();
  }
  [[nodiscard]] std::uint64_t checkpoint_bytes() const {
    return bytes_.load();
  }
  [[nodiscard]] std::uint64_t checkpoint_failures() const {
    return failures_.load();
  }

  /// Per-wire covered seq of the NEWEST durable checkpoint — every input
  /// wire's next expected seq as the checkpointed plans recorded it (not
  /// just external wires; cross-node senders bound their retention with
  /// it). Seeded from disk at construction, refreshed on every successful
  /// checkpoint_now. Empty until a checkpoint exists.
  [[nodiscard]] std::map<WireId, std::uint64_t> latest_cover() const;

  /// Fires after every SUCCESSFUL durable checkpoint, with the fresh cover
  /// map, on the checkpointing thread. The host broadcasts kCoverUpdate to
  /// peers and prunes superseded migration slices from it.
  void set_on_checkpoint(
      std::function<void(const std::map<WireId, std::uint64_t>&)> fn);

 private:
  void trigger_loop();

  core::Runtime& runtime_;
  const DurabilityConfig config_;
  CheckpointWriter writer_;

  std::mutex ckpt_mu_;  ///< serializes checkpoint_now

  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> failures_{0};

  mutable std::mutex cover_mu_;
  std::map<WireId, std::uint64_t> latest_cover_;
  std::function<void(const std::map<WireId, std::uint64_t>&)> on_checkpoint_;

  std::mutex trigger_mu_;
  std::condition_variable trigger_cv_;
  bool trigger_stop_ = false;
  std::thread trigger_thread_;
};

}  // namespace tart::durability
