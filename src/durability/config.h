// Durability subsystem knobs. Dependency-free so core/config.h can embed
// it without core -> durability header coupling.
#pragma once

#include <cstdint>
#include <string>

namespace tart::durability {

struct DurabilityConfig {
  /// Master switch. Durable checkpoints, segmented external log and
  /// checkpoint-gated compaction engage only when this is set AND the
  /// runtime has a log_dir.
  bool enabled = false;

  /// Checkpoint directory; empty = the runtime's log_dir.
  std::string dir;

  /// Write a durable checkpoint every this many milliseconds. <= 0
  /// disables the timer (on-demand checkpoints still work).
  int interval_ms = 0;

  /// Write a durable checkpoint whenever the external log has grown this
  /// many bytes since the last one. 0 disables the bytes trigger.
  std::uint64_t bytes_trigger = 0;

  /// Checkpoint files retained on disk; older ones are pruned after each
  /// successful write. At least 1.
  std::uint64_t keep_last = 3;

  /// External-log segment rotation threshold (SegmentedStore).
  std::uint64_t segment_bytes = 4ull << 20;

  /// How long a forced checkpoint waits for every component runner to
  /// capture its snapshot before giving up.
  int barrier_timeout_ms = 10000;

  /// Deployment fingerprint stamped into checkpoint files (0 = unchecked);
  /// a restart refuses a checkpoint written under a different deployment.
  std::uint64_t deployment_fp = 0;
};

}  // namespace tart::durability
