#include "durability/manager.h"

#include <chrono>
#include <utility>

#include "core/runtime.h"
#include "log/segmented_store.h"
#include "obs/prof.h"

namespace tart::durability {

namespace {

/// Every input wire's checkpointed next-seq, from the newest snapshot in
/// each plan. This — not just the external-wire cover list — is what
/// remote senders need to bound their retention buffers: the consumer can
/// never replay-request below its durably checkpointed position.
std::map<WireId, std::uint64_t> cover_from_plans(
    const std::map<ComponentId, checkpoint::RestorePlan>& plans) {
  std::map<WireId, std::uint64_t> cover;
  for (const auto& [component, plan] : plans) {
    (void)component;
    const checkpoint::ComponentSnapshot& last =
        plan.deltas.empty() ? plan.base : plan.deltas.back();
    for (const auto& in : last.inputs) {
      auto [it, inserted] = cover.emplace(in.wire, in.next_seq);
      if (!inserted && in.next_seq > it->second) it->second = in.next_seq;
    }
  }
  return cover;
}

}  // namespace

CheckpointManager::CheckpointManager(core::Runtime& runtime,
                                     DurabilityConfig config)
    : runtime_(runtime),
      config_(std::move(config)),
      writer_(config_.dir, config_.keep_last) {
  // Seed the cover from the newest on-disk checkpoint so a restarted node
  // advertises accurate bounds in its very first HELLO.
  if (const auto newest =
          CheckpointReader::load_newest(config_.dir, config_.deployment_fp))
    latest_cover_ = cover_from_plans(newest->checkpoint.plans);
}

CheckpointManager::~CheckpointManager() { stop(); }

void CheckpointManager::start() {
  if (config_.interval_ms <= 0 && config_.bytes_trigger == 0) return;
  if (trigger_thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lk(trigger_mu_);
    trigger_stop_ = false;
  }
  trigger_thread_ = std::thread([this] { trigger_loop(); });
}

void CheckpointManager::stop() {
  {
    const std::lock_guard<std::mutex> lk(trigger_mu_);
    trigger_stop_ = true;
  }
  trigger_cv_.notify_all();
  if (trigger_thread_.joinable()) trigger_thread_.join();
}

void CheckpointManager::trigger_loop() {
  using namespace std::chrono;
  // Poll cadence: the configured interval, or a coarse tick for the
  // bytes-only trigger.
  const auto tick = config_.interval_ms > 0
                        ? milliseconds(config_.interval_ms)
                        : milliseconds(50);
  std::uint64_t bytes_at_last = runtime_.log_bytes_on_disk();
  std::unique_lock<std::mutex> lk(trigger_mu_);
  while (!trigger_stop_) {
    trigger_cv_.wait_for(lk, tick);
    if (trigger_stop_) break;
    bool fire = config_.interval_ms > 0;
    if (!fire && config_.bytes_trigger > 0) {
      const std::uint64_t now_bytes = runtime_.log_bytes_on_disk();
      fire = now_bytes >= bytes_at_last + config_.bytes_trigger;
    }
    if (!fire) continue;
    lk.unlock();
    (void)checkpoint_now();
    bytes_at_last = runtime_.log_bytes_on_disk();
    lk.lock();
  }
}

CheckpointStats CheckpointManager::checkpoint_now() {
  const std::lock_guard<std::mutex> lk(ckpt_mu_);
  CheckpointStats stats;

  // 1. Barrier: force a full soft checkpoint of every live component so
  // the exported plans reflect "now", not the last periodic snapshot.
  if (!runtime_.force_component_checkpoints(
          std::chrono::milliseconds(config_.barrier_timeout_ms))) {
    failures_.fetch_add(1);
    stats.error = "checkpoint barrier timed out";
    return stats;
  }

  // 2. Export the plans and derive per-wire coverage from each consumer's
  // checkpointed input position.
  DurableCheckpoint c;
  c.deployment_fp = config_.deployment_fp;
  c.plans = runtime_.replica().export_plans();
  std::map<WireId, std::uint64_t> covered;
  for (const WireId wire : runtime_.external_input_wires()) {
    const ComponentId consumer = runtime_.topology().wire(wire).to;
    std::uint64_t covered_seq = 0;
    const auto it = c.plans.find(consumer);
    if (it != c.plans.end()) {
      const checkpoint::ComponentSnapshot& last =
          it->second.deltas.empty() ? it->second.base
                                    : it->second.deltas.back();
      for (const auto& in : last.inputs)
        if (in.wire == wire) {
          covered_seq = in.next_seq;
          break;
        }
    }
    covered.emplace(wire, covered_seq);
    c.wires.push_back(WireCover{
        wire, covered_seq,
        runtime_.external_log().vt_below(wire, covered_seq)});
  }
  c.covered_record_index = runtime_.external_log().covered_record_index(covered);

  // 3. Persist. A failed write gates nothing: the log keeps everything.
  std::uint64_t file_bytes = 0;
  {
    TART_PROF_SPAN("ckpt.write");
    file_bytes = writer_.write(c);
  }
  if (file_bytes == 0) {
    failures_.fetch_add(1);
    stats.error = "checkpoint write failed";
    return stats;
  }
  written_.fetch_add(1);
  bytes_.fetch_add(file_bytes);

  // 4. Compact: the file is durable, so everything it covers may go.
  stats.reclaimed_records = runtime_.compact_below(covered);
  stats.ok = true;
  stats.id = c.id;
  stats.bytes = file_bytes;
  stats.covered_records = c.covered_record_index;

  // Publish the fresh cover; peers bound their retention with it.
  std::function<void(const std::map<WireId, std::uint64_t>&)> hook;
  std::map<WireId, std::uint64_t> cover = cover_from_plans(c.plans);
  {
    const std::lock_guard<std::mutex> cover_lk(cover_mu_);
    latest_cover_ = cover;
    hook = on_checkpoint_;
  }
  if (hook) hook(cover);
  return stats;
}

std::map<WireId, std::uint64_t> CheckpointManager::latest_cover() const {
  const std::lock_guard<std::mutex> lk(cover_mu_);
  return latest_cover_;
}

void CheckpointManager::set_on_checkpoint(
    std::function<void(const std::map<WireId, std::uint64_t>&)> fn) {
  const std::lock_guard<std::mutex> lk(cover_mu_);
  on_checkpoint_ = std::move(fn);
}

}  // namespace tart::durability
