#include "durability/replay.h"

#include <thread>

#include "core/runtime.h"

namespace tart::durability {

namespace {

/// One quiescence probe: no component has RUNNABLE work, and every
/// external input wire's consumer has accounted the log's full horizon.
/// A held component (pending messages blocked awaiting silence from a
/// still-open wire) IS caught up: the pre-crash system was in exactly the
/// same blocked state, and only new input or silence can move it — replay
/// has nothing left to contribute.
bool caught_up_once(core::Runtime& runtime) {
  const core::StatusReport report = runtime.status();
  for (const auto& component : report.components) {
    if (component.crashed) continue;  // deliberately down; not our wait
    if (component.pending != 0 && !component.held) return false;
  }
  for (const WireId wire : runtime.external_input_wires()) {
    const VirtualTime goal = runtime.external_log().last_vt(wire);
    if (goal.ticks() < 0) continue;  // nothing ever logged on this wire
    const ComponentId consumer = runtime.topology().wire(wire).to;
    for (const auto& component : report.components) {
      if (component.id != consumer) continue;
      for (const auto& input : component.inputs)
        if (input.wire == wire && input.horizon_ticks < goal.ticks())
          return false;
    }
  }
  return true;
}

}  // namespace

ReplayStats ReplayDriver::catch_up(core::Runtime& runtime,
                                   std::chrono::milliseconds timeout) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + timeout;
  runtime.set_output_suppressed(true);

  ReplayStats stats;
  stats.covered_records = runtime.recovery_info().covered_records;
  stats.suffix_records = runtime.recovery_info().suffix_records;

  // Two consecutive quiet probes: a single one can race a frame in flight
  // between a runner's dequeue and the next component's inbox.
  int quiet = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (caught_up_once(runtime)) {
      if (++quiet >= 2) {
        stats.caught_up = true;
        break;
      }
    } else {
      quiet = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  runtime.set_output_suppressed(false);
  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

}  // namespace tart::durability
