// Durable checkpoint files: the on-disk "replay starting points".
//
// A checkpoint file captures, in one atomically-written unit, everything a
// restarting node needs short of the external-log suffix:
//
//   - every local component's restore plan (base snapshot + delta chain),
//     exactly as the in-memory ReplicaStore held it — snapshots embed the
//     per-wire input/output positions and retained output messages, so the
//     per-component capture times need not be aligned (§II.F.2);
//   - per external-input wire: the covered sequence bound (the consumer's
//     next expected seq — log records below it never need replaying again)
//     and the vt of the last covered message (the wire's silence floor
//     when the whole log suffix is empty);
//   - the global external-log record index the checkpoint covers: the
//     compaction bound ("never truncate above the newest durable
//     checkpoint's covered offset", docs/RECOVERY.md).
//
// Format: u32 magic | u32 version | u64 body_size | body | u64 fnv(body).
// Files are written tmp + fsync + rename + dir fsync, so a crash leaves
// either the complete previous set or the complete new file; a torn or
// corrupt file (failed rename, bit rot, hand-made in tests) fails the
// checksum and the reader falls back to the next-newest file.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint/replica.h"
#include "common/ids.h"
#include "common/virtual_time.h"
#include "serde/archive.h"

namespace tart::durability {

/// Per external-input-wire coverage recorded in a checkpoint.
struct WireCover {
  WireId wire;
  std::uint64_t covered_seq = 0;  ///< log entries with seq < this are covered
  VirtualTime last_vt{-1};        ///< vt of the last covered message
};

struct DurableCheckpoint {
  std::uint64_t id = 0;             ///< monotone per directory
  std::uint64_t deployment_fp = 0;  ///< 0 = unchecked
  std::uint64_t covered_record_index = 0;
  std::vector<WireCover> wires;
  std::map<ComponentId, checkpoint::RestorePlan> plans;

  void encode(serde::Writer& w) const;
  [[nodiscard]] static DurableCheckpoint decode(serde::Reader& r);
};

/// Atomic checkpoint writer with keep-last-K pruning.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string dir, std::uint64_t keep_last);

  /// Assigns the next id, writes atomically, prunes old files. Returns the
  /// bytes written on success, 0 on failure (checkpoint.id is updated
  /// either way).
  std::uint64_t write(DurableCheckpoint& checkpoint);

  [[nodiscard]] std::uint64_t next_id() const { return next_id_; }

 private:
  std::string dir_;
  std::uint64_t keep_last_;
  std::uint64_t next_id_ = 1;
};

class CheckpointReader {
 public:
  struct Newest {
    DurableCheckpoint checkpoint;
    std::string path;
    std::uint64_t skipped_invalid = 0;  ///< torn/corrupt files skipped
  };

  /// Checkpoint file paths in the directory, ascending by id.
  [[nodiscard]] static std::vector<std::string> list(const std::string& dir);

  /// Validates and decodes one file; nullopt on any corruption.
  [[nodiscard]] static std::optional<DurableCheckpoint> load(
      const std::string& path);

  /// Newest valid checkpoint, skipping (and counting) invalid files.
  /// `deployment_fp` != 0 additionally refuses mismatched deployments.
  [[nodiscard]] static std::optional<Newest> load_newest(
      const std::string& dir, std::uint64_t deployment_fp = 0);
};

/// `<dir>/ckpt.<020d id>.tckp`.
[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          std::uint64_t id);

}  // namespace tart::durability
