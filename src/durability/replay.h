// Tiered fast restart: the high-speed replay driver.
//
// After a restart, Runtime::start() restores every component from the
// newest durable checkpoint and each component asks the external log to
// replay only the uncovered suffix (§II.F.3/4). This driver wraps that
// catch-up window: external output callbacks are suppressed (the outside
// world already saw these messages — replay must be invisible, §II.A), and
// the caller blocks until the wavefront has consumed the whole suffix.
// RTO therefore scales with the suffix length, not the log length —
// bench/bench_recovery.cc measures exactly this.
#pragma once

#include <chrono>
#include <cstdint>

namespace tart::core {
class Runtime;
}

namespace tart::durability {

struct ReplayStats {
  bool caught_up = false;          ///< quiescent within the timeout
  std::uint64_t covered_records = 0;  ///< skipped thanks to the checkpoint
  std::uint64_t suffix_records = 0;   ///< replayed from the log suffix
  double seconds = 0;              ///< wall time spent catching up
};

class ReplayDriver {
 public:
  /// Blocks until every component has processed the recovered log suffix
  /// (or the timeout passes). Call after Runtime::start() and before
  /// exposing the node to new external input. Outputs are suppressed for
  /// the duration; delivered records are still retained for inspection.
  /// Components blocked awaiting silence on a still-open wire count as
  /// caught up — the pre-crash wavefront was parked in the same place, and
  /// only new input (or a probe) can advance it. This also makes catch_up
  /// usable as a live "settle" barrier: it returns once everything the
  /// external log holds has been delivered and consumed as far as the
  /// silence frontier permits.
  static ReplayStats catch_up(
      core::Runtime& runtime,
      std::chrono::milliseconds timeout = std::chrono::seconds(30));
};

}  // namespace tart::durability
