#include "durability/checkpoint_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

namespace tart::durability {

namespace {

constexpr std::uint32_t kMagic = 0x54434B50;  // "TCKP"
constexpr std::uint32_t kVersion = 1;

bool write_all(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Parses `ckpt.<digits>.tckp`; returns 0 for anything else (real ids
/// start at 1).
std::uint64_t id_of(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  if (name.rfind("ckpt.", 0) != 0) return 0;
  const std::size_t dot = name.rfind(".tckp");
  if (dot == std::string::npos || dot <= 5) return 0;
  const std::string digits = name.substr(5, dot - 5);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return 0;
  return std::strtoull(digits.c_str(), nullptr, 10);
}

void encode_plan(serde::Writer& w, const checkpoint::RestorePlan& plan) {
  plan.base.encode(w);
  w.write_varint(plan.deltas.size());
  for (const auto& delta : plan.deltas) delta.encode(w);
}

checkpoint::RestorePlan decode_plan(serde::Reader& r) {
  checkpoint::RestorePlan plan;
  plan.base = checkpoint::ComponentSnapshot::decode(r);
  const std::uint64_t deltas = r.read_varint();
  plan.deltas.reserve(deltas);
  for (std::uint64_t i = 0; i < deltas; ++i)
    plan.deltas.push_back(checkpoint::ComponentSnapshot::decode(r));
  return plan;
}

}  // namespace

std::string checkpoint_path(const std::string& dir, std::uint64_t id) {
  char name[40];
  std::snprintf(name, sizeof(name), "ckpt.%020llu.tckp",
                static_cast<unsigned long long>(id));
  return (std::filesystem::path(dir) / name).string();
}

void DurableCheckpoint::encode(serde::Writer& w) const {
  w.write_varint(id);
  w.write_u64(deployment_fp);
  w.write_varint(covered_record_index);
  w.write_varint(wires.size());
  for (const auto& wc : wires) {
    w.write_u32(wc.wire.value());
    w.write_varint(wc.covered_seq);
    w.write_vt(wc.last_vt);
  }
  w.write_varint(plans.size());
  for (const auto& [component, plan] : plans) {
    w.write_u32(component.value());
    encode_plan(w, plan);
  }
}

DurableCheckpoint DurableCheckpoint::decode(serde::Reader& r) {
  DurableCheckpoint c;
  c.id = r.read_varint();
  c.deployment_fp = r.read_u64();
  c.covered_record_index = r.read_varint();
  const std::uint64_t wires = r.read_varint();
  c.wires.reserve(wires);
  for (std::uint64_t i = 0; i < wires; ++i) {
    WireCover wc{WireId(r.read_u32()), 0, VirtualTime(-1)};
    wc.covered_seq = r.read_varint();
    wc.last_vt = r.read_vt();
    c.wires.push_back(wc);
  }
  const std::uint64_t plans = r.read_varint();
  for (std::uint64_t i = 0; i < plans; ++i) {
    const ComponentId component{r.read_u32()};
    c.plans.emplace(component, decode_plan(r));
  }
  return c;
}

CheckpointWriter::CheckpointWriter(std::string dir, std::uint64_t keep_last)
    : dir_(std::move(dir)), keep_last_(keep_last == 0 ? 1 : keep_last) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // Resume numbering above whatever is already there — including torn
  // files, so a retry never reuses (and silently "repairs") a bad id.
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::uint64_t id = id_of(entry.path());
    if (id >= next_id_) next_id_ = id + 1;
  }
}

std::uint64_t CheckpointWriter::write(DurableCheckpoint& checkpoint) {
  checkpoint.id = next_id_++;

  serde::Writer body;
  checkpoint.encode(body);
  serde::Writer file;
  file.write_u32(kMagic);
  file.write_u32(kVersion);
  file.write_u64(body.size());
  file.write_raw(body.bytes().data(), body.size());
  file.write_u64(serde::fingerprint(body.bytes()));

  const std::string final_path = checkpoint_path(dir_, checkpoint.id);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return 0;
  const bool wrote = write_all(fd, file.bytes()) && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return 0;
  }
  // The rename itself must be durable before this checkpoint may gate
  // compaction — otherwise a crash could lose the file but keep the
  // truncation it licensed.
  if (!fsync_dir(dir_)) return 0;

  // Prune beyond keep-last-K (only after a fully successful write, so a
  // failure never reduces what a restart can fall back to).
  auto files = CheckpointReader::list(dir_);
  while (files.size() > keep_last_) {
    ::unlink(files.front().c_str());
    files.erase(files.begin());
  }
  return file.size();
}

std::vector<std::string> CheckpointReader::list(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::uint64_t id = id_of(entry.path());
    if (id > 0) found.emplace_back(id, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [id, path] : found) paths.push_back(std::move(path));
  return paths;
}

std::optional<DurableCheckpoint> CheckpointReader::load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* bytes = reinterpret_cast<const std::byte*>(raw.data());
  try {
    serde::Reader header(bytes, raw.size());
    if (header.read_u32() != kMagic) return std::nullopt;
    if (header.read_u32() != kVersion) return std::nullopt;
    const std::uint64_t body_size = header.read_u64();
    if (header.remaining() != body_size + sizeof(std::uint64_t))
      return std::nullopt;  // torn tail or trailing garbage
    std::vector<std::byte> body(bytes + 16, bytes + 16 + body_size);
    serde::Reader trailer(bytes + 16 + body_size, sizeof(std::uint64_t));
    if (serde::fingerprint(body) != trailer.read_u64()) return std::nullopt;
    serde::Reader r(body);
    DurableCheckpoint c = DurableCheckpoint::decode(r);
    if (!r.at_end()) return std::nullopt;
    return c;
  } catch (const serde::DecodeError&) {
    return std::nullopt;
  }
}

std::optional<CheckpointReader::Newest> CheckpointReader::load_newest(
    const std::string& dir, std::uint64_t deployment_fp) {
  auto files = list(dir);
  std::uint64_t skipped = 0;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    auto c = load(*it);
    if (c.has_value() &&
        (deployment_fp == 0 || c->deployment_fp == 0 ||
         c->deployment_fp == deployment_fp))
      return Newest{std::move(*c), *it, skipped};
    ++skipped;
  }
  return std::nullopt;
}

}  // namespace tart::durability
