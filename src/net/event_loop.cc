#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "obs/prof.h"

namespace tart::net {

EventLoop::EventLoop() {
  int pipefd[2];
  if (::pipe(pipefd) < 0) throw std::runtime_error("EventLoop: pipe failed");
  for (const int fd : {pipefd[0], pipefd[1]}) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
  }
  wake_read_ = pipefd[0];
  wake_write_ = pipefd[1];
}

EventLoop::~EventLoop() {
  ::close(wake_read_);
  ::close(wake_write_);
}

void EventLoop::set_fd(int fd, bool want_read, bool want_write,
                       FdCallback callback) {
  fds_[fd] = FdEntry{want_read, want_write, std::move(callback)};
}

void EventLoop::set_interest(int fd, bool want_read, bool want_write) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
}

void EventLoop::remove_fd(int fd) { fds_.erase(fd); }

EventLoop::TimerId EventLoop::add_timer(Clock::time_point when,
                                        std::function<void()> callback) {
  const TimerId id = next_timer_++;
  timers_.emplace(id, Timer{when, std::move(callback)});
  return id;
}

void EventLoop::cancel_timer(TimerId id) { timers_.erase(id); }

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  const char byte = 1;
  // Full pipe is fine: a wake-up is already pending.
  [[maybe_unused]] const auto n = ::write(wake_write_, &byte, 1);
}

void EventLoop::stop() {
  {
    const std::lock_guard<std::mutex> lock(posted_mu_);
    stop_requested_ = true;
  }
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(wake_write_, &byte, 1);
}

void EventLoop::drain_wake_pipe() {
  char buf[256];
  while (::read(wake_read_, buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::run() {
  std::vector<pollfd> pollset;
  std::vector<std::function<void()>> run_now;
  for (;;) {
    // Posted work (and the stop flag) first: timers and fd callbacks it
    // schedules take effect within this same iteration's poll.
    {
      const std::lock_guard<std::mutex> lock(posted_mu_);
      run_now.swap(posted_);
      if (stop_requested_) {
        stop_requested_ = false;
        return;
      }
    }
    if (!run_now.empty()) {
      TART_PROF_SPAN("loop.posted");
      for (auto& fn : run_now) fn();
      run_now.clear();
    }

    // Due timers (collect ids first: a timer callback may add/cancel).
    const auto now = Clock::now();
    std::vector<TimerId> due;
    for (const auto& [id, timer] : timers_)
      if (timer.when <= now) due.push_back(id);
    if (!due.empty()) {
      TART_PROF_SPAN("loop.timers");
      for (const TimerId id : due) {
        const auto it = timers_.find(id);
        if (it == timers_.end()) continue;  // cancelled by an earlier callback
        auto callback = std::move(it->second.callback);
        // Loop lag: how far past its deadline the timer fired. The skew a
        // saturated loop imposes on heartbeats, sweeps, and retries.
        TART_PROF_SPAN_NS(
            "loop.lag", std::chrono::duration_cast<std::chrono::nanoseconds>(
                            now - it->second.when)
                            .count());
        timers_.erase(it);
        callback();
      }
    }

    // Poll timeout: until the next timer deadline, bounded for liveness.
    int timeout_ms = 1000;
    for (const auto& [id, timer] : timers_) {
      const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                             timer.when - Clock::now())
                             .count();
      timeout_ms = std::min<long long>(timeout_ms, std::max<long long>(delta, 0));
    }

    pollset.clear();
    pollset.push_back(pollfd{wake_read_, POLLIN, 0});
    for (const auto& [fd, entry] : fds_) {
      short events = 0;
      if (entry.want_read) events |= POLLIN;
      if (entry.want_write) events |= POLLOUT;
      pollset.push_back(pollfd{fd, events, 0});
    }

    int n;
    {
      TART_PROF_SPAN("loop.poll_wait");
      n = ::poll(pollset.data(), pollset.size(), timeout_ms);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("EventLoop: poll failed");
    }
    if (n == 0) continue;  // timeout, nothing to dispatch
    TART_PROF_SPAN("loop.dispatch");
    if (pollset[0].revents != 0) drain_wake_pipe();
    for (std::size_t i = 1; i < pollset.size(); ++i) {
      const auto& p = pollset[i];
      if (p.revents == 0) continue;
      // Look the entry up again: an earlier callback this iteration may
      // have removed or replaced it.
      const auto it = fds_.find(p.fd);
      if (it == fds_.end()) continue;
      unsigned events = 0;
      if (p.revents & POLLIN) events |= kReadable;
      if (p.revents & POLLOUT) events |= kWritable;
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kError;
      if (events == 0) continue;
      // Copy: the callback may remove_fd (destroying the stored function
      // mid-call otherwise).
      const FdCallback callback = it->second.callback;
      callback(events);
    }
  }
}

}  // namespace tart::net
