// Deployment description for multi-process (partitioned) runs.
//
// A deployment file names a topology from the catalog (src/net/topologies),
// declares the partitions (one OS process each, with a data address the
// socket transport listens on and a control address for external drivers),
// and places every component onto a partition. The format is line-oriented:
//
//   # comment
//   topology = wordcount
//   param senders = 2
//   partition left  = 127.0.0.1:7101
//   control  left   = 127.0.0.1:7201
//   partition right = 127.0.0.1:7102
//   control  right  = 127.0.0.1:7202
//   http     right  = 127.0.0.1:7302   # optional: advertised gateway addr
//   place sender1 = left
//   place sender2 = left
//   place merger  = right
//
// Addresses may be numeric IPv4, bracketed IPv6 ("[fe80::1]:7101"), or
// hostnames ("db-2.rack1:7101") — hostnames resolve via getaddrinfo when
// the node listens or dials (net/socket.h), so one config file can name
// machines symbolically across a cluster.
//
// Every process parses the SAME file and builds the SAME global topology;
// only construction is restricted to the local partition. Engine ids are
// assigned by sorted partition name — a pure function of the file — so
// placement (and therefore wire routing) is identical in every process.
// The deployment fingerprint hashes the canonical form of the file; peers
// exchange it in the HELLO handshake and refuse mismatched connections,
// catching the "two nodes run different configs" operator error early.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.h"

namespace tart::net {

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PartitionSpec {
  std::string name;
  std::string data_addr;     ///< host:port the ConnectionManager listens on
  std::string control_addr;  ///< host:port the control server listens on
  std::string http_addr;     ///< advertised HTTP gateway (for 307 redirects)
  EngineId engine;           ///< index in sorted-name order
};

struct DeploymentConfig {
  std::string topology;
  std::map<std::string, std::string> params;
  std::vector<PartitionSpec> partitions;  ///< sorted by name
  std::map<std::string, std::string> placement;  ///< component -> partition

  [[nodiscard]] const PartitionSpec* find_partition(
      const std::string& name) const;
  [[nodiscard]] const PartitionSpec* partition_of_engine(EngineId id) const;

  /// FNV-1a over the canonical serialization (sorted, whitespace-free);
  /// identical files — and only identical deployments — agree.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Topology-only fingerprint: topology + params + partition names/data
  /// addresses, with placement EXCLUDED. Wire and engine ids are a pure
  /// function of this subset, so two nodes that agree on it can exchange
  /// frames safely even when their placement views have drifted apart
  /// (live migration moves components without touching the config file).
  /// This is the fingerprint the HELLO handshake enforces and the one
  /// durable checkpoints are stamped with.
  [[nodiscard]] std::uint64_t topology_fingerprint() const;

  /// Placement-only fingerprint (component -> partition map). Informational:
  /// carried for diagnostics, never a connection gate — see
  /// docs/PLACEMENT.md for the epoch rules that reconcile drift.
  [[nodiscard]] std::uint64_t placement_fingerprint() const;

  /// Parses the format above. Throws ConfigError with a line number on any
  /// malformed or inconsistent input (unknown directive, duplicate
  /// partition, placement onto an undeclared partition, ...).
  [[nodiscard]] static DeploymentConfig parse(const std::string& text);
  [[nodiscard]] static DeploymentConfig parse_file(const std::string& path);
};

}  // namespace tart::net
