// tart-node control protocol: how external drivers talk to a node.
//
// Each tart-node process listens on a second (control) address. Clients —
// the multi-process tests, scripts, an operator's tooling — connect with
// plain TCP, send one request envelope (wire_format.h, types kPing..),
// and read one response. Requests on a connection are handled serially;
// the server keeps the connection open for further requests.
//
// The control plane is intentionally OUTSIDE the deterministic protocol:
// injections enter the runtime through Runtime::inject/inject_at, which
// timestamp and log them exactly as any external arrival (§II.E), so a
// control-driven run replays bit-identically from the external log alone.
#pragma once

#include <cstdint>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/status.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "obs/registry.h"
#include "wire/payload.h"

namespace tart::net {

// --- Request/response bodies (serde-encoded envelope payloads) -------------

struct InjectBody {
  std::string input;        ///< external input name (topology catalog)
  std::int64_t vt = -1;     ///< scripted virtual time; < 0 = realtime stamp
  Payload payload;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static InjectBody decode(const std::vector<std::byte>& p);
};

/// One record of an external output, as reported over control.
struct ControlOutputRecord {
  std::int64_t vt = 0;
  Payload payload;
  bool stutter = false;
};

[[nodiscard]] std::vector<std::byte> encode_string_body(const std::string& s);
[[nodiscard]] std::string decode_string_body(const std::vector<std::byte>& p);

[[nodiscard]] std::vector<std::byte> encode_i64_body(std::int64_t v);
[[nodiscard]] std::int64_t decode_i64_body(const std::vector<std::byte>& p);

[[nodiscard]] std::vector<std::byte> encode_outputs_body(
    const std::vector<ControlOutputRecord>& records);
[[nodiscard]] std::vector<ControlOutputRecord> decode_outputs_body(
    const std::vector<std::byte>& p);

/// Fields travel in TART_METRICS_SCALAR_FIELDS declaration order — the
/// same X-macro that defines the struct, so a new field cannot be added
/// without being serialized.
[[nodiscard]] std::vector<std::byte> encode_metrics_body(
    const core::MetricsSnapshot& m);
[[nodiscard]] core::MetricsSnapshot decode_metrics_body(
    const std::vector<std::byte>& p);

[[nodiscard]] std::vector<std::byte> encode_status_body(
    const core::StatusReport& report);
[[nodiscard]] core::StatusReport decode_status_body(
    const std::vector<std::byte>& p);

[[nodiscard]] std::vector<std::byte> encode_obs_body(
    const std::vector<obs::Sample>& samples);
[[nodiscard]] std::vector<obs::Sample> decode_obs_body(
    const std::vector<std::byte>& p);

/// One push-based remote-write shipment (kObsPush): everything a poll of
/// kGetMetrics + kGetObs would have returned, stamped and attributed to
/// the pushing node so a collector can keep per-node freshness.
struct ObsPushBody {
  std::string node;        ///< partition name of the pusher
  std::int64_t ts_ms = 0;  ///< sender wall clock (system_clock), ms
  core::MetricsSnapshot metrics;
  std::vector<obs::Sample> samples;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static ObsPushBody decode(const std::vector<std::byte>& p);
};

/// kMigrate request: move a component (by topology name) to another
/// partition (by node name). Sent to the SOURCE node's control address.
struct MigrateBody {
  std::string component;
  std::string to_node;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static MigrateBody decode(const std::vector<std::byte>& p);
};

/// kMigrateAck: mirrors placement::MigrationResult.
struct MigrateResultBody {
  bool ok = false;
  std::uint64_t epoch = 0;
  std::uint64_t slice_bytes = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t record_count = 0;
  double transfer_ms = 0;
  double blackout_ms = 0;
  std::string error;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static MigrateResultBody decode(
      const std::vector<std::byte>& p);
};

/// Result of an on-demand durable checkpoint (kCheckpointAck): mirrors
/// durability::CheckpointStats.
struct CheckpointResultBody {
  bool ok = false;
  std::uint64_t id = 0;
  std::uint64_t bytes = 0;
  std::uint64_t covered_records = 0;
  std::uint64_t reclaimed_records = 0;
  std::string error;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static CheckpointResultBody decode(
      const std::vector<std::byte>& p);
};

// --- Blocking client --------------------------------------------------------

/// Synchronous control connection. Methods throw NetError on transport or
/// protocol failure (including a kError response, whose message is
/// surfaced verbatim).
class ControlClient {
 public:
  /// Connects, retrying until `timeout` (nodes take a moment to come up).
  [[nodiscard]] static std::optional<ControlClient> connect(
      const std::string& addr,
      std::chrono::milliseconds timeout = std::chrono::seconds(5));

  ControlClient(ControlClient&&) = default;
  ControlClient& operator=(ControlClient&&) = default;

  void ping();
  /// Returns the virtual time the node assigned to the injection.
  std::int64_t inject(const std::string& input, std::int64_t vt,
                      const Payload& payload);
  void close_input(const std::string& input);
  [[nodiscard]] bool drain(std::chrono::milliseconds timeout);
  [[nodiscard]] std::vector<ControlOutputRecord> outputs(
      const std::string& output);
  [[nodiscard]] core::MetricsSnapshot metrics();
  /// Silence wavefront of every component on the node (tart-obs, tart-ctl).
  [[nodiscard]] core::StatusReport status();
  /// Telemetry registry samples (labelled counters + histograms).
  [[nodiscard]] std::vector<obs::Sample> obs_samples();
  /// Forces a durable checkpoint on the node (throws when durability is
  /// off; a failed attempt is returned with ok=false).
  [[nodiscard]] CheckpointResultBody checkpoint();
  /// Live-migrates `component` to `to_node`. Sent to the current owner;
  /// blocks until cutover (or failure). Throws only on transport errors —
  /// a refused migration comes back with ok=false.
  [[nodiscard]] MigrateResultBody migrate(const std::string& component,
                                          const std::string& to_node);
  void shutdown_node();

  /// One raw round-trip (used by the helpers above).
  NetMessage request(NetMsgType type, const std::vector<std::byte>& payload);

 private:
  explicit ControlClient(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  StreamDecoder decoder_;
};

}  // namespace tart::net
