#include "net/control.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <thread>

#include "serde/archive.h"

namespace tart::net {
namespace {

using Clock = std::chrono::steady_clock;

void write_all(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      (void)::poll(&p, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw NetError("control: write failed");
  }
}

}  // namespace

// --- Bodies -----------------------------------------------------------------

std::vector<std::byte> InjectBody::encode() const {
  serde::Writer w;
  w.write_string(input);
  w.write_svarint(vt);
  payload.encode(w);
  return w.take();
}

InjectBody InjectBody::decode(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  InjectBody b;
  b.input = r.read_string();
  b.vt = r.read_svarint();
  b.payload = Payload::decode(r);
  if (!r.at_end()) throw NetError("inject body: trailing bytes");
  return b;
}

std::vector<std::byte> encode_string_body(const std::string& s) {
  serde::Writer w;
  w.write_string(s);
  return w.take();
}

std::string decode_string_body(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  std::string s = r.read_string();
  if (!r.at_end()) throw NetError("string body: trailing bytes");
  return s;
}

std::vector<std::byte> encode_i64_body(std::int64_t v) {
  serde::Writer w;
  w.write_svarint(v);
  return w.take();
}

std::int64_t decode_i64_body(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  const std::int64_t v = r.read_svarint();
  if (!r.at_end()) throw NetError("i64 body: trailing bytes");
  return v;
}

std::vector<std::byte> encode_outputs_body(
    const std::vector<ControlOutputRecord>& records) {
  serde::Writer w;
  w.write_varint(records.size());
  for (const auto& rec : records) {
    w.write_svarint(rec.vt);
    rec.payload.encode(w);
    w.write_bool(rec.stutter);
  }
  return w.take();
}

std::vector<ControlOutputRecord> decode_outputs_body(
    const std::vector<std::byte>& p) {
  serde::Reader r(p);
  const auto n = r.read_varint();
  std::vector<ControlOutputRecord> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ControlOutputRecord rec;
    rec.vt = r.read_svarint();
    rec.payload = Payload::decode(r);
    rec.stutter = r.read_bool();
    out.push_back(std::move(rec));
  }
  if (!r.at_end()) throw NetError("outputs body: trailing bytes");
  return out;
}

std::vector<std::byte> encode_metrics_body(const core::MetricsSnapshot& m) {
  serde::Writer w;
  w.write_varint(m.messages_processed);
  w.write_varint(m.calls_served);
  w.write_varint(m.probes_sent);
  w.write_varint(m.pessimism_events);
  w.write_varint(m.pessimism_wait_ns);
  w.write_varint(m.out_of_order_arrivals);
  w.write_varint(m.duplicates_discarded);
  w.write_varint(m.gaps_detected);
  w.write_varint(m.checkpoints_taken);
  w.write_varint(m.trace_events_recorded);
  w.write_varint(m.trace_events_dropped);
  w.write_varint(m.net_bytes_in);
  w.write_varint(m.net_bytes_out);
  w.write_varint(m.net_frames_in);
  w.write_varint(m.net_frames_out);
  w.write_varint(m.net_reconnects);
  w.write_varint(m.net_heartbeat_misses);
  w.write_varint(m.net_frames_refused);
  w.write_varint(m.net_queue_high_water);
  w.write_varint(m.store_records_written);
  w.write_varint(m.store_flushes);
  w.write_varint(m.gw_requests);
  w.write_varint(m.gw_acked);
  w.write_varint(m.gw_rejected);
  w.write_varint(m.gw_errors);
  w.write_varint(m.gw_commit_batches);
  w.write_varint(m.gw_commit_records);
  w.write_varint(m.gw_commit_batch_max);
  return w.take();
}

core::MetricsSnapshot decode_metrics_body(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  core::MetricsSnapshot m;
  m.messages_processed = r.read_varint();
  m.calls_served = r.read_varint();
  m.probes_sent = r.read_varint();
  m.pessimism_events = r.read_varint();
  m.pessimism_wait_ns = r.read_varint();
  m.out_of_order_arrivals = r.read_varint();
  m.duplicates_discarded = r.read_varint();
  m.gaps_detected = r.read_varint();
  m.checkpoints_taken = r.read_varint();
  m.trace_events_recorded = r.read_varint();
  m.trace_events_dropped = r.read_varint();
  m.net_bytes_in = r.read_varint();
  m.net_bytes_out = r.read_varint();
  m.net_frames_in = r.read_varint();
  m.net_frames_out = r.read_varint();
  m.net_reconnects = r.read_varint();
  m.net_heartbeat_misses = r.read_varint();
  m.net_frames_refused = r.read_varint();
  m.net_queue_high_water = r.read_varint();
  m.store_records_written = r.read_varint();
  m.store_flushes = r.read_varint();
  m.gw_requests = r.read_varint();
  m.gw_acked = r.read_varint();
  m.gw_rejected = r.read_varint();
  m.gw_errors = r.read_varint();
  m.gw_commit_batches = r.read_varint();
  m.gw_commit_records = r.read_varint();
  m.gw_commit_batch_max = r.read_varint();
  if (!r.at_end()) throw NetError("metrics body: trailing bytes");
  return m;
}

// --- Client -----------------------------------------------------------------

std::optional<ControlClient> ControlClient::connect(
    const std::string& addr, std::chrono::milliseconds timeout) {
  const auto parsed = SockAddr::parse(addr);
  if (!parsed) return std::nullopt;
  const auto deadline = Clock::now() + timeout;
  do {
    bool in_progress = false;
    std::string err;
    Fd fd = connect_tcp(*parsed, &in_progress, &err);
    if (fd.valid() && in_progress) {
      pollfd p{fd.get(), POLLOUT, 0};
      const int rc = ::poll(&p, 1, 250);
      if (rc > 0 && connect_error(fd.get()) == 0) in_progress = false;
    }
    if (fd.valid() && !in_progress && connect_error(fd.get()) == 0)
      return ControlClient(std::move(fd));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  } while (Clock::now() < deadline);
  return std::nullopt;
}

NetMessage ControlClient::request(NetMsgType type,
                                  const std::vector<std::byte>& payload) {
  write_all(fd_.get(), encode_message(type, payload));
  for (;;) {
    if (auto msg = decoder_.next()) {
      if (msg->type == NetMsgType::kError)
        throw NetError("control request failed: " +
                       decode_string_body(msg->payload));
      return std::move(*msg);
    }
    pollfd p{fd_.get(), POLLIN, 0};
    const int rc = ::poll(&p, 1, 60000);
    if (rc <= 0) throw NetError("control: response timeout");
    std::byte buf[16384];
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n == 0) throw NetError("control: connection closed");
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      throw NetError("control: read failed");
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

namespace {
void expect(const NetMessage& msg, NetMsgType want, const char* what) {
  if (msg.type != want)
    throw NetError(std::string("control: unexpected response to ") + what);
}
}  // namespace

void ControlClient::ping() {
  expect(request(NetMsgType::kPing, {}), NetMsgType::kAck, "ping");
}

std::int64_t ControlClient::inject(const std::string& input, std::int64_t vt,
                                   const Payload& payload) {
  const auto resp =
      request(NetMsgType::kInject, InjectBody{input, vt, payload}.encode());
  expect(resp, NetMsgType::kInjectAck, "inject");
  return decode_i64_body(resp.payload);
}

void ControlClient::close_input(const std::string& input) {
  expect(request(NetMsgType::kCloseInput, encode_string_body(input)),
         NetMsgType::kAck, "close-input");
}

bool ControlClient::drain(std::chrono::milliseconds timeout) {
  const auto resp =
      request(NetMsgType::kDrain, encode_i64_body(timeout.count()));
  expect(resp, NetMsgType::kDrainAck, "drain");
  return decode_i64_body(resp.payload) != 0;
}

std::vector<ControlOutputRecord> ControlClient::outputs(
    const std::string& output) {
  const auto resp =
      request(NetMsgType::kGetOutputs, encode_string_body(output));
  expect(resp, NetMsgType::kOutputs, "get-outputs");
  return decode_outputs_body(resp.payload);
}

core::MetricsSnapshot ControlClient::metrics() {
  const auto resp = request(NetMsgType::kGetMetrics, {});
  expect(resp, NetMsgType::kMetrics, "get-metrics");
  return decode_metrics_body(resp.payload);
}

void ControlClient::shutdown_node() {
  expect(request(NetMsgType::kShutdown, {}), NetMsgType::kAck, "shutdown");
}

}  // namespace tart::net
