#include "net/control.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <thread>

#include "serde/archive.h"

namespace tart::net {
namespace {

using Clock = std::chrono::steady_clock;

void write_all(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      (void)::poll(&p, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw NetError("control: write failed");
  }
}

}  // namespace

// --- Bodies -----------------------------------------------------------------

std::vector<std::byte> InjectBody::encode() const {
  serde::Writer w;
  w.write_string(input);
  w.write_svarint(vt);
  payload.encode(w);
  return w.take();
}

InjectBody InjectBody::decode(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  InjectBody b;
  b.input = r.read_string();
  b.vt = r.read_svarint();
  b.payload = Payload::decode(r);
  if (!r.at_end()) throw NetError("inject body: trailing bytes");
  return b;
}

std::vector<std::byte> encode_string_body(const std::string& s) {
  serde::Writer w;
  w.write_string(s);
  return w.take();
}

std::string decode_string_body(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  std::string s = r.read_string();
  if (!r.at_end()) throw NetError("string body: trailing bytes");
  return s;
}

std::vector<std::byte> encode_i64_body(std::int64_t v) {
  serde::Writer w;
  w.write_svarint(v);
  return w.take();
}

std::int64_t decode_i64_body(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  const std::int64_t v = r.read_svarint();
  if (!r.at_end()) throw NetError("i64 body: trailing bytes");
  return v;
}

std::vector<std::byte> encode_outputs_body(
    const std::vector<ControlOutputRecord>& records) {
  serde::Writer w;
  w.write_varint(records.size());
  for (const auto& rec : records) {
    w.write_svarint(rec.vt);
    rec.payload.encode(w);
    w.write_bool(rec.stutter);
  }
  return w.take();
}

std::vector<ControlOutputRecord> decode_outputs_body(
    const std::vector<std::byte>& p) {
  serde::Reader r(p);
  const auto n = r.read_varint();
  std::vector<ControlOutputRecord> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ControlOutputRecord rec;
    rec.vt = r.read_svarint();
    rec.payload = Payload::decode(r);
    rec.stutter = r.read_bool();
    out.push_back(std::move(rec));
  }
  if (!r.at_end()) throw NetError("outputs body: trailing bytes");
  return out;
}

std::vector<std::byte> encode_metrics_body(const core::MetricsSnapshot& m) {
  serde::Writer w;
#define TART_NET_WRITE_FIELD(field, prom, help, agg, scale) \
  w.write_varint(m.field);
  TART_METRICS_SCALAR_FIELDS(TART_NET_WRITE_FIELD)
#undef TART_NET_WRITE_FIELD
  return w.take();
}

core::MetricsSnapshot decode_metrics_body(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  core::MetricsSnapshot m;
#define TART_NET_READ_FIELD(field, prom, help, agg, scale) \
  m.field = r.read_varint();
  TART_METRICS_SCALAR_FIELDS(TART_NET_READ_FIELD)
#undef TART_NET_READ_FIELD
  if (!r.at_end()) throw NetError("metrics body: trailing bytes");
  return m;
}

std::vector<std::byte> encode_status_body(const core::StatusReport& report) {
  serde::Writer w;
  w.write_varint(report.components.size());
  for (const core::ComponentStatus& c : report.components) {
    w.write_varint(c.id.value());
    w.write_string(c.name);
    w.write_svarint(c.vt_ticks);
    w.write_varint(c.pending);
    w.write_bool(c.exhausted);
    w.write_bool(c.crashed);
    w.write_bool(c.held);
    w.write_svarint(c.held_vt);
    w.write_varint(c.held_wire.value());
    w.write_varint(c.inputs.size());
    for (const core::WireStatus& ws : c.inputs) {
      w.write_varint(ws.wire.value());
      w.write_string(ws.sender);
      w.write_svarint(ws.horizon_ticks);
      w.write_varint(ws.pending);
      w.write_bool(ws.blocking);
    }
  }
  w.write_varint(report.placement_epoch);
  w.write_varint(report.placement.size());
  for (const core::PlacementEntry& e : report.placement) {
    w.write_varint(e.component);
    w.write_varint(e.engine);
    w.write_varint(e.epoch);
  }
  w.write_varint(report.migrations.size());
  for (const core::MigrationStatus& m : report.migrations) {
    w.write_varint(m.epoch);
    w.write_varint(m.component);
    w.write_varint(m.from_engine);
    w.write_varint(m.to_engine);
    w.write_string(m.stage);
  }
  return w.take();
}

core::StatusReport decode_status_body(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  core::StatusReport report;
  const std::uint64_t n = r.read_varint();
  report.components.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    core::ComponentStatus c;
    c.id = ComponentId(static_cast<std::uint32_t>(r.read_varint()));
    c.name = r.read_string();
    c.vt_ticks = r.read_svarint();
    c.pending = r.read_varint();
    c.exhausted = r.read_bool();
    c.crashed = r.read_bool();
    c.held = r.read_bool();
    c.held_vt = r.read_svarint();
    c.held_wire = WireId(static_cast<std::uint32_t>(r.read_varint()));
    const std::uint64_t nin = r.read_varint();
    c.inputs.reserve(nin);
    for (std::uint64_t j = 0; j < nin; ++j) {
      core::WireStatus ws;
      ws.wire = WireId(static_cast<std::uint32_t>(r.read_varint()));
      ws.sender = r.read_string();
      ws.horizon_ticks = r.read_svarint();
      ws.pending = r.read_varint();
      ws.blocking = r.read_bool();
      c.inputs.push_back(std::move(ws));
    }
    report.components.push_back(std::move(c));
  }
  report.placement_epoch = r.read_varint();
  const std::uint64_t np = r.read_varint();
  report.placement.reserve(np);
  for (std::uint64_t i = 0; i < np; ++i) {
    core::PlacementEntry e;
    e.component = static_cast<std::uint32_t>(r.read_varint());
    e.engine = static_cast<std::uint32_t>(r.read_varint());
    e.epoch = r.read_varint();
    report.placement.push_back(e);
  }
  const std::uint64_t nm = r.read_varint();
  report.migrations.reserve(nm);
  for (std::uint64_t i = 0; i < nm; ++i) {
    core::MigrationStatus m;
    m.epoch = r.read_varint();
    m.component = static_cast<std::uint32_t>(r.read_varint());
    m.from_engine = static_cast<std::uint32_t>(r.read_varint());
    m.to_engine = static_cast<std::uint32_t>(r.read_varint());
    m.stage = r.read_string();
    report.migrations.push_back(std::move(m));
  }
  if (!r.at_end()) throw NetError("status body: trailing bytes");
  return report;
}

std::vector<std::byte> encode_obs_body(const std::vector<obs::Sample>& samples) {
  serde::Writer w;
  obs::encode_samples(w, samples);
  return w.take();
}

std::vector<obs::Sample> decode_obs_body(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  auto samples = obs::decode_samples(r);
  if (!r.at_end()) throw NetError("obs body: trailing bytes");
  return samples;
}

std::vector<std::byte> ObsPushBody::encode() const {
  serde::Writer w;
  w.write_string(node);
  w.write_svarint(ts_ms);
#define TART_NET_WRITE_FIELD(field, prom, help, agg, scale) \
  w.write_varint(metrics.field);
  TART_METRICS_SCALAR_FIELDS(TART_NET_WRITE_FIELD)
#undef TART_NET_WRITE_FIELD
  obs::encode_samples(w, samples);
  return w.take();
}

ObsPushBody ObsPushBody::decode(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  ObsPushBody b;
  b.node = r.read_string();
  b.ts_ms = r.read_svarint();
#define TART_NET_READ_FIELD(field, prom, help, agg, scale) \
  b.metrics.field = r.read_varint();
  TART_METRICS_SCALAR_FIELDS(TART_NET_READ_FIELD)
#undef TART_NET_READ_FIELD
  b.samples = obs::decode_samples(r);
  if (!r.at_end()) throw NetError("obs-push body: trailing bytes");
  return b;
}

std::vector<std::byte> MigrateBody::encode() const {
  serde::Writer w;
  w.write_string(component);
  w.write_string(to_node);
  return w.take();
}

MigrateBody MigrateBody::decode(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  MigrateBody b;
  b.component = r.read_string();
  b.to_node = r.read_string();
  if (!r.at_end()) throw NetError("migrate body: trailing bytes");
  return b;
}

std::vector<std::byte> MigrateResultBody::encode() const {
  serde::Writer w;
  w.write_bool(ok);
  w.write_varint(epoch);
  w.write_varint(slice_bytes);
  w.write_varint(delta_bytes);
  w.write_varint(record_count);
  // Millisecond durations travel as whole microseconds (serde has no
  // float); sub-microsecond truncation is noise at migration scale.
  w.write_varint(static_cast<std::uint64_t>(transfer_ms * 1000.0));
  w.write_varint(static_cast<std::uint64_t>(blackout_ms * 1000.0));
  w.write_string(error);
  return w.take();
}

MigrateResultBody MigrateResultBody::decode(const std::vector<std::byte>& p) {
  serde::Reader r(p);
  MigrateResultBody b;
  b.ok = r.read_bool();
  b.epoch = r.read_varint();
  b.slice_bytes = r.read_varint();
  b.delta_bytes = r.read_varint();
  b.record_count = r.read_varint();
  b.transfer_ms = static_cast<double>(r.read_varint()) / 1000.0;
  b.blackout_ms = static_cast<double>(r.read_varint()) / 1000.0;
  b.error = r.read_string();
  if (!r.at_end()) throw NetError("migrate result body: trailing bytes");
  return b;
}

std::vector<std::byte> CheckpointResultBody::encode() const {
  serde::Writer w;
  w.write_bool(ok);
  w.write_varint(id);
  w.write_varint(bytes);
  w.write_varint(covered_records);
  w.write_varint(reclaimed_records);
  w.write_string(error);
  return w.take();
}

CheckpointResultBody CheckpointResultBody::decode(
    const std::vector<std::byte>& p) {
  serde::Reader r(p);
  CheckpointResultBody b;
  b.ok = r.read_bool();
  b.id = r.read_varint();
  b.bytes = r.read_varint();
  b.covered_records = r.read_varint();
  b.reclaimed_records = r.read_varint();
  b.error = r.read_string();
  if (!r.at_end()) throw NetError("checkpoint body: trailing bytes");
  return b;
}

// --- Client -----------------------------------------------------------------

std::optional<ControlClient> ControlClient::connect(
    const std::string& addr, std::chrono::milliseconds timeout) {
  const auto parsed = SockAddr::parse(addr);
  if (!parsed) return std::nullopt;
  const auto deadline = Clock::now() + timeout;
  do {
    bool in_progress = false;
    std::string err;
    Fd fd = connect_tcp(*parsed, &in_progress, &err);
    if (fd.valid() && in_progress) {
      pollfd p{fd.get(), POLLOUT, 0};
      const int rc = ::poll(&p, 1, 250);
      if (rc > 0 && connect_error(fd.get()) == 0) in_progress = false;
    }
    if (fd.valid() && !in_progress && connect_error(fd.get()) == 0)
      return ControlClient(std::move(fd));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  } while (Clock::now() < deadline);
  return std::nullopt;
}

NetMessage ControlClient::request(NetMsgType type,
                                  const std::vector<std::byte>& payload) {
  write_all(fd_.get(), encode_message(type, payload));
  for (;;) {
    if (auto msg = decoder_.next()) {
      if (msg->type == NetMsgType::kError)
        throw NetError("control request failed: " +
                       decode_string_body(msg->payload));
      return std::move(*msg);
    }
    pollfd p{fd_.get(), POLLIN, 0};
    const int rc = ::poll(&p, 1, 60000);
    if (rc <= 0) throw NetError("control: response timeout");
    std::byte buf[16384];
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n == 0) throw NetError("control: connection closed");
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      throw NetError("control: read failed");
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

namespace {
void expect(const NetMessage& msg, NetMsgType want, const char* what) {
  if (msg.type != want)
    throw NetError(std::string("control: unexpected response to ") + what);
}
}  // namespace

void ControlClient::ping() {
  expect(request(NetMsgType::kPing, {}), NetMsgType::kAck, "ping");
}

std::int64_t ControlClient::inject(const std::string& input, std::int64_t vt,
                                   const Payload& payload) {
  const auto resp =
      request(NetMsgType::kInject, InjectBody{input, vt, payload}.encode());
  expect(resp, NetMsgType::kInjectAck, "inject");
  return decode_i64_body(resp.payload);
}

void ControlClient::close_input(const std::string& input) {
  expect(request(NetMsgType::kCloseInput, encode_string_body(input)),
         NetMsgType::kAck, "close-input");
}

bool ControlClient::drain(std::chrono::milliseconds timeout) {
  const auto resp =
      request(NetMsgType::kDrain, encode_i64_body(timeout.count()));
  expect(resp, NetMsgType::kDrainAck, "drain");
  return decode_i64_body(resp.payload) != 0;
}

std::vector<ControlOutputRecord> ControlClient::outputs(
    const std::string& output) {
  const auto resp =
      request(NetMsgType::kGetOutputs, encode_string_body(output));
  expect(resp, NetMsgType::kOutputs, "get-outputs");
  return decode_outputs_body(resp.payload);
}

core::MetricsSnapshot ControlClient::metrics() {
  const auto resp = request(NetMsgType::kGetMetrics, {});
  expect(resp, NetMsgType::kMetrics, "get-metrics");
  return decode_metrics_body(resp.payload);
}

core::StatusReport ControlClient::status() {
  const auto resp = request(NetMsgType::kGetStatus, {});
  expect(resp, NetMsgType::kStatus, "get-status");
  return decode_status_body(resp.payload);
}

std::vector<obs::Sample> ControlClient::obs_samples() {
  const auto resp = request(NetMsgType::kGetObs, {});
  expect(resp, NetMsgType::kObs, "get-obs");
  return decode_obs_body(resp.payload);
}

CheckpointResultBody ControlClient::checkpoint() {
  const auto resp = request(NetMsgType::kCheckpoint, {});
  expect(resp, NetMsgType::kCheckpointAck, "checkpoint");
  return CheckpointResultBody::decode(resp.payload);
}

MigrateResultBody ControlClient::migrate(const std::string& component,
                                         const std::string& to_node) {
  const auto resp = request(NetMsgType::kMigrate,
                            MigrateBody{component, to_node}.encode());
  expect(resp, NetMsgType::kMigrateAck, "migrate");
  return MigrateResultBody::decode(resp.payload);
}

void ControlClient::shutdown_node() {
  expect(request(NetMsgType::kShutdown, {}), NetMsgType::kAck, "shutdown");
}

}  // namespace tart::net
