// Socket wire format: length-prefixed, CRC-checked envelopes.
//
// Everything that crosses a TCP connection between tart processes — peer
// handshakes, heartbeats, transport::Frame traffic, and the tart-node
// control protocol — travels inside one envelope shape:
//
//   offset  size  field
//   0       4     magic 0x54524154 ("TART", little-endian)
//   4       1     format version (kNetFormatVersion)
//   5       1     message type (NetMsgType)
//   6       4     payload length N (little-endian; <= kMaxNetPayload)
//   10      N     payload (serde-encoded body, shape per type)
//   10+N    4     CRC-32 (IEEE) of bytes [4, 10+N) — version through payload
//
// The decoder is incremental (feed whatever the socket produced, take out
// whole messages) and hardened: truncation simply waits for more bytes,
// while bad magic, unknown version, oversized length, or a CRC mismatch
// raise NetError — the connection-fatal signal — without ever reading past
// the buffer. Payload *content* is decoded by the caller with serde, whose
// Reader is bounds-checked; a serde::DecodeError is equally
// connection-fatal, never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serde/archive.h"
#include "transport/frame.h"

namespace tart::net {

/// Connection-fatal protocol violation (malformed envelope or body).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kNetMagic = 0x54524154;  // "TART"
inline constexpr std::uint8_t kNetFormatVersion = 1;
inline constexpr std::size_t kNetHeaderBytes = 10;
inline constexpr std::size_t kNetTrailerBytes = 4;
/// Upper bound on a single payload; anything larger is a corrupt length
/// field (a checkpoint-sized DataFrame is far below this).
inline constexpr std::uint32_t kMaxNetPayload = 16u * 1024 * 1024;

enum class NetMsgType : std::uint8_t {
  // Peer protocol.
  kHello = 1,      ///< node name + deployment fingerprint; first on a conn
  kHeartbeat = 2,  ///< idle keep-alive; any traffic counts as liveness
  kFrame = 3,      ///< one transport::Frame

  // tart-node control protocol (external clients).
  kPing = 16,        ///< liveness probe -> kAck
  kInject = 17,      ///< external input message -> kInjectAck
  kInjectAck = 18,   ///< assigned virtual time
  kCloseInput = 19,  ///< close an external input wire -> kAck
  kDrain = 20,       ///< close local inputs + await quiescence -> kDrainAck
  kDrainAck = 21,    ///< bool: quiesced within the timeout
  kGetOutputs = 22,  ///< fetch records of an external output -> kOutputs
  kOutputs = 23,
  kGetMetrics = 24,  ///< fetch merged MetricsSnapshot -> kMetrics
  kMetrics = 25,
  kShutdown = 26,  ///< stop the node -> kAck (sent before exit)
  kAck = 27,
  kError = 28,      ///< request failed; payload = message string
  kGetStatus = 29,  ///< fetch the silence wavefront -> kStatus
  kStatus = 30,
  kGetObs = 31,  ///< fetch telemetry registry samples -> kObs
  kObs = 32,
  /// Push-based remote-write: a node periodically ships its telemetry
  /// (ObsPushBody) to a collector (tart-obs --listen) -> kAck. Same
  /// samples as kObs, so collectors aggregate pushed and polled nodes
  /// with identical SUM/MAX/merge semantics.
  kObsPush = 33,
  /// Force a durable checkpoint now (src/durability) -> kCheckpointAck
  /// (CheckpointResultBody), or kError when durability is off.
  kCheckpoint = 34,
  kCheckpointAck = 35,

  // Placement / live migration (peer protocol unless noted).
  /// Epoch-stamped placement override broadcast (PlacementUpdateBody).
  /// Stale epochs are ignored by the receiver.
  kPlacementUpdate = 36,
  /// Durable-checkpoint covered-seq bounds per external wire
  /// (CoverUpdateBody); senders trim output retention below the bound.
  kCoverUpdate = 37,
  // Chunked, CRC-protected, resumable blob channel (net/stream_channel.h).
  kStreamOpen = 38,
  kStreamChunk = 39,
  kStreamAck = 40,
  kStreamClose = 41,
  /// Migration cutover commit from source to target (MigrateCommitBody)
  /// -> kMigrateCommitAck once the target has journaled adoption.
  kMigrateCommit = 42,
  kMigrateCommitAck = 43,
  /// Control verb: move a component to another partition (MigrateBody)
  /// -> kMigrateAck (MigrateResultBody) or kError.
  kMigrate = 44,
  kMigrateAck = 45,
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the classic table-driven form.
[[nodiscard]] std::uint32_t crc32(const std::byte* data, std::size_t size);
[[nodiscard]] std::uint32_t crc32(const std::vector<std::byte>& data);

/// One decoded envelope.
struct NetMessage {
  NetMsgType type = NetMsgType::kHeartbeat;
  std::vector<std::byte> payload;
};

/// Serializes an envelope around an already-encoded payload.
[[nodiscard]] std::vector<std::byte> encode_message(
    NetMsgType type, const std::vector<std::byte>& payload);
[[nodiscard]] inline std::vector<std::byte> encode_message(NetMsgType type) {
  return encode_message(type, {});
}

/// Envelope for one transport::Frame.
[[nodiscard]] std::vector<std::byte> encode_frame_message(
    const transport::Frame& frame);
/// Decodes a kFrame payload. Throws NetError/serde::DecodeError when
/// malformed (trailing bytes included).
[[nodiscard]] transport::Frame decode_frame_payload(
    const std::vector<std::byte>& payload);

/// Incremental stream decoder: feed() socket bytes, next() whole messages.
class StreamDecoder {
 public:
  void feed(const std::byte* data, std::size_t size);
  void feed(const std::vector<std::byte>& data) {
    feed(data.data(), data.size());
  }

  /// Extracts the next complete message, or nullopt when more bytes are
  /// needed. Throws NetError on a malformed envelope; the decoder is then
  /// poisoned (every later call throws) — callers must drop the connection.
  [[nodiscard]] std::optional<NetMessage> next();

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

/// One placement override: a component that no longer lives where the
/// deployment config says it does, stamped with the epoch that moved it.
struct PlacementMove {
  std::uint32_t component = 0;  ///< ComponentId::value()
  std::uint32_t engine = 0;     ///< EngineId::value() of the new owner
  std::uint64_t epoch = 0;      ///< placement epoch that applied this move
};

/// Durable-checkpoint coverage of one external wire at the sending node's
/// consumer: retention below covered_seq can never be replayed again.
struct WireCoverBound {
  std::uint32_t wire = 0;  ///< WireId::value()
  std::uint64_t covered_seq = 0;
};

/// Peer handshake body.
///
/// The fingerprint check is split (see docs/PLACEMENT.md): `deployment_fp`
/// hashes only topology + params + partition data addresses and must match
/// exactly — mismatched wire ids would alias unrelated wires. Placement is
/// carried as an epoch plus explicit overrides and merely *synchronized*:
/// a node that missed a migration learns about it here instead of being
/// refused the connection.
struct HelloBody {
  std::string node;
  std::uint64_t deployment_fp = 0;    ///< topology fingerprint; must match
  std::uint64_t placement_epoch = 0;  ///< highest placement epoch applied
  std::vector<PlacementMove> moves;   ///< overrides vs the config placement
  std::vector<WireCoverBound> covered;  ///< durable coverage of local inputs

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static HelloBody decode(const std::vector<std::byte>& payload);
};

/// kPlacementUpdate broadcast: the same override list as HELLO carries,
/// pushed eagerly when a migration commits.
struct PlacementUpdateBody {
  std::uint64_t placement_epoch = 0;
  std::vector<PlacementMove> moves;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static PlacementUpdateBody decode(
      const std::vector<std::byte>& payload);
};

/// kCoverUpdate: fresh durable-checkpoint coverage after a checkpoint
/// completes, so remote senders can trim retention without waiting for the
/// next reconnect.
struct CoverUpdateBody {
  std::vector<WireCoverBound> covered;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static CoverUpdateBody decode(
      const std::vector<std::byte>& payload);
};

}  // namespace tart::net
