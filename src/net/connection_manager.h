// ConnectionManager: one TCP connection per peer, kept alive forever.
//
// Each unordered pair of nodes shares a single full-duplex connection; the
// lexicographically smaller node name dials, the larger accepts — so a
// partition never races two sockets for the same pair. The dialer redials
// forever with exponential backoff plus deterministic jitter; the acceptor
// adopts a replacement connection whenever the peer comes back (kicking
// the stale fd). Both sides exchange a HELLO carrying the node name and
// the deployment-config fingerprint; a mismatch is refused — two nodes
// built from different configs would disagree about wire ids, which is a
// determinism violation, not a retryable fault.
//
// Liveness: every heartbeat_interval each side sends a heartbeat (any
// inbound byte counts as life); a peer silent for miss_limit intervals is
// declared down — surfaced as a link event so the host can re-probe the
// wires behind it once the link returns. Frame loss across a down window
// is *expected* here: the TART protocol layers above (retention buffers,
// sequence-gap replay, curiosity probes) already recover lost frames, so
// the net layer only promises FIFO delivery per connection incarnation,
// exactly the contract real links give.
//
// Backpressure: per-peer outbound queues are bounded (frames); send()
// refuses — never blocks — when the peer is down or the queue is full.
// Refused sends are counted and healed by the protocol's replay machinery.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "transport/frame.h"

namespace tart::net {

struct NetTuning {
  std::chrono::milliseconds heartbeat_interval{200};
  /// Intervals of silence before a peer is declared dead.
  int heartbeat_miss_limit = 5;
  std::chrono::milliseconds reconnect_min{50};
  std::chrono::milliseconds reconnect_max{2000};
  /// Per-peer outbound queue bound, in frames.
  std::size_t max_queued_frames = 4096;
  /// Seed for backoff jitter (deterministic per process).
  std::uint64_t jitter_seed = 0x7EA7;
};

/// Aggregate counters over every peer connection (monotone).
struct NetCounters {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;   ///< transport frames (not heartbeats/hellos)
  std::uint64_t frames_out = 0;
  std::uint64_t msgs_in = 0;   ///< non-frame peer messages (placement/stream)
  std::uint64_t msgs_out = 0;
  std::uint64_t connects = 0;    ///< link-up transitions, first included
  std::uint64_t reconnects = 0;  ///< link-up transitions after a down
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t frames_refused = 0;  ///< send() rejections (down/full)
  std::uint64_t decode_errors = 0;   ///< malformed inbound data -> conn drop
  std::uint64_t queue_high_water = 0;  ///< max frames queued to any peer
};

class ConnectionManager {
 public:
  /// Inbound transport frames; runs on the net thread — handlers must not
  /// block on net-thread work (runtime dispatch is fine: engines never
  /// call back into the net thread synchronously).
  using FrameHandler =
      std::function<void(const std::string& peer, transport::Frame)>;
  /// Link up/down transitions; net thread.
  using LinkHandler = std::function<void(const std::string& peer, bool up)>;
  /// Non-frame peer messages (placement updates, migration streams, cover
  /// bounds); net thread, same blocking rules as FrameHandler.
  using MessageHandler =
      std::function<void(const std::string& peer, NetMessage msg)>;
  /// A peer's HELLO arrived (fires on every connection incarnation, right
  /// after the link-up event): carries its placement epoch, overrides and
  /// durable cover bounds. Net thread.
  using HelloInfoHandler =
      std::function<void(const std::string& peer, const HelloBody& hello)>;
  /// Fills the placement/cover advertisement into our outgoing HELLO
  /// (node + deployment_fp are already set). Net thread.
  using HelloFn = std::function<void(HelloBody& hello)>;

  struct Options {
    std::string node;    ///< our name
    std::string listen;  ///< "host:port"; empty = dial-only node
    /// Every other node: name -> "host:port" (dialed only when our name
    /// orders before; still listed so inbound HELLOs validate).
    std::map<std::string, std::string> peers;
    std::uint64_t deployment_fp = 0;
    NetTuning tuning;
  };

  ConnectionManager(Options options, FrameHandler on_frame,
                    LinkHandler on_link, MessageHandler on_message = nullptr,
                    HelloInfoHandler on_hello = nullptr,
                    HelloFn hello_fn = nullptr);
  ~ConnectionManager();

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  /// Queues a frame toward a peer. Thread-safe. False when the peer is
  /// down, its queue is full, or the manager is shut down; the frame is
  /// then dropped (counted) and the protocol's replay path recovers it.
  bool send(const std::string& peer, const transport::Frame& frame);

  /// Queues a non-frame peer message (placement/stream/cover). Same
  /// contract and queue bound as send(): refused — never blocked — when the
  /// peer is down or the queue is full. Stream senders treat a refusal as
  /// link loss and resume after reconnect.
  bool send_message(const std::string& peer, const NetMessage& msg);

  [[nodiscard]] bool peer_up(const std::string& peer) const;
  /// Actual bound listen port (for configs with port 0). 0 if not listening.
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }

  /// The manager's event loop, for co-hosting light periodic work (the
  /// host's telemetry gauge sampling) on the net thread. Remember the
  /// threading contract: add_timer/cancel_timer only from the loop thread
  /// (post() to get there); callbacks must never block.
  [[nodiscard]] EventLoop& loop() { return loop_; }

  [[nodiscard]] NetCounters counters() const;

  /// Stops the loop thread and closes every socket. Idempotent.
  void shutdown();

 private:
  struct Peer {
    std::string name;
    SockAddr addr;
    bool we_dial = false;

    Fd fd;                  // loop thread only
    bool connecting = false;  ///< non-blocking connect pending writability
    bool hello_sent = false;
    bool hello_received = false;
    StreamDecoder decoder;
    EventLoop::Clock::time_point last_recv{};

    /// Control = hello/heartbeat (not queue-bounded); frames and messages
    /// both count against the per-peer queue bound.
    enum class OutKind : std::uint8_t { kControl, kFrame, kMessage };
    struct OutBuf {
      std::vector<std::byte> bytes;
      std::size_t offset = 0;
      OutKind kind = OutKind::kControl;
    };
    std::deque<OutBuf> outq;  // loop thread only

    int backoff_exp = 0;
    EventLoop::TimerId reconnect_timer = 0;
    bool ever_up = false;

    /// Shared with send() callers.
    std::atomic<bool> up{false};
    std::atomic<std::size_t> queued_frames{0};
  };

  // All private methods below run on the loop thread.
  void start_listening();
  void on_listener_ready();
  void start_dial(Peer& peer);
  void schedule_redial(Peer& peer);
  void on_peer_ready(Peer& peer, unsigned events);
  void on_pending_ready(int fd, unsigned events);
  void finish_connect(Peer& peer);
  void adopt_connection(Peer& peer, Fd fd, StreamDecoder decoder,
                        EventLoop::Clock::time_point last_recv,
                        HelloBody peer_hello);
  void mark_up(Peer& peer);
  void drop_connection(Peer& peer, const char* reason);
  void handle_readable(Peer& peer);
  void handle_message(Peer& peer, NetMessage msg);
  void flush_writes(Peer& peer);
  void enqueue_bytes(Peer& peer, std::vector<std::byte> bytes,
                     Peer::OutKind kind);
  void update_interest(Peer& peer);
  void send_hello(Peer& peer);
  void heartbeat_tick();
  bool queue_toward(const std::string& peer_name, std::vector<std::byte> bytes,
                    Peer::OutKind kind);

  const Options options_;
  const FrameHandler on_frame_;
  const LinkHandler on_link_;
  const MessageHandler on_message_;
  const HelloInfoHandler on_hello_;
  const HelloFn hello_fn_;

  EventLoop loop_;
  std::map<std::string, std::unique_ptr<Peer>> peers_;

  Fd listener_;
  std::uint16_t listen_port_ = 0;
  /// Accepted connections whose HELLO has not arrived yet: fd -> decoder.
  struct PendingConn {
    Fd fd;
    StreamDecoder decoder;
    EventLoop::Clock::time_point since;
  };
  std::map<int, PendingConn> pending_;

  Rng jitter_;  // loop thread only

  struct Counters {
    std::atomic<std::uint64_t> bytes_in{0}, bytes_out{0};
    std::atomic<std::uint64_t> frames_in{0}, frames_out{0};
    std::atomic<std::uint64_t> msgs_in{0}, msgs_out{0};
    std::atomic<std::uint64_t> connects{0}, reconnects{0};
    std::atomic<std::uint64_t> heartbeat_misses{0}, frames_refused{0};
    std::atomic<std::uint64_t> decode_errors{0}, queue_high_water{0};
  };
  Counters counters_;

  std::atomic<bool> shut_down_{false};
  std::thread thread_;
};

}  // namespace tart::net
