#include "net/connection_manager.h"

#include <unistd.h>

#include <cerrno>

#include "common/logging.h"
#include "obs/prof.h"

namespace tart::net {

namespace {
/// A pending (pre-HELLO) inbound connection older than this is dropped.
constexpr std::chrono::seconds kPendingHelloTimeout{5};
}  // namespace

ConnectionManager::ConnectionManager(Options options, FrameHandler on_frame,
                                     LinkHandler on_link,
                                     MessageHandler on_message,
                                     HelloInfoHandler on_hello,
                                     HelloFn hello_fn)
    : options_(std::move(options)),
      on_frame_(std::move(on_frame)),
      on_link_(std::move(on_link)),
      on_message_(std::move(on_message)),
      on_hello_(std::move(on_hello)),
      hello_fn_(std::move(hello_fn)),
      jitter_(options_.tuning.jitter_seed) {
  for (const auto& [name, addr_spec] : options_.peers) {
    if (name == options_.node) continue;
    auto peer = std::make_unique<Peer>();
    peer->name = name;
    const auto addr = SockAddr::parse(addr_spec);
    if (!addr)
      throw NetError("bad peer address '" + addr_spec + "' for " + name);
    peer->addr = *addr;
    // One connection per pair: the smaller name dials, the larger accepts.
    peer->we_dial = options_.node < name;
    peers_.emplace(name, std::move(peer));
  }

  // Bind before the loop starts so listen_port() is valid on return.
  if (!options_.listen.empty()) {
    const auto addr = SockAddr::parse(options_.listen);
    if (!addr) throw NetError("bad listen address '" + options_.listen + "'");
    std::string error;
    listener_ = listen_tcp(*addr, &error);
    if (!listener_.valid()) throw NetError("listen failed: " + error);
    listen_port_ = local_port(listener_.get());
  }

  thread_ = std::thread([this] {
    loop_.post([this] {
      start_listening();
      for (auto& [name, peer] : peers_)
        if (peer->we_dial) start_dial(*peer);
      heartbeat_tick();
    });
    loop_.run();
  });
}

ConnectionManager::~ConnectionManager() { shutdown(); }

void ConnectionManager::shutdown() {
  if (shut_down_.exchange(true)) return;
  loop_.stop();
  if (thread_.joinable()) thread_.join();
  // Loop thread is gone; closing fds here is race-free.
  for (auto& [name, peer] : peers_) {
    peer->up.store(false);
    peer->fd.reset();
  }
  pending_.clear();
  listener_.reset();
}

bool ConnectionManager::queue_toward(const std::string& peer_name,
                                     std::vector<std::byte> bytes,
                                     Peer::OutKind kind) {
  if (shut_down_.load()) return false;
  const auto it = peers_.find(peer_name);
  if (it == peers_.end()) {
    counters_.frames_refused.fetch_add(1);
    return false;
  }
  Peer* peer = it->second.get();
  if (!peer->up.load() ||
      peer->queued_frames.load() >= options_.tuning.max_queued_frames) {
    counters_.frames_refused.fetch_add(1);
    return false;
  }
  peer->queued_frames.fetch_add(1);
  loop_.post([this, peer, kind, bytes = std::move(bytes)]() mutable {
    if (!peer->fd.valid() || !peer->up.load()) {
      peer->queued_frames.fetch_sub(1);
      counters_.frames_refused.fetch_add(1);
      return;
    }
    enqueue_bytes(*peer, std::move(bytes), kind);
  });
  return true;
}

bool ConnectionManager::send(const std::string& peer_name,
                             const transport::Frame& frame) {
  // Serialize on the caller's thread (cheap parallelism); the loop thread
  // only moves bytes.
  return queue_toward(peer_name, encode_frame_message(frame),
                      Peer::OutKind::kFrame);
}

bool ConnectionManager::send_message(const std::string& peer_name,
                                     const NetMessage& msg) {
  return queue_toward(peer_name, encode_message(msg.type, msg.payload),
                      Peer::OutKind::kMessage);
}

bool ConnectionManager::peer_up(const std::string& peer_name) const {
  const auto it = peers_.find(peer_name);
  return it != peers_.end() && it->second->up.load();
}

NetCounters ConnectionManager::counters() const {
  NetCounters c;
  c.bytes_in = counters_.bytes_in.load();
  c.bytes_out = counters_.bytes_out.load();
  c.frames_in = counters_.frames_in.load();
  c.frames_out = counters_.frames_out.load();
  c.msgs_in = counters_.msgs_in.load();
  c.msgs_out = counters_.msgs_out.load();
  c.connects = counters_.connects.load();
  c.reconnects = counters_.reconnects.load();
  c.heartbeat_misses = counters_.heartbeat_misses.load();
  c.frames_refused = counters_.frames_refused.load();
  c.decode_errors = counters_.decode_errors.load();
  c.queue_high_water = counters_.queue_high_water.load();
  return c;
}

// --- loop-thread machinery ---------------------------------------------------

void ConnectionManager::start_listening() {
  if (!listener_.valid()) return;
  loop_.set_fd(listener_.get(), /*want_read=*/true, /*want_write=*/false,
               [this](unsigned) { on_listener_ready(); });
}

void ConnectionManager::on_listener_ready() {
  for (;;) {
    Fd fd = accept_tcp(listener_.get());
    if (!fd.valid()) return;
    const int raw = fd.get();
    PendingConn pending;
    pending.fd = std::move(fd);
    pending.since = EventLoop::Clock::now();
    pending_.emplace(raw, std::move(pending));
    loop_.set_fd(raw, /*want_read=*/true, /*want_write=*/false,
                 [this, raw](unsigned events) { on_pending_ready(raw, events); });
  }
}

void ConnectionManager::on_pending_ready(int fd, unsigned events) {
  const auto it = pending_.find(fd);
  if (it == pending_.end()) return;
  PendingConn& conn = it->second;
  const auto close_pending = [&] {
    loop_.remove_fd(fd);
    pending_.erase(fd);
  };
  if (events & EventLoop::kError) {
    close_pending();
    return;
  }
  std::byte buf[16 * 1024];
  for (;;) {
    const auto n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(n));
      conn.decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_pending();  // EOF or hard error before HELLO
    return;
  }
  std::optional<NetMessage> msg;
  try {
    msg = conn.decoder.next();
  } catch (const std::exception&) {
    counters_.decode_errors.fetch_add(1);
    close_pending();
    return;
  }
  if (!msg) return;  // need more bytes
  if (msg->type != NetMsgType::kHello) {
    counters_.decode_errors.fetch_add(1);
    close_pending();
    return;
  }
  HelloBody hello;
  try {
    hello = HelloBody::decode(msg->payload);
  } catch (const std::exception&) {
    counters_.decode_errors.fetch_add(1);
    close_pending();
    return;
  }
  const auto peer_it = peers_.find(hello.node);
  if (peer_it == peers_.end() ||
      hello.deployment_fp != options_.deployment_fp || peer_it->second->we_dial) {
    TART_WARN_EVERY_N(100) << "net: refusing connection from '" << hello.node
                           << "' (unknown peer, fingerprint mismatch, or "
                              "wrong side dialing)";
    close_pending();
    return;
  }
  Fd adopted = std::move(conn.fd);
  StreamDecoder decoder = std::move(conn.decoder);
  close_pending();
  adopt_connection(*peer_it->second, std::move(adopted), std::move(decoder),
                   EventLoop::Clock::now(), std::move(hello));
}

void ConnectionManager::adopt_connection(Peer& peer, Fd fd,
                                         StreamDecoder decoder,
                                         EventLoop::Clock::time_point last_recv,
                                         HelloBody peer_hello) {
  // A replacement from a restarted peer kicks the stale socket.
  if (peer.fd.valid()) drop_connection(peer, "replaced by new connection");
  if (peer.reconnect_timer != 0) {
    loop_.cancel_timer(peer.reconnect_timer);
    peer.reconnect_timer = 0;
  }
  peer.fd = std::move(fd);
  peer.connecting = false;
  peer.decoder = std::move(decoder);
  peer.last_recv = last_recv;
  peer.hello_received = true;  // acceptor path: HELLO already consumed
  peer.hello_sent = false;
  const int raw = peer.fd.get();
  loop_.set_fd(raw, /*want_read=*/true, /*want_write=*/false,
               [this, p = &peer](unsigned events) { on_peer_ready(*p, events); });
  send_hello(peer);
  mark_up(peer);
  if (on_hello_) on_hello_(peer.name, peer_hello);
}

void ConnectionManager::send_hello(Peer& peer) {
  HelloBody hello;
  hello.node = options_.node;
  hello.deployment_fp = options_.deployment_fp;
  if (hello_fn_) hello_fn_(hello);
  enqueue_bytes(peer, encode_message(NetMsgType::kHello, hello.encode()),
                Peer::OutKind::kControl);
  peer.hello_sent = true;
}

void ConnectionManager::start_dial(Peer& peer) {
  peer.reconnect_timer = 0;
  bool in_progress = false;
  std::string error;
  Fd fd = connect_tcp(peer.addr, &in_progress, &error);
  if (!fd.valid()) {
    schedule_redial(peer);
    return;
  }
  peer.fd = std::move(fd);
  peer.connecting = in_progress;
  peer.decoder = StreamDecoder();
  peer.hello_sent = false;
  peer.hello_received = false;
  peer.last_recv = EventLoop::Clock::now();
  const int raw = peer.fd.get();
  loop_.set_fd(raw, /*want_read=*/!in_progress, /*want_write=*/in_progress,
               [this, p = &peer](unsigned events) { on_peer_ready(*p, events); });
  if (!in_progress) finish_connect(peer);
}

void ConnectionManager::schedule_redial(Peer& peer) {
  if (shut_down_.load() || peer.reconnect_timer != 0) return;
  // Exponential backoff with jitter in [base/2, base): synchronized herds
  // of redials spread out, and the cap keeps recovery under reconnect_max.
  const long long cap = options_.tuning.reconnect_max.count();
  long long base = options_.tuning.reconnect_min.count();
  for (int i = 0; i < peer.backoff_exp && base < cap; ++i) base *= 2;
  base = std::min(base, cap);
  const long long delay =
      base / 2 + static_cast<long long>(
                     jitter_.bounded(static_cast<std::uint64_t>(base / 2 + 1)));
  if (peer.backoff_exp < 16) ++peer.backoff_exp;
  peer.reconnect_timer = loop_.add_timer(
      EventLoop::Clock::now() + std::chrono::milliseconds(delay),
      [this, p = &peer] { start_dial(*p); });
}

void ConnectionManager::finish_connect(Peer& peer) {
  peer.connecting = false;
  const int err = connect_error(peer.fd.get());
  if (err != 0) {
    drop_connection(peer, "connect failed");
    return;
  }
  send_hello(peer);
  update_interest(peer);
}

void ConnectionManager::mark_up(Peer& peer) {
  if (peer.up.load()) return;
  peer.up.store(true);
  peer.backoff_exp = 0;
  counters_.connects.fetch_add(1);
  if (peer.ever_up) counters_.reconnects.fetch_add(1);
  peer.ever_up = true;
  if (on_link_) on_link_(peer.name, /*up=*/true);
}

void ConnectionManager::drop_connection(Peer& peer, const char* reason) {
  if (!peer.fd.valid()) return;
  const bool was_up = peer.up.exchange(false);
  loop_.remove_fd(peer.fd.get());
  peer.fd.reset();
  peer.connecting = false;
  peer.hello_sent = false;
  peer.hello_received = false;
  peer.decoder = StreamDecoder();
  if (!peer.outq.empty()) {
    std::size_t frames = 0;
    for (const auto& buf : peer.outq)
      frames += buf.kind != Peer::OutKind::kControl ? 1 : 0;
    peer.queued_frames.fetch_sub(frames);
    peer.outq.clear();
  }
  if (was_up) {
    TART_INFO << "net: link to '" << peer.name << "' down (" << reason
                   << ")";
    if (on_link_) on_link_(peer.name, /*up=*/false);
  }
  if (peer.we_dial) schedule_redial(peer);
}

void ConnectionManager::on_peer_ready(Peer& peer, unsigned events) {
  if (!peer.fd.valid()) return;
  if (peer.connecting) {
    if (events & (EventLoop::kWritable | EventLoop::kError)) {
      finish_connect(peer);
    }
    return;
  }
  if (events & EventLoop::kReadable) {
    handle_readable(peer);
    if (!peer.fd.valid()) return;  // dropped while reading
  }
  if (events & EventLoop::kWritable) {
    flush_writes(peer);
    if (!peer.fd.valid()) return;
  }
  if (events & EventLoop::kError) {
    drop_connection(peer, "socket error");
  }
}

void ConnectionManager::handle_readable(Peer& peer) {
  std::byte buf[64 * 1024];
  for (;;) {
    const auto n = ::read(peer.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(n));
      // feed() copies the kernel's bytes into the decoder's staging buffer
      // — the inbound copy the zero-copy refactor wants to erase.
      TART_PROF_BYTES("net.envelope_in", n);
      peer.last_recv = EventLoop::Clock::now();
      peer.decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_connection(peer, n == 0 ? "peer closed" : "read error");
    return;
  }
  TART_PROF_SPAN("net.decode");
  for (;;) {
    std::optional<NetMessage> msg;
    try {
      msg = peer.decoder.next();
    } catch (const std::exception& e) {
      counters_.decode_errors.fetch_add(1);
      TART_WARN_EVERY_N(100) << "net: dropping '" << peer.name
                             << "': malformed inbound data: " << e.what();
      drop_connection(peer, "decode error");
      return;
    }
    if (!msg) return;
    handle_message(peer, std::move(*msg));
    if (!peer.fd.valid()) return;
  }
}

void ConnectionManager::handle_message(Peer& peer, NetMessage msg) {
  switch (msg.type) {
    case NetMsgType::kHello: {
      HelloBody hello;
      try {
        hello = HelloBody::decode(msg.payload);
      } catch (const std::exception&) {
        counters_.decode_errors.fetch_add(1);
        drop_connection(peer, "bad hello");
        return;
      }
      if (hello.node != peer.name ||
          hello.deployment_fp != options_.deployment_fp) {
        TART_WARN_EVERY_N(100) << "net: hello mismatch from '" << hello.node
                               << "' (expected '" << peer.name << "')";
        drop_connection(peer, "hello mismatch");
        return;
      }
      peer.hello_received = true;
      if (peer.hello_sent) mark_up(peer);
      if (on_hello_) on_hello_(peer.name, hello);
      return;
    }
    case NetMsgType::kHeartbeat:
      return;  // liveness already noted via last_recv
    case NetMsgType::kFrame: {
      transport::Frame frame;
      try {
        frame = decode_frame_payload(msg.payload);
      } catch (const std::exception& e) {
        counters_.decode_errors.fetch_add(1);
        TART_WARN_EVERY_N(100) << "net: bad frame from '" << peer.name
                               << "': " << e.what();
        drop_connection(peer, "bad frame");
        return;
      }
      counters_.frames_in.fetch_add(1);
      if (on_frame_) on_frame_(peer.name, std::move(frame));
      return;
    }
    default:
      // Placement, migration-stream and cover traffic rides the peer
      // connection as opaque messages; without a handler installed the type
      // is unexpected and connection-fatal (the pre-placement behavior).
      if (on_message_) {
        counters_.msgs_in.fetch_add(1);
        on_message_(peer.name, std::move(msg));
        return;
      }
      counters_.decode_errors.fetch_add(1);
      drop_connection(peer, "unexpected message type");
  }
}

void ConnectionManager::enqueue_bytes(Peer& peer, std::vector<std::byte> bytes,
                                      Peer::OutKind kind) {
  Peer::OutBuf buf;
  // The serialized envelope was built on the sender's thread and moved
  // here; count it as one outbound envelope staging on the wire path.
  TART_PROF_BYTES("net.envelope_out", bytes.size());
  buf.bytes = std::move(bytes);
  buf.kind = kind;
  peer.outq.push_back(std::move(buf));
  if (kind != Peer::OutKind::kControl) {
    const std::uint64_t depth = peer.queued_frames.load();
    std::uint64_t hwm = counters_.queue_high_water.load();
    while (depth > hwm &&
           !counters_.queue_high_water.compare_exchange_weak(hwm, depth)) {
    }
  }
  flush_writes(peer);
}

void ConnectionManager::flush_writes(Peer& peer) {
  if (peer.outq.empty()) {
    update_interest(peer);
    return;
  }
  TART_PROF_SPAN("net.send_flush");
  while (!peer.outq.empty() && peer.fd.valid()) {
    Peer::OutBuf& front = peer.outq.front();
    const auto n = ::write(peer.fd.get(), front.bytes.data() + front.offset,
                           front.bytes.size() - front.offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      drop_connection(peer, "write error");
      return;
    }
    counters_.bytes_out.fetch_add(static_cast<std::uint64_t>(n));
    front.offset += static_cast<std::size_t>(n);
    if (front.offset < front.bytes.size()) break;  // kernel buffer full
    if (front.kind != Peer::OutKind::kControl) {
      if (front.kind == Peer::OutKind::kFrame) {
        counters_.frames_out.fetch_add(1);
      } else {
        counters_.msgs_out.fetch_add(1);
      }
      peer.queued_frames.fetch_sub(1);
    }
    peer.outq.pop_front();
  }
  update_interest(peer);
}

void ConnectionManager::update_interest(Peer& peer) {
  if (!peer.fd.valid()) return;
  loop_.set_interest(peer.fd.get(), /*want_read=*/!peer.connecting,
                     /*want_write=*/peer.connecting || !peer.outq.empty());
}

void ConnectionManager::heartbeat_tick() {
  loop_.add_timer(EventLoop::Clock::now() + options_.tuning.heartbeat_interval,
                  [this] { heartbeat_tick(); });
  const auto now = EventLoop::Clock::now();
  const auto dead_after =
      options_.tuning.heartbeat_interval * options_.tuning.heartbeat_miss_limit;
  for (auto& [name, peer] : peers_) {
    if (!peer->fd.valid() || peer->connecting) continue;
    if (now - peer->last_recv > dead_after) {
      counters_.heartbeat_misses.fetch_add(1);
      TART_WARN_EVERY_N(10) << "net: peer '" << name << "' silent for "
                            << options_.tuning.heartbeat_miss_limit
                            << " heartbeat intervals; declaring link down";
      drop_connection(*peer, "heartbeat timeout");
      continue;
    }
    enqueue_bytes(*peer, encode_message(NetMsgType::kHeartbeat),
                  Peer::OutKind::kControl);
  }
  // Inbound connections that never said HELLO eventually expire.
  std::vector<int> stale;
  for (const auto& [fd, conn] : pending_)
    if (now - conn.since > kPendingHelloTimeout) stale.push_back(fd);
  for (const int fd : stale) {
    loop_.remove_fd(fd);
    pending_.erase(fd);
  }
}

}  // namespace tart::net
