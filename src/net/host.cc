#include "net/host.h"

#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "durability/manager.h"
#include "durability/replay.h"
#include "obs/prof.h"

namespace tart::net {
namespace {

void write_all(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      (void)::poll(&p, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw NetError("control: write failed");
  }
}

}  // namespace

NetHost::NetHost(DeploymentConfig deploy, const std::string& partition,
                 HostOptions options)
    : deploy_(std::move(deploy)),
      options_(std::move(options)),
      built_(build_topology(deploy_.topology, deploy_.params)) {
  self_ = deploy_.find_partition(partition);
  if (self_ == nullptr)
    throw ConfigError("unknown partition '" + partition + "'");

  for (const auto& [name, id] : built_.components) {
    const auto it = deploy_.placement.find(name);
    if (it == deploy_.placement.end())
      throw ConfigError("component '" + name + "' has no placement");
    placement_[id] = deploy_.find_partition(it->second)->engine;
  }
  for (const auto& [name, partition_name] : deploy_.placement)
    if (!built_.components.contains(name))
      throw ConfigError("placement names unknown component '" + name + "'");
  for (const auto& p : deploy_.partitions)
    partition_by_engine_[p.engine] = p.name;

  core::RuntimeConfig config;
  config.local_engines = {self_->engine};
  config.log_dir = options_.log_dir;
  if (options_.durability.enabled) {
    if (options_.log_dir.empty())
      throw ConfigError("durability requires --log-dir");
    config.durability = options_.durability;
    // Refuse a checkpoint written under a different TOPOLOGY: its wire ids
    // would alias unrelated wires here. Placement is deliberately excluded
    // from this fingerprint — live migration moves components without
    // invalidating checkpoints (docs/PLACEMENT.md).
    config.durability.deployment_fp = deploy_.topology_fingerprint();
  }
  if (!options_.trace_path.empty()) {
    config.trace.enabled = true;
    config.trace.path = options_.trace_path;
    // Diagnostics included so link events land in the trace; the recovery
    // differ only compares scheduling-class events, so this stays safe.
    config.trace.categories =
        static_cast<std::uint32_t>(trace::TraceCategory::kAll);
  }
  runtime_ = std::make_unique<core::Runtime>(built_.topology, placement_,
                                             std::move(config));

  // Placement control plane. The journal lives beside the external log so
  // a SIGKILL mid-migration resolves ownership from disk at restart; a
  // volatile node (no log_dir) keeps an in-memory table only.
  placement::MigrationCoordinator::Options pc_options;
  if (!options_.log_dir.empty()) {
    pc_options.journal_dir = options_.log_dir + "/placement";
    ::mkdir(options_.log_dir.c_str(), 0755);
    ::mkdir(pc_options.journal_dir.c_str(), 0755);
  }
  pc_options.crash_at = options_.migrate_crash_at;
  placement::MigrationCoordinator::Callbacks pc_cb;
  pc_cb.send = [this](EngineId to, net::NetMessage msg) {
    const auto it = partition_by_engine_.find(to);
    if (it == partition_by_engine_.end() || !conn_) return false;
    return conn_->send_message(it->second, msg);
  };
  pc_cb.broadcast = [this](net::NetMessage msg) {
    if (!conn_) return;
    for (const auto& p : deploy_.partitions)
      if (p.name != self_->name) (void)conn_->send_message(p.name, msg);
  };
  pc_cb.on_ownership_changed = [this](ComponentId c, bool now_local) {
    // The gateway consults redirect_for() per request, so nothing to
    // refresh — this is the audit trail operators grep for.
    TART_INFO << "placement: component "
              << built_.topology.component(c).name
              << (now_local ? " adopted by " : " evicted from ")
              << self_->name;
  };
  coordinator_ = std::make_unique<placement::MigrationCoordinator>(
      *runtime_, self_->engine, placement_, std::move(pc_options),
      std::move(pc_cb));
}

NetHost::~NetHost() {
  request_shutdown();
  if (started_) (void)run_until_shutdown();
}

void NetHost::start() {
  if (started_) return;

  ConnectionManager::Options conn_options;
  conn_options.node = self_->name;
  conn_options.listen = self_->data_addr;
  for (const auto& p : deploy_.partitions)
    if (p.name != self_->name) conn_options.peers[p.name] = p.data_addr;
  // The HELLO gate is the TOPOLOGY fingerprint: mismatched wire ids are a
  // determinism violation, but divergent *placement* is expected mid-
  // migration and reconciled by the epoch rules instead of refused.
  conn_options.deployment_fp = deploy_.topology_fingerprint();
  conn_options.tuning = options_.tuning;
  // A peer that is already dialing can complete its handshake the moment
  // our listener binds — i.e. while this constructor call is still on the
  // stack and conn_ is not yet assigned. Park such early callbacks on the
  // latch until the host is actually wired up.
  conn_ = std::make_unique<ConnectionManager>(
      std::move(conn_options),
      [this](const std::string& peer, transport::Frame frame) {
        conn_ready_.wait(false);
        on_peer_frame(peer, std::move(frame));
      },
      [this](const std::string& peer, bool up) {
        conn_ready_.wait(false);
        on_link(peer, up);
      },
      [this](const std::string& peer, NetMessage msg) {
        conn_ready_.wait(false);
        on_peer_message(peer, std::move(msg));
      },
      [this](const std::string& peer, const HelloBody& hello) {
        conn_ready_.wait(false);
        on_peer_hello(peer, hello);
      },
      [this](HelloBody& hello) { fill_hello(hello); });

  runtime_->set_remote_router(
      [this](EngineId dst, const transport::Frame& frame) {
        const auto it = partition_by_engine_.find(dst);
        if (it == partition_by_engine_.end()) return;
        (void)conn_->send(it->second, frame);
      });
  conn_ready_.store(true);
  conn_ready_.notify_all();

  if (!self_->control_addr.empty()) {
    const auto addr = SockAddr::parse(self_->control_addr);
    std::string err;
    control_listener_ = listen_tcp(*addr, &err);
    if (!control_listener_.valid())
      throw ConfigError("control listen on " + self_->control_addr +
                        " failed: " + err);
    control_port_ = local_port(control_listener_.get());
    control_thread_ = std::thread([this] { control_accept_loop(); });
  }

  runtime_->start();

  // Boot recovery order (docs/PLACEMENT.md): the migration journal decides
  // ownership FIRST — re-adopting migrated-in components and discarding
  // stale staged slices — so the catch-up replay below feeds exactly the
  // components this node actually owns, and no peer ever sees a
  // pre-recovery HELLO (placement callbacks park on the latch).
  coordinator_->recover_from_journal();
  placement_ready_.store(true);
  placement_ready_.notify_all();

  // Checkpoint-bounded retention: every durable checkpoint broadcasts its
  // fresh per-wire cover so remote senders trim retention promptly (the
  // HELLO carries the same bounds for peers that were down).
  if (durability::CheckpointManager* mgr = runtime_->checkpoint_manager()) {
    mgr->set_on_checkpoint(
        [this](const std::map<WireId, std::uint64_t>& cover) {
          if (!stopping_.load()) broadcast_cover(cover);
        });
  }

  // Tiered fast restart: consume the recovered log suffix (outputs
  // suppressed) before the gateway opens — new external traffic then lands
  // on a caught-up node (docs/RECOVERY.md).
  if (options_.durability.enabled && runtime_->recovery_info().suffix_records +
                                             runtime_->recovery_info()
                                                 .covered_records >
                                         0) {
    const auto stats = durability::ReplayDriver::catch_up(
        *runtime_, std::chrono::milliseconds(options_.catch_up_timeout_ms));
    TART_INFO << "restart: checkpoint covered " << stats.covered_records
              << " records, replayed " << stats.suffix_records
              << " suffix records in " << stats.seconds << "s"
              << (stats.caught_up ? "" : " (TIMED OUT)");
  }

  if (!options_.http_addr.empty()) {
    // Register EVERY external wire; per-request ownership is decided by
    // redirect_for() against the LIVE placement table, because migration
    // moves an input's adapter mid-run. A request for a wire served
    // elsewhere answers 307 toward its current owner's advertised http
    // address (deployment `http` directive).
    gateway::Gateway::Options gw_options;
    gw_options.listen = options_.http_addr;
    gw_options.group_commit = options_.http_group_commit;
    gw_options.exemplars = options_.http_exemplars;
    gateway_ = std::make_unique<gateway::Gateway>(
        runtime_.get(), std::move(gw_options), built_.inputs, built_.outputs,
        [this] { return metrics(); }, [this] { request_shutdown(); },
        [this](const std::string& name) { return redirect_for(name); },
        [this](const std::string& component, const std::string& to_node) {
          const placement::MigrationResult r =
              run_migration(component, to_node);
          gateway::MigrateOutcome out;
          out.ok = r.ok;
          out.epoch = r.epoch;
          out.slice_bytes = r.slice_bytes;
          out.delta_bytes = r.delta_bytes;
          out.record_count = r.record_count;
          out.transfer_ms = r.transfer_ms;
          out.blackout_ms = r.blackout_ms;
          out.error = r.error;
          return out;
        });
  }

  if (!options_.sample_path.empty()) {
    obs::Sampler::Options sampler_options;
    sampler_options.path = options_.sample_path;
    sampler_options.interval_ms = options_.sample_interval_ms;
    sampler_ = std::make_unique<obs::Sampler>(
        std::move(sampler_options), &runtime_->registry(),
        [this] { return metrics(); });
    if (!sampler_->start()) {
      TART_WARN << "sampler: cannot open " << options_.sample_path
                << "; sampling disabled";
      sampler_.reset();
    }
  }

  if (options_.gauge_interval_ms > 0) {
    // First arm must happen on the loop thread (EventLoop threading
    // contract); the sweep re-arms itself from then on.
    conn_->loop().post([this] {
      gauge_timer_ = conn_->loop().add_timer(
          EventLoop::Clock::now() +
              std::chrono::milliseconds(options_.gauge_interval_ms),
          [this] { gauge_sweep(); });
    });
  }

  if (!options_.push_addr.empty())
    push_thread_ = std::thread([this] { push_loop(); });

  started_ = true;
}

int NetHost::run_until_shutdown() {
  while (!shutdown_requested_.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  if (stopping_.exchange(true)) return 0;
  // Observers first (they read the registry and runtime state), then the
  // gateway: it holds a raw Runtime pointer, so no injection may be in
  // flight once the runtime starts stopping.
  if (push_thread_.joinable()) push_thread_.join();
  stop_gauge_timer();
  if (sampler_) sampler_->stop();
  if (gateway_) gateway_->shutdown();
  control_listener_.reset();
  if (control_thread_.joinable()) control_thread_.join();
  {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& t : conn_threads_)
      if (t.joinable()) t.join();
    conn_threads_.clear();
  }
  runtime_->stop();
  if (conn_) conn_->shutdown();
  return 0;
}

void NetHost::request_shutdown() { shutdown_requested_.store(true); }

core::MetricsSnapshot NetHost::metrics() const {
  core::MetricsSnapshot total = runtime_->total_metrics();
  if (conn_) {
    const NetCounters c = conn_->counters();
    total.net_bytes_in = c.bytes_in;
    total.net_bytes_out = c.bytes_out;
    total.net_frames_in = c.frames_in;
    total.net_frames_out = c.frames_out;
    total.net_reconnects = c.reconnects;
    total.net_heartbeat_misses = c.heartbeat_misses;
    total.net_frames_refused = c.frames_refused;
    total.net_queue_high_water = c.queue_high_water;
    total.net_msgs_in = c.msgs_in;
    total.net_msgs_out = c.msgs_out;
  }
  if (coordinator_) {
    const placement::MigrationCounters m = coordinator_->counters();
    total.mig_started = m.started;
    total.mig_completed = m.completed;
    total.mig_failed = m.failed;
    total.mig_adopted = m.adopted;
    total.mig_evicted = m.evicted;
    total.mig_bytes_sent = m.bytes_sent;
    total.mig_bytes_received = m.bytes_received;
    total.mig_updates_applied = m.updates_applied;
  }
  total.retention_trimmed_records = runtime_->retention_trimmed();
  if (gateway_) gateway_->fill(total);
  return total;
}

// --- Observers --------------------------------------------------------------

void NetHost::gauge_sweep() {
  gauge_timer_ = 0;
  if (stopping_.load()) return;
  obs::Registry& reg = runtime_->registry();
  const core::StatusReport report = runtime_->status();
  for (const core::ComponentStatus& c : report.components) {
    if (c.crashed) continue;
    reg.gauge("tart_component_retained_messages",
              "Messages held in the component's output retention buffers.",
              {{"component", c.name}})
        .set(static_cast<std::int64_t>(runtime_->retained_messages(c.id)));
    for (const core::WireStatus& ws : c.inputs)
      reg.gauge("tart_wire_queue_depth",
                "Messages queued on an input wire, not yet merged.",
                {{"component", c.name},
                 {"sender", ws.sender},
                 {"wire", "w" + std::to_string(ws.wire.value())}})
          .set(static_cast<std::int64_t>(ws.pending));
  }
  const log::ExternalMessageLog& elog = runtime_->external_log();
  for (const auto& [name, wire] : built_.inputs) {
    const auto& spec = built_.topology.wire(wire);
    // Live placement, not the static config: migration re-homes inputs.
    if (!runtime_->component_is_local(spec.to)) continue;
    reg.gauge("tart_external_log_messages",
              "External input messages retained in the replay log.",
              {{"input", name}})
        .set(static_cast<std::int64_t>(elog.size(wire)));
  }
  reg.gauge("tart_external_log_messages_total",
            "Total external input messages retained in the replay log.")
      .set(static_cast<std::int64_t>(elog.total_size()));
  if (log::SegmentedStore* seg = runtime_->segment_store()) {
    reg.gauge("tart_log_segment_files",
              "External-log segment files currently on disk.")
        .set(static_cast<std::int64_t>(seg->segment_count()));
    reg.gauge("tart_log_disk_bytes",
              "Bytes the segmented external log occupies on disk.")
        .set(static_cast<std::int64_t>(seg->bytes_on_disk()));
  }
  // Fold the hot-path profiler's thread-local accumulators into tart_prof_*
  // cells: they ship with kObs/kGetObs and render in /metrics like any
  // other sample.
  obs::prof::harvest_into(reg);
  gauge_timer_ = conn_->loop().add_timer(
      EventLoop::Clock::now() +
          std::chrono::milliseconds(options_.gauge_interval_ms),
      [this] { gauge_sweep(); });
}

void NetHost::stop_gauge_timer() {
  if (!conn_ || options_.gauge_interval_ms <= 0) return;
  // The sweep runs on the loop thread; a posted cancel runs strictly after
  // any in-flight sweep, so once the wait returns no sweep can be touching
  // the runtime.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  conn_->loop().post([this, &mu, &cv, &done] {
    if (gauge_timer_ != 0) conn_->loop().cancel_timer(gauge_timer_);
    gauge_timer_ = 0;
    {
      const std::lock_guard<std::mutex> lk(mu);
      done = true;
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait_for(lk, std::chrono::seconds(1), [&] { return done; });
}

void NetHost::push_loop() {
  std::optional<ControlClient> client;
  auto next = std::chrono::steady_clock::now();
  while (true) {
    next += std::chrono::milliseconds(options_.push_interval_ms);
    while (std::chrono::steady_clock::now() < next) {
      if (shutdown_requested_.load() || stopping_.load()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (shutdown_requested_.load() || stopping_.load()) return;
    if (!client)
      client = ControlClient::connect(options_.push_addr,
                                      std::chrono::milliseconds(500));
    if (!client) continue;  // collector down; redial next tick
    try {
      ObsPushBody body;
      body.node = self_->name;
      body.ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
      body.metrics = metrics();
      body.samples = runtime_->registry().samples();
      const NetMessage resp =
          client->request(NetMsgType::kObsPush, body.encode());
      if (resp.type != NetMsgType::kAck) client.reset();
    } catch (const std::exception&) {
      client.reset();
    }
  }
}

// --- Peer plane -------------------------------------------------------------

void NetHost::on_peer_frame(const std::string& peer, transport::Frame frame) {
  (void)peer;
  runtime_->deliver_from_peer(frame);
}

void NetHost::on_link(const std::string& peer, bool up) {
  const auto* spec = deploy_.find_partition(peer);
  if (auto* tracer = runtime_->trace_recorder()) {
    tracer->record(core::kNetTraceComponent,
                   up ? trace::TraceEventKind::kLinkUp
                      : trace::TraceEventKind::kLinkDown,
                   VirtualTime(0), WireId::invalid(),
                   spec != nullptr ? spec->engine.value() : 0);
  }
  if (spec != nullptr && !up && coordinator_)
    coordinator_->on_peer_disconnected(spec->engine);
  if (up && spec != nullptr) probe_wires_behind(spec->engine);
}

void NetHost::probe_wires_behind(EngineId peer_engine) {
  // A fresh (or restored) link means an unknown amount of traffic was lost
  // while it was down. Probing every wire whose sender sits behind the
  // peer makes the sender announce a fresh silence interval carrying its
  // data-tick count (§II.F.1); our receivers compare that count with what
  // they hold and request replay for the difference — the net layer never
  // has to know *what* was lost. Routed by the LIVE placement (migration
  // re-homes senders mid-run), not the static config map.
  for (const auto& spec : runtime_->topology().wires()) {
    if (!spec.from.is_valid() || !spec.to.is_valid()) continue;
    if (runtime_->engine_of(spec.from) != peer_engine) continue;
    if (!runtime_->component_is_local(spec.to)) continue;
    const auto peer_it = partition_by_engine_.find(peer_engine);
    if (peer_it == partition_by_engine_.end()) continue;
    (void)conn_->send(peer_it->second, transport::ProbeFrame{spec.id});
  }
}

// --- Placement control plane ------------------------------------------------

void NetHost::on_peer_message(const std::string& peer, NetMessage msg) {
  placement_ready_.wait(false);
  const auto* spec = deploy_.find_partition(peer);
  if (spec == nullptr) return;
  if (msg.type == NetMsgType::kCoverUpdate) {
    // The peer's durable checkpoint covers these positions: local senders
    // can drop retention below them — no failover can request them again.
    const CoverUpdateBody body = CoverUpdateBody::decode(msg.payload);
    for (const WireCoverBound& b : body.covered)
      runtime_->trim_retention_below(WireId(b.wire), b.covered_seq);
    return;
  }
  (void)coordinator_->on_peer_message(spec->engine, msg);
}

void NetHost::on_peer_hello(const std::string& peer, const HelloBody& hello) {
  placement_ready_.wait(false);
  const auto* spec = deploy_.find_partition(peer);
  if (spec == nullptr) return;
  // Placement reconciliation: the higher epoch wins (docs/PLACEMENT.md);
  // a node that missed a migration learns about it here. Then the cover
  // bounds — a HELLO after a long partition carries the checkpoint cover
  // kCoverUpdate broadcasts could not deliver.
  coordinator_->on_peer_connected(spec->engine, hello.placement_epoch,
                                  hello.moves);
  for (const WireCoverBound& b : hello.covered)
    runtime_->trim_retention_below(WireId(b.wire), b.covered_seq);
}

void NetHost::fill_hello(HelloBody& hello) {
  placement_ready_.wait(false);
  hello.placement_epoch = coordinator_->epoch();
  hello.moves = coordinator_->overrides();
  if (durability::CheckpointManager* mgr = runtime_->checkpoint_manager()) {
    for (const auto& [wire, seq] : mgr->latest_cover())
      if (seq > 0) hello.covered.push_back(WireCoverBound{wire.value(), seq});
  }
}

void NetHost::broadcast_cover(const std::map<WireId, std::uint64_t>& cover) {
  CoverUpdateBody body;
  for (const auto& [wire, seq] : cover)
    if (seq > 0) body.covered.push_back(WireCoverBound{wire.value(), seq});
  if (!body.covered.empty() && conn_) {
    const NetMessage msg{NetMsgType::kCoverUpdate, body.encode()};
    for (const auto& p : deploy_.partitions)
      if (p.name != self_->name) (void)conn_->send_message(p.name, msg);
  }
  // Staged migration slices at or below this checkpoint are superseded.
  coordinator_->on_durable_checkpoint();
}

placement::MigrationResult NetHost::run_migration(
    const std::string& component, const std::string& to_node) {
  placement::MigrationResult r;
  const auto comp = built_.components.find(component);
  if (comp == built_.components.end()) {
    r.error = "unknown component '" + component + "'";
    return r;
  }
  const auto* part = deploy_.find_partition(to_node);
  if (part == nullptr) {
    r.error = "unknown partition '" + to_node + "'";
    return r;
  }
  return coordinator_->migrate(comp->second, part->engine);
}

std::optional<std::string> NetHost::redirect_for(const std::string& name) {
  ComponentId owner_component = ComponentId::invalid();
  if (const auto in = built_.inputs.find(name); in != built_.inputs.end())
    owner_component = built_.topology.wire(in->second).to;
  else if (const auto out = built_.outputs.find(name);
           out != built_.outputs.end())
    owner_component = built_.topology.wire(out->second).from;
  if (!owner_component.is_valid()) return std::nullopt;
  const EngineId owner = runtime_->engine_of(owner_component);
  if (runtime_->engine_is_local(owner)) return std::nullopt;
  const auto peer_it = partition_by_engine_.find(owner);
  // Remote owner with no advertised http address: empty string, which the
  // gateway answers 404 ("served by another partition") — serving the wire
  // locally would hand back misleading empty output streams.
  if (peer_it == partition_by_engine_.end()) return std::string();
  const auto* spec = deploy_.find_partition(peer_it->second);
  if (spec == nullptr || spec->http_addr.empty()) return std::string();
  return spec->http_addr;
}

core::StatusReport NetHost::status_with_placement() {
  core::StatusReport report = runtime_->status();
  report.placement_epoch = coordinator_->epoch();
  std::map<std::uint32_t, std::uint64_t> epoch_of;
  for (const PlacementMove& m : coordinator_->overrides())
    epoch_of[m.component] = m.epoch;
  for (const auto& [c, e] : coordinator_->placement_snapshot()) {
    core::PlacementEntry entry;
    entry.component = c.value();
    entry.engine = e.value();
    if (const auto it = epoch_of.find(c.value()); it != epoch_of.end())
      entry.epoch = it->second;
    report.placement.push_back(entry);
  }
  for (const placement::MigrationInfo& m : coordinator_->inflight())
    report.migrations.push_back(core::MigrationStatus{
        m.epoch, m.component.value(), m.from.value(), m.to.value(), m.stage});
  return report;
}

// --- Control plane ----------------------------------------------------------

void NetHost::control_accept_loop() {
  while (!stopping_.load() && !shutdown_requested_.load()) {
    pollfd p{control_listener_.get(), POLLIN, 0};
    const int rc = ::poll(&p, 1, 200);
    if (rc <= 0) continue;
    Fd fd = accept_tcp(control_listener_.get());
    if (!fd.valid()) continue;
    const std::lock_guard<std::mutex> lk(conns_mu_);
    conn_threads_.emplace_back(
        [this, shared = std::make_shared<Fd>(std::move(fd))]() mutable {
          control_serve(std::move(*shared));
        });
  }
}

void NetHost::control_serve(Fd fd) {
  StreamDecoder decoder;
  try {
    while (!stopping_.load()) {
      while (auto msg = decoder.next()) {
        const NetMessage response = handle_control(*msg);
        write_all(fd.get(), encode_message(response.type, response.payload));
      }
      pollfd p{fd.get(), POLLIN, 0};
      const int rc = ::poll(&p, 1, 200);
      if (rc <= 0) continue;
      std::byte buf[16384];
      const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
      if (n == 0) return;  // client went away
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          continue;
        return;
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
  } catch (const std::exception& e) {
    TART_WARN << "control connection dropped: " << e.what();
  }
}

NetMessage NetHost::handle_control(const NetMessage& request) {
  const auto error = [](const std::string& what) {
    return NetMessage{NetMsgType::kError, encode_string_body(what)};
  };
  try {
    switch (request.type) {
      case NetMsgType::kPing:
        return NetMessage{NetMsgType::kAck, {}};
      case NetMsgType::kInject: {
        const InjectBody body = InjectBody::decode(request.payload);
        const auto it = built_.inputs.find(body.input);
        if (it == built_.inputs.end())
          return error("unknown input '" + body.input + "'");
        const core::InjectResult r =
            body.vt < 0
                ? runtime_->try_inject(it->second, body.payload)
                : runtime_->try_inject_at(it->second, VirtualTime(body.vt),
                                          body.payload);
        switch (r.status) {
          case core::InjectStatus::kOk:
            return NetMessage{NetMsgType::kInjectAck,
                              encode_i64_body(r.vt.ticks())};
          case core::InjectStatus::kUnknownWire:
            return error("input '" + body.input + "' not adaptable here");
          case core::InjectStatus::kClosed:
            return error("input '" + body.input + "' is closed");
          case core::InjectStatus::kVtRegressed:
            return error("vt " + std::to_string(body.vt) +
                         " is not after the last logged vt on '" +
                         body.input + "'");
          case core::InjectStatus::kStoreFailed:
            return error("stable store append failed (injection NOT durable)");
        }
        return error("unreachable");
      }
      case NetMsgType::kCloseInput: {
        const std::string name = decode_string_body(request.payload);
        const auto it = built_.inputs.find(name);
        if (it == built_.inputs.end())
          return error("unknown input '" + name + "'");
        runtime_->close_input(it->second);
        return NetMessage{NetMsgType::kAck, {}};
      }
      case NetMsgType::kDrain: {
        const auto timeout =
            std::chrono::milliseconds(decode_i64_body(request.payload));
        const bool ok = runtime_->drain(timeout);
        return NetMessage{NetMsgType::kDrainAck, encode_i64_body(ok ? 1 : 0)};
      }
      case NetMsgType::kGetOutputs: {
        const std::string name = decode_string_body(request.payload);
        const auto it = built_.outputs.find(name);
        if (it == built_.outputs.end())
          return error("unknown output '" + name + "'");
        std::vector<ControlOutputRecord> records;
        for (const auto& rec : runtime_->output_records(it->second))
          records.push_back(
              ControlOutputRecord{rec.vt.ticks(), rec.payload, rec.stutter});
        return NetMessage{NetMsgType::kOutputs, encode_outputs_body(records)};
      }
      case NetMsgType::kGetMetrics:
        return NetMessage{NetMsgType::kMetrics, encode_metrics_body(metrics())};
      case NetMsgType::kGetStatus:
        return NetMessage{NetMsgType::kStatus,
                          encode_status_body(status_with_placement())};
      case NetMsgType::kMigrate: {
        const MigrateBody body = MigrateBody::decode(request.payload);
        const placement::MigrationResult r =
            run_migration(body.component, body.to_node);
        MigrateResultBody out;
        out.ok = r.ok;
        out.epoch = r.epoch;
        out.slice_bytes = r.slice_bytes;
        out.delta_bytes = r.delta_bytes;
        out.record_count = r.record_count;
        out.transfer_ms = r.transfer_ms;
        out.blackout_ms = r.blackout_ms;
        out.error = r.error;
        return NetMessage{NetMsgType::kMigrateAck, out.encode()};
      }
      case NetMsgType::kGetObs:
        return NetMessage{NetMsgType::kObs,
                          encode_obs_body(runtime_->registry().samples())};
      case NetMsgType::kCheckpoint: {
        durability::CheckpointManager* manager =
            runtime_->checkpoint_manager();
        if (manager == nullptr)
          return error("durability is not enabled on this node");
        const durability::CheckpointStats stats = manager->checkpoint_now();
        CheckpointResultBody body;
        body.ok = stats.ok;
        body.id = stats.id;
        body.bytes = stats.bytes;
        body.covered_records = stats.covered_records;
        body.reclaimed_records = stats.reclaimed_records;
        body.error = stats.error;
        return NetMessage{NetMsgType::kCheckpointAck, body.encode()};
      }
      case NetMsgType::kShutdown:
        request_shutdown();
        return NetMessage{NetMsgType::kAck, {}};
      default:
        return error("unexpected control message type");
    }
  } catch (const std::exception& e) {
    return error(e.what());
  }
}

}  // namespace tart::net
