#include "net/host.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "durability/manager.h"
#include "durability/replay.h"

namespace tart::net {
namespace {

void write_all(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      (void)::poll(&p, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw NetError("control: write failed");
  }
}

}  // namespace

NetHost::NetHost(DeploymentConfig deploy, const std::string& partition,
                 HostOptions options)
    : deploy_(std::move(deploy)),
      options_(std::move(options)),
      built_(build_topology(deploy_.topology, deploy_.params)) {
  self_ = deploy_.find_partition(partition);
  if (self_ == nullptr)
    throw ConfigError("unknown partition '" + partition + "'");

  for (const auto& [name, id] : built_.components) {
    const auto it = deploy_.placement.find(name);
    if (it == deploy_.placement.end())
      throw ConfigError("component '" + name + "' has no placement");
    placement_[id] = deploy_.find_partition(it->second)->engine;
  }
  for (const auto& [name, partition_name] : deploy_.placement)
    if (!built_.components.contains(name))
      throw ConfigError("placement names unknown component '" + name + "'");
  for (const auto& p : deploy_.partitions)
    partition_by_engine_[p.engine] = p.name;

  core::RuntimeConfig config;
  config.local_engines = {self_->engine};
  config.log_dir = options_.log_dir;
  if (options_.durability.enabled) {
    if (options_.log_dir.empty())
      throw ConfigError("durability requires --log-dir");
    config.durability = options_.durability;
    // Refuse a checkpoint written under a different deployment file: its
    // wire ids would alias unrelated wires here.
    config.durability.deployment_fp = deploy_.fingerprint();
  }
  if (!options_.trace_path.empty()) {
    config.trace.enabled = true;
    config.trace.path = options_.trace_path;
    // Diagnostics included so link events land in the trace; the recovery
    // differ only compares scheduling-class events, so this stays safe.
    config.trace.categories =
        static_cast<std::uint32_t>(trace::TraceCategory::kAll);
  }
  runtime_ = std::make_unique<core::Runtime>(built_.topology, placement_,
                                             std::move(config));
}

NetHost::~NetHost() {
  request_shutdown();
  if (started_) (void)run_until_shutdown();
}

void NetHost::start() {
  if (started_) return;

  ConnectionManager::Options conn_options;
  conn_options.node = self_->name;
  conn_options.listen = self_->data_addr;
  for (const auto& p : deploy_.partitions)
    if (p.name != self_->name) conn_options.peers[p.name] = p.data_addr;
  conn_options.deployment_fp = deploy_.fingerprint();
  conn_options.tuning = options_.tuning;
  // A peer that is already dialing can complete its handshake the moment
  // our listener binds — i.e. while this constructor call is still on the
  // stack and conn_ is not yet assigned. Park such early callbacks on the
  // latch until the host is actually wired up.
  conn_ = std::make_unique<ConnectionManager>(
      std::move(conn_options),
      [this](const std::string& peer, transport::Frame frame) {
        conn_ready_.wait(false);
        on_peer_frame(peer, std::move(frame));
      },
      [this](const std::string& peer, bool up) {
        conn_ready_.wait(false);
        on_link(peer, up);
      });

  runtime_->set_remote_router(
      [this](EngineId dst, const transport::Frame& frame) {
        const auto it = partition_by_engine_.find(dst);
        if (it == partition_by_engine_.end()) return;
        (void)conn_->send(it->second, frame);
      });
  conn_ready_.store(true);
  conn_ready_.notify_all();

  if (!self_->control_addr.empty()) {
    const auto addr = SockAddr::parse(self_->control_addr);
    std::string err;
    control_listener_ = listen_tcp(*addr, &err);
    if (!control_listener_.valid())
      throw ConfigError("control listen on " + self_->control_addr +
                        " failed: " + err);
    control_port_ = local_port(control_listener_.get());
    control_thread_ = std::thread([this] { control_accept_loop(); });
  }

  runtime_->start();

  // Tiered fast restart: consume the recovered log suffix (outputs
  // suppressed) before the gateway opens — new external traffic then lands
  // on a caught-up node (docs/RECOVERY.md).
  if (options_.durability.enabled && runtime_->recovery_info().suffix_records +
                                             runtime_->recovery_info()
                                                 .covered_records >
                                         0) {
    const auto stats = durability::ReplayDriver::catch_up(
        *runtime_, std::chrono::milliseconds(options_.catch_up_timeout_ms));
    TART_INFO << "restart: checkpoint covered " << stats.covered_records
              << " records, replayed " << stats.suffix_records
              << " suffix records in " << stats.seconds << "s"
              << (stats.caught_up ? "" : " (TIMED OUT)");
  }

  if (!options_.http_addr.empty()) {
    // Serve only what this partition can adapt: the input's receiver (or
    // output's sender) must live on a local engine, because that is where
    // the external-input adapter timestamps + logs (§II.E).
    std::map<std::string, WireId> local_inputs;
    for (const auto& [name, wire] : built_.inputs) {
      const auto& spec = built_.topology.wire(wire);
      if (runtime_->engine_is_local(placement_.at(spec.to)))
        local_inputs[name] = wire;
    }
    std::map<std::string, WireId> local_outputs;
    for (const auto& [name, wire] : built_.outputs) {
      const auto& spec = built_.topology.wire(wire);
      if (runtime_->engine_is_local(placement_.at(spec.from)))
        local_outputs[name] = wire;
    }
    gateway::Gateway::Options gw_options;
    gw_options.listen = options_.http_addr;
    gw_options.group_commit = options_.http_group_commit;
    gw_options.exemplars = options_.http_exemplars;
    gateway_ = std::make_unique<gateway::Gateway>(
        runtime_.get(), std::move(gw_options), std::move(local_inputs),
        std::move(local_outputs), [this] { return metrics(); },
        [this] { request_shutdown(); });
  }

  if (!options_.sample_path.empty()) {
    obs::Sampler::Options sampler_options;
    sampler_options.path = options_.sample_path;
    sampler_options.interval_ms = options_.sample_interval_ms;
    sampler_ = std::make_unique<obs::Sampler>(
        std::move(sampler_options), &runtime_->registry(),
        [this] { return metrics(); });
    if (!sampler_->start()) {
      TART_WARN << "sampler: cannot open " << options_.sample_path
                << "; sampling disabled";
      sampler_.reset();
    }
  }

  if (options_.gauge_interval_ms > 0) {
    // First arm must happen on the loop thread (EventLoop threading
    // contract); the sweep re-arms itself from then on.
    conn_->loop().post([this] {
      gauge_timer_ = conn_->loop().add_timer(
          EventLoop::Clock::now() +
              std::chrono::milliseconds(options_.gauge_interval_ms),
          [this] { gauge_sweep(); });
    });
  }

  if (!options_.push_addr.empty())
    push_thread_ = std::thread([this] { push_loop(); });

  started_ = true;
}

int NetHost::run_until_shutdown() {
  while (!shutdown_requested_.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  if (stopping_.exchange(true)) return 0;
  // Observers first (they read the registry and runtime state), then the
  // gateway: it holds a raw Runtime pointer, so no injection may be in
  // flight once the runtime starts stopping.
  if (push_thread_.joinable()) push_thread_.join();
  stop_gauge_timer();
  if (sampler_) sampler_->stop();
  if (gateway_) gateway_->shutdown();
  control_listener_.reset();
  if (control_thread_.joinable()) control_thread_.join();
  {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& t : conn_threads_)
      if (t.joinable()) t.join();
    conn_threads_.clear();
  }
  runtime_->stop();
  if (conn_) conn_->shutdown();
  return 0;
}

void NetHost::request_shutdown() { shutdown_requested_.store(true); }

core::MetricsSnapshot NetHost::metrics() const {
  core::MetricsSnapshot total = runtime_->total_metrics();
  if (conn_) {
    const NetCounters c = conn_->counters();
    total.net_bytes_in = c.bytes_in;
    total.net_bytes_out = c.bytes_out;
    total.net_frames_in = c.frames_in;
    total.net_frames_out = c.frames_out;
    total.net_reconnects = c.reconnects;
    total.net_heartbeat_misses = c.heartbeat_misses;
    total.net_frames_refused = c.frames_refused;
    total.net_queue_high_water = c.queue_high_water;
  }
  if (gateway_) gateway_->fill(total);
  return total;
}

// --- Observers --------------------------------------------------------------

void NetHost::gauge_sweep() {
  gauge_timer_ = 0;
  if (stopping_.load()) return;
  obs::Registry& reg = runtime_->registry();
  const core::StatusReport report = runtime_->status();
  for (const core::ComponentStatus& c : report.components) {
    if (c.crashed) continue;
    reg.gauge("tart_component_retained_messages",
              "Messages held in the component's output retention buffers.",
              {{"component", c.name}})
        .set(static_cast<std::int64_t>(runtime_->retained_messages(c.id)));
    for (const core::WireStatus& ws : c.inputs)
      reg.gauge("tart_wire_queue_depth",
                "Messages queued on an input wire, not yet merged.",
                {{"component", c.name},
                 {"sender", ws.sender},
                 {"wire", "w" + std::to_string(ws.wire.value())}})
          .set(static_cast<std::int64_t>(ws.pending));
  }
  const log::ExternalMessageLog& elog = runtime_->external_log();
  for (const auto& [name, wire] : built_.inputs) {
    const auto& spec = built_.topology.wire(wire);
    if (!runtime_->engine_is_local(placement_.at(spec.to))) continue;
    reg.gauge("tart_external_log_messages",
              "External input messages retained in the replay log.",
              {{"input", name}})
        .set(static_cast<std::int64_t>(elog.size(wire)));
  }
  reg.gauge("tart_external_log_messages_total",
            "Total external input messages retained in the replay log.")
      .set(static_cast<std::int64_t>(elog.total_size()));
  if (log::SegmentedStore* seg = runtime_->segment_store()) {
    reg.gauge("tart_log_segment_files",
              "External-log segment files currently on disk.")
        .set(static_cast<std::int64_t>(seg->segment_count()));
    reg.gauge("tart_log_disk_bytes",
              "Bytes the segmented external log occupies on disk.")
        .set(static_cast<std::int64_t>(seg->bytes_on_disk()));
  }
  gauge_timer_ = conn_->loop().add_timer(
      EventLoop::Clock::now() +
          std::chrono::milliseconds(options_.gauge_interval_ms),
      [this] { gauge_sweep(); });
}

void NetHost::stop_gauge_timer() {
  if (!conn_ || options_.gauge_interval_ms <= 0) return;
  // The sweep runs on the loop thread; a posted cancel runs strictly after
  // any in-flight sweep, so once the wait returns no sweep can be touching
  // the runtime.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  conn_->loop().post([this, &mu, &cv, &done] {
    if (gauge_timer_ != 0) conn_->loop().cancel_timer(gauge_timer_);
    gauge_timer_ = 0;
    {
      const std::lock_guard<std::mutex> lk(mu);
      done = true;
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait_for(lk, std::chrono::seconds(1), [&] { return done; });
}

void NetHost::push_loop() {
  std::optional<ControlClient> client;
  auto next = std::chrono::steady_clock::now();
  while (true) {
    next += std::chrono::milliseconds(options_.push_interval_ms);
    while (std::chrono::steady_clock::now() < next) {
      if (shutdown_requested_.load() || stopping_.load()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (shutdown_requested_.load() || stopping_.load()) return;
    if (!client)
      client = ControlClient::connect(options_.push_addr,
                                      std::chrono::milliseconds(500));
    if (!client) continue;  // collector down; redial next tick
    try {
      ObsPushBody body;
      body.node = self_->name;
      body.ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
      body.metrics = metrics();
      body.samples = runtime_->registry().samples();
      const NetMessage resp =
          client->request(NetMsgType::kObsPush, body.encode());
      if (resp.type != NetMsgType::kAck) client.reset();
    } catch (const std::exception&) {
      client.reset();
    }
  }
}

// --- Peer plane -------------------------------------------------------------

void NetHost::on_peer_frame(const std::string& peer, transport::Frame frame) {
  (void)peer;
  runtime_->deliver_from_peer(frame);
}

void NetHost::on_link(const std::string& peer, bool up) {
  const auto* spec = deploy_.find_partition(peer);
  if (auto* tracer = runtime_->trace_recorder()) {
    tracer->record(core::kNetTraceComponent,
                   up ? trace::TraceEventKind::kLinkUp
                      : trace::TraceEventKind::kLinkDown,
                   VirtualTime(0), WireId::invalid(),
                   spec != nullptr ? spec->engine.value() : 0);
  }
  if (up && spec != nullptr) probe_wires_behind(spec->engine);
}

void NetHost::probe_wires_behind(EngineId peer_engine) {
  // A fresh (or restored) link means an unknown amount of traffic was lost
  // while it was down. Probing every wire whose sender sits behind the
  // peer makes the sender announce a fresh silence interval carrying its
  // data-tick count (§II.F.1); our receivers compare that count with what
  // they hold and request replay for the difference — the net layer never
  // has to know *what* was lost.
  for (const auto& spec : runtime_->topology().wires()) {
    if (!spec.from.is_valid() || !spec.to.is_valid()) continue;
    const auto from_it = placement_.find(spec.from);
    const auto to_it = placement_.find(spec.to);
    if (from_it == placement_.end() || to_it == placement_.end()) continue;
    if (from_it->second != peer_engine) continue;
    if (!runtime_->engine_is_local(to_it->second)) continue;
    const auto peer_it = partition_by_engine_.find(peer_engine);
    if (peer_it == partition_by_engine_.end()) continue;
    (void)conn_->send(peer_it->second, transport::ProbeFrame{spec.id});
  }
}

// --- Control plane ----------------------------------------------------------

void NetHost::control_accept_loop() {
  while (!stopping_.load() && !shutdown_requested_.load()) {
    pollfd p{control_listener_.get(), POLLIN, 0};
    const int rc = ::poll(&p, 1, 200);
    if (rc <= 0) continue;
    Fd fd = accept_tcp(control_listener_.get());
    if (!fd.valid()) continue;
    const std::lock_guard<std::mutex> lk(conns_mu_);
    conn_threads_.emplace_back(
        [this, shared = std::make_shared<Fd>(std::move(fd))]() mutable {
          control_serve(std::move(*shared));
        });
  }
}

void NetHost::control_serve(Fd fd) {
  StreamDecoder decoder;
  try {
    while (!stopping_.load()) {
      while (auto msg = decoder.next()) {
        const NetMessage response = handle_control(*msg);
        write_all(fd.get(), encode_message(response.type, response.payload));
      }
      pollfd p{fd.get(), POLLIN, 0};
      const int rc = ::poll(&p, 1, 200);
      if (rc <= 0) continue;
      std::byte buf[16384];
      const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
      if (n == 0) return;  // client went away
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
          continue;
        return;
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
  } catch (const std::exception& e) {
    TART_WARN << "control connection dropped: " << e.what();
  }
}

NetMessage NetHost::handle_control(const NetMessage& request) {
  const auto error = [](const std::string& what) {
    return NetMessage{NetMsgType::kError, encode_string_body(what)};
  };
  try {
    switch (request.type) {
      case NetMsgType::kPing:
        return NetMessage{NetMsgType::kAck, {}};
      case NetMsgType::kInject: {
        const InjectBody body = InjectBody::decode(request.payload);
        const auto it = built_.inputs.find(body.input);
        if (it == built_.inputs.end())
          return error("unknown input '" + body.input + "'");
        const core::InjectResult r =
            body.vt < 0
                ? runtime_->try_inject(it->second, body.payload)
                : runtime_->try_inject_at(it->second, VirtualTime(body.vt),
                                          body.payload);
        switch (r.status) {
          case core::InjectStatus::kOk:
            return NetMessage{NetMsgType::kInjectAck,
                              encode_i64_body(r.vt.ticks())};
          case core::InjectStatus::kUnknownWire:
            return error("input '" + body.input + "' not adaptable here");
          case core::InjectStatus::kClosed:
            return error("input '" + body.input + "' is closed");
          case core::InjectStatus::kVtRegressed:
            return error("vt " + std::to_string(body.vt) +
                         " is not after the last logged vt on '" +
                         body.input + "'");
          case core::InjectStatus::kStoreFailed:
            return error("stable store append failed (injection NOT durable)");
        }
        return error("unreachable");
      }
      case NetMsgType::kCloseInput: {
        const std::string name = decode_string_body(request.payload);
        const auto it = built_.inputs.find(name);
        if (it == built_.inputs.end())
          return error("unknown input '" + name + "'");
        runtime_->close_input(it->second);
        return NetMessage{NetMsgType::kAck, {}};
      }
      case NetMsgType::kDrain: {
        const auto timeout =
            std::chrono::milliseconds(decode_i64_body(request.payload));
        const bool ok = runtime_->drain(timeout);
        return NetMessage{NetMsgType::kDrainAck, encode_i64_body(ok ? 1 : 0)};
      }
      case NetMsgType::kGetOutputs: {
        const std::string name = decode_string_body(request.payload);
        const auto it = built_.outputs.find(name);
        if (it == built_.outputs.end())
          return error("unknown output '" + name + "'");
        std::vector<ControlOutputRecord> records;
        for (const auto& rec : runtime_->output_records(it->second))
          records.push_back(
              ControlOutputRecord{rec.vt.ticks(), rec.payload, rec.stutter});
        return NetMessage{NetMsgType::kOutputs, encode_outputs_body(records)};
      }
      case NetMsgType::kGetMetrics:
        return NetMessage{NetMsgType::kMetrics, encode_metrics_body(metrics())};
      case NetMsgType::kGetStatus:
        return NetMessage{NetMsgType::kStatus,
                          encode_status_body(runtime_->status())};
      case NetMsgType::kGetObs:
        return NetMessage{NetMsgType::kObs,
                          encode_obs_body(runtime_->registry().samples())};
      case NetMsgType::kCheckpoint: {
        durability::CheckpointManager* manager =
            runtime_->checkpoint_manager();
        if (manager == nullptr)
          return error("durability is not enabled on this node");
        const durability::CheckpointStats stats = manager->checkpoint_now();
        CheckpointResultBody body;
        body.ok = stats.ok;
        body.id = stats.id;
        body.bytes = stats.bytes;
        body.covered_records = stats.covered_records;
        body.reclaimed_records = stats.reclaimed_records;
        body.error = stats.error;
        return NetMessage{NetMsgType::kCheckpointAck, body.encode()};
      }
      case NetMsgType::kShutdown:
        request_shutdown();
        return NetMessage{NetMsgType::kAck, {}};
      default:
        return error("unexpected control message type");
    }
  } catch (const std::exception& e) {
    return error(e.what());
  }
}

}  // namespace tart::net
