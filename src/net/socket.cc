#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tart::net {

namespace {

bool set_nonblocking_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  const int fdflags = ::fcntl(fd, F_GETFD, 0);
  return fdflags >= 0 && ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) >= 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Resolves host:port to the first usable socket address. Numeric IPv4 and
/// IPv6 literals short-circuit inside getaddrinfo; hostnames hit the
/// resolver (blocking — callers run on dialing/startup threads, not the
/// event loop). Returns the address length, 0 on failure (`error` set).
socklen_t resolve(const SockAddr& addr, sockaddr_storage* out,
                  std::string* error) {
  std::memset(out, 0, sizeof(*out));
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  // No AI_ADDRCONFIG: it disregards loopback-only interfaces, which would
  // break 127.0.0.1/::1 resolution inside minimal containers.
  hints.ai_flags = AI_NUMERICSERV;
  const std::string service = std::to_string(addr.port);
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(addr.host.c_str(), service.c_str(), &hints, &results);
  if (rc != 0 || results == nullptr) {
    if (error)
      *error = "resolve " + addr.to_string() + ": " + ::gai_strerror(rc);
    return 0;
  }
  // First result wins: getaddrinfo orders candidates by RFC 6724, which
  // prefers a loopback/IPv4 match for the common single-machine case.
  const socklen_t len = results->ai_addrlen;
  std::memcpy(out, results->ai_addr, len);
  ::freeaddrinfo(results);
  return len;
}

bool valid_hostname(const std::string& host) {
  if (host.empty() || host.size() > 253) return false;
  for (const char c : host) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::optional<SockAddr> SockAddr::parse(const std::string& spec) {
  SockAddr addr;
  std::string port_part;
  if (!spec.empty() && spec.front() == '[') {
    // Bracketed IPv6 literal: "[fe80::1]:9000".
    const auto close = spec.find(']');
    if (close == std::string::npos || close + 1 >= spec.size() ||
        spec[close + 1] != ':')
      return std::nullopt;
    addr.host = spec.substr(1, close - 1);
    port_part = spec.substr(close + 2);
    in6_addr check;
    if (::inet_pton(AF_INET6, addr.host.c_str(), &check) != 1)
      return std::nullopt;
  } else {
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size())
      return std::nullopt;
    addr.host = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
    if (addr.host == "localhost") addr.host = "127.0.0.1";
    // A second colon in the host means an unbracketed IPv6 literal —
    // ambiguous against the port separator, so rejected.
    in_addr check4;
    if (::inet_pton(AF_INET, addr.host.c_str(), &check4) != 1 &&
        !valid_hostname(addr.host))
      return std::nullopt;
  }
  if (port_part.empty()) return std::nullopt;
  long port = 0;
  for (const char c : port_part) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  addr.port = static_cast<std::uint16_t>(port);
  return addr;
}

Fd listen_tcp(const SockAddr& addr, std::string* error) {
  sockaddr_storage sa;
  const socklen_t salen = resolve(addr, &sa, error);
  if (salen == 0) return Fd();
  Fd fd(::socket(sa.ss_family, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return Fd();
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!set_nonblocking_cloexec(fd.get())) {
    if (error) *error = errno_string("fcntl");
    return Fd();
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), salen) < 0) {
    if (error) *error = errno_string(("bind " + addr.to_string()).c_str());
    return Fd();
  }
  if (::listen(fd.get(), 64) < 0) {
    if (error) *error = errno_string("listen");
    return Fd();
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_storage sa;
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) return 0;
  if (sa.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<sockaddr_in6*>(&sa)->sin6_port);
  return ntohs(reinterpret_cast<sockaddr_in*>(&sa)->sin_port);
}

Fd accept_tcp(int listen_fd) {
  Fd fd(::accept(listen_fd, nullptr, nullptr));
  if (!fd.valid()) return Fd();
  if (!set_nonblocking_cloexec(fd.get())) return Fd();
  set_nodelay(fd.get());
  return fd;
}

Fd connect_tcp(const SockAddr& addr, bool* in_progress, std::string* error) {
  *in_progress = false;
  sockaddr_storage sa;
  const socklen_t salen = resolve(addr, &sa, error);
  if (salen == 0) return Fd();
  Fd fd(::socket(sa.ss_family, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return Fd();
  }
  if (!set_nonblocking_cloexec(fd.get())) {
    if (error) *error = errno_string("fcntl");
    return Fd();
  }
  set_nodelay(fd.get());
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), salen) == 0)
    return fd;
  if (errno == EINPROGRESS) {
    *in_progress = true;
    return fd;
  }
  if (error) *error = errno_string(("connect " + addr.to_string()).c_str());
  return Fd();
}

int connect_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

}  // namespace tart::net
