#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tart::net {

namespace {

bool set_nonblocking_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  const int fdflags = ::fcntl(fd, F_GETFD, 0);
  return fdflags >= 0 && ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) >= 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool to_sockaddr(const SockAddr& addr, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(addr.port);
  return ::inet_pton(AF_INET, addr.host.c_str(), &out->sin_addr) == 1;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::optional<SockAddr> SockAddr::parse(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size())
    return std::nullopt;
  SockAddr addr;
  addr.host = spec.substr(0, colon);
  if (addr.host == "localhost") addr.host = "127.0.0.1";
  long port = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  addr.port = static_cast<std::uint16_t>(port);
  sockaddr_in check;
  if (!to_sockaddr(addr, &check)) return std::nullopt;
  return addr;
}

Fd listen_tcp(const SockAddr& addr, std::string* error) {
  sockaddr_in sa;
  if (!to_sockaddr(addr, &sa)) {
    if (error) *error = "bad address " + addr.to_string();
    return Fd();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return Fd();
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!set_nonblocking_cloexec(fd.get())) {
    if (error) *error = errno_string("fcntl");
    return Fd();
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    if (error) *error = errno_string(("bind " + addr.to_string()).c_str());
    return Fd();
  }
  if (::listen(fd.get(), 64) < 0) {
    if (error) *error = errno_string("listen");
    return Fd();
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in sa;
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) return 0;
  return ntohs(sa.sin_port);
}

Fd accept_tcp(int listen_fd) {
  Fd fd(::accept(listen_fd, nullptr, nullptr));
  if (!fd.valid()) return Fd();
  if (!set_nonblocking_cloexec(fd.get())) return Fd();
  set_nodelay(fd.get());
  return fd;
}

Fd connect_tcp(const SockAddr& addr, bool* in_progress, std::string* error) {
  *in_progress = false;
  sockaddr_in sa;
  if (!to_sockaddr(addr, &sa)) {
    if (error) *error = "bad address " + addr.to_string();
    return Fd();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return Fd();
  }
  if (!set_nonblocking_cloexec(fd.get())) {
    if (error) *error = errno_string("fcntl");
    return Fd();
  }
  set_nodelay(fd.get());
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0)
    return fd;
  if (errno == EINPROGRESS) {
    *in_progress = true;
    return fd;
  }
  if (error) *error = errno_string(("connect " + addr.to_string()).c_str());
  return Fd();
}

int connect_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

}  // namespace tart::net
