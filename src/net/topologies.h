// Named topology catalog for partitioned deployments.
//
// Every tart-node process must build the *identical* global topology —
// wire ids are assigned in creation order and double as the deterministic
// tie-break, so the graph is part of the application's deterministic
// specification. Shipping a serialized graph would work, but a catalog of
// named builders is simpler and sidesteps serializing component factories:
// the deployment file names a catalog entry plus parameters, and every
// process reconstructs the same graph from them (the HELLO fingerprint
// check guards against catalog/param skew between binaries).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/topology.h"
#include "net/partition_config.h"

namespace tart::net {

/// A built topology plus name->id maps so deployment files and control
/// clients can speak in names.
struct BuiltTopology {
  core::Topology topology;
  std::map<std::string, ComponentId> components;
  std::map<std::string, WireId> inputs;   ///< external inputs, by name
  std::map<std::string, WireId> outputs;  ///< external outputs, by name
};

/// Builds a catalog topology. Known names:
///   - "wordcount": param senders = N (default 2). Components sender1..N
///     (external input named after each sender) fanning into "merger";
///     external output "total".
///   - "chain": param stages = N (default 3). External input "in" ->
///     stage1..N passthroughs -> external output "out".
/// Throws ConfigError for unknown names or bad params.
[[nodiscard]] BuiltTopology build_topology(
    const std::string& name, const std::map<std::string, std::string>& params);

[[nodiscard]] std::vector<std::string> topology_names();

}  // namespace tart::net
