#include "net/stream_channel.h"

#include <algorithm>

namespace tart::net {

// --- Bodies -----------------------------------------------------------------

std::vector<std::byte> StreamOpenBody::encode() const {
  serde::Writer w;
  w.write_varint(stream_id);
  w.write_varint(kind);
  w.write_varint(total_bytes);
  w.write_u32(blob_crc);
  w.write_string(sender);
  return w.take();
}

StreamOpenBody StreamOpenBody::decode(const std::vector<std::byte>& payload) {
  serde::Reader r(payload);
  StreamOpenBody b;
  b.stream_id = r.read_varint();
  b.kind = static_cast<std::uint32_t>(r.read_varint());
  b.total_bytes = r.read_varint();
  b.blob_crc = r.read_u32();
  b.sender = r.read_string();
  if (!r.at_end()) throw serde::DecodeError("trailing bytes after stream open");
  return b;
}

std::vector<std::byte> StreamChunkBody::encode() const {
  serde::Writer w;
  w.write_varint(stream_id);
  w.write_varint(offset);
  w.write_bytes(bytes);
  return w.take();
}

StreamChunkBody StreamChunkBody::decode(const std::vector<std::byte>& payload) {
  serde::Reader r(payload);
  StreamChunkBody b;
  b.stream_id = r.read_varint();
  b.offset = r.read_varint();
  b.bytes = r.read_bytes();
  if (!r.at_end())
    throw serde::DecodeError("trailing bytes after stream chunk");
  return b;
}

std::vector<std::byte> StreamAckBody::encode() const {
  serde::Writer w;
  w.write_varint(stream_id);
  w.write_varint(received);
  w.write_bool(accept);
  w.write_string(error);
  return w.take();
}

StreamAckBody StreamAckBody::decode(const std::vector<std::byte>& payload) {
  serde::Reader r(payload);
  StreamAckBody b;
  b.stream_id = r.read_varint();
  b.received = r.read_varint();
  b.accept = r.read_bool();
  b.error = r.read_string();
  if (!r.at_end()) throw serde::DecodeError("trailing bytes after stream ack");
  return b;
}

std::vector<std::byte> StreamCloseBody::encode() const {
  serde::Writer w;
  w.write_varint(stream_id);
  w.write_bool(ok);
  return w.take();
}

StreamCloseBody StreamCloseBody::decode(const std::vector<std::byte>& payload) {
  serde::Reader r(payload);
  StreamCloseBody b;
  b.stream_id = r.read_varint();
  b.ok = r.read_bool();
  if (!r.at_end())
    throw serde::DecodeError("trailing bytes after stream close");
  return b;
}

// --- Sender -----------------------------------------------------------------

StreamSender::StreamSender(std::uint64_t stream_id, std::uint32_t kind,
                           std::string sender_node, std::vector<std::byte> blob,
                           Options options)
    : stream_id_(stream_id),
      kind_(kind),
      sender_node_(std::move(sender_node)),
      blob_(std::move(blob)),
      options_(options),
      crc_(crc32(blob_)) {
  if (options_.chunk_bytes == 0 || options_.chunk_bytes > kMaxNetPayload / 2)
    options_.chunk_bytes = 256 * 1024;
  if (options_.window <= 0) options_.window = 1;
}

std::optional<NetMessage> StreamSender::next_message() {
  switch (state_) {
    case State::kDone:
    case State::kFailed:
      return std::nullopt;
    case State::kOpening: {
      if (open_sent_) return std::nullopt;  // waiting for the open ack
      open_sent_ = true;
      StreamOpenBody open;
      open.stream_id = stream_id_;
      open.kind = kind_;
      open.total_bytes = blob_.size();
      open.blob_crc = crc_;
      open.sender = sender_node_;
      return NetMessage{NetMsgType::kStreamOpen, open.encode()};
    }
    case State::kStreaming: {
      if (next_offset_ >= blob_.size()) {
        // All bytes transmitted; wait for acks or move to close.
        if (acked_ >= blob_.size()) {
          state_ = State::kClosing;
          return next_message();
        }
        return std::nullopt;
      }
      const std::uint64_t in_flight_chunks =
          (next_offset_ - acked_ + options_.chunk_bytes - 1) /
          options_.chunk_bytes;
      if (in_flight_chunks >= static_cast<std::uint64_t>(options_.window))
        return std::nullopt;
      StreamChunkBody chunk;
      chunk.stream_id = stream_id_;
      chunk.offset = next_offset_;
      const std::size_t n = std::min<std::size_t>(
          options_.chunk_bytes, blob_.size() - next_offset_);
      chunk.bytes.assign(blob_.begin() + static_cast<std::ptrdiff_t>(next_offset_),
                         blob_.begin() +
                             static_cast<std::ptrdiff_t>(next_offset_ + n));
      next_offset_ += n;
      return NetMessage{NetMsgType::kStreamChunk, chunk.encode()};
    }
    case State::kClosing: {
      if (close_sent_) return std::nullopt;
      close_sent_ = true;
      state_ = State::kDone;
      StreamCloseBody close;
      close.stream_id = stream_id_;
      close.ok = true;
      return NetMessage{NetMsgType::kStreamClose, close.encode()};
    }
  }
  return std::nullopt;
}

void StreamSender::on_ack(const StreamAckBody& ack) {
  if (ack.stream_id != stream_id_) return;
  if (state_ == State::kDone || state_ == State::kFailed) return;
  if (!ack.accept) {
    state_ = State::kFailed;
    error_ = ack.error.empty() ? "stream refused by receiver" : ack.error;
    return;
  }
  acked_ = std::max(acked_, ack.received);
  if (state_ == State::kOpening) {
    // The receiver's contiguous prefix is authoritative — on resume it may
    // be ahead of 0, on a fresh open it is 0. Continue from there.
    next_offset_ = std::min<std::uint64_t>(acked_, blob_.size());
    state_ = State::kStreaming;
  }
  if (state_ == State::kStreaming && acked_ >= blob_.size())
    state_ = State::kClosing;
}

void StreamSender::reopen() {
  if (state_ == State::kDone || state_ == State::kFailed) return;
  state_ = State::kOpening;
  open_sent_ = false;
  close_sent_ = false;
  next_offset_ = acked_;
}

// --- Receiver ---------------------------------------------------------------

std::optional<NetMessage> StreamReceiver::on_open(const StreamOpenBody& open) {
  StreamAckBody ack;
  ack.stream_id = open.stream_id;
  if (admit_) {
    if (std::string err = admit_(open); !err.empty()) {
      ack.accept = false;
      ack.error = std::move(err);
      return NetMessage{NetMsgType::kStreamAck, ack.encode()};
    }
  }
  auto it = streams_.find(open.stream_id);
  if (it != streams_.end()) {
    // Resume: same manifest continues; a changed manifest restarts.
    Partial& p = it->second;
    if (p.open.total_bytes != open.total_bytes ||
        p.open.blob_crc != open.blob_crc || p.open.kind != open.kind) {
      p = Partial{};
      p.open = open;
      p.blob.assign(open.total_bytes, std::byte{0});
    }
    ack.received = p.received;
  } else {
    Partial p;
    p.open = open;
    p.blob.assign(open.total_bytes, std::byte{0});
    streams_.emplace(open.stream_id, std::move(p));
    ack.received = 0;
  }
  return NetMessage{NetMsgType::kStreamAck, ack.encode()};
}

std::optional<NetMessage> StreamReceiver::on_chunk(
    const StreamChunkBody& chunk) {
  const auto it = streams_.find(chunk.stream_id);
  if (it == streams_.end()) return std::nullopt;
  Partial& p = it->second;
  if (chunk.offset + chunk.bytes.size() > p.blob.size()) {
    StreamAckBody ack;
    ack.stream_id = chunk.stream_id;
    ack.accept = false;
    ack.error = "chunk overruns manifest size";
    streams_.erase(it);
    return NetMessage{NetMsgType::kStreamAck, ack.encode()};
  }
  std::copy(chunk.bytes.begin(), chunk.bytes.end(),
            p.blob.begin() + static_cast<std::ptrdiff_t>(chunk.offset));
  bytes_in_ += chunk.bytes.size();
  // Only a chunk that extends the contiguous prefix advances `received`;
  // out-of-order arrivals (possible only after a resume raced a stale
  // chunk) are stored but not acknowledged past the gap.
  if (chunk.offset <= p.received)
    p.received = std::max(p.received, chunk.offset + chunk.bytes.size());
  StreamAckBody ack;
  ack.stream_id = chunk.stream_id;
  ack.received = p.received;
  return NetMessage{NetMsgType::kStreamAck, ack.encode()};
}

void StreamReceiver::on_close(const StreamCloseBody& close) {
  const auto it = streams_.find(close.stream_id);
  if (it == streams_.end()) return;
  Partial p = std::move(it->second);
  streams_.erase(it);
  if (!close.ok) return;  // sender aborted; discard
  if (p.received != p.open.total_bytes) return;  // truncated; discard
  if (crc32(p.blob) != p.open.blob_crc) return;  // corrupt; discard
  if (on_complete_) on_complete_(p.open, std::move(p.blob));
}

void StreamReceiver::abandon_from(const std::string& sender) {
  for (auto it = streams_.begin(); it != streams_.end();) {
    if (it->second.open.sender == sender)
      it = streams_.erase(it);
    else
      ++it;
  }
}

}  // namespace tart::net
