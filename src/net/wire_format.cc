#include "net/wire_format.h"

#include <array>
#include <cstring>

namespace tart::net {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= std::uint32_t{static_cast<std::uint8_t>(p[i])} << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(const std::byte* data, std::size_t size) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(data[i])) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::vector<std::byte>& data) {
  return crc32(data.data(), data.size());
}

std::vector<std::byte> encode_message(NetMsgType type,
                                      const std::vector<std::byte>& payload) {
  if (payload.size() > kMaxNetPayload)
    throw NetError("payload exceeds kMaxNetPayload");
  std::vector<std::byte> out;
  out.reserve(kNetHeaderBytes + payload.size() + kNetTrailerBytes);
  put_u32(out, kNetMagic);
  out.push_back(std::byte{kNetFormatVersion});
  out.push_back(std::byte{static_cast<std::uint8_t>(type)});
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  // CRC covers version..payload: magic is the resync marker, everything
  // after it is integrity-checked.
  put_u32(out, crc32(out.data() + 4, out.size() - 4));
  return out;
}

std::vector<std::byte> encode_frame_message(const transport::Frame& frame) {
  return encode_message(NetMsgType::kFrame, transport::frame_to_bytes(frame));
}

transport::Frame decode_frame_payload(const std::vector<std::byte>& payload) {
  return transport::frame_from_bytes(payload);
}

void StreamDecoder::feed(const std::byte* data, std::size_t size) {
  // Compact consumed prefix before it grows unbounded.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

std::optional<NetMessage> StreamDecoder::next() {
  if (poisoned_) throw NetError("decoder poisoned by earlier error");
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kNetHeaderBytes) return std::nullopt;
  const std::byte* p = buf_.data() + pos_;
  if (get_u32(p) != kNetMagic) {
    poisoned_ = true;
    throw NetError("bad magic");
  }
  const auto version = static_cast<std::uint8_t>(p[4]);
  if (version != kNetFormatVersion) {
    poisoned_ = true;
    throw NetError("unsupported net format version " +
                   std::to_string(version));
  }
  const std::uint32_t length = get_u32(p + 6);
  if (length > kMaxNetPayload) {
    poisoned_ = true;
    throw NetError("oversized payload length " + std::to_string(length));
  }
  const std::size_t total = kNetHeaderBytes + length + kNetTrailerBytes;
  if (avail < total) return std::nullopt;
  const std::uint32_t stored = get_u32(p + kNetHeaderBytes + length);
  const std::uint32_t computed = crc32(p + 4, kNetHeaderBytes - 4 + length);
  if (stored != computed) {
    poisoned_ = true;
    throw NetError("CRC mismatch");
  }
  NetMessage msg;
  msg.type = static_cast<NetMsgType>(static_cast<std::uint8_t>(p[5]));
  msg.payload.assign(p + kNetHeaderBytes, p + kNetHeaderBytes + length);
  pos_ += total;
  return msg;
}

namespace {

void encode_moves(serde::Writer& w, const std::vector<PlacementMove>& moves) {
  w.write_varint(moves.size());
  for (const PlacementMove& m : moves) {
    w.write_varint(m.component);
    w.write_varint(m.engine);
    w.write_varint(m.epoch);
  }
}

std::vector<PlacementMove> decode_moves(serde::Reader& r) {
  const auto n = r.read_varint();
  std::vector<PlacementMove> moves;
  moves.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PlacementMove m;
    m.component = static_cast<std::uint32_t>(r.read_varint());
    m.engine = static_cast<std::uint32_t>(r.read_varint());
    m.epoch = r.read_varint();
    moves.push_back(m);
  }
  return moves;
}

void encode_covers(serde::Writer& w, const std::vector<WireCoverBound>& covs) {
  w.write_varint(covs.size());
  for (const WireCoverBound& c : covs) {
    w.write_varint(c.wire);
    w.write_varint(c.covered_seq);
  }
}

std::vector<WireCoverBound> decode_covers(serde::Reader& r) {
  const auto n = r.read_varint();
  std::vector<WireCoverBound> covs;
  covs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    WireCoverBound c;
    c.wire = static_cast<std::uint32_t>(r.read_varint());
    c.covered_seq = r.read_varint();
    covs.push_back(c);
  }
  return covs;
}

}  // namespace

std::vector<std::byte> HelloBody::encode() const {
  serde::Writer w;
  w.write_string(node);
  w.write_u64(deployment_fp);
  w.write_varint(placement_epoch);
  encode_moves(w, moves);
  encode_covers(w, covered);
  return w.take();
}

HelloBody HelloBody::decode(const std::vector<std::byte>& payload) {
  serde::Reader r(payload);
  HelloBody h;
  h.node = r.read_string();
  h.deployment_fp = r.read_u64();
  h.placement_epoch = r.read_varint();
  h.moves = decode_moves(r);
  h.covered = decode_covers(r);
  if (!r.at_end()) throw serde::DecodeError("trailing bytes after hello");
  return h;
}

std::vector<std::byte> PlacementUpdateBody::encode() const {
  serde::Writer w;
  w.write_varint(placement_epoch);
  encode_moves(w, moves);
  return w.take();
}

PlacementUpdateBody PlacementUpdateBody::decode(
    const std::vector<std::byte>& payload) {
  serde::Reader r(payload);
  PlacementUpdateBody b;
  b.placement_epoch = r.read_varint();
  b.moves = decode_moves(r);
  if (!r.at_end())
    throw serde::DecodeError("trailing bytes after placement update");
  return b;
}

std::vector<std::byte> CoverUpdateBody::encode() const {
  serde::Writer w;
  encode_covers(w, covered);
  return w.take();
}

CoverUpdateBody CoverUpdateBody::decode(
    const std::vector<std::byte>& payload) {
  serde::Reader r(payload);
  CoverUpdateBody b;
  b.covered = decode_covers(r);
  if (!r.at_end())
    throw serde::DecodeError("trailing bytes after cover update");
  return b;
}

}  // namespace tart::net
