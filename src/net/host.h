// NetHost: one partition of a deployment, hosted in this process.
//
// Glues the three planes of a tart-node together:
//
//   - deterministic plane: a Runtime restricted to the partition's engine
//     (RuntimeConfig::local_engines). Every process builds the identical
//     global topology/placement from the shared deployment file, so wire
//     ids and routing agree everywhere by construction.
//   - peer plane: a ConnectionManager carrying transport::Frames to the
//     other partitions. Outbound frames leave through the Runtime's remote
//     router; inbound frames enter through Runtime::deliver_from_peer.
//     Link transitions are recorded as diagnostic trace events against
//     kNetTraceComponent, and every link-up re-probes the wires whose
//     sender lives behind that peer — prompting fresh silence intervals
//     (and, via sequence accounting, replay of anything lost while the
//     link was down or this node was dead). §II.F.4's recovery story over
//     real sockets.
//   - control plane: a small blocking TCP server (control.h protocol) for
//     external drivers to inject inputs, drain, and read outputs/metrics.
//     Injections flow through the normal external-input adapters, so they
//     are timestamped + logged and a control-driven run cold-restarts from
//     log_dir exactly like any other (§II.E).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "gateway/gateway.h"
#include "net/connection_manager.h"
#include "obs/sampler.h"
#include "net/control.h"
#include "net/partition_config.h"
#include "net/topologies.h"
#include "placement/coordinator.h"

namespace tart::net {

struct HostOptions {
  std::string log_dir;     ///< stable storage; empty = volatile node
  std::string trace_path;  ///< flight-recorder file; empty = tracing off
  /// HTTP ingress listen address ("127.0.0.1:8080"); empty = no gateway.
  /// The gateway serves only the inputs/outputs adaptable on THIS
  /// partition (clients talk to the node hosting the component).
  std::string http_addr;
  bool http_group_commit = true;  ///< see gateway::Gateway::Options
  /// JSONL telemetry sampler output path; empty = sampler off (default).
  /// Read-only observer — never perturbs the deterministic protocol.
  std::string sample_path;
  int sample_interval_ms = 1000;
  /// Render OpenMetrics exemplars on the gateway's GET /metrics (stall
  /// episode ids linking fat buckets to `tart-trace explain --episode`).
  bool http_exemplars = false;
  /// Period of the queue-depth / log-retention gauge sweep, run as a timer
  /// on the connection manager's event loop. <= 0 disables the sweep.
  int gauge_interval_ms = 500;
  /// Push-based remote write: "host:port" of a collector (tart-obs
  /// --listen) to ship kObsPush telemetry to every push_interval_ms.
  /// Empty = no pushing (default).
  std::string push_addr;
  int push_interval_ms = 1000;
  /// Durable checkpoints + checkpoint-gated log compaction + tiered fast
  /// restart (docs/RECOVERY.md). Requires log_dir. start() then replays
  /// the recovered log suffix to quiescence — outputs suppressed — before
  /// the gateway opens for new traffic.
  durability::DurabilityConfig durability;
  /// Upper bound on the start()-time catch-up replay.
  int catch_up_timeout_ms = 30000;
  /// Live-migration fault injection: _exit(137) at this stage boundary
  /// (prepare|transfer|delta|cutover-commit source-side, staged|adopt
  /// target-side). Empty = no injection. Tests only.
  std::string migrate_crash_at;
  NetTuning tuning;
};

class NetHost {
 public:
  /// Builds the partition's runtime (throws ConfigError on a bad
  /// deployment: unknown partition, unplaced component, ...). Nothing
  /// listens until start().
  NetHost(DeploymentConfig deploy, const std::string& partition,
          HostOptions options = {});
  ~NetHost();

  NetHost(const NetHost&) = delete;
  NetHost& operator=(const NetHost&) = delete;

  /// Starts the runtime, the peer transport, and the control server.
  void start();

  /// Blocks until request_shutdown() (control kShutdown or a signal
  /// handler), then tears everything down. Returns a process exit code.
  int run_until_shutdown();

  /// Thread- and signal-safe (only sets a flag and pokes a condvar).
  void request_shutdown();

  [[nodiscard]] core::Runtime& runtime() { return *runtime_; }
  [[nodiscard]] const BuiltTopology& built() const { return built_; }
  /// Placement control plane (live migration). Always present.
  [[nodiscard]] placement::MigrationCoordinator& coordinator() {
    return *coordinator_;
  }
  /// Runtime totals merged with the socket-transport counters.
  [[nodiscard]] core::MetricsSnapshot metrics() const;
  [[nodiscard]] std::uint16_t control_port() const { return control_port_; }
  [[nodiscard]] std::uint16_t data_port() const {
    return conn_ ? conn_->listen_port() : 0;
  }
  /// HTTP ingress port (0 when no gateway is configured).
  [[nodiscard]] std::uint16_t http_port() const {
    return gateway_ ? gateway_->port() : 0;
  }

 private:
  void on_peer_frame(const std::string& peer, transport::Frame frame);
  void on_link(const std::string& peer, bool up);
  void probe_wires_behind(EngineId peer_engine);

  // Placement control plane (live migration; docs/PLACEMENT.md).
  void on_peer_message(const std::string& peer, NetMessage msg);
  void on_peer_hello(const std::string& peer, const HelloBody& hello);
  void fill_hello(HelloBody& hello);
  void broadcast_cover(const std::map<WireId, std::uint64_t>& cover);
  [[nodiscard]] placement::MigrationResult run_migration(
      const std::string& component, const std::string& to_node);
  /// Advertised http address of the node serving external `name` right
  /// now, or nullopt when that is this node (gateway 307 redirects).
  [[nodiscard]] std::optional<std::string> redirect_for(
      const std::string& name);
  /// Status report with the placement-plane fields filled in.
  [[nodiscard]] core::StatusReport status_with_placement();

  void control_accept_loop();
  void control_serve(Fd fd);
  [[nodiscard]] NetMessage handle_control(const NetMessage& request);

  /// Loop-thread only: one gauge sweep (wire queue depths, retention
  /// buffers, external-log sizes) into the runtime's registry, then
  /// re-arms itself. Stops re-arming once stopping_ is set.
  void gauge_sweep();
  /// Synchronously cancels the gauge timer on the loop thread (so no sweep
  /// can be mid-flight when the runtime starts stopping).
  void stop_gauge_timer();
  void push_loop();

  DeploymentConfig deploy_;
  const PartitionSpec* self_ = nullptr;  // points into deploy_
  HostOptions options_;

  BuiltTopology built_;
  std::map<ComponentId, EngineId> placement_;
  std::map<EngineId, std::string> partition_by_engine_;

  std::unique_ptr<core::Runtime> runtime_;
  std::unique_ptr<placement::MigrationCoordinator> coordinator_;
  /// Placement callbacks park on this until recover_from_journal() ran:
  /// a peer's HELLO must never observe (or be answered with) pre-recovery
  /// placement state.
  std::atomic<bool> placement_ready_{false};
  std::unique_ptr<ConnectionManager> conn_;
  /// The manager's net thread can deliver frames / link-up callbacks the
  /// instant its listener binds — before make_unique even returns and
  /// assigns conn_. Callbacks wait on this latch so they never observe a
  /// half-initialized host (on_link dereferences conn_ to probe wires).
  std::atomic<bool> conn_ready_{false};
  std::unique_ptr<gateway::Gateway> gateway_;
  std::unique_ptr<obs::Sampler> sampler_;

  /// Loop-thread only (armed via post()).
  EventLoop::TimerId gauge_timer_ = 0;
  std::thread push_thread_;

  Fd control_listener_;
  std::uint16_t control_port_ = 0;
  std::thread control_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace tart::net
