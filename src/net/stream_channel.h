// Chunked, CRC-protected, resumable blob transfer over the peer envelope.
//
// Migration ships checkpoint slices that can dwarf kMaxNetPayload, and the
// per-peer send queues in net::ConnectionManager are deliberately bounded —
// so large blobs travel as a *stream*: an open (manifest: kind, total size,
// whole-blob CRC-32), a windowed run of chunks, cumulative acks, and a
// close. The sender never has more than `window` unacked chunks in flight,
// which keeps the transfer inside the existing queue bounds instead of
// bypassing them.
//
// Resume: if the connection drops mid-transfer, the sender re-opens the
// SAME stream id after reconnect; a receiver that kept partial state
// answers the open with its current contiguous offset and the sender
// continues from there — re-streaming only what was lost. The final close
// verifies the whole-blob CRC, so a resume that spliced wrong bytes is
// detected before delivery.
//
// Both ends are pure state machines (no sockets, no threads): callers feed
// decoded bodies in and get bodies-to-send out, which is what makes the
// protocol unit-testable byte-for-byte (tests/placement_test.cc) and lets
// NetHost glue them to ConnectionManager::send_message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/wire_format.h"

namespace tart::net {

/// kStreamOpen: transfer manifest. `offset_hint` is 0 on a first open and
/// the sender's believed resume point on a re-open (the receiver's ack
/// overrides it either way).
struct StreamOpenBody {
  std::uint64_t stream_id = 0;
  std::uint32_t kind = 0;  ///< application tag (placement::StreamKind)
  std::uint64_t total_bytes = 0;
  std::uint32_t blob_crc = 0;
  std::string sender;  ///< node name, for logging/ownership checks

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static StreamOpenBody decode(
      const std::vector<std::byte>& payload);
};

/// kStreamChunk: one contiguous run of bytes at `offset`.
struct StreamChunkBody {
  std::uint64_t stream_id = 0;
  std::uint64_t offset = 0;
  std::vector<std::byte> bytes;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static StreamChunkBody decode(
      const std::vector<std::byte>& payload);
};

/// kStreamAck: cumulative. `received` is the receiver's contiguous prefix;
/// `accept=false` aborts the stream (unknown kind, no space, ...).
struct StreamAckBody {
  std::uint64_t stream_id = 0;
  std::uint64_t received = 0;
  bool accept = true;
  std::string error;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static StreamAckBody decode(
      const std::vector<std::byte>& payload);
};

/// kStreamClose: sender's end-of-stream. `ok=false` means the sender
/// aborted; the receiver discards partial state.
struct StreamCloseBody {
  std::uint64_t stream_id = 0;
  bool ok = true;

  [[nodiscard]] std::vector<std::byte> encode() const;
  [[nodiscard]] static StreamCloseBody decode(
      const std::vector<std::byte>& payload);
};

/// Sender half. Drive with next_message() until it returns nullopt, feeding
/// every StreamAck back via on_ack(). `done()`/`failed()` report the
/// terminal state; after a disconnect call reopen() and keep driving.
class StreamSender {
 public:
  struct Options {
    std::size_t chunk_bytes = 256 * 1024;
    int window = 4;  ///< max unacked chunks in flight
  };

  StreamSender(std::uint64_t stream_id, std::uint32_t kind,
               std::string sender_node, std::vector<std::byte> blob,
               Options options);

  /// Next envelope to transmit (open, chunk, or close), or nullopt when the
  /// window is full / waiting for the final ack / terminal.
  [[nodiscard]] std::optional<NetMessage> next_message();

  /// Feed a decoded kStreamAck for this stream id.
  void on_ack(const StreamAckBody& ack);

  /// Reset in-flight accounting after a reconnect: the next next_message()
  /// re-sends the open (with the acked offset as the resume hint).
  void reopen();

  [[nodiscard]] bool done() const { return state_ == State::kDone; }
  [[nodiscard]] bool failed() const { return state_ == State::kFailed; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t stream_id() const { return stream_id_; }
  [[nodiscard]] std::uint64_t acked_bytes() const { return acked_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return blob_.size(); }

 private:
  enum class State { kOpening, kStreaming, kClosing, kDone, kFailed };

  std::uint64_t stream_id_;
  std::uint32_t kind_;
  std::string sender_node_;
  std::vector<std::byte> blob_;
  Options options_;
  std::uint32_t crc_;
  State state_ = State::kOpening;
  bool open_sent_ = false;
  bool close_sent_ = false;
  std::uint64_t next_offset_ = 0;  ///< next byte to transmit
  std::uint64_t acked_ = 0;        ///< receiver's contiguous prefix
  std::string error_;
};

/// Receiver half: reassembles streams by id, verifies the whole-blob CRC on
/// close, and hands complete blobs to the completion callback. Keeps
/// partial state across reconnects so a re-open resumes.
class StreamReceiver {
 public:
  /// Called with (open manifest, blob) once a stream closes clean.
  using CompletionFn =
      std::function<void(const StreamOpenBody&, std::vector<std::byte>)>;
  /// Admission check on open; return an error string to refuse.
  using AdmitFn = std::function<std::string(const StreamOpenBody&)>;

  explicit StreamReceiver(CompletionFn on_complete, AdmitFn admit = nullptr)
      : on_complete_(std::move(on_complete)), admit_(std::move(admit)) {}

  /// Feed a decoded stream envelope; returns the ack (or nullopt for
  /// close-without-response). Unknown stream ids on chunk/close are
  /// ignored — the peer's reopen will resynchronize.
  std::optional<NetMessage> on_open(const StreamOpenBody& open);
  std::optional<NetMessage> on_chunk(const StreamChunkBody& chunk);
  void on_close(const StreamCloseBody& close);

  /// Drops partial state for streams from `sender` (peer declared dead).
  void abandon_from(const std::string& sender);

  [[nodiscard]] std::size_t partial_streams() const { return streams_.size(); }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_in_; }

 private:
  struct Partial {
    StreamOpenBody open;
    std::vector<std::byte> blob;
    std::uint64_t received = 0;  ///< contiguous prefix length
  };

  CompletionFn on_complete_;
  AdmitFn admit_;
  std::map<std::uint64_t, Partial> streams_;
  std::uint64_t bytes_in_ = 0;
};

}  // namespace tart::net
