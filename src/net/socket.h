// Thin RAII + helper layer over POSIX TCP sockets.
//
// Everything the net layer opens is non-blocking (the event loop never
// sleeps in a socket call) and CLOEXEC (tart-node fork/execs nothing, but
// test drivers fork tart-node itself). Addresses are "host:port" strings
// where host may be a numeric IPv4 address, a bracketed IPv6 address
// ("[::1]:9000"), or a hostname ("db-2.rack1:9000"); hostnames and IPv6
// literals resolve through getaddrinfo at listen/connect time, so
// deployment configs can name machines the way operators do. Resolution
// happens on the dialing thread (connection manager / startup), never on
// the event loop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace tart::net {

/// Owning file descriptor. Closes on destruction; -1 means empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Parsed "host:port". Parsing failures return nullopt (no exceptions: a
/// malformed peer address in a config is a startup error, not a crash).
///
/// Accepted host forms: numeric IPv4 ("10.0.0.2"), bracketed IPv6
/// ("[fe80::1]"; brackets required — a bare IPv6 literal is ambiguous
/// against the port separator), or a hostname ("node-3.example.com").
/// "localhost" normalizes to 127.0.0.1 so single-machine deployments stay
/// resolver-independent.
struct SockAddr {
  std::string host;  ///< IPv4/IPv6 literal (no brackets) or hostname
  std::uint16_t port = 0;

  [[nodiscard]] static std::optional<SockAddr> parse(const std::string& spec);
  /// Round-trips the bracket form for IPv6 literals.
  [[nodiscard]] std::string to_string() const {
    const bool v6 = host.find(':') != std::string::npos;
    return (v6 ? "[" + host + "]" : host) + ":" + std::to_string(port);
  }
};

/// Non-blocking listening socket (SO_REUSEADDR). Invalid Fd + `error` set
/// on failure. Port 0 binds an ephemeral port (query with local_port).
[[nodiscard]] Fd listen_tcp(const SockAddr& addr, std::string* error);

/// The locally bound port of a socket (0 on error).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Accepts one pending connection, returned non-blocking with TCP_NODELAY.
/// Invalid Fd when nothing is pending or accept failed.
[[nodiscard]] Fd accept_tcp(int listen_fd);

/// Starts a non-blocking connect. On return either the connect completed
/// (*in_progress=false), is pending writability (*in_progress=true), or
/// failed (invalid Fd, `error` set).
[[nodiscard]] Fd connect_tcp(const SockAddr& addr, bool* in_progress,
                             std::string* error);

/// SO_ERROR after a pending connect becomes writable; 0 means connected.
[[nodiscard]] int connect_error(int fd);

}  // namespace tart::net
