#include "net/topologies.h"

#include <memory>

#include "apps/wordcount.h"

namespace tart::net {
namespace {

int int_param(const std::map<std::string, std::string>& params,
              const std::string& key, int fallback, int lo, int hi) {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  int v = 0;
  for (const char c : it->second) {
    if (c < '0' || c > '9')
      throw ConfigError("param " + key + ": not a number: " + it->second);
    v = v * 10 + (c - '0');
    if (v > hi) break;
  }
  if (v < lo || v > hi)
    throw ConfigError("param " + key + ": out of range [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return v;
}

BuiltTopology build_wordcount(
    const std::map<std::string, std::string>& params) {
  const int senders = int_param(params, "senders", 2, 1, 64);
  BuiltTopology built;
  const auto merger = built.topology.add("merger", [] {
    return std::make_unique<apps::TotalingMerger>();
  });
  built.components["merger"] = merger;
  for (int i = 1; i <= senders; ++i) {
    const std::string name = "sender" + std::to_string(i);
    const auto id = built.topology.add(name, [] {
      return std::make_unique<apps::WordCountSender>();
    });
    built.components[name] = id;
    built.inputs[name] = built.topology.external_input(id, PortId(0));
    built.topology.connect(id, PortId(0), merger, PortId(0));
  }
  built.outputs["total"] =
      built.topology.external_output(merger, PortId(0));
  return built;
}

BuiltTopology build_chain(const std::map<std::string, std::string>& params) {
  const int stages = int_param(params, "stages", 3, 1, 64);
  BuiltTopology built;
  ComponentId prev = ComponentId::invalid();
  for (int i = 1; i <= stages; ++i) {
    const std::string name = "stage" + std::to_string(i);
    const auto id = built.topology.add(name, [] {
      return std::make_unique<apps::Passthrough>();
    });
    built.components[name] = id;
    if (i == 1) {
      built.inputs["in"] = built.topology.external_input(id, PortId(0));
    } else {
      built.topology.connect(prev, PortId(0), id, PortId(0));
    }
    prev = id;
  }
  built.outputs["out"] = built.topology.external_output(prev, PortId(0));
  return built;
}

}  // namespace

BuiltTopology build_topology(
    const std::string& name,
    const std::map<std::string, std::string>& params) {
  if (name == "wordcount") return build_wordcount(params);
  if (name == "chain") return build_chain(params);
  throw ConfigError("unknown topology '" + name + "' (known: wordcount, chain)");
}

std::vector<std::string> topology_names() { return {"wordcount", "chain"}; }

}  // namespace tart::net
