#include "net/partition_config.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "net/socket.h"
#include "serde/archive.h"

namespace tart::net {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw ConfigError("deployment config line " + std::to_string(line) + ": " +
                    what);
}

}  // namespace

const PartitionSpec* DeploymentConfig::find_partition(
    const std::string& name) const {
  for (const auto& p : partitions)
    if (p.name == name) return &p;
  return nullptr;
}

const PartitionSpec* DeploymentConfig::partition_of_engine(EngineId id) const {
  for (const auto& p : partitions)
    if (p.engine == id) return &p;
  return nullptr;
}

std::uint64_t DeploymentConfig::fingerprint() const {
  // Combined form kept for operator-facing diagnostics; protocol checks use
  // the topology/placement split below.
  return topology_fingerprint() ^ (placement_fingerprint() * 0x9E3779B97F4A7C15ull);
}

std::uint64_t DeploymentConfig::topology_fingerprint() const {
  serde::Writer w;
  w.write_string(topology);
  w.write_varint(params.size());
  for (const auto& [k, v] : params) {
    w.write_string(k);
    w.write_string(v);
  }
  w.write_varint(partitions.size());
  for (const auto& p : partitions) {
    w.write_string(p.name);
    w.write_string(p.data_addr);
    // control_addr / http_addr deliberately excluded: node-operator
    // plumbing, not part of the distributed protocol two peers must agree
    // on. Placement is excluded too — it drifts under live migration.
  }
  return serde::fingerprint(w.bytes());
}

std::uint64_t DeploymentConfig::placement_fingerprint() const {
  serde::Writer w;
  w.write_varint(placement.size());
  for (const auto& [c, p] : placement) {
    w.write_string(c);
    w.write_string(p);
  }
  return serde::fingerprint(w.bytes());
}

DeploymentConfig DeploymentConfig::parse(const std::string& text) {
  DeploymentConfig cfg;
  std::map<std::string, std::string> controls;  // partition -> control addr
  std::map<std::string, std::string> https;     // partition -> http addr
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.resize(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(lineno, "expected 'directive = value'");
    const std::string value = trim(line.substr(eq + 1));
    std::istringstream head(line.substr(0, eq));
    std::string directive, name;
    head >> directive >> name;
    if (value.empty()) fail(lineno, "empty value");

    if (directive == "topology") {
      if (!name.empty()) fail(lineno, "'topology' takes no name");
      if (!cfg.topology.empty()) fail(lineno, "duplicate 'topology'");
      cfg.topology = value;
    } else if (directive == "param") {
      if (name.empty()) fail(lineno, "'param' needs a key");
      if (!cfg.params.emplace(name, value).second)
        fail(lineno, "duplicate param '" + name + "'");
    } else if (directive == "partition") {
      if (name.empty()) fail(lineno, "'partition' needs a name");
      if (cfg.find_partition(name) != nullptr)
        fail(lineno, "duplicate partition '" + name + "'");
      if (!SockAddr::parse(value))
        fail(lineno, "bad address '" + value + "' (want host:port)");
      cfg.partitions.push_back(
          PartitionSpec{name, value, "", "", EngineId::invalid()});
    } else if (directive == "control") {
      if (name.empty()) fail(lineno, "'control' needs a partition name");
      if (!SockAddr::parse(value))
        fail(lineno, "bad address '" + value + "' (want host:port)");
      if (!controls.emplace(name, value).second)
        fail(lineno, "duplicate control for '" + name + "'");
    } else if (directive == "http") {
      if (name.empty()) fail(lineno, "'http' needs a partition name");
      if (!SockAddr::parse(value))
        fail(lineno, "bad address '" + value + "' (want host:port)");
      if (!https.emplace(name, value).second)
        fail(lineno, "duplicate http for '" + name + "'");
    } else if (directive == "place") {
      if (name.empty()) fail(lineno, "'place' needs a component name");
      if (!cfg.placement.emplace(name, value).second)
        fail(lineno, "component '" + name + "' placed twice");
    } else {
      fail(lineno, "unknown directive '" + directive + "'");
    }
  }

  if (cfg.topology.empty()) throw ConfigError("missing 'topology' directive");
  if (cfg.partitions.empty())
    throw ConfigError("no 'partition' declarations");
  std::sort(cfg.partitions.begin(), cfg.partitions.end(),
            [](const PartitionSpec& a, const PartitionSpec& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 0; i < cfg.partitions.size(); ++i) {
    cfg.partitions[i].engine = EngineId(static_cast<std::uint32_t>(i));
    if (const auto it = controls.find(cfg.partitions[i].name);
        it != controls.end()) {
      cfg.partitions[i].control_addr = it->second;
      controls.erase(it);
    }
    if (const auto it = https.find(cfg.partitions[i].name);
        it != https.end()) {
      cfg.partitions[i].http_addr = it->second;
      https.erase(it);
    }
  }
  if (!controls.empty())
    throw ConfigError("control declared for unknown partition '" +
                      controls.begin()->first + "'");
  if (!https.empty())
    throw ConfigError("http declared for unknown partition '" +
                      https.begin()->first + "'");
  for (const auto& [component, partition] : cfg.placement)
    if (cfg.find_partition(partition) == nullptr)
      throw ConfigError("component '" + component +
                        "' placed on unknown partition '" + partition + "'");
  return cfg;
}

DeploymentConfig DeploymentConfig::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open deployment config: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace tart::net
