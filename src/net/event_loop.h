// Single-threaded poll(2) event loop.
//
// One loop thread per ConnectionManager multiplexes every socket the node
// owns: non-blocking fds with edge-free (level-triggered) readiness
// callbacks, monotonic-deadline timers (heartbeats, reconnect backoff),
// and a self-pipe so other threads can post() work into the loop. poll is
// deliberate: a node talks to a handful of peers, so the O(fds) scan is
// noise and the portability (macOS included) is free; swapping in epoll
// later only touches this file.
//
// Threading contract: set_fd/remove_fd/add_timer/cancel_timer must be
// called on the loop thread (post() a closure to get there); post() and
// stop() are safe from any thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace tart::net {

class EventLoop {
 public:
  /// Readiness bitmask handed to fd callbacks.
  static constexpr unsigned kReadable = 1u << 0;
  static constexpr unsigned kWritable = 1u << 1;
  static constexpr unsigned kError = 1u << 2;  ///< POLLERR/POLLHUP/POLLNVAL

  using FdCallback = std::function<void(unsigned events)>;
  using TimerId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers (or re-registers) a descriptor with its interest set. The
  /// callback may call set_fd/remove_fd freely, including on itself.
  void set_fd(int fd, bool want_read, bool want_write, FdCallback callback);
  /// Updates only the interest set of an already-registered descriptor.
  void set_interest(int fd, bool want_read, bool want_write);
  void remove_fd(int fd);

  TimerId add_timer(Clock::time_point when, std::function<void()> callback);
  void cancel_timer(TimerId id);

  /// Enqueues a closure to run on the loop thread. Thread-safe.
  void post(std::function<void()> fn);

  /// Runs until stop(). Call from exactly one thread.
  void run();
  /// Thread-safe; run() returns after finishing the current iteration.
  void stop();

 private:
  struct FdEntry {
    bool want_read = false;
    bool want_write = false;
    FdCallback callback;
  };
  struct Timer {
    Clock::time_point when;
    std::function<void()> callback;
  };

  void drain_wake_pipe();

  std::map<int, FdEntry> fds_;
  std::map<TimerId, Timer> timers_;
  TimerId next_timer_ = 1;

  int wake_read_ = -1;
  int wake_write_ = -1;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  // guarded by posted_mu_
};

}  // namespace tart::net
