#include "trace/trace_file.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "serde/archive.h"

namespace tart::trace {

const ComponentTrace* Trace::find(ComponentId id) const {
  for (const auto& c : components)
    if (c.component == id) return &c;
  return nullptr;
}

std::size_t Trace::total_events() const {
  std::size_t n = 0;
  for (const auto& c : components) n += c.events.size();
  return n;
}

std::vector<TraceEvent> Trace::merged() const {
  std::vector<TraceEvent> all;
  all.reserve(total_events());
  for (const auto& c : components)
    all.insert(all.end(), c.events.begin(), c.events.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return std::tuple{a.vt, a.component, a.seq} <
                            std::tuple{b.vt, b.component, b.seq};
                   });
  return all;
}

std::vector<std::byte> encode_trace(const Trace& trace) {
  serde::Writer w;
  for (const char c : kTraceMagic)
    w.write_u8(static_cast<std::uint8_t>(c));
  w.write_u32(trace.version);
  w.write_u32(trace.categories);
  w.write_varint(trace.components.size());
  for (const auto& ct : trace.components) {
    w.write_u32(ct.component.value());
    w.write_varint(ct.events.size());
    for (const TraceEvent& e : ct.events) e.encode(w);
  }
  return w.take();
}

Trace TraceReader::read_bytes(const std::vector<std::byte>& bytes) {
  serde::Reader r(bytes);
  try {
    char magic[8];
    for (char& c : magic) c = static_cast<char>(r.read_u8());
    if (std::memcmp(magic, kTraceMagic, sizeof(kTraceMagic)) != 0)
      throw TraceError("not a TART trace (bad magic)");
    Trace t;
    t.version = r.read_u32();
    if (t.version < kMinReadableTraceVersion ||
        t.version > kTraceFormatVersion)
      throw TraceError("unsupported trace format version " +
                       std::to_string(t.version) + " (readable: " +
                       std::to_string(kMinReadableTraceVersion) + ".." +
                       std::to_string(kTraceFormatVersion) + ")");
    t.categories = r.read_u32();
    const auto n_components = r.read_varint();
    for (std::uint64_t i = 0; i < n_components; ++i) {
      ComponentTrace ct;
      ct.component = ComponentId(r.read_u32());
      const auto n_events = r.read_varint();
      ct.events.reserve(n_events);
      for (std::uint64_t j = 0; j < n_events; ++j) {
        TraceEvent e = TraceEvent::decode(r);
        e.component = ct.component;
        ct.events.push_back(e);
      }
      t.components.push_back(std::move(ct));
    }
    if (!r.at_end()) throw TraceError("trailing bytes after trace body");
    return t;
  } catch (const serde::DecodeError& e) {
    throw TraceError(std::string("truncated or corrupt trace: ") + e.what());
  }
}

Trace TraceReader::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open trace file: " + path);
  std::vector<std::byte> bytes;
  in.seekg(0, std::ios::end);
  bytes.resize(static_cast<std::size_t>(in.tellg()));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) throw TraceError("cannot read trace file: " + path);
  return read_bytes(bytes);
}

Trace filter_categories(const Trace& trace, std::uint32_t mask) {
  Trace out;
  out.version = trace.version;
  out.categories = trace.categories & mask;
  out.components.reserve(trace.components.size());
  for (const ComponentTrace& ct : trace.components) {
    ComponentTrace fct;
    fct.component = ct.component;
    for (const TraceEvent& e : ct.events) {
      if ((static_cast<std::uint32_t>(category_of(e.kind)) & mask) == 0)
        continue;
      TraceEvent kept = e;
      kept.seq = fct.events.size();
      fct.events.push_back(kept);
    }
    out.components.push_back(std::move(fct));
  }
  return out;
}

void write_trace_file(const std::string& path, const Trace& trace) {
  const std::vector<std::byte> bytes = encode_trace(trace);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError("cannot open trace file for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw TraceError("cannot write trace file: " + path);
}

}  // namespace tart::trace
