// TraceRecorder: the flight recorder.
//
// One bounded lock-free ring per component absorbs events from whichever
// thread makes a scheduling decision (runner threads; frame-routing
// threads for duplicate discards and probes). A background writer drains
// the rings into per-component in-memory streams; finalize() (idempotent,
// called from Runtime::stop and the destructor) sorts each stream by its
// per-component sequence and writes the canonical file.
//
// Cost discipline: when tracing is disabled no recorder exists and every
// hook site is a single null-pointer branch. When enabled, a record is one
// category-mask test, one relaxed fetch_add for the sequence, and one ring
// push; a full ring drops the record (counted, never blocking).
//
// Recording survives engine crash/recover: the recorder belongs to the
// Runtime, so a component's stream continues across failover with the
// same monotone sequence — recovery and replayed dispatches land in the
// same stream the pre-crash events did, which is what lets the differ
// check prefix-identical replay.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "trace/ring_buffer.h"
#include "trace/trace_config.h"
#include "trace/trace_event.h"
#include "trace/trace_file.h"

namespace tart::trace {

class TraceRecorder {
 public:
  /// `components`: every component that may record (the deployment's
  /// placement keys). Registration is fixed up front so lookups are
  /// lock-free and the file layout is run-independent.
  TraceRecorder(TraceConfig config, std::vector<ComponentId> components);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// True when events of this kind's category are being recorded. Hook
  /// sites with non-trivial argument computation should test this first.
  [[nodiscard]] bool wants(TraceEventKind kind) const {
    return (config_.categories &
            static_cast<std::uint32_t>(category_of(kind))) != 0;
  }

  /// Records one event. Thread-safe, wait-free, never blocks the caller;
  /// silently drops (and counts) when the component's ring is full or the
  /// category is masked off.
  void record(ComponentId component, TraceEventKind kind, VirtualTime vt,
              WireId wire, std::uint64_t aux = 0,
              std::uint64_t payload_hash = 0);

  /// Stops the writer, drains the rings, sorts the streams, and writes the
  /// file (when a path is configured). Idempotent; record() calls after
  /// finalize are dropped.
  void finalize();

  /// The assembled trace. Valid only after finalize().
  [[nodiscard]] const Trace& trace() const { return trace_; }

  [[nodiscard]] std::uint64_t recorded(ComponentId component) const;
  [[nodiscard]] std::uint64_t dropped(ComponentId component) const;
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::uint64_t total_dropped() const;

 private:
  struct Slot {
    ComponentId id;
    std::int64_t vt_skew = 0;
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> recorded{0};
    std::atomic<std::uint64_t> dropped{0};
    std::unique_ptr<RingBuffer<TraceEvent>> ring;
    std::vector<TraceEvent> drained;  // writer thread / post-finalize only
  };

  void writer_loop();
  void drain_all();
  [[nodiscard]] const Slot* find(ComponentId component) const;

  const TraceConfig config_;
  std::map<ComponentId, std::size_t> index_;  // immutable after ctor
  std::vector<std::unique_ptr<Slot>> slots_;

  std::mutex writer_mu_;
  std::condition_variable writer_cv_;
  bool writer_stop_ = false;
  std::thread writer_;

  std::atomic<bool> finalized_{false};
  Trace trace_;
};

}  // namespace tart::trace
