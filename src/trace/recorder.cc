#include "trace/recorder.h"

#include <algorithm>

#include "obs/prof.h"

namespace tart::trace {

TraceRecorder::TraceRecorder(TraceConfig config,
                             std::vector<ComponentId> components)
    : config_(std::move(config)) {
  std::sort(components.begin(), components.end());
  components.erase(std::unique(components.begin(), components.end()),
                   components.end());
  slots_.reserve(components.size());
  for (const ComponentId c : components) {
    auto slot = std::make_unique<Slot>();
    slot->id = c;
    const auto skew = config_.debug_vt_skew.find(c);
    if (skew != config_.debug_vt_skew.end()) slot->vt_skew = skew->second;
    slot->ring = std::make_unique<RingBuffer<TraceEvent>>(
        config_.ring_capacity);
    index_.emplace(c, slots_.size());
    slots_.push_back(std::move(slot));
  }
  writer_ = std::thread([this] { writer_loop(); });
}

TraceRecorder::~TraceRecorder() { finalize(); }

void TraceRecorder::record(ComponentId component, TraceEventKind kind,
                           VirtualTime vt, WireId wire, std::uint64_t aux,
                           std::uint64_t payload_hash) {
  if (finalized_.load(std::memory_order_relaxed)) return;
  if (!wants(kind)) return;
  const auto it = index_.find(component);
  if (it == index_.end()) return;
  Slot& slot = *slots_[it->second];

  TraceEvent e;
  e.component = component;
  e.kind = kind;
  e.vt = (slot.vt_skew != 0 && !vt.is_infinite())
             ? VirtualTime(vt.ticks() + slot.vt_skew)
             : vt;
  e.wire = wire;
  e.aux = aux;
  e.payload_hash = payload_hash;
  e.seq = slot.seq.fetch_add(1, std::memory_order_relaxed);

  if (slot.ring->try_push(e)) {
    slot.recorded.fetch_add(1, std::memory_order_relaxed);
  } else {
    slot.dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceRecorder::writer_loop() {
  std::unique_lock<std::mutex> lk(writer_mu_);
  while (!writer_stop_) {
    writer_cv_.wait_for(lk, config_.drain_interval);
    lk.unlock();
    drain_all();
    lk.lock();
  }
}

void TraceRecorder::drain_all() {
  TART_PROF_SPAN("trace.drain");
  for (auto& slot : slots_) {
    while (auto e = slot->ring->try_pop()) slot->drained.push_back(*e);
  }
}

void TraceRecorder::finalize() {
  if (finalized_.exchange(true)) return;
  {
    const std::lock_guard<std::mutex> lk(writer_mu_);
    writer_stop_ = true;
  }
  writer_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  drain_all();

  trace_.version = kTraceFormatVersion;
  trace_.categories = config_.categories;
  trace_.components.clear();
  for (auto& slot : slots_) {
    // Multi-producer pushes can land in the ring slightly out of sequence
    // order; the canonical stream is the sequence order.
    std::stable_sort(slot->drained.begin(), slot->drained.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.seq < b.seq;
                     });
    ComponentTrace ct;
    ct.component = slot->id;
    ct.events = std::move(slot->drained);
    trace_.components.push_back(std::move(ct));
  }
  if (!config_.path.empty()) write_trace_file(config_.path, trace_);
}

const TraceRecorder::Slot* TraceRecorder::find(ComponentId component) const {
  const auto it = index_.find(component);
  return it == index_.end() ? nullptr : slots_[it->second].get();
}

std::uint64_t TraceRecorder::recorded(ComponentId component) const {
  const Slot* s = find(component);
  return s == nullptr ? 0 : s->recorded.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::dropped(ComponentId component) const {
  const Slot* s = find(component);
  return s == nullptr ? 0 : s->dropped.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::total_recorded() const {
  std::uint64_t n = 0;
  for (const auto& s : slots_)
    n += s->recorded.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t TraceRecorder::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& s : slots_)
    n += s->dropped.load(std::memory_order_relaxed);
  return n;
}

}  // namespace tart::trace
