// Compact binary trace format and its reader.
//
// Layout (all integers via serde::Archive, little-endian / varint):
//
//   magic   8 bytes  "TARTTRC1"
//   u32     format version (kTraceFormatVersion)
//   u32     category mask the recorder ran with
//   varint  component count
//   per component, in ascending component-id order:
//     u32     component id
//     varint  event count
//     events in per-component sequence order (see TraceEvent::encode)
//
// The file is canonical: events are grouped per component and ordered by
// the per-component sequence, never by wall-clock drain order — so a
// deterministic execution yields a byte-identical file regardless of how
// threads interleaved or when the background writer drained. A global
// virtual-time-ordered view is derived, not stored (Trace::merged).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.h"
#include "trace/trace_event.h"

namespace tart::trace {

inline constexpr char kTraceMagic[8] = {'T', 'A', 'R', 'T',
                                        'T', 'R', 'C', '1'};
/// v1: kinds 0..15 (scheduling + diagnostic). v2: adds the lineage event
/// class (kinds 16..21). The container layout is identical; readers accept
/// both versions (a v1 file simply contains no lineage events), and v1
/// readers reject v2 files whose streams carry unknown kinds at decode.
inline constexpr std::uint32_t kTraceFormatVersion = 2;
inline constexpr std::uint32_t kMinReadableTraceVersion = 1;

/// Corrupted, truncated, unreadable, or version-incompatible trace file.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ComponentTrace {
  ComponentId component;
  std::vector<TraceEvent> events;  // per-component seq order

  bool operator==(const ComponentTrace&) const = default;
};

struct Trace {
  std::uint32_t version = kTraceFormatVersion;
  std::uint32_t categories = 0;
  std::vector<ComponentTrace> components;  // ascending component id

  [[nodiscard]] const ComponentTrace* find(ComponentId id) const;
  [[nodiscard]] std::size_t total_events() const;

  /// Global virtual-time order: (vt, component, seq) — the deterministic
  /// merge mirroring the schedulers' own tie-break discipline.
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  bool operator==(const Trace&) const = default;
};

[[nodiscard]] std::vector<std::byte> encode_trace(const Trace& trace);

class TraceReader {
 public:
  /// Decodes a trace from bytes. Throws TraceError on a bad magic,
  /// unsupported version, or truncated/malformed body.
  [[nodiscard]] static Trace read_bytes(const std::vector<std::byte>& bytes);

  /// Loads and decodes a trace file. Throws TraceError (file missing or
  /// unreadable included).
  [[nodiscard]] static Trace read_file(const std::string& path);
};

/// Writes the canonical encoding to `path`. Throws TraceError on I/O error.
void write_trace_file(const std::string& path, const Trace& trace);

/// Projection of `trace` onto the categories in `mask`: events whose
/// category is masked off are dropped and each surviving event's
/// record-order seq is rebased to its position in the filtered stream
/// (raw seqs shift with however many wall-dependent events interleaved).
/// Component sections — even ones left empty — are kept, and the
/// projection's category mask is `categories & mask`. Two runs whose
/// scheduling decisions agree therefore yield byte-identical
/// scheduling-category projections even when recorded with diagnostics
/// and lineage enabled.
[[nodiscard]] Trace filter_categories(const Trace& trace, std::uint32_t mask);

}  // namespace tart::trace
