// Flight-recorder configuration, embedded in RuntimeConfig.
//
// Tracing is off by default; when off the hot path pays a single
// null-pointer branch per would-be record point. When on, the default
// category mask records only scheduling-class events, whose stream is a
// deterministic function of the input log — so two runs over the same log
// yield byte-identical trace files (the harness in
// tests/trace_determinism_test.cc enforces this).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/ids.h"
#include "trace/trace_event.h"

namespace tart::trace {

struct TraceConfig {
  bool enabled = false;

  /// Output file written at finalize (Runtime::stop). Empty keeps the
  /// trace in memory only (introspection / benches).
  std::string path;

  /// Which event categories to record (TraceCategory bits).
  std::uint32_t categories = static_cast<std::uint32_t>(TraceCategory::kScheduling);

  /// Per-component ring capacity (rounded up to a power of two). Records
  /// that arrive while the ring is full are dropped and counted in
  /// MetricsSnapshot::trace_events_dropped.
  std::size_t ring_capacity = 1 << 14;

  /// Background-writer drain cadence.
  std::chrono::microseconds drain_interval{500};

  /// TEST-ONLY: skews the recorded virtual time of the named components'
  /// events by the given tick delta, *in the trace layer only* — scheduling
  /// is untouched. Simulates a nondeterministic run so divergence
  /// detection can be exercised without actually breaking the runtime.
  std::map<ComponentId, std::int64_t> debug_vt_skew;
};

}  // namespace tart::trace
