// Flight-recorder event taxonomy.
//
// Every scheduling decision a runner makes is describable as a typed event
// stamped with the component that made it, the virtual time it concerns,
// and a per-component sequence number assigned at record time. Events fall
// into two categories:
//
//   - *scheduling* events are pure functions of the external input log
//     (dispatch order, emitted messages, checkpoints, replay positions):
//     two runs over the same log must produce byte-identical scheduling
//     streams, which is the checkable form of the paper's determinism
//     claim (§II.A, §II.D);
//   - *diagnostic* events depend on real time (pessimism stalls, curiosity
//     probes, silence publication): they explain performance but are not
//     comparable across runs;
//   - *lineage* events stamp request identity at the edges (ingest
//     arrival/durability/ack, per-hop consume/emit, output delivery) with
//     wall-clock timestamps so an acked input's causal descendants and
//     end-to-end latency can be reconstructed offline (src/trace/lineage.h).
//     Like diagnostics they carry real time and are excluded from the
//     determinism comparison.
//
// Crash/recovery artifacts (kCrash, kRecoveryStart, kDuplicateDiscard,
// kGap) are scheduling-class — they never occur in a failure-free run, and
// in a failed run the differ treats them as documented stutter (§II.F.4:
// replayed duplicates "will have duplicate timestamps and will be
// discarded").
#pragma once

#include <cstdint>
#include <string_view>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "serde/archive.h"

namespace tart::trace {

enum class TraceEventKind : std::uint8_t {
  // Scheduling class.
  kDispatch = 0,          ///< Handler invoked: vt = msg vt, aux = msg seq.
  kEmit = 1,              ///< Message sent: vt = assigned vt, aux = seq.
  kCheckpoint = 2,        ///< Soft checkpoint taken: aux = version.
  kRecoveryStart = 3,     ///< Restored from replica: vt = restored, aux = version.
  kReplayStart = 4,       ///< Replay requested on a wire: aux = from_seq.
  kDuplicateDiscard = 5,  ///< Arrival with an already-accounted vt dropped.
  kGap = 6,               ///< Sequence jump detected; replay needed.
  kCrash = 7,             ///< Hosting engine fail-stopped.
  // Diagnostic class.
  kSilencePromise = 8,    ///< Output horizon advanced: vt = new horizon,
                          ///< aux = sender-side wall clock ns (steady; lets
                          ///< forensics split stalls into estimator error vs
                          ///< propagation lag).
  kCuriosityProbe = 9,    ///< Probe sent at a lagging input wire.
  kStallBegin = 10,       ///< Head held back awaiting silence (§II.E):
                          ///< vt = held vt, wire = held wire, aux = episode
                          ///< id, payload_hash = episode-begin wall clock ns
                          ///< (0 in pre-v2 traces; lets forensics report
                          ///< episodes still open when the stream ends).
  kStallEnd = 11,         ///< Held head released: aux = real ns stalled.
  kLinkUp = 12,           ///< Socket link to a peer node established.
  kLinkDown = 13,         ///< Socket link lost (EOF, error, heartbeat miss).
  // Stall forensics (diagnostic). A pessimism-stall episode begins at
  // kStallBegin, ends at kStallEnd (kept for back-compat: aux = real ns
  // stalled), and is *explained* by the pair below, correlated through a
  // per-component episode id in aux:
  kStallResolved = 14,    ///< vt = held vt, wire = blocking wire (the last
                          ///< silence horizon to advance past the held vt),
                          ///< aux = episode id, payload_hash = wall ns
                          ///< stalled.
  kStallBlame = 15,       ///< vt = blocking wire's horizon at episode begin,
                          ///< wire = blocking wire, aux = episode id,
                          ///< payload_hash = episode-begin wall clock ns
                          ///< (steady, same clock as kSilencePromise aux).
  // Lineage class (format v2+). Identity is the deployment-global
  // (wire, seq) assigned at injection; every event stamps a steady-clock
  // wall time in payload_hash so the offline join (src/trace/lineage.h)
  // can decompose end-to-end latency. Edge events live in the pseudo
  // component stream kEdgeTraceComponent; hop/output events live in the
  // processing component's own stream.
  kIngestArrive = 16,     ///< Input arrived at the edge: vt = assigned vt,
                          ///< wire = input wire, aux = assigned seq,
                          ///< payload_hash = arrival wall ns.
  kIngestDurable = 17,    ///< Input group-committed to the external log:
                          ///< same keys, payload_hash = commit wall ns.
  kIngestAck = 18,        ///< Ack released to the client (gateway):
                          ///< same keys, payload_hash = ack wall ns.
  kHopDispatch = 19,      ///< Handler started on a message: vt/wire/aux =
                          ///< msg vt/wire/seq, payload_hash = wall ns.
  kHopDone = 20,          ///< Handler (and its emits) finished: same keys,
                          ///< payload_hash = wall ns.
  kOutputDeliver = 21,    ///< External output made visible: vt/wire/aux =
                          ///< output msg vt/wire/seq, payload_hash = wall ns.
};

inline constexpr std::uint8_t kMaxTraceEventKind = 21;

enum class TraceCategory : std::uint32_t {
  kScheduling = 1u << 0,
  kDiagnostic = 1u << 1,
  kLineage = 1u << 2,
  kAll = (1u << 0) | (1u << 1) | (1u << 2),
};

[[nodiscard]] constexpr TraceCategory category_of(TraceEventKind kind) {
  return static_cast<std::uint8_t>(kind) <=
                 static_cast<std::uint8_t>(TraceEventKind::kCrash)
             ? TraceCategory::kScheduling
         : static_cast<std::uint8_t>(kind) <=
                 static_cast<std::uint8_t>(TraceEventKind::kStallBlame)
             ? TraceCategory::kDiagnostic
             : TraceCategory::kLineage;
}

[[nodiscard]] constexpr std::string_view name_of(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kDispatch: return "dispatch";
    case TraceEventKind::kEmit: return "emit";
    case TraceEventKind::kCheckpoint: return "checkpoint";
    case TraceEventKind::kRecoveryStart: return "recovery";
    case TraceEventKind::kReplayStart: return "replay";
    case TraceEventKind::kDuplicateDiscard: return "dup-discard";
    case TraceEventKind::kGap: return "gap";
    case TraceEventKind::kCrash: return "crash";
    case TraceEventKind::kSilencePromise: return "silence";
    case TraceEventKind::kCuriosityProbe: return "probe";
    case TraceEventKind::kStallBegin: return "stall-begin";
    case TraceEventKind::kStallEnd: return "stall-end";
    case TraceEventKind::kLinkUp: return "link-up";
    case TraceEventKind::kLinkDown: return "link-down";
    case TraceEventKind::kStallResolved: return "stall-resolved";
    case TraceEventKind::kStallBlame: return "stall-blame";
    case TraceEventKind::kIngestArrive: return "ingest-arrive";
    case TraceEventKind::kIngestDurable: return "ingest-durable";
    case TraceEventKind::kIngestAck: return "ingest-ack";
    case TraceEventKind::kHopDispatch: return "hop-dispatch";
    case TraceEventKind::kHopDone: return "hop-done";
    case TraceEventKind::kOutputDeliver: return "output-deliver";
  }
  return "?";
}

struct TraceEvent {
  ComponentId component;      ///< Implicit in the file (per-component section).
  std::uint64_t seq = 0;      ///< Per-component record order.
  TraceEventKind kind = TraceEventKind::kDispatch;
  VirtualTime vt;             ///< Virtual time the event concerns.
  WireId wire;                ///< Wire involved (invalid for e.g. checkpoints).
  std::uint64_t aux = 0;      ///< Kind-specific (msg seq, version, ns, ...).
  std::uint64_t payload_hash = 0;  ///< FNV of the payload bytes; 0 if none.

  /// Semantic identity: everything except the record-order seq (the seq
  /// shifts when categories are filtered; the decision itself does not).
  [[nodiscard]] bool same_decision(const TraceEvent& o) const {
    return kind == o.kind && vt == o.vt && wire == o.wire && aux == o.aux &&
           payload_hash == o.payload_hash;
  }

  bool operator==(const TraceEvent&) const = default;

  void encode(serde::Writer& w) const {
    w.write_u8(static_cast<std::uint8_t>(kind));
    w.write_varint(seq);
    w.write_vt(vt);
    w.write_u32(wire.value());
    w.write_varint(aux);
    w.write_u64(payload_hash);
  }

  [[nodiscard]] static TraceEvent decode(serde::Reader& r) {
    TraceEvent e;
    const std::uint8_t k = r.read_u8();
    if (k > kMaxTraceEventKind)
      throw serde::DecodeError("unknown trace event kind");
    e.kind = static_cast<TraceEventKind>(k);
    e.seq = r.read_varint();
    e.vt = r.read_vt();
    e.wire = WireId(r.read_u32());
    e.aux = r.read_varint();
    e.payload_hash = r.read_u64();
    return e;
  }
};

/// FNV hash of any serde-encodable value (used to stamp message payloads
/// into events without storing them).
template <typename T>
[[nodiscard]] std::uint64_t hash_of(const T& value) {
  serde::Writer w;
  value.encode(w);
  return serde::fingerprint(w.bytes());
}

}  // namespace tart::trace
