#include "trace/forensics.h"

#include <algorithm>
#include <limits>
#include <map>

namespace tart::trace {

Decomposition decompose(std::int64_t stall_ns, std::int64_t begin_wall_ns,
                        std::int64_t promise_wall_ns,
                        std::int64_t needed_ticks, std::int64_t h_begin_ticks,
                        std::int64_t next_emit_ticks) {
  Decomposition d;
  const std::int64_t s = std::max<std::int64_t>(stall_ns, 0);
  if (promise_wall_ns < 0) {
    // Nobody ever published a covering horizon (external wire, or the head
    // was displaced before the promise landed): the sender's estimator is
    // charged with the whole wait.
    d.estimator_error_ns = s;
  } else {
    // Wall time from "receiver starts waiting" to "sender publishes a
    // covering horizon" is the sender's fault; the remainder is transit +
    // scheduling of the promise. Clamping makes the parts exclusive and
    // exhaustive: they always sum to exactly the recorded stall.
    d.estimator_error_ns =
        std::clamp<std::int64_t>(promise_wall_ns - begin_wall_ns, 0, s);
  }
  d.propagation_lag_ns = s - d.estimator_error_ns;

  d.deficit_ticks = std::max<std::int64_t>(needed_ticks - h_begin_ticks, 0);
  if (d.deficit_ticks > 0) {
    // Tick-domain shadow: ticks strictly before the sender's actual next
    // send carried no data, so a perfect estimator would have promised
    // them at episode begin — pure estimator pessimism.
    const std::int64_t claimable =
        next_emit_ticks < 0 ? needed_ticks
                            : std::min(next_emit_ticks - 1, needed_ticks);
    d.estimator_error_ticks =
        std::clamp<std::int64_t>(claimable - h_begin_ticks, 0,
                                 d.deficit_ticks);
  }
  return d;
}

double ForensicsReport::attributed_fraction() const {
  if (total_stall_ns <= 0) return 1.0;
  return static_cast<double>(attributed_stall_ns) /
         static_cast<double>(total_stall_ns);
}

std::vector<const Episode*> ForensicsReport::top(std::size_t k) const {
  std::vector<const Episode*> out;
  out.reserve(episodes.size());
  for (const Episode& e : episodes) out.push_back(&e);
  std::sort(out.begin(), out.end(), [](const Episode* a, const Episode* b) {
    if (a->stall_ns != b->stall_ns) return a->stall_ns > b->stall_ns;
    if (a->component != b->component) return a->component < b->component;
    return a->id < b->id;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

const Episode* ForensicsReport::find(ComponentId component,
                                     std::uint64_t id) const {
  for (const Episode& e : episodes)
    if (e.component == component && e.id == id) return &e;
  return nullptr;
}

namespace {

/// The sender-side view of one wire: promises and emits in stream order
/// (both have nondecreasing vt — horizons only advance, per-wire send vts
/// only grow).
struct WireSenderIndex {
  ComponentId sender;
  std::vector<std::pair<std::int64_t, std::int64_t>> promises;  // vt, wall
  std::vector<std::pair<std::int64_t, std::uint64_t>> emits;    // vt, seq
};

}  // namespace

ForensicsReport analyze(const std::vector<Trace>& traces) {
  ForensicsReport report;

  // Component streams across all nodes. A component can appear in more
  // than one node's trace: every node registers a (usually silent) stream
  // for each component it could adopt, and a migrated component records on
  // both its old and its new home. Concatenate instead of deduping — each
  // home's substream stays contiguous, so the positional begin/resolved/
  // blame pairing below still matches within the home that recorded it.
  std::map<ComponentId, std::vector<const TraceEvent*>> streams;
  for (const Trace& t : traces)
    for (const ComponentTrace& ct : t.components)
      for (const TraceEvent& e : ct.events)
        streams[ct.component].push_back(&e);

  // Latest wall stamp observed anywhere: the "end of recording" bound used
  // to lower-bound the duration of episodes still open when a stream ends.
  std::int64_t max_wall = 0;
  for (const auto& [cid, events] : streams) {
    for (const TraceEvent* e : events) {
      switch (e->kind) {
        case TraceEventKind::kSilencePromise:
          max_wall = std::max(max_wall, static_cast<std::int64_t>(e->aux));
          break;
        case TraceEventKind::kStallBegin:
        case TraceEventKind::kStallBlame:
        case TraceEventKind::kIngestArrive:
        case TraceEventKind::kIngestDurable:
        case TraceEventKind::kIngestAck:
        case TraceEventKind::kHopDispatch:
        case TraceEventKind::kHopDone:
        case TraceEventKind::kOutputDeliver:
          max_wall = std::max(max_wall,
                              static_cast<std::int64_t>(e->payload_hash));
          break;
        default:
          break;
      }
    }
  }

  // Sender-side index per wire. Wire ids are deployment-global, so this is
  // exactly the cross-node (wire, seq) correlation: a cut wire's emits
  // live in the remote node's trace and land in the same index.
  std::map<WireId, WireSenderIndex> by_wire;
  for (const auto& [cid, events] : streams) {
    for (const TraceEvent* e : events) {
      if (e->kind == TraceEventKind::kEmit) {
        auto& idx = by_wire[e->wire];
        idx.sender = cid;
        idx.emits.emplace_back(e->vt.ticks(), e->aux);
      } else if (e->kind == TraceEventKind::kSilencePromise) {
        auto& idx = by_wire[e->wire];
        idx.sender = cid;
        idx.promises.emplace_back(e->vt.ticks(),
                                  static_cast<std::int64_t>(e->aux));
      }
    }
  }

  // Receiver-side reconstruction.
  for (const auto& [cid, events] : streams) {
    // Episode ids can repeat within one stream after crash/recover (the
    // runner's counter restarts while the trace stream continues), so
    // blame records are matched positionally: the first kStallBlame with
    // the episode's id *after* its kStallResolved.
    std::map<std::uint64_t, std::vector<std::size_t>> blame_at;
    for (std::size_t i = 0; i < events.size(); ++i)
      if (events[i]->kind == TraceEventKind::kStallBlame)
        blame_at[events[i]->aux].push_back(i);

    // A begin with no later resolve in its stream is an *open* episode:
    // the recording ended (crash, truncation) mid-stall. Its accumulated
    // wait must not silently vanish from the totals, so synthesize a
    // lower-bound episode from the begin record — possible only when the
    // begin carries a wall stamp (format v2; v1 begins have payload 0).
    const auto flush_open = [&](const TraceEvent& begin) {
      if (begin.payload_hash == 0) return;
      Episode ep;
      ep.component = cid;
      ep.id = begin.aux;
      ep.held_vt = begin.vt;
      ep.held_wire = begin.wire;
      ep.begin_wall_ns = static_cast<std::int64_t>(begin.payload_hash);
      ep.stall_ns = std::max<std::int64_t>(max_wall - ep.begin_wall_ns, 0);
      ep.open = true;
      report.total_stall_ns += ep.stall_ns;
      report.open_episodes += 1;
      report.open_stall_ns += ep.stall_ns;
      report.episodes.push_back(std::move(ep));
    };

    const TraceEvent* pending_begin = nullptr;  // most recent unresolved
    WireId held_wire;  // from the most recent kStallBegin
    for (std::size_t i = 0; i < events.size(); ++i) {
      const TraceEvent& e = *events[i];
      if (e.kind == TraceEventKind::kStallBegin) {
        // A begin directly superseding another (the held head changed
        // mid-wait) is NOT open — the wait continues under the new id, as
        // it always has. Only a crash marker or the end of the stream
        // orphans an episode.
        pending_begin = &e;
        held_wire = e.wire;
        continue;
      }
      if (e.kind == TraceEventKind::kCrash) {
        if (pending_begin != nullptr) flush_open(*pending_begin);
        pending_begin = nullptr;
        continue;
      }
      if (e.kind != TraceEventKind::kStallResolved) continue;
      pending_begin = nullptr;

      Episode ep;
      ep.component = cid;
      ep.id = e.aux;
      ep.held_vt = e.vt;
      ep.held_wire = held_wire;
      ep.blocking_wire = e.wire;
      ep.stall_ns = static_cast<std::int64_t>(e.payload_hash);

      const TraceEvent* blame = nullptr;
      if (const auto bit = blame_at.find(ep.id); bit != blame_at.end())
        for (const std::size_t bi : bit->second)
          if (bi > i) {
            blame = events[bi];
            break;
          }
      if (blame != nullptr) {
        ep.h_begin = blame->vt;
        ep.begin_wall_ns = static_cast<std::int64_t>(blame->payload_hash);
      }

      // The horizon that releases the head: t, or t-1 when the blocking
      // wire loses the vt tie-break to the held wire (Inbox::permits).
      const bool tie_break_relief =
          ep.held_wire.is_valid() &&
          ep.blocking_wire.value() > ep.held_wire.value();
      ep.needed = tie_break_relief ? ep.held_vt.prev() : ep.held_vt;

      std::int64_t promise_wall = -1;
      std::int64_t next_emit = -1;
      if (const auto wit = by_wire.find(ep.blocking_wire);
          wit != by_wire.end()) {
        const WireSenderIndex& idx = wit->second;
        ep.sender = idx.sender;
        for (const auto& [vt, wall] : idx.promises)
          if (vt >= ep.needed.ticks()) {
            promise_wall = wall;
            ep.promise_wall_ns = wall;
            break;
          }
        for (const auto& [vt, seq] : idx.emits) {
          if (next_emit < 0 && vt > ep.h_begin.ticks()) next_emit = vt;
          if (vt >= ep.needed.ticks()) {
            ep.resolving_emit_seq = seq;
            break;
          }
        }
      }

      ep.split = decompose(ep.stall_ns, ep.begin_wall_ns, promise_wall,
                           ep.needed.ticks(), ep.h_begin.ticks(), next_emit);
      ep.attributed = blame != nullptr && ep.blocking_wire.is_valid();

      report.total_stall_ns += ep.stall_ns;
      if (ep.attributed) report.attributed_stall_ns += ep.stall_ns;
      report.episodes.push_back(std::move(ep));
    }
    if (pending_begin != nullptr) flush_open(*pending_begin);
  }

  // Blame rollup, worst (component, wire, sender) first.
  std::map<std::tuple<ComponentId, WireId, ComponentId>, BlameTotal> blame;
  for (const Episode& ep : report.episodes) {
    if (!ep.attributed) continue;
    auto& b = blame[{ep.component, ep.blocking_wire, ep.sender}];
    b.component = ep.component;
    b.wire = ep.blocking_wire;
    b.sender = ep.sender;
    b.episodes += 1;
    b.stall_ns += ep.stall_ns;
    b.estimator_error_ns += ep.split.estimator_error_ns;
    b.propagation_lag_ns += ep.split.propagation_lag_ns;
  }
  report.blame.reserve(blame.size());
  for (auto& [key, b] : blame) report.blame.push_back(b);
  std::sort(report.blame.begin(), report.blame.end(),
            [](const BlameTotal& a, const BlameTotal& b) {
              if (a.stall_ns != b.stall_ns) return a.stall_ns > b.stall_ns;
              if (a.component != b.component) return a.component < b.component;
              return a.wire < b.wire;
            });
  return report;
}

}  // namespace tart::trace
