#include "trace/lineage.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace tart::trace {

double LineageReport::resolved_fraction() const {
  if (acked == 0) return 1.0;
  return static_cast<double>(resolved) / static_cast<double>(acked);
}

const InputLineage* LineageReport::find(WireId wire,
                                        std::uint64_t seq) const {
  for (const InputLineage& in : inputs)
    if (in.wire == wire && in.seq == seq) return &in;
  return nullptr;
}

namespace {

using Key = std::pair<std::uint32_t, std::uint64_t>;  // (wire, seq)

/// Merged evidence for one dispatched (wire, seq). A message can be
/// dispatched more than once across the concatenated streams (multi-home
/// migration, recovery replay): the first occurrence fixes identity, the
/// first *stamped* occurrence fixes the wall times, and children are the
/// deduplicated union (deterministic replay re-emits the same ones).
struct HopFacts {
  ComponentId component;
  VirtualTime vt;
  std::int64_t dispatch_wall_ns = -1;
  std::int64_t done_wall_ns = -1;
  std::vector<std::pair<WireId, std::uint64_t>> children;
};

struct IngestFacts {
  VirtualTime vt;
  std::int64_t arrive_ns = -1;
  std::int64_t durable_ns = -1;
  std::int64_t ack_ns = -1;
};

struct LineageIndex {
  std::map<Key, HopFacts> hops;
  std::map<Key, IngestFacts> ingests;
  std::map<Key, LineageOutput> outputs;
  std::set<std::uint32_t> dispatch_wires;  ///< Wires with >=1 dispatch.
  /// Stall episodes by the head they held: (component, wire, held vt).
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::int64_t>,
           std::vector<const Episode*>>
      stalls_by_head;
  ForensicsReport forensics;  ///< Owns the episodes stalls_by_head points at.
};

LineageIndex build_index(const std::vector<Trace>& traces) {
  LineageIndex idx;
  for (const Trace& t : traces) {
    for (const ComponentTrace& ct : t.components) {
      // Positional dispatch->emit association: every kEmit belongs to the
      // most recent kDispatch in the same stream (the runner records emits
      // from inside the dispatched handler).
      bool have_current = false;
      Key current{};
      for (const TraceEvent& e : ct.events) {
        const Key key{e.wire.value(), e.aux};
        switch (e.kind) {
          case TraceEventKind::kDispatch: {
            idx.dispatch_wires.insert(e.wire.value());
            auto [it, inserted] = idx.hops.try_emplace(key);
            if (inserted) {
              it->second.component = ct.component;
              it->second.vt = e.vt;
            }
            current = key;
            have_current = true;
            break;
          }
          case TraceEventKind::kEmit: {
            if (!have_current) break;
            auto& children = idx.hops[current].children;
            const std::pair<WireId, std::uint64_t> child{e.wire, e.aux};
            if (std::find(children.begin(), children.end(), child) ==
                children.end())
              children.push_back(child);
            break;
          }
          case TraceEventKind::kHopDispatch: {
            auto it = idx.hops.find(key);
            if (it != idx.hops.end() && it->second.dispatch_wall_ns < 0)
              it->second.dispatch_wall_ns =
                  static_cast<std::int64_t>(e.payload_hash);
            break;
          }
          case TraceEventKind::kHopDone: {
            auto it = idx.hops.find(key);
            if (it != idx.hops.end() && it->second.done_wall_ns < 0)
              it->second.done_wall_ns =
                  static_cast<std::int64_t>(e.payload_hash);
            break;
          }
          case TraceEventKind::kIngestArrive: {
            IngestFacts& ig = idx.ingests[key];
            ig.vt = e.vt;
            if (ig.arrive_ns < 0)
              ig.arrive_ns = static_cast<std::int64_t>(e.payload_hash);
            break;
          }
          case TraceEventKind::kIngestDurable: {
            IngestFacts& ig = idx.ingests[key];
            ig.vt = e.vt;
            if (ig.durable_ns < 0)
              ig.durable_ns = static_cast<std::int64_t>(e.payload_hash);
            break;
          }
          case TraceEventKind::kIngestAck: {
            IngestFacts& ig = idx.ingests[key];
            ig.vt = e.vt;
            if (ig.ack_ns < 0)
              ig.ack_ns = static_cast<std::int64_t>(e.payload_hash);
            break;
          }
          case TraceEventKind::kOutputDeliver: {
            auto [it, inserted] = idx.outputs.try_emplace(key);
            if (inserted) {
              it->second.wire = e.wire;
              it->second.seq = e.aux;
              it->second.vt = e.vt;
              it->second.deliver_wall_ns =
                  static_cast<std::int64_t>(e.payload_hash);
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }

  idx.forensics = analyze(traces);
  for (const Episode& ep : idx.forensics.episodes) {
    if (!ep.held_wire.is_valid()) continue;
    idx.stalls_by_head[{ep.component.value(), ep.held_wire.value(),
                        ep.held_vt.ticks()}]
        .push_back(&ep);
  }
  return idx;
}

/// The monotone clamped walk described in lineage.h.
void decompose_input(InputLineage& in) {
  LatencyBreakdown& b = in.breakdown;

  std::int64_t first_dispatch = -1;
  for (const LineageHop& h : in.hops)
    if (h.dispatch_wall_ns >= 0 &&
        (first_dispatch < 0 || h.dispatch_wall_ns < first_dispatch))
      first_dispatch = h.dispatch_wall_ns;

  // Anchor: the ack stamp, degrading to durable/arrive/first-dispatch for
  // traces recorded without a gateway in front.
  std::int64_t t_ack = in.ack_wall_ns >= 0      ? in.ack_wall_ns
                       : in.durable_wall_ns >= 0 ? in.durable_wall_ns
                       : in.arrive_wall_ns >= 0  ? in.arrive_wall_ns
                                                 : first_dispatch;
  if (t_ack < 0) return;  // No wall evidence at all: leave zeros.

  std::int64_t t_end = t_ack;
  for (const LineageOutput& o : in.outputs)
    t_end = std::max(t_end, o.deliver_wall_ns);
  if (in.outputs.empty())
    for (const LineageHop& h : in.hops)
      t_end = std::max({t_end, h.dispatch_wall_ns, h.done_wall_ns});

  b.durability_wait_ns =
      in.arrive_wall_ns >= 0 ? std::max<std::int64_t>(t_ack -
                                                      in.arrive_wall_ns, 0)
                             : 0;

  // Hops in dispatch-stamp order; unstamped hops carry no wall evidence
  // and contribute nothing.
  std::vector<const LineageHop*> timed;
  for (const LineageHop& h : in.hops)
    if (h.dispatch_wall_ns >= 0) timed.push_back(&h);
  std::sort(timed.begin(), timed.end(),
            [](const LineageHop* a, const LineageHop* b) {
              if (a->dispatch_wall_ns != b->dispatch_wall_ns)
                return a->dispatch_wall_ns < b->dispatch_wall_ns;
              if (a->wire != b->wire) return a->wire < b->wire;
              return a->seq < b->seq;
            });

  std::int64_t m = t_ack;  // The monotone frontier: everything before m
                           // is already charged to some bucket.
  for (const LineageHop* h : timed) {
    const std::int64_t td = std::min(h->dispatch_wall_ns, t_end);
    const std::int64_t gap = std::max<std::int64_t>(td - m, 0);
    if (gap > 0) {
      const std::int64_t stall = std::min(gap, std::max<std::int64_t>(
                                                   h->stall_ns, 0));
      b.stall_wait_ns += stall;
      const bool is_input_hop = h->wire == in.wire && h->seq == in.seq;
      (is_input_hop ? b.ingress_queue_ns : b.network_ns) += gap - stall;
      m = td;
    }
    if (h->done_wall_ns >= 0) {
      const std::int64_t tdone =
          std::max(td, std::min(h->done_wall_ns, t_end));
      b.processing_ns += std::max<std::int64_t>(tdone - m, 0);
      m = std::max(m, tdone);
    } else {
      m = std::max(m, td);
    }
  }
  b.output_lag_ns = std::max<std::int64_t>(t_end - m, 0);
  b.ack_to_end_ns = t_end - t_ack;
  b.total_ns = b.durability_wait_ns + b.ack_to_end_ns;
}

InputLineage walk_input(const LineageIndex& idx, WireId wire,
                        std::uint64_t seq) {
  InputLineage in;
  in.wire = wire;
  in.seq = seq;
  if (const auto it = idx.ingests.find({wire.value(), seq});
      it != idx.ingests.end()) {
    in.vt = it->second.vt;
    in.arrive_wall_ns = it->second.arrive_ns;
    in.durable_wall_ns = it->second.durable_ns;
    in.ack_wall_ns = it->second.ack_ns;
    in.acked = it->second.ack_ns >= 0;
  }

  bool complete = true;
  std::set<Key> visited;
  std::set<std::pair<std::uint32_t, std::uint64_t>> linked_episodes;
  std::deque<std::pair<Key, std::uint32_t>> queue;  // (key, depth)
  const Key root{wire.value(), seq};
  if (idx.hops.count(root) != 0) {
    queue.emplace_back(root, 0);
    visited.insert(root);
  } else {
    complete = false;  // The input never reached a handler in the traces.
  }

  while (!queue.empty()) {
    const auto [key, depth] = queue.front();
    queue.pop_front();
    const HopFacts& f = idx.hops.at(key);

    LineageHop hop;
    hop.component = f.component;
    hop.wire = WireId(key.first);
    hop.seq = key.second;
    hop.vt = f.vt;
    hop.depth = depth;
    hop.dispatch_wall_ns = f.dispatch_wall_ns;
    hop.done_wall_ns = f.done_wall_ns;
    hop.children = f.children;

    if (const auto sit = idx.stalls_by_head.find(
            {f.component.value(), key.first, f.vt.ticks()});
        sit != idx.stalls_by_head.end()) {
      for (const Episode* ep : sit->second) {
        hop.stall_ns += ep->stall_ns;
        if (linked_episodes.insert({ep->component.value(), ep->id}).second)
          in.stalls.push_back(StallLink{ep->component, ep->id,
                                        ep->held_wire, ep->stall_ns});
      }
    }

    for (const auto& [cw, cs] : f.children) {
      const Key child{cw.value(), cs};
      if (idx.hops.count(child) != 0) {
        if (visited.insert(child).second) queue.emplace_back(child, depth + 1);
      } else if (const auto oit = idx.outputs.find(child);
                 oit != idx.outputs.end()) {
        in.outputs.push_back(oit->second);
      } else if (idx.dispatch_wires.count(cw.value()) == 0) {
        // No component anywhere in the loaded traces consumes this wire:
        // it leaves the deployment (reply wire, suppressed replay output).
        // The edge terminates cleanly.
      } else {
        complete = false;  // A consumer exists but this seq never landed.
      }
    }

    in.hops.push_back(std::move(hop));
  }

  std::sort(in.outputs.begin(), in.outputs.end(),
            [](const LineageOutput& a, const LineageOutput& b) {
              if (a.deliver_wall_ns != b.deliver_wall_ns)
                return a.deliver_wall_ns < b.deliver_wall_ns;
              if (a.wire != b.wire) return a.wire < b.wire;
              return a.seq < b.seq;
            });
  in.complete = complete && !in.hops.empty();
  decompose_input(in);
  return in;
}

}  // namespace

LineageReport analyze_lineage(const std::vector<Trace>& traces) {
  const LineageIndex idx = build_index(traces);
  LineageReport report;
  report.inputs.reserve(idx.ingests.size());
  for (const auto& [key, ig] : idx.ingests) {
    InputLineage in = walk_input(idx, WireId(key.first), key.second);
    if (in.acked) {
      report.acked += 1;
      if (in.complete) report.resolved += 1;
    }
    report.inputs.push_back(std::move(in));
  }
  return report;
}

InputLineage trace_input(const std::vector<Trace>& traces, WireId wire,
                         std::uint64_t seq) {
  return walk_input(build_index(traces), wire, seq);
}

}  // namespace tart::trace
