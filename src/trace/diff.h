// TraceDiff: pinpoints the first divergent scheduling decision between two
// trace files.
//
// Two modes:
//
//   - *strict* (default): run B must reproduce run A's event stream
//     exactly, component by component. This is the determinism check — two
//     runs over the same external input log must not diverge at all
//     (§II.A/§II.D); the first mismatch names the component, wire, virtual
//     time, and payload hash where behaviour forked.
//
//   - *recovery* (allow_stutter): run B contains crashes. A recovering
//     component rolls back to its last checkpoint and re-executes, so its
//     dispatch stream repeats a suffix of what it already did — the trace
//     analogue of output stutter (§II.A). In this mode only dispatch
//     events are compared; a kRecoveryStart record licenses the stream to
//     rewind to any already-matched decision and replay forward, with each
//     re-executed dispatch counted as a stutter record. Replay artifacts
//     (duplicate discards, gaps, crash markers, checkpoints — whose
//     cadence legitimately shifts after rollback) are skipped and tallied.
//     Any dispatch that matches neither the next expected decision nor an
//     already-executed one is a true divergence.
//
//     Recovery mode also understands *tiered restarts* (docs/RECOVERY.md):
//     when trace B BEGINS with a kRecoveryStart (the component booted from
//     a durable checkpoint rather than crashing mid-trace), every
//     reference decision at or below the checkpoint's restored virtual
//     time was covered by the snapshot and legitimately never re-executes.
//     The differ fast-forwards the reference stream to B's first replayed
//     decision and tallies the skipped prefix as `fast_forwarded`; the
//     suffix must then match exactly as usual. A reference decision above
//     the restored vt that B never executes is still a divergence.
//
// Diagnostic-class events (stalls, probes, silence promises) are never
// compared: they depend on real time by design.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "trace/trace_file.h"

namespace tart::trace {

struct DiffOptions {
  /// Tolerate post-recovery re-execution in trace B (see header comment).
  bool allow_stutter = false;
};

/// The first point where the two traces disagree.
struct Divergence {
  ComponentId component;
  /// Index into the compared (filtered) stream of each trace; the trace
  /// whose stream ended early has index == its stream size.
  std::size_t index_a = 0;
  std::size_t index_b = 0;
  std::optional<TraceEvent> expected;  ///< A's event, if any remained.
  std::optional<TraceEvent> actual;    ///< B's event, if any remained.
  std::string reason;

  [[nodiscard]] std::string describe() const;
};

struct DiffResult {
  std::optional<Divergence> divergence;
  std::uint64_t compared = 0;         ///< Decisions checked and matched.
  std::uint64_t stutter_records = 0;  ///< Re-executed decisions (recovery).
  std::uint64_t skipped = 0;          ///< Replay artifacts not compared.
  /// Reference decisions covered by a durable checkpoint that trace B
  /// restored from (recovery mode; see header comment).
  std::uint64_t fast_forwarded = 0;

  [[nodiscard]] bool identical() const { return !divergence.has_value(); }
};

/// Streams the two traces and reports the first divergence, if any.
/// `a` is the reference run, `b` the run under test.
[[nodiscard]] DiffResult diff_traces(const Trace& a, const Trace& b,
                                     const DiffOptions& options = {});

}  // namespace tart::trace
