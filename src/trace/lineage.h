// Request lineage: reconstruct, for any input acked at the edge, its full
// causal descendant DAG and an exclusive-and-exhaustive decomposition of
// where its wall-clock latency went.
//
// The deterministic causal order makes this a pure offline join over the
// flight-recorder streams (format v2 adds the lineage event class,
// trace_event.h kinds 16..21):
//
//   kIngestArrive/kIngestDurable/kIngestAck   edge pseudo-component stream
//   kHopDispatch/kHopDone                      each component's own stream
//   kOutputDeliver                             edge pseudo-component stream
//
// Identity is the deployment-global (wire, seq) stamped at injection. The
// walk starts at the input's dispatch, follows the positional
// dispatch→emit association in each component stream (every kEmit between
// two kDispatch records is a child of the earlier dispatch), and joins
// emits to downstream dispatches by (wire, seq) — across node traces,
// across migration (a moved component's streams concatenate, PR 7), and
// across recovery (replayed dispatches land in the same streams).
//
// Latency decomposition. All stamps come from std::chrono::steady_clock,
// comparable across processes on one machine (same caveat as
// forensics.h). With t_ack the ack stamp and t_end the last output
// delivery (or the last hop stamp when nothing external was emitted), a
// monotone clamped walk over the hops in dispatch-stamp order charges
// every nanosecond of [t_ack, t_end] to exactly one bucket:
//
//   ingress_queue  gap before the input's own first dispatch
//   stall_wait     portion of any pre-hop gap covered by pessimism-stall
//                  episodes holding that hop's head (cross-linked to the
//                  forensics episode ids, PR 5)
//   network        remaining gap before a downstream hop (transit +
//                  scheduler queueing)
//   processing     time inside handlers (overlapping hops count once)
//   output_lag     tail from the last causal stamp to output visibility
//
// Clamping makes the buckets exclusive and exhaustive by construction:
// they always sum to exactly t_end - t_ack. The pre-ack prefix is
// reported alongside as durability_wait (arrive → ack: group commit plus
// ack publication; the commit stamp itself is kept per input).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "trace/forensics.h"
#include "trace/trace_file.h"

namespace tart::trace {

/// One handler execution reached by the walk.
struct LineageHop {
  ComponentId component;          ///< Who dispatched it.
  WireId wire;                    ///< Wire the message arrived on.
  std::uint64_t seq = 0;          ///< Per-wire message sequence.
  VirtualTime vt;                 ///< Message virtual time.
  std::uint32_t depth = 0;        ///< BFS depth from the input (0 = input).
  std::int64_t dispatch_wall_ns = -1;  ///< kHopDispatch stamp; -1 if absent.
  std::int64_t done_wall_ns = -1;      ///< kHopDone stamp; -1 if absent.
  /// Total stall-episode time spent holding this hop's head (unclamped;
  /// the breakdown clamps it into the gap actually preceding the hop).
  std::int64_t stall_ns = 0;
  /// Children in emit order: (wire, seq) of every message this hop sent.
  std::vector<std::pair<WireId, std::uint64_t>> children;
};

/// An externally visible output caused by the input.
struct LineageOutput {
  WireId wire;
  std::uint64_t seq = 0;
  VirtualTime vt;
  std::int64_t deliver_wall_ns = -1;  ///< kOutputDeliver stamp; -1 if absent.
};

/// Cross-link to a PR 5 stall episode that held one of the DAG's hops.
struct StallLink {
  ComponentId component;      ///< The stalled receiver (the hop's owner).
  std::uint64_t episode_id = 0;  ///< Joins ForensicsReport::find().
  WireId wire;                ///< Held wire (== the hop's arrival wire).
  std::int64_t stall_ns = 0;  ///< Episode duration (unclamped).
};

/// The exclusive, exhaustive latency split. The five post-ack buckets sum
/// to exactly ack_to_end_ns; total_ns = durability_wait_ns + ack_to_end_ns.
struct LatencyBreakdown {
  std::int64_t durability_wait_ns = 0;  ///< arrive → ack (commit + publish).
  std::int64_t ingress_queue_ns = 0;
  std::int64_t stall_wait_ns = 0;
  std::int64_t processing_ns = 0;
  std::int64_t network_ns = 0;
  std::int64_t output_lag_ns = 0;
  std::int64_t ack_to_end_ns = 0;  ///< t_end - t_ack (== the 5-bucket sum).
  std::int64_t total_ns = 0;       ///< arrive → t_end.
};

/// Everything known about one input's causal history.
struct InputLineage {
  WireId wire;
  std::uint64_t seq = 0;
  VirtualTime vt;                       ///< Assigned injection vt.
  std::int64_t arrive_wall_ns = -1;     ///< kIngestArrive; -1 if absent.
  std::int64_t durable_wall_ns = -1;    ///< kIngestDurable; -1 if absent.
  std::int64_t ack_wall_ns = -1;        ///< kIngestAck; -1 if absent.
  bool acked = false;                   ///< kIngestAck was recorded.
  /// Every emitted (wire, seq) edge resolved to a downstream dispatch, an
  /// output delivery, or a wire with no consumer in the deployment — no
  /// dangling references into missing trace data.
  bool complete = false;
  std::vector<LineageHop> hops;         ///< BFS order; hops[0] = the input.
  std::vector<LineageOutput> outputs;   ///< Delivery order.
  std::vector<StallLink> stalls;        ///< Episodes holding DAG hops.
  LatencyBreakdown breakdown;
};

struct LineageReport {
  std::vector<InputLineage> inputs;  ///< (wire, seq) order.
  std::uint64_t acked = 0;           ///< Inputs with an ack event.
  std::uint64_t resolved = 0;        ///< Acked inputs with complete DAGs.

  /// Fraction of acked inputs whose causal DAG is complete; 1.0 when no
  /// acks were recorded at all.
  [[nodiscard]] double resolved_fraction() const;
  [[nodiscard]] const InputLineage* find(WireId wire,
                                         std::uint64_t seq) const;
};

/// Walks every ingest-evented input in the merged traces (one Trace per
/// node of a deployment). Traces recorded without the lineage category
/// contribute no inputs.
[[nodiscard]] LineageReport analyze_lineage(const std::vector<Trace>& traces);

/// Force-walks one (wire, seq) even when its ingest events are missing
/// (e.g. the incarnation that acked it was SIGKILLed before its trace
/// could be finalized): the DAG is rebuilt from whatever dispatch/emit
/// evidence survives. Returns an InputLineage with empty hops when the
/// input was never dispatched in the traces.
[[nodiscard]] InputLineage trace_input(const std::vector<Trace>& traces,
                                       WireId wire, std::uint64_t seq);

}  // namespace tart::trace
