#include "trace/diff.h"

#include <algorithm>
#include <sstream>

namespace tart::trace {

namespace {

bool is_scheduling(TraceEventKind kind) {
  return category_of(kind) == TraceCategory::kScheduling;
}

std::vector<TraceEvent> filter(const std::vector<TraceEvent>& events,
                               bool (*pred)(TraceEventKind)) {
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& e : events)
    if (pred(e.kind)) out.push_back(e);
  return out;
}

void describe_event(std::ostream& os, const std::optional<TraceEvent>& e) {
  if (!e) {
    os << "<end of stream>";
    return;
  }
  os << name_of(e->kind) << " wire=" << e->wire << " vt=" << e->vt
     << " aux=" << e->aux;
  if (e->payload_hash != 0) {
    os << " payload=" << std::hex << e->payload_hash << std::dec;
  }
}

/// Strict: the filtered scheduling streams must be element-wise identical.
std::optional<Divergence> diff_strict(const ComponentTrace& a,
                                      const ComponentTrace& b,
                                      DiffResult& result) {
  const auto sa = filter(a.events, is_scheduling);
  const auto sb = filter(b.events, is_scheduling);
  const std::size_t n = std::min(sa.size(), sb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!sa[i].same_decision(sb[i])) {
      return Divergence{a.component, i, i, sa[i], sb[i],
                        "scheduling decision differs"};
    }
    ++result.compared;
  }
  if (sa.size() != sb.size()) {
    Divergence d;
    d.component = a.component;
    d.index_a = n;
    d.index_b = n;
    if (n < sa.size()) d.expected = sa[n];
    if (n < sb.size()) d.actual = sb[n];
    d.reason = sa.size() > sb.size() ? "trace B ended early"
                                     : "trace B has extra events";
    return d;
  }
  return std::nullopt;
}

/// Recovery: compare dispatch decisions only; a kRecoveryStart in B
/// licenses a rewind to any already-matched decision (stutter).
std::optional<Divergence> diff_recovery(const ComponentTrace& a,
                                        const ComponentTrace& b,
                                        DiffResult& result) {
  const auto ref = filter(a.events, [](TraceEventKind k) {
    return k == TraceEventKind::kDispatch;
  });
  std::size_t i = 0;   // next expected decision in ref
  std::size_t hi = 0;  // high-water mark of matched decisions
  bool replay_licensed = false;
  // A kRecoveryStart BEFORE any matched decision marks a tiered restart:
  // B booted from a durable checkpoint restored at ff_vt, so reference
  // decisions at or below ff_vt were covered and never re-execute.
  bool ff_licensed = false;
  VirtualTime ff_vt{-1};

  for (std::size_t bi = 0; bi < b.events.size(); ++bi) {
    const TraceEvent& e = b.events[bi];
    if (e.kind == TraceEventKind::kRecoveryStart) {
      replay_licensed = true;
      if (hi == 0 && e.aux > 0) {
        ff_licensed = true;
        ff_vt = std::max(ff_vt, e.vt);
      }
      ++result.skipped;
      continue;
    }
    if (e.kind != TraceEventKind::kDispatch) {
      if (is_scheduling(e.kind)) ++result.skipped;
      continue;
    }
    if (i < ref.size() && e.same_decision(ref[i])) {
      if (i < hi) {
        ++result.stutter_records;  // re-execution inside a replayed suffix
      } else {
        ++result.compared;
      }
      ++i;
      hi = std::max(hi, i);
      continue;
    }
    if (ff_licensed && hi == 0) {
      // Fast-forward: skip reference decisions the checkpoint covered
      // (vt <= ff_vt) up to B's first actually-replayed decision. Stops
      // at the first uncovered reference decision — skipping one of those
      // would hide a real divergence.
      std::size_t j = i;
      while (j < ref.size() && ref[j].vt <= ff_vt &&
             !e.same_decision(ref[j]))
        ++j;
      if (j < ref.size() && e.same_decision(ref[j])) {
        result.fast_forwarded += j - i;
        ++result.compared;
        i = j + 1;
        hi = i;
        continue;
      }
    }
    if (replay_licensed) {
      // Rollback: the recovering component restarts from its checkpoint,
      // somewhere at or before the high-water mark.
      bool rewound = false;
      for (std::size_t j = 0; j < hi; ++j) {
        if (e.same_decision(ref[j])) {
          i = j + 1;
          ++result.stutter_records;
          rewound = true;
          break;
        }
      }
      if (rewound) continue;
    }
    Divergence d;
    d.component = a.component;
    d.index_a = i;
    d.index_b = bi;
    if (i < ref.size()) d.expected = ref[i];
    d.actual = e;
    d.reason = replay_licensed
                   ? "dispatch matches neither the next expected nor any "
                     "replayed decision"
                   : "dispatch decision differs";
    return d;
  }
  if (hi < ref.size()) {
    const bool all_covered =
        ff_licensed && hi == 0 &&
        std::all_of(ref.begin(), ref.end(),
                    [&](const TraceEvent& r) { return r.vt <= ff_vt; });
    if (all_covered) {
      // Tiered restart with nothing to replay: every reference decision
      // was inside the checkpoint.
      result.fast_forwarded += ref.size();
      return std::nullopt;
    }
    Divergence d;
    d.component = a.component;
    d.index_a = hi;
    d.index_b = b.events.size();
    d.expected = ref[hi];
    d.reason = "trace B never reached this decision";
    return d;
  }
  return std::nullopt;
}

}  // namespace

std::string Divergence::describe() const {
  std::ostringstream os;
  os << "component " << component << ": " << reason << " (decision "
     << index_a << ")\n  expected: ";
  describe_event(os, expected);
  os << "\n  actual:   ";
  describe_event(os, actual);
  return os.str();
}

DiffResult diff_traces(const Trace& a, const Trace& b,
                       const DiffOptions& options) {
  DiffResult result;
  // Component sets must agree (the deployment is part of the behaviour).
  for (const auto& ca : a.components) {
    if (b.find(ca.component) == nullptr) {
      result.divergence = Divergence{ca.component, 0, 0, std::nullopt,
                                     std::nullopt,
                                     "component missing from trace B"};
      return result;
    }
  }
  for (const auto& cb : b.components) {
    if (a.find(cb.component) == nullptr) {
      result.divergence = Divergence{cb.component, 0, 0, std::nullopt,
                                     std::nullopt,
                                     "component missing from trace A"};
      return result;
    }
  }
  for (const auto& ca : a.components) {
    const ComponentTrace& cb = *b.find(ca.component);
    const auto divergence = options.allow_stutter
                                ? diff_recovery(ca, cb, result)
                                : diff_strict(ca, cb, result);
    if (divergence) {
      result.divergence = divergence;
      return result;
    }
  }
  return result;
}

}  // namespace tart::trace
