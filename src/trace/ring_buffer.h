// Bounded lock-free MPMC ring (Vyukov's bounded queue) for trace events.
//
// Producers are runner threads and frame-routing threads recording events;
// the single consumer is the recorder's background writer. Multi-producer
// support matters because duplicate discards and probe services execute on
// whichever thread routed the frame, not on the owning runner thread.
//
// push never blocks and never allocates: when the ring is full the record
// is dropped at the call site (and counted), which keeps the tracing cost
// bounded — a slow writer can lose diagnostics but can never stall the
// scheduler.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

namespace tart::trace {

template <typename T>
class RingBuffer {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit RingBuffer(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  /// Attempts to enqueue; returns false when full.
  bool try_push(T value) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Attempts to dequeue; nullopt when empty.
  std::optional<T> try_pop() {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(std::move(cell->value));
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace tart::trace
