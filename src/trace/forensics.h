// Stall forensics: mine flight-recorder traces for *why* pessimism stalls
// happened, not just how long they were.
//
// The runner emits three diagnostic records per stall episode (see
// trace_event.h): kStallBegin when a head is first held, and — at release
// — kStallResolved (held vt, blocking wire, wall duration, episode id)
// plus kStallBlame (the blocking wire's silence horizon and the wall clock
// when the episode began). The *sender's* stream independently carries
// kSilencePromise records wall-stamped at publication. Joining the two
// sides reconstructs each episode's causal chain:
//
//   held message (vt T on wire A)
//     -> blocking wire B (last horizon to cover T)
//       -> upstream sender S (the component whose stream emits on B)
//         -> S's first promise/emit whose horizon covered T.
//
// and splits the stall S_ns into two exclusive, exhaustive parts:
//
//   estimator error  = clamp(t_pub - t_begin, 0, S_ns)
//     wall time the *sender* took to publish a horizon covering the held
//     vt after the receiver began waiting: its estimator promised less
//     silence than it actually produced (or it simply had not yet run);
//   propagation lag  = S_ns - estimator error
//     wall time the covering promise spent in flight / in queues / waiting
//     for the receiver's scheduler to notice it.
//
// Both stamps come from std::chrono::steady_clock (CLOCK_MONOTONIC), which
// is comparable across processes on one machine — the loopback multi-node
// deployments scripts/net_soak.sh exercises. Across real hosts the split
// degrades gracefully (clamped at [0, S]) but is only as good as the
// clocks. A tick-domain shadow of the same question (how many *virtual*
// ticks of the deficit were the estimator's fault) is reported alongside.
//
// Multi-node correlation needs no extra machinery: wire ids are global to
// the deployment and each component's stream lives in exactly one node's
// trace, so loading both traces and indexing emits by (wire, seq) joins
// the cut edges. External wires (fed by injections, not components) have
// no sender stream; their episodes attribute to the pseudo-sender
// "external" with the whole stall counted as estimator error (nobody ever
// promised).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "trace/trace_file.h"

namespace tart::trace {

/// Pure decomposition math, unit-testable against hand-computed values.
/// `promise_wall_ns < 0` means no covering promise was found (external
/// wire, or the horizon advanced only through displacement): the whole
/// stall is estimator error. `next_emit_ticks < 0` means the sender never
/// emitted past the begin horizon.
struct Decomposition {
  std::int64_t estimator_error_ns = 0;
  std::int64_t propagation_lag_ns = 0;  // == stall_ns - estimator_error_ns
  std::int64_t deficit_ticks = 0;       // needed - h_begin (>= 0)
  std::int64_t estimator_error_ticks = 0;
};

[[nodiscard]] Decomposition decompose(std::int64_t stall_ns,
                                      std::int64_t begin_wall_ns,
                                      std::int64_t promise_wall_ns,
                                      std::int64_t needed_ticks,
                                      std::int64_t h_begin_ticks,
                                      std::int64_t next_emit_ticks);

/// One reconstructed stall episode.
struct Episode {
  ComponentId component;   ///< The stalled receiver.
  std::uint64_t id = 0;    ///< Per-component episode id (kStallResolved aux).
  VirtualTime held_vt;     ///< Virtual time of the held head.
  WireId held_wire;        ///< Wire the held head arrived on (kStallBegin).
  WireId blocking_wire;    ///< Last wire whose horizon covered held_vt.
  /// Component emitting on blocking_wire; invalid => external input.
  ComponentId sender;
  std::int64_t stall_ns = 0;
  std::int64_t begin_wall_ns = 0;
  VirtualTime h_begin;     ///< Blocking wire's horizon at episode begin.
  VirtualTime needed;      ///< Horizon that releases the head (tie-break'd).
  /// Sender-side wall stamp of the first promise covering `needed`;
  /// nullopt when no such promise exists in the sender's stream.
  std::optional<std::int64_t> promise_wall_ns;
  /// (wire, seq) of the sender's first data emit at vt >= needed, when the
  /// horizon advanced via data — joins to the receiver's kDispatch.
  std::optional<std::uint64_t> resolving_emit_seq;
  Decomposition split;
  /// Blocking wire identified and blame facts present (kStallBlame found).
  bool attributed = false;
  /// The stream ended (crash, truncation) before this episode's
  /// kStallResolved: stall_ns is a lower bound (latest wall stamp seen
  /// anywhere in the traces minus the episode's begin stamp) and no
  /// blocking wire is known. Synthesized only from v2 kStallBegin records,
  /// which carry the begin wall stamp.
  bool open = false;
};

/// Per-(receiver, blocking wire, sender) blame rollup.
struct BlameTotal {
  ComponentId component;
  WireId wire;
  ComponentId sender;  ///< invalid => external
  std::uint64_t episodes = 0;
  std::int64_t stall_ns = 0;
  std::int64_t estimator_error_ns = 0;
  std::int64_t propagation_lag_ns = 0;
};

struct ForensicsReport {
  std::vector<Episode> episodes;  ///< (component, episode id) order.
  std::vector<BlameTotal> blame;  ///< Sorted by stall_ns, worst first.
  std::int64_t total_stall_ns = 0;
  std::int64_t attributed_stall_ns = 0;
  std::uint64_t open_episodes = 0;   ///< Episodes with .open set.
  std::int64_t open_stall_ns = 0;    ///< Their (lower-bound) stall time.

  /// Fraction of recorded stall wall-time attributed to a (blocking wire,
  /// sender) pair; 1.0 when there were no episodes at all.
  [[nodiscard]] double attributed_fraction() const;
  /// The k worst episodes by stall duration.
  [[nodiscard]] std::vector<const Episode*> top(std::size_t k) const;
  [[nodiscard]] const Episode* find(ComponentId component,
                                    std::uint64_t id) const;
};

/// Reconstructs episodes and blame totals from one or more traces (one per
/// node of a deployment). Traces recorded without the diagnostic category
/// contribute no episodes.
[[nodiscard]] ForensicsReport analyze(const std::vector<Trace>& traces);

}  // namespace tart::trace
