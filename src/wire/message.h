// The unit of communication between components.
//
// Every message carries the virtual time at which it is to be processed by
// the receiver ("All message interfaces are augmented to include an
// additional parameter representing the virtual time that the message will
// be processed at the receiver", §II.C). Per-wire sequence numbers support
// gap detection for replay; they carry no scheduling meaning.
#pragma once

#include <cstdint>
#include <ostream>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "serde/archive.h"
#include "wire/payload.h"

namespace tart {

enum class MessageKind : std::uint8_t {
  kData = 0,   ///< One-way send.
  kCall = 1,   ///< Two-way service request (expects a reply).
  kReply = 2,  ///< Reply to a kCall.
};

struct Message {
  WireId wire;
  VirtualTime vt;          ///< Scheduled processing time at the receiver.
  std::uint64_t seq = 0;   ///< Per-wire sequence number (gap detection).
  MessageKind kind = MessageKind::kData;
  std::uint64_t call_id = 0;  ///< Correlates kCall with its kReply.

  // Request lineage (docs/TRACING.md): the external input this message
  // causally descends from, stamped at injection and copied onto every
  // message a handler emits while processing a descendant. Deterministic
  // (a pure function of the input log), so it round-trips the external
  // log, checkpoints, retention buffers and migration slices unchanged.
  // origin_wire is invalid for messages with no external ancestor
  // (timer-style self-sends before any input).
  WireId origin_wire = WireId::invalid();
  std::uint64_t origin_seq = 0;
  /// Steady-clock arrival stamp of the origin input, ns; 0 = unknown.
  /// Wall time, NOT replay-deterministic: consumed only by observability
  /// (live end-to-end latency), never by scheduling decisions.
  std::int64_t origin_wall_ns = 0;

  Payload payload;

  /// Scheduling key: virtual time, tie-broken by wire id (paper footnote 2).
  [[nodiscard]] std::pair<VirtualTime, WireId> key() const {
    return {vt, wire};
  }

  [[nodiscard]] bool has_origin() const { return origin_wire.is_valid(); }

  void encode(serde::Writer& w) const {
    w.write_u32(wire.value());
    w.write_vt(vt);
    w.write_varint(seq);
    w.write_u8(static_cast<std::uint8_t>(kind));
    w.write_varint(call_id);
    w.write_u32(origin_wire.value());
    w.write_varint(origin_seq);
    w.write_u64(static_cast<std::uint64_t>(origin_wall_ns));
    payload.encode(w);
  }

  [[nodiscard]] static Message decode(serde::Reader& r) {
    Message m;
    m.wire = WireId(r.read_u32());
    m.vt = r.read_vt();
    m.seq = r.read_varint();
    m.kind = static_cast<MessageKind>(r.read_u8());
    m.call_id = r.read_varint();
    m.origin_wire = WireId(r.read_u32());
    m.origin_seq = r.read_varint();
    m.origin_wall_ns = static_cast<std::int64_t>(r.read_u64());
    m.payload = Payload::decode(r);
    return m;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Message& m) {
  return os << "msg{wire=" << m.wire << " vt=" << m.vt << " seq=" << m.seq
            << '}';
}

}  // namespace tart
