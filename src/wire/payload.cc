#include "wire/payload.h"

namespace tart {

namespace {
enum Tag : std::uint8_t {
  kNone = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kInts = 4,
  kStrings = 5,
  kBytes = 6,
};
}  // namespace

void Payload::encode(serde::Writer& w) const {
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          w.write_u8(kNone);
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          w.write_u8(kInt);
          w.write_svarint(v);
        } else if constexpr (std::is_same_v<T, double>) {
          w.write_u8(kDouble);
          w.write_double(v);
        } else if constexpr (std::is_same_v<T, std::string>) {
          w.write_u8(kString);
          w.write_string(v);
        } else if constexpr (std::is_same_v<T, std::vector<std::int64_t>>) {
          w.write_u8(kInts);
          w.write_varint(v.size());
          for (const auto e : v) w.write_svarint(e);
        } else if constexpr (std::is_same_v<T, std::vector<std::string>>) {
          w.write_u8(kStrings);
          w.write_varint(v.size());
          for (const auto& e : v) w.write_string(e);
        } else if constexpr (std::is_same_v<T, std::vector<std::byte>>) {
          w.write_u8(kBytes);
          w.write_bytes(v);
        }
      },
      value_);
}

Payload Payload::decode(serde::Reader& r) {
  switch (r.read_u8()) {
    case kNone:
      return {};
    case kInt:
      return Payload(r.read_svarint());
    case kDouble:
      return Payload(r.read_double());
    case kString:
      return Payload(r.read_string());
    case kInts: {
      const auto n = r.read_varint();
      std::vector<std::int64_t> v;
      v.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.read_svarint());
      return Payload(std::move(v));
    }
    case kStrings: {
      const auto n = r.read_varint();
      std::vector<std::string> v;
      v.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.read_string());
      return Payload(std::move(v));
    }
    case kBytes:
      return Payload(r.read_bytes());
    default:
      throw serde::DecodeError("bad payload tag");
  }
}

}  // namespace tart
