#include "wire/retention_buffer.h"

#include <cassert>

namespace tart {

void RetentionBuffer::record(const Message& m) {
  assert(buf_.empty() || (m.seq == buf_.back().seq + 1 && m.vt >= buf_.back().vt));
  buf_.push_back(m);
  last_vt_ = m.vt;
  next_seq_ = m.seq + 1;
}

void RetentionBuffer::acknowledge_through(VirtualTime through) {
  while (!buf_.empty() && buf_.front().vt <= through) buf_.pop_front();
}

std::size_t RetentionBuffer::trim_below_seq(std::uint64_t below_seq) {
  std::size_t dropped = 0;
  while (!buf_.empty() && buf_.front().seq < below_seq) {
    buf_.pop_front();
    ++dropped;
  }
  return dropped;
}

std::vector<Message> RetentionBuffer::replay_after(VirtualTime after) const {
  std::vector<Message> out;
  for (const Message& m : buf_)
    if (m.vt > after) out.push_back(m);
  return out;
}

std::vector<Message> RetentionBuffer::replay_from_seq(
    std::uint64_t from_seq) const {
  std::vector<Message> out;
  for (const Message& m : buf_)
    if (m.seq >= from_seq) out.push_back(m);
  return out;
}

void RetentionBuffer::clear() {
  buf_.clear();
  last_vt_.reset();
  next_seq_ = 0;
}

void RetentionBuffer::restore(std::vector<Message> messages,
                              std::uint64_t next_seq) {
  buf_.assign(messages.begin(), messages.end());
  next_seq_ = next_seq;
  last_vt_.reset();
  if (!buf_.empty()) last_vt_ = buf_.back().vt;
}

std::optional<Message> RetentionBuffer::find_by_call_id(
    std::uint64_t call_id) const {
  for (const Message& m : buf_)
    if (m.call_id == call_id) return m;
  return std::nullopt;
}

std::vector<Message> RetentionBuffer::contents() const {
  return {buf_.begin(), buf_.end()};
}

}  // namespace tart
