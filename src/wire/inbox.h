// Receiver-side pessimistic merge across input wires.
//
// This implements the core scheduling rule of the paper (§II.E): a receiving
// component processes messages in strict virtual-time order, tie-broken by
// wire id (footnote 2). An earliest pending message with virtual time t may
// be dequeued only once every *other* input wire is known to carry no
// message that would have to be processed first — i.e. each other wire
// either has a pending head that orders after (t, wire), or has promised
// silence far enough:
//
//   - silent through >= t, or
//   - silent through >= t-1 when the other wire's id orders after ours
//     (any future message on it has vt >= t, and at vt == t the tie-break
//     favours us).
//
// Per-wire tick accounting (§II.F.1): every tick on a wire is either a data
// tick or a silent tick. FIFO delivery plus nondecreasing per-wire virtual
// times mean a message at vt t implicitly promises silence for all earlier
// unaccounted ticks — this is "lazy silence propagation". Explicit silence
// announcements (curiosity replies, aggressive pushes) advance the horizon
// without data.
//
// The time a dequeue-ready head spends blocked on other wires' horizons is
// pessimism delay — the principal overhead of determinism; the inbox
// exposes the lagging wires so silence-propagation strategies (curiosity
// probes) can chase them.
//
// Duplicate suppression (§II.F.4): after replay, "duplicate messages will
// have duplicate timestamps and will be discarded" — any arrival whose vt
// is not beyond the wire's accounted horizon is dropped as a duplicate.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/virtual_time.h"
#include "wire/message.h"

namespace tart::trace {
class TraceRecorder;
}

namespace tart {

/// Outcome of offering an arriving message to the inbox.
enum class AcceptResult {
  kAccepted,
  kDuplicate,  ///< vt already accounted on this wire; dropped.
  kGap,        ///< seq jumped: preceding ticks lost; replay needed.
};

class Inbox {
 public:
  /// Registers an input wire. All wires must be added before scheduling
  /// starts (static wiring per §II.B).
  void add_wire(WireId wire);

  /// Declares that `wire`'s sender follows the hyper-aggressive bias
  /// discipline (§II.G.1): data may only occupy ticks that are multiples of
  /// `window`. All other ticks are silent *by construction*, so the
  /// receiver infers silence up to the next boundary without any
  /// communication — the receiver-side half of the "bias algorithm" [11].
  /// Part of the deterministic configuration (changing it at runtime would
  /// be a determinism fault).
  void set_data_grid(WireId wire, std::int64_t window);

  [[nodiscard]] bool has_wire(WireId wire) const;
  [[nodiscard]] std::size_t wire_count() const { return wires_.size(); }

  /// Attaches the flight recorder (§II.F.4 evidence: duplicate discards
  /// and gap detections are recorded at the point of classification).
  /// `self` is the receiving component. Null detaches; costs one branch
  /// per rejection when detached.
  void set_trace(trace::TraceRecorder* recorder, ComponentId self) {
    trace_ = recorder;
    trace_self_ = self;
  }

  /// Offers an arriving message. FIFO per wire; the message's vt implicitly
  /// accounts all earlier ticks on that wire as silent.
  AcceptResult offer(const Message& m);

  /// Explicit silence announcement: `wire` has no data through `through`.
  /// Monotonic; stale announcements are ignored. When `expected_seq` is
  /// nonzero it is the sender's count of data messages at or before
  /// `through`; returns true if this inbox has seen fewer (ticks were lost
  /// and must be replayed from next_seq()). The horizon is only advanced
  /// when no gap is detected — a lost data tick is not silent.
  bool announce_silence(WireId wire, VirtualTime through,
                        std::uint64_t expected_seq = 0);

  /// The head that must be processed next in (vt, wire) order, if any
  /// message is pending at all (regardless of eligibility).
  [[nodiscard]] std::optional<Message> peek() const;

  /// True when the next head (per peek) is eligible for dequeue under the
  /// pessimistic rule.
  [[nodiscard]] bool head_eligible() const;

  /// Pops the next message if eligible; nullopt otherwise.
  [[nodiscard]] std::optional<Message> pop();

  /// Wires whose silence horizon blocks the current head (targets for
  /// curiosity probes). Empty when no head or head is eligible.
  [[nodiscard]] std::vector<WireId> lagging_wires() const;

  /// Greatest vt through which *all* wires are accounted; the component can
  /// never again receive a message at or before this time. Used for idle
  /// detection and downstream silence generation.
  [[nodiscard]] VirtualTime accounted_through() const;

  /// Horizon of one wire (ticks <= horizon are accounted).
  [[nodiscard]] VirtualTime wire_horizon(WireId wire) const;

  /// Number of messages pending across all wires.
  [[nodiscard]] std::size_t pending() const;

  /// Messages pending on one wire (stall introspection).
  [[nodiscard]] std::size_t pending_on(WireId wire) const;

  /// True when every wire is closed (horizon == +inf) and nothing pending.
  [[nodiscard]] bool exhausted() const;

  /// Next expected sequence number for a wire (for replay requests).
  [[nodiscard]] std::uint64_t next_seq(WireId wire) const;

  /// Restores a wire's position after checkpoint recovery: messages with
  /// vt <= `through` (or seq < `seq`) will be treated as duplicates.
  void restore_position(WireId wire, VirtualTime through, std::uint64_t seq);

 private:
  struct WireState {
    std::deque<Message> pending;  // nondecreasing vt, increasing seq
    VirtualTime horizon = VirtualTime(-1);  // all ticks <= horizon accounted
    std::uint64_t next_seq = 0;
    std::int64_t grid = 0;  // bias window: data only at multiples (0 = off)
    bool closed() const { return horizon.is_infinite(); }

    /// Horizon including grid-implied silence: ticks strictly between the
    /// explicit horizon and the next grid boundary cannot carry data.
    [[nodiscard]] VirtualTime effective_horizon() const {
      if (grid <= 0 || horizon.is_infinite() || horizon.ticks() < 0)
        return horizon;
      const std::int64_t next_boundary =
          (horizon.ticks() / grid + 1) * grid;
      return VirtualTime(next_boundary - 1);
    }
  };

  /// Is head (t, id) allowed to run given wire w's state?
  [[nodiscard]] static bool permits(const WireState& w, WireId other_id,
                                    VirtualTime t, WireId id);

  [[nodiscard]] const WireState* find(WireId wire) const;

  /// Cold out-of-line record paths (see inbox.cc).
  void trace_discard(const Message& m) const;
  void trace_gap(const Message& m) const;

  std::map<WireId, WireState> wires_;
  trace::TraceRecorder* trace_ = nullptr;
  ComponentId trace_self_;
};

}  // namespace tart
