// Message payloads.
//
// TART components exchange values, not references (no shared memory between
// components). Payload is a closed sum of the value shapes the examples and
// experiments need; it is deterministic to copy, compare, and serialize,
// which the recovery machinery relies on (duplicate-elimination by
// timestamp, checkpoint fingerprints, cross-engine framing).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "serde/archive.h"

namespace tart {

class Payload {
 public:
  using Variant = std::variant<std::monostate, std::int64_t, double,
                               std::string, std::vector<std::int64_t>,
                               std::vector<std::string>,
                               std::vector<std::byte>>;

  Payload() = default;
  Payload(std::int64_t v) : value_(v) {}                      // NOLINT
  Payload(double v) : value_(v) {}                            // NOLINT
  Payload(std::string v) : value_(std::move(v)) {}            // NOLINT
  Payload(const char* v) : value_(std::string(v)) {}          // NOLINT
  Payload(std::vector<std::int64_t> v) : value_(std::move(v)) {}  // NOLINT
  Payload(std::vector<std::string> v) : value_(std::move(v)) {}   // NOLINT
  Payload(std::vector<std::byte> v) : value_(std::move(v)) {}     // NOLINT

  [[nodiscard]] bool empty() const {
    return std::holds_alternative<std::monostate>(value_);
  }

  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(value_);
  }
  [[nodiscard]] double as_double() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const std::vector<std::int64_t>& as_ints() const {
    return std::get<std::vector<std::int64_t>>(value_);
  }
  [[nodiscard]] const std::vector<std::string>& as_strings() const {
    return std::get<std::vector<std::string>>(value_);
  }
  [[nodiscard]] const std::vector<std::byte>& as_bytes() const {
    return std::get<std::vector<std::byte>>(value_);
  }

  [[nodiscard]] const Variant& value() const { return value_; }

  /// Approximate heap + inline footprint in bytes. Used by the profiler's
  /// retention-buffer accounting (observational; never fed to scheduling).
  [[nodiscard]] std::size_t approx_bytes() const {
    struct Sizer {
      std::size_t operator()(std::monostate) const { return 0; }
      std::size_t operator()(std::int64_t) const { return sizeof(std::int64_t); }
      std::size_t operator()(double) const { return sizeof(double); }
      std::size_t operator()(const std::string& s) const { return s.size(); }
      std::size_t operator()(const std::vector<std::int64_t>& v) const {
        return v.size() * sizeof(std::int64_t);
      }
      std::size_t operator()(const std::vector<std::string>& v) const {
        std::size_t n = 0;
        for (const auto& s : v) n += s.size() + sizeof(std::string);
        return n;
      }
      std::size_t operator()(const std::vector<std::byte>& v) const {
        return v.size();
      }
    };
    return std::visit(Sizer{}, value_);
  }

  bool operator==(const Payload& other) const = default;

  void encode(serde::Writer& w) const;
  [[nodiscard]] static Payload decode(serde::Reader& r);

 private:
  Variant value_;
};

}  // namespace tart
