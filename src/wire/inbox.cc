#include "wire/inbox.h"

#include <cassert>

#include "trace/recorder.h"

namespace tart {

void Inbox::add_wire(WireId wire) {
  assert(wire.is_valid());
  wires_.emplace(wire, WireState{});
}

void Inbox::set_data_grid(WireId wire, std::int64_t window) {
  auto it = wires_.find(wire);
  assert(it != wires_.end());
  it->second.grid = window;
}

bool Inbox::has_wire(WireId wire) const { return wires_.contains(wire); }

const Inbox::WireState* Inbox::find(WireId wire) const {
  const auto it = wires_.find(wire);
  return it == wires_.end() ? nullptr : &it->second;
}

// Out of line and cold: offer() is the hottest function in the merge and
// inlining the hash/record machinery into its rejection branches costs
// the accept path real cycles (bigger frame, more callee saves) even
// when tracing is off.
__attribute__((cold, noinline)) void Inbox::trace_discard(
    const Message& m) const {
  trace_->record(trace_self_, trace::TraceEventKind::kDuplicateDiscard, m.vt,
                 m.wire, m.seq, trace::hash_of(m.payload));
}

__attribute__((cold, noinline)) void Inbox::trace_gap(
    const Message& m) const {
  trace_->record(trace_self_, trace::TraceEventKind::kGap, m.vt, m.wire,
                 m.seq);
}

AcceptResult Inbox::offer(const Message& m) {
  auto it = wires_.find(m.wire);
  assert(it != wires_.end() && "message for unregistered wire");
  WireState& w = it->second;

  // Duplicate: vt already accounted (silent or delivered/pending data).
  // Replayed messages re-arrive with their original (identical) timestamps
  // and are discarded here.
  if (m.vt <= w.horizon) {
    if (trace_ != nullptr) trace_discard(m);
    return AcceptResult::kDuplicate;
  }

  // Gap: FIFO sequence jumped, meaning ticks were lost on the physical
  // link or the sender restarted ahead of us. Caller must request replay.
  if (m.seq > w.next_seq) {
    if (trace_ != nullptr) trace_gap(m);
    return AcceptResult::kGap;
  }
  if (m.seq < w.next_seq) {
    if (trace_ != nullptr) trace_discard(m);
    return AcceptResult::kDuplicate;
  }

  w.next_seq = m.seq + 1;
  // The message's vt accounts all earlier ticks as (implied) silence and
  // its own tick as data.
  w.horizon = m.vt;
  w.pending.push_back(m);
  return AcceptResult::kAccepted;
}

bool Inbox::announce_silence(WireId wire, VirtualTime through,
                             std::uint64_t expected_seq) {
  auto it = wires_.find(wire);
  assert(it != wires_.end());
  WireState& w = it->second;
  if (expected_seq > w.next_seq) {
    // The sender accounted data ticks we never received: they were lost
    // (e.g. dropped while this engine was down). Do not mark them silent;
    // the caller must request replay from next_seq.
    return true;
  }
  if (through > w.horizon) w.horizon = through;
  return false;
}

std::optional<Message> Inbox::peek() const {
  const WireState* best = nullptr;
  WireId best_id;
  for (const auto& [id, w] : wires_) {
    if (w.pending.empty()) continue;
    const Message& head = w.pending.front();
    if (best == nullptr ||
        head.key() < std::pair{best->pending.front().vt, best_id}) {
      best = &w;
      best_id = id;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->pending.front();
}

bool Inbox::permits(const WireState& w, WireId other_id, VirtualTime t,
                    WireId id) {
  if (!w.pending.empty()) {
    // A pending head on the other wire must order after (t, id).
    return std::pair{t, id} < w.pending.front().key();
  }
  const VirtualTime h = w.effective_horizon();
  if (h >= t) return true;
  // Horizon t-1 suffices when the other wire loses the vt==t tie-break:
  // any future message on it has vt > horizon >= t-1, i.e. vt >= t, and at
  // vt == t our smaller wire id wins.
  return h >= t.prev() && other_id > id;
}

bool Inbox::head_eligible() const {
  const auto head = peek();
  if (!head) return false;
  for (const auto& [id, w] : wires_) {
    if (id == head->wire) continue;
    if (!permits(w, id, head->vt, head->wire)) return false;
  }
  return true;
}

std::optional<Message> Inbox::pop() {
  if (!head_eligible()) return std::nullopt;
  const auto head = peek();
  auto& w = wires_.at(head->wire);
  Message m = std::move(w.pending.front());
  w.pending.pop_front();
  return m;
}

std::vector<WireId> Inbox::lagging_wires() const {
  std::vector<WireId> out;
  const auto head = peek();
  if (!head) return out;
  for (const auto& [id, w] : wires_) {
    if (id == head->wire) continue;
    if (!permits(w, id, head->vt, head->wire)) out.push_back(id);
  }
  return out;
}

VirtualTime Inbox::accounted_through() const {
  VirtualTime lo = VirtualTime::infinity();
  for (const auto& [id, w] : wires_) lo = min(lo, w.effective_horizon());
  return lo;
}

VirtualTime Inbox::wire_horizon(WireId wire) const {
  const WireState* w = find(wire);
  assert(w != nullptr);
  return w->horizon;
}

std::size_t Inbox::pending() const {
  std::size_t n = 0;
  for (const auto& [id, w] : wires_) n += w.pending.size();
  return n;
}

std::size_t Inbox::pending_on(WireId wire) const {
  const WireState* w = find(wire);
  return w == nullptr ? 0 : w->pending.size();
}

bool Inbox::exhausted() const {
  for (const auto& [id, w] : wires_)
    if (!w.closed() || !w.pending.empty()) return false;
  return true;
}

std::uint64_t Inbox::next_seq(WireId wire) const {
  const WireState* w = find(wire);
  assert(w != nullptr);
  return w->next_seq;
}

void Inbox::restore_position(WireId wire, VirtualTime through,
                             std::uint64_t seq) {
  auto it = wires_.find(wire);
  assert(it != wires_.end());
  WireState& w = it->second;
  w.pending.clear();
  w.horizon = through;
  w.next_seq = seq;
}

}  // namespace tart
