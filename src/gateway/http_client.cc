#include "gateway/http_client.h"

#include <poll.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <stdexcept>
#include <thread>

namespace tart::gateway {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      (void)::poll(&p, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("http client: write failed");
  }
}

}  // namespace

const std::string* HttpResponse::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

std::optional<BlockingHttpClient> BlockingHttpClient::connect(
    const std::string& addr, std::chrono::milliseconds timeout) {
  const auto parsed = net::SockAddr::parse(addr);
  if (!parsed) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool in_progress = false;
    std::string err;
    net::Fd fd = net::connect_tcp(*parsed, &in_progress, &err);
    if (fd.valid() && in_progress) {
      pollfd p{fd.get(), POLLOUT, 0};
      (void)::poll(&p, 1, 1000);
      if (net::connect_error(fd.get()) != 0) fd.reset();
    }
    if (fd.valid()) return BlockingHttpClient(std::move(fd));
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

HttpResponse BlockingHttpClient::request(std::string_view method,
                                         std::string_view target,
                                         std::string_view body,
                                         std::string_view content_type) {
  std::string req;
  req += method;
  req += ' ';
  req += target;
  req += " HTTP/1.1\r\nHost: tart\r\n";
  if (!content_type.empty()) {
    req += "Content-Type: ";
    req += content_type;
    req += "\r\n";
  }
  req += "Content-Length: ";
  req += std::to_string(body.size());
  req += "\r\n\r\n";
  req += body;
  write_all(fd_.get(), req);

  // Read until a full response (status line + headers + Content-Length
  // body) is buffered. The server always sends Content-Length.
  const auto read_more = [this] {
    pollfd p{fd_.get(), POLLIN, 0};
    const int rc = ::poll(&p, 1, 10000);
    if (rc <= 0) throw std::runtime_error("http client: response timeout");
    char buf[16384];
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n == 0) throw std::runtime_error("http client: connection closed");
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      throw std::runtime_error("http client: read failed");
    }
    inbuf_.append(buf, static_cast<std::size_t>(n));
  };

  std::size_t header_end;
  for (;;) {
    header_end = inbuf_.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    read_more();
  }

  HttpResponse resp;
  std::size_t cursor = 0;
  {
    const std::size_t eol = inbuf_.find("\r\n");
    std::string_view line(inbuf_.data(), eol);
    if (line.size() < 12 || line.rfind("HTTP/1.", 0) != 0)
      throw std::runtime_error("http client: bad status line");
    resp.status = std::stoi(std::string(line.substr(9, 3)));
    cursor = eol + 2;
  }
  while (cursor < header_end) {
    const std::size_t eol = inbuf_.find("\r\n", cursor);
    std::string_view line(inbuf_.data() + cursor, eol - cursor);
    cursor = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    resp.headers.emplace_back(std::string(line.substr(0, colon)),
                              std::string(value));
  }

  std::size_t body_len = 0;
  if (const std::string* cl = resp.header("Content-Length"))
    body_len = static_cast<std::size_t>(std::stoull(*cl));
  const std::size_t body_start = header_end + 4;
  while (inbuf_.size() - body_start < body_len) read_more();
  resp.body = inbuf_.substr(body_start, body_len);
  inbuf_.erase(0, body_start + body_len);
  return resp;
}

void BlockingHttpClient::send_raw(std::string_view bytes) {
  write_all(fd_.get(), bytes);
}

std::string BlockingHttpClient::read_until_close(
    std::chrono::milliseconds timeout) {
  std::string out = std::move(inbuf_);
  inbuf_.clear();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd_.get(), POLLIN, 0};
    const int rc = ::poll(&p, 1, 200);
    if (rc <= 0) continue;
    char buf[16384];
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n == 0) return out;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return out;
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace tart::gateway
