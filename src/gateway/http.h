// Minimal, hardened HTTP/1.1 server-side codec for the ingress gateway.
//
// The parser is incremental and pipelining-safe in exactly the way
// net::StreamDecoder is: feed() whatever the socket produced, next() whole
// requests in order; a truncated request simply waits for more bytes,
// while a malformed one raises HttpError — typed, connection-fatal, and
// carrying the HTTP status the server should send before closing (400 bad
// syntax, 413 body too large, 431 headers too large, 501 transfer-encoding
// not implemented, 505 unknown version). After a throw the parser is
// poisoned: the byte stream cannot be re-synchronized, so the connection
// must be dropped — never UB, never an unbounded allocation (tested by
// feeding every truncation prefix and random mutations under ASan,
// mirroring tests/net_frame_test.cc).
//
// Scope is deliberately narrow: request-line + headers + Content-Length
// bodies. Chunked transfer coding, upgrades and multipart are refused with
// typed errors; TLS is an open ROADMAP item (terminate it in front).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tart::gateway {

/// Connection-fatal protocol violation. `status` is the HTTP status code
/// the server should answer with before closing the connection.
class HttpError : public std::runtime_error {
 public:
  HttpError(int status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  [[nodiscard]] int status() const { return status_; }

 private:
  int status_;
};

/// One parsed request. `target` is split into `path` and the raw query
/// string; header names are matched case-insensitively via header().
struct HttpRequest {
  std::string method;   ///< e.g. "GET", "POST" (token, case-sensitive)
  std::string path;     ///< target up to '?', percent-decoded
  std::string query;    ///< raw query string after '?', possibly empty
  int version_minor = 1;  ///< HTTP/1.<n>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  /// Case-insensitive header lookup; nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// Per-parser hardening limits.
struct HttpLimits {
  std::size_t max_request_line = 8192;
  std::size_t max_header_bytes = 32768;  ///< all header lines together
  std::size_t max_headers = 100;
  std::size_t max_body = 4u * 1024 * 1024;
};

class HttpParser {
 public:
  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  void feed(const std::byte* data, std::size_t size);
  void feed(std::string_view data) {
    feed(reinterpret_cast<const std::byte*>(data.data()), data.size());
  }

  /// Extracts the next complete request, or nullopt when more bytes are
  /// needed. Throws HttpError on malformed input; the parser is then
  /// poisoned (every later call throws) — drop the connection.
  [[nodiscard]] std::optional<HttpRequest> next();

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  HttpLimits limits_;
  std::string buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

// --- Response serialization -------------------------------------------------

/// Standard reason phrase for the handful of statuses the gateway emits.
[[nodiscard]] std::string_view http_reason(int status);

/// Serializes a full response with Content-Length and Connection headers.
[[nodiscard]] std::string http_response(
    int status, const std::vector<std::pair<std::string, std::string>>& extra,
    std::string_view body, bool keep_alive);

// --- Small target/query helpers ---------------------------------------------

/// Parses "k1=v1&k2=v2" (percent-decoded, '+' as space). Later keys win.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query);

/// First value of `key` in a parsed query, or nullopt.
[[nodiscard]] std::optional<std::string> query_param(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view key);

}  // namespace tart::gateway
