// Minimal blocking HTTP/1.1 client for tests and benches.
//
// Deliberately simple: one connection, keep-alive, synchronous
// request/response, reusing HttpParser-style incremental response reading.
// Not part of the production surface — external clients speak ordinary
// HTTP; this exists so the test suite and bench_gateway need no third-party
// HTTP library.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/socket.h"

namespace tart::gateway {

struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  [[nodiscard]] const std::string* header(std::string_view name) const;
};

class BlockingHttpClient {
 public:
  /// Connects (blocking, retrying until `timeout` — servers take a moment
  /// to come up). nullopt on failure.
  [[nodiscard]] static std::optional<BlockingHttpClient> connect(
      const std::string& addr,
      std::chrono::milliseconds timeout = std::chrono::seconds(5));

  BlockingHttpClient(BlockingHttpClient&&) = default;
  BlockingHttpClient& operator=(BlockingHttpClient&&) = default;

  /// One round-trip on the kept-alive connection. Throws std::runtime_error
  /// on transport failure or unparsable response.
  HttpResponse request(std::string_view method, std::string_view target,
                       std::string_view body = {},
                       std::string_view content_type = {});

  [[nodiscard]] HttpResponse get(std::string_view target) {
    return request("GET", target);
  }
  [[nodiscard]] HttpResponse post(std::string_view target,
                                  std::string_view body,
                                  std::string_view content_type = {}) {
    return request("POST", target, body, content_type);
  }

  /// Sends raw bytes verbatim (malformed-input tests).
  void send_raw(std::string_view bytes);
  /// Reads until the peer closes or `timeout`, returning everything seen.
  [[nodiscard]] std::string read_until_close(
      std::chrono::milliseconds timeout = std::chrono::seconds(5));

 private:
  explicit BlockingHttpClient(net::Fd fd) : fd_(std::move(fd)) {}

  net::Fd fd_;
  std::string inbuf_;
};

}  // namespace tart::gateway
