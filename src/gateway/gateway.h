// Production HTTP ingress for external inputs (§II.E over real sockets).
//
// The paper's external-input contract is that a message is "(a) given a
// timestamp, and then (b) logged" before it may affect the system; this
// gateway adds the operational half of that contract: the client's 200 is
// sent only AFTER the injection is durable in the node's stable store, so
// "acked" always implies "replayable after a crash" (log-before-ack).
// Un-acked requests carry no promise — after a crash they are absent or
// present-once, never duplicated, because the client retries only what it
// never saw acked.
//
// Durability costs an fsync, so concurrent requests are group-committed: a
// committer thread drains every injection that arrived while the previous
// flush was in flight and stamps + logs them with ONE batched append
// (Runtime::try_inject_batch -> FileStableStore::append_batch). Latency of
// one flush, throughput of many.
//
// Endpoints (docs/GATEWAY.md):
//   POST /inject/<input>[?vt=N]   body = payload (Content-Type-typed)
//   POST /close/<input>           promise silence forever
//   POST /drain[?timeout_ms=N]    quiesce the runtime
//   POST /checkpoint              force a durable checkpoint (RECOVERY.md)
//   POST /migrate?component=C&to=NODE   live-migrate C (docs/PLACEMENT.md)
//   POST /shutdown                ask the host process to exit
//   GET  /outputs/<output>[?after=N&wait_ms=M&max=K]   drain/long-poll
//   GET  /metrics                 Prometheus text exposition (obs registry)
//   GET  /status                  silence-wavefront JSON (per component)
//   GET  /healthz
//
// Threading: one event-loop thread owns every socket (accept/read/write,
// same net::EventLoop as the peer transport), the committer thread owns
// the injection batch, and blocking operations (drain) run on transient
// worker threads; results are post()ed back to the loop. While a request
// awaits its commit the connection's reads are paused, which makes
// pipelining safe: parsed-but-unserved requests simply wait their turn.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/runtime.h"
#include "gateway/http.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "obs/registry.h"

namespace tart::gateway {

/// Scalar gateway counters (histograms render via GET /metrics only).
struct GatewayCounters {
  std::uint64_t requests = 0;
  std::uint64_t acked = 0;
  std::uint64_t rejected = 0;  ///< 429 admission rejections
  std::uint64_t errors = 0;    ///< other 4xx/5xx
  std::uint64_t redirects = 0;  ///< 307s to an input's post-migration owner
  std::uint64_t commit_batches = 0;
  std::uint64_t commit_records = 0;
  std::uint64_t commit_batch_max = 0;
};

/// Result of a gateway-driven live migration (POST /migrate); mirrors
/// placement::MigrationResult without making the gateway depend on the
/// placement subsystem.
struct MigrateOutcome {
  bool ok = false;
  std::uint64_t epoch = 0;
  std::uint64_t slice_bytes = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t record_count = 0;
  double transfer_ms = 0;
  double blackout_ms = 0;
  std::string error;
};

class Gateway {
 public:
  struct Options {
    std::string listen = "127.0.0.1:0";
    HttpLimits limits;
    /// Admission bound: injections queued-or-committing per input wire.
    /// Beyond it the gateway answers 429 + Retry-After instead of buying
    /// unbounded memory (backpressure to the outside world).
    std::size_t max_inflight_per_wire = 1024;
    /// false = one stamp+log+flush per request (bench baseline); the
    /// durability contract is identical, only the batching differs.
    bool group_commit = true;
    std::size_t max_batch = 256;  ///< cap on one group-commit round
    int retry_after_seconds = 1;  ///< advertised in 429 responses
    /// OpenMetrics mode for GET /metrics: histogram buckets that captured
    /// a stall exemplar render `# {...}` suffixes. Off by default — plain
    /// Prometheus 0.0.4 scrapers do not expect them.
    bool exemplars = false;
  };

  /// Extra metrics merged into GET /metrics (the hosting NetHost supplies
  /// its transport-inclusive snapshot); defaults to runtime totals.
  using MetricsFn = std::function<core::MetricsSnapshot()>;

  /// Where an external input/output named `name` is served RIGHT NOW, when
  /// that is not here: the advertised http address ("host:port") of the
  /// current owner node, or nullopt to serve locally. Consulted per
  /// request, so the answer tracks live migration — the host backs it
  /// with the placement table. Null fn = always local (single node).
  using RedirectFn =
      std::function<std::optional<std::string>(const std::string& name)>;

  /// Executes a live migration (blocking; called off the loop thread).
  /// Null = placement control is not enabled on this node.
  using MigrateFn = std::function<MigrateOutcome(
      const std::string& component, const std::string& to_node)>;

  /// Binds and serves immediately. `inputs`/`outputs` map external names
  /// to wires. In partitioned deployments pass EVERY external wire plus a
  /// `redirect_fn`: requests for wires owned elsewhere answer 307 toward
  /// the current owner (live migration moves ownership mid-run). Throws
  /// ConfigError when the listen address is bad or taken. `on_shutdown`
  /// runs when a client POSTs /shutdown.
  Gateway(core::Runtime* runtime, Options options,
          std::map<std::string, WireId> inputs,
          std::map<std::string, WireId> outputs,
          MetricsFn metrics_fn = nullptr,
          std::function<void()> on_shutdown = nullptr,
          RedirectFn redirect_fn = nullptr, MigrateFn migrate_fn = nullptr);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Stops accepting, fails pending commits' connections, joins threads.
  /// Idempotent. Call before stopping the runtime.
  void shutdown();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] GatewayCounters counters() const;
  /// Merges the scalar counters into a snapshot (gw_* fields).
  void fill(core::MetricsSnapshot& snapshot) const;

 private:
  struct Conn {
    net::Fd fd;
    HttpParser parser;
    std::string outbuf;
    std::size_t out_off = 0;
    bool close_after_write = false;
    /// A response for the current request is still being produced
    /// elsewhere (committer, drain worker, long-poll timer); reads stay
    /// paused and no further pipelined request is started until it lands.
    bool awaiting = false;
  };

  /// One injection waiting for the committer.
  struct PendingInject {
    std::uint64_t conn_id = 0;
    WireId wire;
    core::InjectRequest request;
    bool keep_alive = true;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Loop-thread only.
  void on_accept();
  void on_conn_event(std::uint64_t id, unsigned events);
  void serve_next(std::uint64_t id);
  void handle_request(std::uint64_t id, HttpRequest req);
  void handle_inject(std::uint64_t id, const HttpRequest& req,
                     std::string_view name);
  void handle_outputs(std::uint64_t id, const HttpRequest& req,
                      std::string_view name);
  void handle_migrate(std::uint64_t id, const HttpRequest& req);
  /// Answers 307 toward the current owner when `name` is served elsewhere
  /// (redirect_fn_ says so); returns true when a redirect was sent.
  bool maybe_redirect(std::uint64_t id, const HttpRequest& req,
                      const std::string& name);
  void poll_outputs(std::uint64_t id, WireId wire, std::size_t after,
                    std::size_t max,
                    std::chrono::steady_clock::time_point deadline,
                    bool keep_alive);
  void respond(std::uint64_t id, int status,
               std::vector<std::pair<std::string, std::string>> extra,
               std::string_view body, bool keep_alive);
  void flush_out(std::uint64_t id);
  void drop_conn(std::uint64_t id);
  [[nodiscard]] std::string render_metrics() const;

  // Committer thread.
  void committer_main();
  void complete_commits(std::vector<PendingInject> batch,
                        std::vector<core::InjectResult> results);

  core::Runtime* runtime_;
  Options options_;
  std::map<std::string, WireId> inputs_;
  std::map<std::string, WireId> outputs_;
  MetricsFn metrics_fn_;
  std::function<void()> on_shutdown_;
  RedirectFn redirect_fn_;
  MigrateFn migrate_fn_;

  net::Fd listener_;
  std::uint16_t port_ = 0;

  net::EventLoop loop_;
  std::thread loop_thread_;

  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;  // loop thread
  std::uint64_t next_conn_ = 1;                           // loop thread

  // Committer queue. `pending_` is swapped out whole each round; per-wire
  // in-flight counts implement the admission bound (incremented on the
  // loop thread at enqueue, decremented by the committer at completion).
  std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::vector<PendingInject> pending_;
  std::thread committer_;
  std::map<WireId, std::atomic<std::size_t>> inflight_;

  // Blocking-operation workers (drain); joined at shutdown.
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;

  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> commit_batches_{0};
  std::atomic<std::uint64_t> commit_records_{0};
  std::atomic<std::uint64_t> commit_batch_max_{0};

  // Registry cells (runtime's obs::Registry); lock-free record path.
  obs::Histogram& ack_latency_;
  obs::Histogram& batch_size_;
};

/// Parses an HTTP request body into a Payload according to Content-Type
/// (text/plain whitespace-split words, application/x-tart-{int,double,
/// string}, application/octet-stream). Throws HttpError(400/415).
[[nodiscard]] Payload payload_from_body(const HttpRequest& req);

/// Renders a payload as one line of text (inverse-ish of the above; used
/// by GET /outputs and the tools).
[[nodiscard]] std::string render_payload(const Payload& payload);

}  // namespace tart::gateway
