#include "gateway/gateway.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "durability/manager.h"
#include "net/partition_config.h"
#include "obs/exposition.h"
#include "obs/prof.h"

namespace tart::gateway {

namespace {

using Clock = std::chrono::steady_clock;

/// Media type without parameters, lowercased ("Text/Plain; charset=utf-8"
/// -> "text/plain").
std::string media_type(const HttpRequest& req) {
  const std::string* ct = req.header("Content-Type");
  if (ct == nullptr) return "text/plain";
  std::string_view v = *ct;
  const std::size_t semi = v.find(';');
  if (semi != std::string_view::npos) v = v.substr(0, semi);
  while (!v.empty() && v.back() == ' ') v.remove_suffix(1);
  while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
  std::string out(v);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

Payload payload_from_body(const HttpRequest& req) {
  const std::string type = media_type(req);
  if (type == "text/plain" || type.empty()) {
    std::vector<std::string> words;
    std::istringstream in(req.body);
    std::string word;
    while (in >> word) words.push_back(std::move(word));
    return Payload(std::move(words));
  }
  if (type == "application/x-tart-int") {
    const auto v = parse_i64(req.body);
    if (!v) throw HttpError(400, "body is not an integer");
    return Payload(*v);
  }
  if (type == "application/x-tart-double") {
    char* end = nullptr;
    const double v = std::strtod(req.body.c_str(), &end);
    if (req.body.empty() || end != req.body.c_str() + req.body.size())
      throw HttpError(400, "body is not a number");
    return Payload(v);
  }
  if (type == "application/x-tart-string") return Payload(req.body);
  if (type == "application/octet-stream") {
    std::vector<std::byte> bytes(req.body.size());
    std::memcpy(bytes.data(), req.body.data(), req.body.size());
    return Payload(std::move(bytes));
  }
  throw HttpError(415, "unsupported Content-Type '" + type + "'");
}

std::string render_payload(const Payload& payload) {
  struct Visitor {
    std::string operator()(std::monostate) const { return ""; }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const {
      std::ostringstream os;
      os << v;
      return os.str();
    }
    std::string operator()(const std::string& v) const { return v; }
    std::string operator()(const std::vector<std::int64_t>& v) const {
      std::string out;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) out += ' ';
        out += std::to_string(v[i]);
      }
      return out;
    }
    std::string operator()(const std::vector<std::string>& v) const {
      std::string out;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) out += ' ';
        out += v[i];
      }
      return out;
    }
    std::string operator()(const std::vector<std::byte>& v) const {
      static constexpr char kHex[] = "0123456789abcdef";
      std::string out;
      out.reserve(v.size() * 2);
      for (const std::byte b : v) {
        out += kHex[std::to_integer<unsigned>(b) >> 4];
        out += kHex[std::to_integer<unsigned>(b) & 0xF];
      }
      return out;
    }
  };
  return std::visit(Visitor{}, payload.value());
}

// --- Construction / teardown ------------------------------------------------

Gateway::Gateway(core::Runtime* runtime, Options options,
                 std::map<std::string, WireId> inputs,
                 std::map<std::string, WireId> outputs, MetricsFn metrics_fn,
                 std::function<void()> on_shutdown, RedirectFn redirect_fn,
                 MigrateFn migrate_fn)
    : runtime_(runtime),
      options_(std::move(options)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      metrics_fn_(std::move(metrics_fn)),
      on_shutdown_(std::move(on_shutdown)),
      redirect_fn_(std::move(redirect_fn)),
      migrate_fn_(std::move(migrate_fn)),
      // Ack latencies: 50us buckets to 250ms, overflow above (fsync-bound
      // tails on loaded disks land in the overflow bucket, still counted).
      ack_latency_(runtime->registry().histogram(
          "tart_gw_ack_latency_seconds",
          "Client-observed inject latency: enqueue to durable commit.", {},
          50e-6, 5000)),
      batch_size_(runtime->registry().histogram(
          "tart_gw_commit_batch_size",
          "Injections stamped and logged per group-commit flush.", {}, 1.0,
          options_.max_batch + 1)) {
  for (const auto& [name, wire] : inputs_) {
    (void)name;
    inflight_[wire].store(0);
  }

  const auto addr = net::SockAddr::parse(options_.listen);
  if (!addr) throw net::ConfigError("gateway: bad listen address '" +
                                    options_.listen + "'");
  std::string err;
  listener_ = net::listen_tcp(*addr, &err);
  if (!listener_.valid())
    throw net::ConfigError("gateway: listen on " + options_.listen +
                           " failed: " + err);
  port_ = net::local_port(listener_.get());

  committer_ = std::thread([this] { committer_main(); });
  loop_.post([this] {
    loop_.set_fd(listener_.get(), true, false,
                 [this](unsigned) { on_accept(); });
  });
  loop_thread_ = std::thread([this] { loop_.run(); });
}

Gateway::~Gateway() { shutdown(); }

void Gateway::shutdown() {
  if (stopping_.exchange(true)) return;

  // Committer first: it finishes the in-flight round, then every queued
  // injection is failed 503 (never silently acked — the contract is that
  // an un-acked request is absent-or-once after recovery, so refusing is
  // always safe).
  commit_cv_.notify_all();
  if (committer_.joinable()) committer_.join();

  {
    const std::lock_guard<std::mutex> lk(workers_mu_);
    for (auto& t : workers_)
      if (t.joinable()) t.join();
    workers_.clear();
  }

  // Tear sockets down on the loop thread, then stop from within so every
  // completion posted above runs before the loop exits.
  loop_.post([this] {
    loop_.remove_fd(listener_.get());
    for (auto& [id, conn] : conns_) loop_.remove_fd(conn->fd.get());
    conns_.clear();
    loop_.stop();
  });
  if (loop_thread_.joinable()) loop_thread_.join();
  listener_.reset();
}

GatewayCounters Gateway::counters() const {
  GatewayCounters c;
  c.requests = requests_.load();
  c.acked = acked_.load();
  c.rejected = rejected_.load();
  c.errors = errors_.load();
  c.redirects = redirects_.load();
  c.commit_batches = commit_batches_.load();
  c.commit_records = commit_records_.load();
  c.commit_batch_max = commit_batch_max_.load();
  return c;
}

void Gateway::fill(core::MetricsSnapshot& snapshot) const {
  const GatewayCounters c = counters();
  snapshot.gw_requests = c.requests;
  snapshot.gw_acked = c.acked;
  snapshot.gw_rejected = c.rejected;
  snapshot.gw_errors = c.errors;
  snapshot.gw_redirects = c.redirects;
  snapshot.gw_commit_batches = c.commit_batches;
  snapshot.gw_commit_records = c.commit_records;
  snapshot.gw_commit_batch_max = c.commit_batch_max;
}

// --- Loop thread: connections ----------------------------------------------

void Gateway::on_accept() {
  for (;;) {
    net::Fd fd = net::accept_tcp(listener_.get());
    if (!fd.valid()) return;
    const std::uint64_t id = next_conn_++;
    auto conn = std::make_unique<Conn>();
    conn->parser = HttpParser(options_.limits);
    const int raw = fd.get();
    conn->fd = std::move(fd);
    conns_[id] = std::move(conn);
    loop_.set_fd(raw, true, false,
                 [this, id](unsigned events) { on_conn_event(id, events); });
  }
}

void Gateway::on_conn_event(std::uint64_t id, unsigned events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* c = it->second.get();

  if ((events & net::EventLoop::kError) != 0) {
    drop_conn(id);
    return;
  }
  if ((events & net::EventLoop::kWritable) != 0) {
    flush_out(id);
    if (!conns_.contains(id)) return;
  }
  if ((events & net::EventLoop::kReadable) != 0) {
    std::byte buf[16384];
    for (;;) {
      const ssize_t n = ::read(c->fd.get(), buf, sizeof(buf));
      if (n > 0) {
        TART_PROF_SPAN("gw.parse");
        TART_PROF_BYTES("gw.http_in", n);
        try {
          c->parser.feed(buf, static_cast<std::size_t>(n));
        } catch (const HttpError&) {
          // Poisoned earlier; the error response is already queued.
          drop_conn(id);
          return;
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        drop_conn(id);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      drop_conn(id);
      return;
    }
    serve_next(id);
  }
}

void Gateway::serve_next(std::uint64_t id) {
  for (;;) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn* c = it->second.get();
    if (c->awaiting || c->close_after_write) return;
    std::optional<HttpRequest> req;
    try {
      req = c->parser.next();
    } catch (const HttpError& e) {
      // Typed protocol violation: answer with its status and close (the
      // byte stream cannot be re-synchronized).
      errors_.fetch_add(1);
      respond(id, e.status(), {}, std::string(e.what()) + "\n", false);
      return;
    }
    if (!req) return;
    requests_.fetch_add(1);
    try {
      handle_request(id, std::move(*req));
    } catch (const HttpError& e) {
      // Bad query string etc. — request-scoped, but simplest to close
      // (the handler had not responded yet when it threw).
      errors_.fetch_add(1);
      respond(id, e.status(), {}, std::string(e.what()) + "\n", false);
      return;
    } catch (const std::exception& e) {
      errors_.fetch_add(1);
      respond(id, 500, {}, std::string(e.what()) + "\n", false);
      return;
    }
  }
}

void Gateway::handle_request(std::uint64_t id, HttpRequest req) {
  const std::string& path = req.path;
  const auto strip = [&](std::string_view prefix) -> std::string_view {
    return std::string_view(path).substr(prefix.size());
  };

  if (path.rfind("/inject/", 0) == 0) {
    if (req.method != "POST") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "POST"}}, "POST only\n", req.keep_alive);
      return;
    }
    handle_inject(id, req, strip("/inject/"));
    return;
  }
  if (path.rfind("/close/", 0) == 0) {
    if (req.method != "POST") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "POST"}}, "POST only\n", req.keep_alive);
      return;
    }
    const std::string name(strip("/close/"));
    const auto it = inputs_.find(name);
    if (it == inputs_.end()) {
      errors_.fetch_add(1);
      respond(id, 404, {}, "unknown input\n", req.keep_alive);
      return;
    }
    if (maybe_redirect(id, req, name)) return;
    runtime_->close_input(it->second);
    respond(id, 200, {}, "closed\n", req.keep_alive);
    return;
  }
  if (path.rfind("/outputs/", 0) == 0) {
    if (req.method != "GET") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "GET"}}, "GET only\n", req.keep_alive);
      return;
    }
    handle_outputs(id, req, strip("/outputs/"));
    return;
  }
  if (path == "/drain") {
    if (req.method != "POST") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "POST"}}, "POST only\n", req.keep_alive);
      return;
    }
    const auto params = parse_query(req.query);
    std::int64_t timeout_ms = 30000;
    if (const auto t = query_param(params, "timeout_ms")) {
      const auto v = parse_i64(*t);
      if (!v || *v < 0) {
        errors_.fetch_add(1);
        respond(id, 400, {}, "bad timeout_ms\n", req.keep_alive);
        return;
      }
      timeout_ms = *v;
    }
    // drain() blocks up to the timeout — never on the loop thread.
    const auto conn_it = conns_.find(id);
    Conn* c = conn_it->second.get();
    c->awaiting = true;
    loop_.set_interest(c->fd.get(), false, c->out_off < c->outbuf.size());
    const bool keep = req.keep_alive;
    const std::lock_guard<std::mutex> lk(workers_mu_);
    workers_.emplace_back([this, id, timeout_ms, keep] {
      const bool ok =
          runtime_->drain(std::chrono::milliseconds(timeout_ms));
      loop_.post([this, id, ok, keep] {
        if (!conns_.contains(id)) return;
        if (ok) {
          respond(id, 200, {}, "drained\n", keep);
        } else {
          errors_.fetch_add(1);
          respond(id, 503, {}, "drain timeout\n", keep);
        }
        serve_next(id);
      });
    });
    return;
  }
  if (path == "/checkpoint") {
    if (req.method != "POST") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "POST"}}, "POST only\n", req.keep_alive);
      return;
    }
    durability::CheckpointManager* mgr = runtime_->checkpoint_manager();
    if (mgr == nullptr) {
      errors_.fetch_add(1);
      respond(id, 503, {}, "durability is not enabled on this node\n",
              req.keep_alive);
      return;
    }
    // checkpoint_now() blocks on the component barrier + fsyncs — never
    // on the loop thread (same pattern as /drain).
    const auto conn_it = conns_.find(id);
    Conn* c = conn_it->second.get();
    c->awaiting = true;
    loop_.set_interest(c->fd.get(), false, c->out_off < c->outbuf.size());
    const bool keep = req.keep_alive;
    const std::lock_guard<std::mutex> lk(workers_mu_);
    workers_.emplace_back([this, id, mgr, keep] {
      const durability::CheckpointStats stats = mgr->checkpoint_now();
      loop_.post([this, id, stats, keep] {
        if (!conns_.contains(id)) return;
        std::ostringstream body;
        body << "{\"ok\":" << (stats.ok ? "true" : "false")
             << ",\"id\":" << stats.id << ",\"bytes\":" << stats.bytes
             << ",\"covered_records\":" << stats.covered_records
             << ",\"reclaimed_records\":" << stats.reclaimed_records;
        if (!stats.ok) body << ",\"error\":\"" << stats.error << "\"";
        body << "}\n";
        if (!stats.ok) errors_.fetch_add(1);
        respond(id, stats.ok ? 200 : 500,
                {{"Content-Type", "application/json"}}, body.str(), keep);
        serve_next(id);
      });
    });
    return;
  }
  if (path == "/migrate") {
    if (req.method != "POST") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "POST"}}, "POST only\n", req.keep_alive);
      return;
    }
    handle_migrate(id, req);
    return;
  }
  if (path == "/shutdown") {
    if (req.method != "POST") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "POST"}}, "POST only\n", req.keep_alive);
      return;
    }
    respond(id, 200, {}, "shutting down\n", req.keep_alive);
    if (on_shutdown_) on_shutdown_();
    return;
  }
  if (path == "/metrics") {
    if (req.method != "GET") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "GET"}}, "GET only\n", req.keep_alive);
      return;
    }
    respond(id, 200, {{"Content-Type", obs::kPrometheusContentType}},
            render_metrics(), req.keep_alive);
    return;
  }
  if (path == "/status") {
    if (req.method != "GET") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "GET"}}, "GET only\n", req.keep_alive);
      return;
    }
    const auto samples = runtime_->registry().samples();
    respond(id, 200, {{"Content-Type", "application/json"}},
            obs::render_status_json(runtime_->status(), &samples),
            req.keep_alive);
    return;
  }
  if (path == "/profile") {
    if (req.method != "GET") {
      errors_.fetch_add(1);
      respond(id, 405, {{"Allow", "GET"}}, "GET only\n", req.keep_alive);
      return;
    }
    respond(id, 200, {{"Content-Type", "application/json"}},
            obs::prof::render_json(), req.keep_alive);
    return;
  }
  if (path == "/healthz") {
    respond(id, 200, {}, "ok\n", req.keep_alive);
    return;
  }
  errors_.fetch_add(1);
  respond(id, 404, {}, "unknown endpoint\n", req.keep_alive);
}

void Gateway::handle_inject(std::uint64_t id, const HttpRequest& req,
                            std::string_view name) {
  const auto input = inputs_.find(std::string(name));
  if (input == inputs_.end()) {
    errors_.fetch_add(1);
    respond(id, 404, {}, "unknown input\n", req.keep_alive);
    return;
  }
  if (maybe_redirect(id, req, input->first)) return;
  const WireId wire = input->second;

  std::int64_t vt = -1;
  const auto params = parse_query(req.query);
  if (const auto v = query_param(params, "vt")) {
    const auto parsed = parse_i64(*v);
    if (!parsed || *parsed < 0) {
      errors_.fetch_add(1);
      respond(id, 400, {}, "bad vt\n", req.keep_alive);
      return;
    }
    vt = *parsed;
  }

  Payload payload;
  try {
    payload = payload_from_body(req);
  } catch (const HttpError& e) {
    errors_.fetch_add(1);
    respond(id, e.status(), {}, std::string(e.what()) + "\n", req.keep_alive);
    return;
  }

  // Admission control: beyond the per-wire bound the honest answer is
  // "try again later", not an ever-growing commit queue.
  auto& inflight = inflight_.at(wire);
  if (inflight.load(std::memory_order_relaxed) >=
      options_.max_inflight_per_wire) {
    rejected_.fetch_add(1);
    respond(id, 429,
            {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
            "input queue full\n", req.keep_alive);
    return;
  }
  inflight.fetch_add(1, std::memory_order_relaxed);

  Conn* c = conns_.find(id)->second.get();
  c->awaiting = true;
  loop_.set_interest(c->fd.get(), false, c->out_off < c->outbuf.size());

  PendingInject pending;
  pending.conn_id = id;
  pending.wire = wire;
  pending.request = core::InjectRequest{wire, vt, std::move(payload)};
  pending.keep_alive = req.keep_alive;
  pending.enqueued = Clock::now();
  // Lineage arrival stamp: the kIngestArrive event (and the ingress-queue
  // stage of the decomposition) measures from HTTP arrival, so the time a
  // request waits for its group-commit slot is charged to the edge, not
  // hidden inside the commit.
  pending.request.arrival_wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          pending.enqueued.time_since_epoch())
          .count();
  {
    const std::lock_guard<std::mutex> lk(commit_mu_);
    pending_.push_back(std::move(pending));
  }
  commit_cv_.notify_one();
}

void Gateway::handle_outputs(std::uint64_t id, const HttpRequest& req,
                             std::string_view name) {
  const auto output = outputs_.find(std::string(name));
  if (output == outputs_.end()) {
    errors_.fetch_add(1);
    respond(id, 404, {}, "unknown output\n", req.keep_alive);
    return;
  }
  if (maybe_redirect(id, req, output->first)) return;
  const auto params = parse_query(req.query);
  std::size_t after = 0;
  std::size_t max = 100000;
  std::int64_t wait_ms = 0;
  if (const auto v = query_param(params, "after")) {
    const auto parsed = parse_i64(*v);
    if (!parsed || *parsed < 0) {
      errors_.fetch_add(1);
      respond(id, 400, {}, "bad after\n", req.keep_alive);
      return;
    }
    after = static_cast<std::size_t>(*parsed);
  }
  if (const auto v = query_param(params, "max")) {
    const auto parsed = parse_i64(*v);
    if (!parsed || *parsed <= 0) {
      errors_.fetch_add(1);
      respond(id, 400, {}, "bad max\n", req.keep_alive);
      return;
    }
    max = static_cast<std::size_t>(*parsed);
  }
  if (const auto v = query_param(params, "wait_ms")) {
    const auto parsed = parse_i64(*v);
    if (!parsed || *parsed < 0) {
      errors_.fetch_add(1);
      respond(id, 400, {}, "bad wait_ms\n", req.keep_alive);
      return;
    }
    wait_ms = *parsed;
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(wait_ms);
  poll_outputs(id, output->second, after, max, deadline, req.keep_alive);
}

bool Gateway::maybe_redirect(std::uint64_t id, const HttpRequest& req,
                             const std::string& name) {
  if (!redirect_fn_) return false;
  const auto owner = redirect_fn_(name);
  if (!owner) return false;  // wire is served here
  if (owner->empty()) {
    // Owner is another partition with no advertised http address: nothing
    // to redirect to, and the wire is not observable from this node.
    errors_.fetch_add(1);
    respond(id, 404, {}, "served by another partition\n", req.keep_alive);
    return true;
  }
  // 307 preserves method and body, so a redirected POST /inject retries
  // verbatim at the owner; clients that already sit at the right node
  // never see one. The target address is the owner's ADVERTISED http
  // address (deployment `http` directive), tracked live as migrations
  // re-home the wire.
  std::string target = "http://" + *owner + req.path;
  if (!req.query.empty()) target += "?" + req.query;
  redirects_.fetch_add(1);
  respond(id, 307, {{"Location", std::move(target)}},
          "moved: input is served by " + *owner + "\n", req.keep_alive);
  return true;
}

void Gateway::handle_migrate(std::uint64_t id, const HttpRequest& req) {
  if (!migrate_fn_) {
    errors_.fetch_add(1);
    respond(id, 503, {}, "placement control is not enabled on this node\n",
            req.keep_alive);
    return;
  }
  const auto params = parse_query(req.query);
  const auto component = query_param(params, "component");
  const auto to = query_param(params, "to");
  if (!component || component->empty() || !to || to->empty()) {
    errors_.fetch_add(1);
    respond(id, 400, {}, "need component= and to= query parameters\n",
            req.keep_alive);
    return;
  }

  // migrate blocks through checkpoint + transfer + cutover — never on the
  // loop thread (same pattern as /drain and /checkpoint).
  const auto conn_it = conns_.find(id);
  Conn* c = conn_it->second.get();
  c->awaiting = true;
  loop_.set_interest(c->fd.get(), false, c->out_off < c->outbuf.size());
  const bool keep = req.keep_alive;
  const std::string comp(*component);
  const std::string node(*to);
  const std::lock_guard<std::mutex> lk(workers_mu_);
  workers_.emplace_back([this, id, comp, node, keep] {
    MigrateOutcome r;
    try {
      r = migrate_fn_(comp, node);
    } catch (const std::exception& e) {
      r.ok = false;
      r.error = e.what();
    }
    loop_.post([this, id, r = std::move(r), keep] {
      if (!conns_.contains(id)) return;
      std::ostringstream body;
      body << "{\"ok\":" << (r.ok ? "true" : "false")
           << ",\"epoch\":" << r.epoch << ",\"slice_bytes\":" << r.slice_bytes
           << ",\"delta_bytes\":" << r.delta_bytes
           << ",\"record_count\":" << r.record_count
           << ",\"transfer_ms\":" << r.transfer_ms
           << ",\"blackout_ms\":" << r.blackout_ms;
      if (!r.ok) body << ",\"error\":\"" << r.error << "\"";
      body << "}\n";
      if (!r.ok) errors_.fetch_add(1);
      respond(id, r.ok ? 200 : 409, {{"Content-Type", "application/json"}},
              body.str(), keep);
      serve_next(id);
    });
  });
}

void Gateway::poll_outputs(std::uint64_t id, WireId wire, std::size_t after,
                           std::size_t max, Clock::time_point deadline,
                           bool keep_alive) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* c = it->second.get();

  const auto records = runtime_->output_records(wire);
  if (records.size() <= after && Clock::now() < deadline &&
      !stopping_.load()) {
    // Long-poll: nothing new yet; re-check on a short timer. The
    // connection stays read-paused so pipelined requests wait their turn.
    if (!c->awaiting) {
      c->awaiting = true;
      loop_.set_interest(c->fd.get(), false, c->out_off < c->outbuf.size());
    }
    loop_.add_timer(Clock::now() + std::chrono::milliseconds(10),
                    [this, id, wire, after, max, deadline, keep_alive] {
                      poll_outputs(id, wire, after, max, deadline, keep_alive);
                    });
    return;
  }

  std::string body;
  const std::size_t end = std::min(records.size(), after + max);
  for (std::size_t i = after; i < end; ++i) {
    body += std::to_string(records[i].vt.ticks());
    body += '\t';
    body += records[i].stutter ? '1' : '0';
    body += '\t';
    // Lineage tag: the originating input as WIRE:SEQ ("-" when unknown),
    // so external clients can correlate acked injections to outputs
    // without reading trace files (`tart-trace lineage --input WIRE:SEQ`).
    if (records[i].origin_wire.is_valid()) {
      body += std::to_string(records[i].origin_wire.value());
      body += ':';
      body += std::to_string(records[i].origin_seq);
    } else {
      body += '-';
    }
    body += '\t';
    body += render_payload(records[i].payload);
    body += '\n';
  }
  const bool was_awaiting = c->awaiting;
  respond(id, 200,
          {{"Content-Type", "text/plain"},
           {"X-Tart-Next", std::to_string(end)}},
          body, keep_alive);
  if (was_awaiting) serve_next(id);
}

void Gateway::respond(std::uint64_t id, int status,
                      std::vector<std::pair<std::string, std::string>> extra,
                      std::string_view body, bool keep_alive) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* c = it->second.get();
  c->awaiting = false;
  if (!keep_alive) c->close_after_write = true;
  c->outbuf += http_response(status, extra, body, keep_alive);
  flush_out(id);
}

void Gateway::flush_out(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* c = it->second.get();
  while (c->out_off < c->outbuf.size()) {
    const ssize_t n = ::write(c->fd.get(), c->outbuf.data() + c->out_off,
                              c->outbuf.size() - c->out_off);
    if (n > 0) {
      c->out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_conn(id);
    return;
  }
  if (c->out_off >= c->outbuf.size()) {
    c->outbuf.clear();
    c->out_off = 0;
    if (c->close_after_write) {
      drop_conn(id);
      return;
    }
    loop_.set_interest(c->fd.get(), !c->awaiting, false);
  } else {
    // Reads stay paused while a response is queued behind a slow client
    // that is also closing: nothing it sends can matter anymore.
    loop_.set_interest(c->fd.get(), !c->awaiting && !c->close_after_write,
                       true);
  }
}

void Gateway::drop_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_.remove_fd(it->second->fd.get());
  conns_.erase(it);
}

// --- Committer thread -------------------------------------------------------

void Gateway::committer_main() {
  for (;;) {
    std::vector<PendingInject> batch;
    {
      std::unique_lock<std::mutex> lk(commit_mu_);
      commit_cv_.wait(lk,
                      [this] { return !pending_.empty() || stopping_.load(); });
      if (pending_.empty() && stopping_.load()) return;
      if (pending_.size() <= options_.max_batch) {
        batch.swap(pending_);
      } else {
        batch.assign(std::make_move_iterator(pending_.begin()),
                     std::make_move_iterator(pending_.begin() +
                                             options_.max_batch));
        pending_.erase(pending_.begin(),
                       pending_.begin() + options_.max_batch);
      }
    }

    std::vector<core::InjectResult> results;
    if (stopping_.load()) {
      // Refuse instead of racing runtime teardown: un-acked implies
      // absent-or-once, so a 503 here never breaks the contract.
      results.assign(batch.size(),
                     core::InjectResult{core::InjectStatus::kStoreFailed,
                                        VirtualTime(-1)});
    } else if (options_.group_commit) {
      TART_PROF_SPAN("gw.group_commit");
      std::vector<core::InjectRequest> requests;
      requests.reserve(batch.size());
      for (const auto& p : batch) requests.push_back(p.request);
      results = runtime_->try_inject_batch(requests);
    } else {
      // Baseline mode: identical durability, one flush per request.
      TART_PROF_SPAN("gw.group_commit");
      results.reserve(batch.size());
      for (const auto& p : batch) {
        results.push_back(runtime_->try_inject_batch({p.request}).front());
      }
    }

    commit_batches_.fetch_add(1);
    commit_records_.fetch_add(batch.size());
    std::uint64_t prev = commit_batch_max_.load();
    while (prev < batch.size() &&
           !commit_batch_max_.compare_exchange_weak(prev, batch.size())) {
    }
    batch_size_.record(static_cast<double>(batch.size()));
    for (const auto& p : batch) {
      inflight_.at(p.wire).fetch_sub(1, std::memory_order_relaxed);
    }

    auto shared = std::make_shared<std::pair<std::vector<PendingInject>,
                                             std::vector<core::InjectResult>>>(
        std::move(batch), std::move(results));
    loop_.post([this, shared] {
      complete_commits(std::move(shared->first), std::move(shared->second));
    });
  }
}

void Gateway::complete_commits(std::vector<PendingInject> batch,
                               std::vector<core::InjectResult> results) {
  const auto now = Clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingInject& p = batch[i];
    const core::InjectResult& r = results[i];
    const double latency_s =
        std::chrono::duration<double>(now - p.enqueued).count();

    if (r.status == core::InjectStatus::kOk) {
      acked_.fetch_add(1);
      ack_latency_.record(latency_s);
      // Close the ingest triple: arrive -> durable -> ACK. Recorded here,
      // not in the committer, because the ack is released to the client
      // from this (loop-thread) completion.
      if (auto* tracer = runtime_->trace_recorder();
          tracer != nullptr &&
          tracer->wants(trace::TraceEventKind::kIngestAck))
        tracer->record(core::kEdgeTraceComponent,
                       trace::TraceEventKind::kIngestAck, r.vt, p.wire,
                       r.seq,
                       static_cast<std::uint64_t>(
                           std::chrono::duration_cast<
                               std::chrono::nanoseconds>(
                               now.time_since_epoch())
                               .count()));
    } else {
      errors_.fetch_add(1);
    }
    if (!conns_.contains(p.conn_id)) continue;

    switch (r.status) {
      case core::InjectStatus::kOk:
        respond(p.conn_id, 200,
                {{"X-Tart-Vt", std::to_string(r.vt.ticks())}},
                "vt=" + std::to_string(r.vt.ticks()) + "\n", p.keep_alive);
        break;
      case core::InjectStatus::kUnknownWire:
        respond(p.conn_id, 404, {}, "unknown input\n", p.keep_alive);
        break;
      case core::InjectStatus::kClosed:
        respond(p.conn_id, 409, {}, "input closed\n", p.keep_alive);
        break;
      case core::InjectStatus::kVtRegressed:
        respond(p.conn_id, 409, {}, "vt not after last logged vt\n",
                p.keep_alive);
        break;
      case core::InjectStatus::kStoreFailed:
        // Delivered but NOT durable: acking would claim replayability the
        // log cannot honor, so the ack is refused (client must retry).
        respond(p.conn_id, 503, {}, "stable store append failed\n",
                p.keep_alive);
        break;
    }
    serve_next(p.conn_id);
  }
}

// --- Metrics ----------------------------------------------------------------

std::string Gateway::render_metrics() const {
  core::MetricsSnapshot m =
      metrics_fn_ ? metrics_fn_() : runtime_->total_metrics();
  fill(m);
  // One exposition path for the whole node: the global (snapshot) families
  // plus every registry sample — per-component counters, pessimism-stall
  // and probe-RTT histograms, and the gateway's own latency/batch cells.
  return obs::render_prometheus(m, &runtime_->registry(),
                                options_.exemplars);
}

}  // namespace tart::gateway
