#include "gateway/http.h"

#include <algorithm>
#include <cctype>

namespace tart::gateway {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool is_token_char(char c) {
  // RFC 7230 token characters.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  return std::string_view("!#$%&'*+-.^_`|~").find(c) != std::string_view::npos;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Percent-decodes; '+' becomes a space only when `plus_is_space`. A bad
/// escape is a client syntax error (400).
std::string percent_decode(std::string_view in, bool plus_is_space) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) throw HttpError(400, "truncated percent escape");
      const int hi = hex_digit(in[i + 1]);
      const int lo = hex_digit(in[i + 2]);
      if (hi < 0 || lo < 0) throw HttpError(400, "bad percent escape");
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+' && plus_is_space) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

void HttpParser::feed(const std::byte* data, std::size_t size) {
  if (poisoned_) throw HttpError(400, "parser poisoned");
  buf_.append(reinterpret_cast<const char*>(data), size);
}

std::optional<HttpRequest> HttpParser::next() {
  if (poisoned_) throw HttpError(400, "parser poisoned");
  try {
    // Tolerate blank lines between pipelined requests (robustness note in
    // RFC 7230 §3.5).
    while (pos_ < buf_.size() &&
           (buf_[pos_] == '\r' || buf_[pos_] == '\n')) {
      ++pos_;
    }
    if (pos_ >= buf_.size()) {
      buf_.clear();
      pos_ = 0;
      return std::nullopt;
    }

    // --- Request line -----------------------------------------------------
    const std::size_t line_end = buf_.find('\n', pos_);
    if (line_end == std::string::npos) {
      if (buf_.size() - pos_ > limits_.max_request_line) {
        throw HttpError(414, "request line too long");
      }
      return std::nullopt;
    }
    if (line_end - pos_ > limits_.max_request_line) {
      throw HttpError(414, "request line too long");
    }
    std::string_view line(buf_.data() + pos_, line_end - pos_);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      throw HttpError(400, "malformed request line");
    }
    HttpRequest req;
    req.method = std::string(line.substr(0, sp1));
    if (req.method.empty() ||
        !std::all_of(req.method.begin(), req.method.end(), is_token_char)) {
      throw HttpError(400, "bad method token");
    }
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);
    if (target.empty()) throw HttpError(400, "empty request target");
    if (version == "HTTP/1.1") {
      req.version_minor = 1;
    } else if (version == "HTTP/1.0") {
      req.version_minor = 0;
    } else if (version.rfind("HTTP/", 0) == 0) {
      throw HttpError(505, "unsupported HTTP version");
    } else {
      throw HttpError(400, "malformed HTTP version");
    }
    const std::size_t qmark = target.find('?');
    req.path = percent_decode(target.substr(0, qmark), false);
    if (qmark != std::string_view::npos) {
      req.query = std::string(target.substr(qmark + 1));
    }

    // --- Header block -----------------------------------------------------
    std::size_t cursor = line_end + 1;
    std::size_t header_bytes = 0;
    for (;;) {
      const std::size_t eol = buf_.find('\n', cursor);
      if (eol == std::string::npos) {
        if (buf_.size() - cursor > limits_.max_header_bytes) {
          throw HttpError(431, "header block too large");
        }
        return std::nullopt;
      }
      std::string_view hline(buf_.data() + cursor, eol - cursor);
      if (!hline.empty() && hline.back() == '\r') hline.remove_suffix(1);
      cursor = eol + 1;
      if (hline.empty()) break;  // end of headers

      header_bytes += hline.size();
      if (header_bytes > limits_.max_header_bytes) {
        throw HttpError(431, "header block too large");
      }
      if (req.headers.size() >= limits_.max_headers) {
        throw HttpError(431, "too many header fields");
      }
      if (hline.front() == ' ' || hline.front() == '\t') {
        throw HttpError(400, "obsolete header folding");
      }
      const std::size_t colon = hline.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        throw HttpError(400, "malformed header field");
      }
      const std::string_view name = hline.substr(0, colon);
      if (!std::all_of(name.begin(), name.end(), is_token_char)) {
        throw HttpError(400, "bad header name");
      }
      req.headers.emplace_back(std::string(name),
                               std::string(trim_ows(hline.substr(colon + 1))));
    }

    // --- Body framing -----------------------------------------------------
    if (req.header("Transfer-Encoding") != nullptr) {
      throw HttpError(501, "transfer codings not implemented");
    }
    std::size_t body_len = 0;
    if (const std::string* cl = req.header("Content-Length")) {
      if (cl->empty() || !std::all_of(cl->begin(), cl->end(), [](char c) {
            return c >= '0' && c <= '9';
          })) {
        throw HttpError(400, "bad Content-Length");
      }
      // Reject before converting so a huge header cannot overflow.
      if (cl->size() > 12) throw HttpError(413, "body too large");
      body_len = static_cast<std::size_t>(std::stoull(*cl));
      if (body_len > limits_.max_body) throw HttpError(413, "body too large");
    }
    if (buf_.size() - cursor < body_len) return std::nullopt;
    req.body.assign(buf_.data() + cursor, body_len);
    cursor += body_len;

    // Keep-alive: default on for 1.1, off for 1.0; Connection overrides.
    req.keep_alive = req.version_minor >= 1;
    if (const std::string* conn = req.header("Connection")) {
      if (iequals(*conn, "close")) req.keep_alive = false;
      if (iequals(*conn, "keep-alive")) req.keep_alive = true;
    }

    // Consume the request; compact once the prefix dominates the buffer.
    pos_ = cursor;
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    return req;
  } catch (const HttpError&) {
    poisoned_ = true;
    throw;
  }
}

std::string_view http_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 415: return "Unsupported Media Type";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string http_response(
    int status, const std::vector<std::pair<std::string, std::string>>& extra,
    std::string_view body, bool keep_alive) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += http_reason(status);
  out += "\r\n";
  for (const auto& [k, v] : extra) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t start = 0;
  while (start <= query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params.emplace_back(percent_decode(pair, true), "");
      } else {
        params.emplace_back(percent_decode(pair.substr(0, eq), true),
                            percent_decode(pair.substr(eq + 1), true));
      }
    }
    start = end + 1;
  }
  return params;
}

std::optional<std::string> query_param(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view key) {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return std::nullopt;
}

}  // namespace tart::gateway
