// Simulation of the paper's experimental system (§III.A, §III.B): N sender
// components and one merger, each on a dedicated simulated processor.
// External clients feed the senders via Poisson processes; senders run the
// word-count-like loop (a configurable number of iterations at a fixed
// virtual cost per iteration, with real time perturbed by a jitter model);
// the merger services events at fixed cost, in real-arrival order
// (non-deterministic baseline) or in virtual-time order with pessimistic
// silence waiting (TART).
//
// The merger's virtual-time merge reuses the production Inbox, so the
// simulation exercises the same scheduling rule as the threaded runtime.
//
// Modes (§III.A):
//   kNonDeterministic — conventional runtime; arrival order.
//   kDeterministic    — TART with curiosity probes; a probed busy sender
//                       "is assumed not to know how many more iterations
//                       will follow" (promises one more iteration).
//   kPrescient        — same, but a probed busy sender knows the iteration
//                       count and promises silence through its exact
//                       output time.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/jitter.h"

namespace tart::sim {

/// kOptimistic models the Time Warp alternative the paper contrasts with
/// (§II.D): the merger processes messages eagerly in arrival order and,
/// when a straggler (smaller virtual time than something already
/// processed) arrives, rolls back — paying a per-message state-restore
/// cost and re-executing the rolled-back work. No silence machinery is
/// needed, but wasted re-execution replaces pessimism delay. (Committing
/// external output would additionally need anti-messages/GVT, which this
/// cost model charges nothing for — i.e. it flatters optimism.)
enum class SimMode { kNonDeterministic, kDeterministic, kPrescient,
                     kOptimistic };
enum class SimSilence { kCuriosity, kLazy };

/// Uniform inclusive iteration-count distribution; min == max is constant.
struct IterationDist {
  int min = 10;
  int max = 10;

  [[nodiscard]] double mean() const { return (min + max) / 2.0; }
  /// Standard deviation of the implied compute time, in microseconds.
  [[nodiscard]] double compute_sd_us(double per_iter_us) const {
    const double n = max - min + 1;
    return per_iter_us * std::sqrt((n * n - 1.0) / 12.0);
  }
};

struct SimConfig {
  int num_senders = 2;
  /// Mean Poisson inter-arrival time per sender (paper: 1 msg / 1000 us).
  double arrival_mean_us = 1000.0;
  /// Asymmetric-rate studies (the bias algorithm's setting): sender 0 uses
  /// this inter-arrival mean instead when nonzero.
  double slow_arrival_mean_us = 0.0;
  std::int64_t per_iter_vt_ns = 60000;  ///< true virtual cost per iteration
  IterationDist iterations{1, 19};

  /// Jitter: gaussian per-tick model unless an empirical bank is supplied.
  double per_tick_jitter_sd = 0.1;
  const EmpiricalJitterBank* bank = nullptr;

  /// Estimator: smart (ns per iteration) or dumb (constant, §III.A).
  double estimator_ns_per_iter = 60000.0;
  bool dumb_estimator = false;
  double dumb_estimate_ns = 600000.0;

  std::int64_t merger_service_ns = 400000;  ///< 400 us per event
  std::int64_t probe_rtt_ns = 20000;        ///< 20 us per curiosity probe
  /// kOptimistic: state-restore cost per rolled-back message.
  std::int64_t rollback_cost_ns = 50000;

  /// Hyper-aggressive bias (ablation): which sender follows the grid
  /// discipline (-1 = none, -2 = all) and the grid width.
  int biased_sender = -1;
  std::int64_t bias_ns = 0;

  SimMode mode = SimMode::kDeterministic;
  SimSilence silence = SimSilence::kCuriosity;

  double duration_us = 1'000'000.0;  ///< feed time; drains afterwards
  std::uint64_t seed = 1;
};

struct SimResult {
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  double avg_latency_us = 0;
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double max_latency_us = 0;
  std::uint64_t out_of_order = 0;      ///< merger arrivals with vt inversions
  std::uint64_t probes = 0;            ///< curiosity probes sent
  std::uint64_t pessimism_events = 0;  ///< delay episodes at the merger
  double pessimism_wait_us = 0;        ///< total real time spent delayed
  std::uint64_t rollbacks = 0;         ///< kOptimistic: straggler rollbacks
  std::uint64_t reexecutions = 0;      ///< kOptimistic: re-executed messages
  double merger_utilization = 0;
  std::size_t peak_merger_queue = 0;
  bool stable = true;  ///< drained within the grace window
};

[[nodiscard]] SimResult run_simulation(const SimConfig& config);

}  // namespace tart::sim
