// Discrete-event simulation kernel.
//
// The paper's §III.A/§III.B studies run the Figure-1 system "under
// simulation" on simulated processors; this kernel provides the event
// queue. Events at equal times fire in scheduling order (a deterministic
// tie-break), so a seeded simulation is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tart::sim {

/// Simulated real time in nanoseconds.
using SimTime = std::int64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (must be >= now()).
  void schedule(SimTime at, Action action) {
    queue_.push(Event{at, next_seq_++, std::move(action)});
  }

  void schedule_after(SimTime delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Runs events until the queue is empty or simulated time passes
  /// `until`. Returns the number of events executed.
  std::uint64_t run_until(SimTime until) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().at <= until) {
      // Moving out of a priority_queue requires the const_cast idiom; the
      // element is popped immediately after.
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.at;
      event.action();
      ++executed;
    }
    if (now_ < until) now_ = until;
    return executed;
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO among equal times
    Action action;
    bool operator>(const Event& other) const {
      return std::tie(at, seq) > std::tie(other.at, other.seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tart::sim
