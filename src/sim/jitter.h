// Jitter models: how much real time a given amount of virtual computation
// takes on a simulated processor.
//
// §III.A models fluctuation as one real tick per virtual tick with a
// normal(1, 0.1) multiplier per tick. §III.B replaces this "unrealistic
// approximation" with measurements imported from a real machine, whose
// distribution is "much skewed". We do not have the paper's ThinkPad T42
// trace, so EmpiricalJitterBank synthesizes an equivalent: a per-iteration
// base cost plus right-skewed noise (lognormal body and rare large spikes
// standing in for OS interrupts, page faults and allocation variability),
// resampled by iteration count exactly the way the paper resamples its
// imported measurements.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/virtual_time.h"

namespace tart::sim {

/// Per-virtual-tick gaussian jitter (§III.A): executing `virtual_ns` of
/// virtual time takes sum of virtual_ns draws from N(1, sd^2) real ticks,
/// i.e. N(virtual_ns, sd^2 * virtual_ns) by CLT — sampled directly.
class GaussianJitter {
 public:
  explicit GaussianJitter(double per_tick_sd) : sd_(per_tick_sd) {}

  [[nodiscard]] std::int64_t real_ns(std::int64_t virtual_ns, Rng& rng) const {
    if (virtual_ns <= 0) return 0;
    const double mean = static_cast<double>(virtual_ns);
    const double sd = sd_ * std::sqrt(mean);
    const double v = rng.normal(mean, sd);
    return v < 1.0 ? 1 : static_cast<std::int64_t>(v);
  }

 private:
  double sd_;
};

/// Synthetic stand-in for the paper's imported execution-time trace:
/// `samples_per_k` real durations for each iteration count in
/// [1, max_iterations], drawn from base + right-skewed noise.
class EmpiricalJitterBank {
 public:
  /// Defaults tuned so the bank's own through-origin regression matches
  /// the paper's Equation 2 statistics: coefficient ~61880 ns/iteration
  /// (paper: 61827) with R^2 ~0.924 (paper: 0.9154) and heavily
  /// right-skewed residuals.
  struct Config {
    int max_iterations = 19;
    int samples_per_k = 600;  // ~10000 total for k in 1..19, as in §III.B
    double base_ns_per_iteration = 59000.0;
    /// Lognormal body: exp(N(mu, sigma)) ns of extra latency per call.
    double noise_mu = 8.0;   // median ~3 us
    double noise_sigma = 1.0;
    /// Rare large spikes (interrupts / GC): probability and magnitude.
    double spike_probability = 0.05;
    double spike_mean_ns = 650000.0;
    std::uint64_t seed = 2009;
  };

  explicit EmpiricalJitterBank(const Config& config);

  /// A measured real duration for a message of `k` iterations, resampled
  /// uniformly from the bank (deterministic given `rng`).
  [[nodiscard]] std::int64_t sample(int k, Rng& rng) const;

  [[nodiscard]] int max_iterations() const {
    return static_cast<int>(bank_.size());
  }

  /// All (iterations, duration_ns) pairs — what the Fig-2 regression fits.
  [[nodiscard]] std::vector<std::pair<int, double>> all_samples() const;

 private:
  std::vector<std::vector<std::int64_t>> bank_;  // bank_[k-1]
};

}  // namespace tart::sim
